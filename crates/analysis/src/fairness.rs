//! Fairness analysis of the victim population.
//!
//! The model's `Σ 1/RTT_i²` weighting (Lemma 2) already says the attack's
//! leftover throughput concentrates quadratically on the short-RTT flows
//! — much more skewed than TCP's usual `1/RTT` bias. These helpers
//! quantify that: Jain's fairness index over per-flow goodputs, and the
//! model's predicted per-flow shares with and without the attack.

use crate::params::VictimSet;

/// Jain's fairness index `(Σx)² / (n·Σx²)` over non-negative allocations:
/// 1 for perfectly equal shares, `1/n` when one flow takes everything.
///
/// Returns 1.0 for an empty or all-zero input (vacuously fair).
///
/// # Examples
///
/// ```
/// use pdos_analysis::fairness::jain_index;
///
/// assert_eq!(jain_index(&[5.0, 5.0, 5.0, 5.0]), 1.0);
/// assert_eq!(jain_index(&[1.0, 0.0, 0.0, 0.0]), 0.25);
/// ```
pub fn jain_index(allocations: &[f64]) -> f64 {
    let n = allocations.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (n as f64 * sum_sq)
}

/// The model's per-flow throughput shares **under attack**: Lemma 2 gives
/// each flow weight `1/RTT_i²`, so flow `i`'s share is
/// `(1/RTT_i²) / Σ 1/RTT_j²`.
pub fn attack_shares(victims: &VictimSet) -> Vec<f64> {
    let total = victims.inv_rtt_sq_sum();
    victims
        .rtts()
        .iter()
        .map(|r| (1.0 / (r * r)) / total)
        .collect()
}

/// The conventional no-attack TCP share model (`1/RTT` bias, Padhye-style
/// first order): flow `i`'s share is `(1/RTT_i) / Σ 1/RTT_j`.
pub fn baseline_shares(victims: &VictimSet) -> Vec<f64> {
    let total: f64 = victims.rtts().iter().map(|r| 1.0 / r).sum();
    victims.rtts().iter().map(|r| (1.0 / r) / total).collect()
}

/// The model's headline fairness claim, bundled: the attack moves the
/// share bias from `1/RTT` to `1/RTT²`, so Jain's index can only fall (or
/// stay equal for homogeneous RTTs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessPrediction {
    /// Jain's index of the no-attack (`1/RTT`) shares.
    pub baseline: f64,
    /// Jain's index of the under-attack (`1/RTT²`) shares.
    pub under_attack: f64,
}

/// Computes both predicted indices for a population.
pub fn predicted_fairness(victims: &VictimSet) -> FairnessPrediction {
    FairnessPrediction {
        baseline: jain_index(&baseline_shares(victims)),
        under_attack: jain_index(&attack_shares(victims)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::VictimSet;

    #[test]
    fn jain_basics() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[3.0, 3.0]), 1.0);
        assert!((jain_index(&[1.0, 0.0]) - 0.5).abs() < 1e-12);
        // Order invariance.
        assert_eq!(jain_index(&[1.0, 2.0, 3.0]), jain_index(&[3.0, 1.0, 2.0]));
    }

    #[test]
    fn shares_sum_to_one() {
        let v = VictimSet::paper_ns2(15);
        let a: f64 = attack_shares(&v).iter().sum();
        let b: f64 = baseline_shares(&v).iter().sum();
        assert!((a - 1.0).abs() < 1e-9);
        assert!((b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn attack_concentrates_on_short_rtts() {
        let v = VictimSet::paper_ns2(15);
        let attack = attack_shares(&v);
        let base = baseline_shares(&v);
        // The shortest-RTT flow gains share under attack; the longest
        // loses.
        assert!(attack[0] > base[0]);
        assert!(attack[14] < base[14]);
    }

    #[test]
    fn attack_lowers_predicted_fairness_for_heterogeneous_rtts() {
        let v = VictimSet::paper_ns2(25);
        let p = predicted_fairness(&v);
        assert!(
            p.under_attack < p.baseline,
            "1/RTT² skew must be less fair than 1/RTT: {p:?}"
        );
        // Homogeneous RTTs: both perfectly fair.
        let homo = VictimSet::new(1.0, 0.5, 2.0, 1000.0, 15e6, vec![0.2; 10]).unwrap();
        let ph = predicted_fairness(&homo);
        assert!((ph.baseline - 1.0).abs() < 1e-12);
        assert!((ph.under_attack - 1.0).abs() < 1e-12);
    }

    proptest::proptest! {
        /// Jain's index always lies in [1/n, 1].
        #[test]
        fn prop_jain_bounded(xs in proptest::collection::vec(0.0f64..1e6, 1..50)) {
            let j = jain_index(&xs);
            proptest::prop_assert!(j <= 1.0 + 1e-12);
            proptest::prop_assert!(j >= 1.0 / xs.len() as f64 - 1e-12);
        }

        /// Scaling all allocations leaves the index unchanged.
        #[test]
        fn prop_jain_scale_invariant(xs in proptest::collection::vec(0.1f64..100.0, 2..30),
                                     k in 0.1f64..50.0) {
            let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
            proptest::prop_assert!((jain_index(&xs) - jain_index(&scaled)).abs() < 1e-9);
        }
    }
}
