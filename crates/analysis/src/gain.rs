//! The attack-gain objective family of §3 (Eq. 5):
//! `G_attack(γ) = Γ(γ) · (1 − γ)^κ = (1 − C_Ψ/γ)(1 − γ)^κ`.

use crate::model::degradation;
use std::fmt;

/// How an attacker weighs damage against exposure — the exponent κ of the
/// risk factor `(1 − γ)^κ` (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskPreference {
    kappa: f64,
}

/// The qualitative class of a risk preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RiskClass {
    /// `κ > 1`: increasingly reluctant to raise the attack rate.
    Averse,
    /// `κ = 1`.
    Neutral,
    /// `0 <= κ < 1`: damage matters more than concealment.
    Loving,
}

impl RiskPreference {
    /// The risk-neutral preference (κ = 1).
    pub const NEUTRAL: RiskPreference = RiskPreference { kappa: 1.0 };

    /// Creates a preference with the given exponent.
    ///
    /// # Errors
    ///
    /// Returns a message when `kappa` is negative or not finite.
    pub fn new(kappa: f64) -> Result<Self, String> {
        if !(kappa >= 0.0 && kappa.is_finite()) {
            return Err(format!("kappa must be finite and >= 0, got {kappa}"));
        }
        Ok(RiskPreference { kappa })
    }

    /// The exponent κ.
    pub fn kappa(self) -> f64 {
        self.kappa
    }

    /// Qualitative class.
    pub fn class(self) -> RiskClass {
        if self.kappa > 1.0 {
            RiskClass::Averse
        } else if self.kappa == 1.0 {
            RiskClass::Neutral
        } else {
            RiskClass::Loving
        }
    }

    /// The risk factor `(1 − γ)^κ` for `γ ∈ [0, 1]` (Fig. 4's curves).
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `[0, 1]`.
    pub fn factor(self, gamma: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&gamma),
            "gamma must be in [0,1], got {gamma}"
        );
        (1.0 - gamma).powf(self.kappa)
    }
}

impl fmt::Display for RiskPreference {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self.class() {
            RiskClass::Averse => "risk-averse",
            RiskClass::Neutral => "risk-neutral",
            RiskClass::Loving => "risk-loving",
        };
        write!(f, "{label}(κ={})", self.kappa)
    }
}

/// Eq. (5): the attack gain `G = (1 − C_Ψ/γ)(1 − γ)^κ`, with Γ clamped to
/// `[0, 1]` like [`degradation`].
pub fn attack_gain(gamma: f64, c_psi: f64, risk: RiskPreference) -> f64 {
    if gamma <= 0.0 {
        return 0.0;
    }
    let gamma_c = gamma.min(1.0);
    degradation(gamma_c, c_psi) * risk.factor(gamma_c)
}

/// The gain computed from a *measured* degradation (how the experiments
/// plot simulation points onto the analytical axes):
/// `G = Γ_measured · (1 − γ)^κ`.
pub fn attack_gain_measured(gamma: f64, measured_degradation: f64, risk: RiskPreference) -> f64 {
    measured_degradation.clamp(0.0, 1.0) * risk.factor(gamma.clamp(0.0, 1.0))
}

/// Samples the analytical gain curve at `n` evenly spaced γ values in
/// `(0, 1)` — one row per point, as the figures plot them.
pub fn gain_curve(c_psi: f64, risk: RiskPreference, n: usize) -> Vec<(f64, f64)> {
    (1..=n)
        .map(|i| {
            let gamma = i as f64 / (n + 1) as f64;
            (gamma, attack_gain(gamma, c_psi, risk))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_kappa() {
        assert_eq!(RiskPreference::new(2.0).unwrap().class(), RiskClass::Averse);
        assert_eq!(
            RiskPreference::new(1.0).unwrap().class(),
            RiskClass::Neutral
        );
        assert_eq!(RiskPreference::new(0.5).unwrap().class(), RiskClass::Loving);
        assert_eq!(RiskPreference::new(0.0).unwrap().class(), RiskClass::Loving);
        assert_eq!(RiskPreference::NEUTRAL.kappa(), 1.0);
    }

    #[test]
    fn invalid_kappa_rejected() {
        assert!(RiskPreference::new(-1.0).is_err());
        assert!(RiskPreference::new(f64::NAN).is_err());
        assert!(RiskPreference::new(f64::INFINITY).is_err());
    }

    #[test]
    fn factor_limits_match_fig4() {
        // κ -> 0: attacker ignores risk entirely; factor -> 1 everywhere.
        let flood = RiskPreference::new(0.0).unwrap();
        assert_eq!(flood.factor(0.9), 1.0);
        // Large κ: factor collapses quickly.
        let paranoid = RiskPreference::new(50.0).unwrap();
        assert!(paranoid.factor(0.2) < 1e-4);
        // Risk-averse curve lies below risk-loving for interior γ.
        let averse = RiskPreference::new(3.0).unwrap();
        let loving = RiskPreference::new(0.3).unwrap();
        for g in [0.1, 0.5, 0.9] {
            assert!(averse.factor(g) < RiskPreference::NEUTRAL.factor(g));
            assert!(RiskPreference::NEUTRAL.factor(g) < loving.factor(g));
        }
    }

    #[test]
    #[should_panic(expected = "gamma must be in [0,1]")]
    fn factor_rejects_out_of_range() {
        RiskPreference::NEUTRAL.factor(1.5);
    }

    #[test]
    fn gain_is_zero_at_both_extremes() {
        let risk = RiskPreference::NEUTRAL;
        assert_eq!(attack_gain(0.0, 0.1, risk), 0.0);
        // γ = C_Ψ: Γ = 0.
        assert_eq!(attack_gain(0.1, 0.1, risk), 0.0);
        // γ = 1: risk factor 0 for κ > 0.
        assert_eq!(attack_gain(1.0, 0.1, risk), 0.0);
    }

    #[test]
    fn gain_positive_in_interior() {
        let risk = RiskPreference::NEUTRAL;
        let g = attack_gain(0.4, 0.1, risk);
        assert!(g > 0.0 && g < 1.0);
        // Hand check: (1 - 0.25)(0.6) = 0.45.
        assert!((g - 0.45).abs() < 1e-12);
    }

    #[test]
    fn measured_gain_uses_simulated_degradation() {
        let risk = RiskPreference::NEUTRAL;
        assert!((attack_gain_measured(0.5, 0.8, risk) - 0.4).abs() < 1e-12);
        // Clamps wild inputs.
        assert_eq!(attack_gain_measured(0.5, 1.5, risk), 0.5);
        assert_eq!(attack_gain_measured(0.5, -0.2, risk), 0.0);
    }

    #[test]
    fn curve_has_requested_resolution() {
        let curve = gain_curve(0.1, RiskPreference::NEUTRAL, 9);
        assert_eq!(curve.len(), 9);
        assert!((curve[0].0 - 0.1).abs() < 1e-12);
        assert!((curve[8].0 - 0.9).abs() < 1e-12);
        assert!(curve.iter().all(|&(_, g)| (0.0..=1.0).contains(&g)));
    }

    #[test]
    fn display_names_class() {
        assert!(RiskPreference::new(2.0)
            .unwrap()
            .to_string()
            .contains("risk-averse"));
        assert!(RiskPreference::NEUTRAL.to_string().contains("risk-neutral"));
        assert!(RiskPreference::new(0.1)
            .unwrap()
            .to_string()
            .contains("risk-loving"));
    }

    proptest::proptest! {
        /// Gain is bounded in [0, 1] over the whole domain.
        #[test]
        fn prop_gain_bounded(gamma in 0.0f64..1.0, c in 0.0f64..1.0, kappa in 0.0f64..10.0) {
            let risk = RiskPreference::new(kappa).unwrap();
            let g = attack_gain(gamma, c, risk);
            proptest::prop_assert!((0.0..=1.0).contains(&g));
        }

        /// For κ = 0 the gain is monotone non-decreasing in γ (pure damage
        /// maximizer, Corollary 2's limit).
        #[test]
        fn prop_kappa_zero_monotone(c in 0.01f64..0.9, i in 1usize..50) {
            let risk = RiskPreference::new(0.0).unwrap();
            let g1 = i as f64 / 51.0;
            let g2 = (i + 1) as f64 / 51.0;
            proptest::prop_assert!(attack_gain(g2, c, risk) >= attack_gain(g1, c, risk) - 1e-12);
        }
    }
}
