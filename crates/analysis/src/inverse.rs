//! Inverse (defender-side) inference: read the attacker's dial settings
//! back out of observed traffic.
//!
//! The forward model maps `(C_Ψ, κ) → γ*`. A defender observing an attack
//! can measure `γ` (the normalized average attack rate) and `Γ` (the
//! throughput degradation). Assuming the attacker plays the paper's
//! optimum, those observations invert to the damage constant and the risk
//! exponent — i.e. *how risk-averse this attacker is* — which in turn
//! predicts how they will respond to a defense that changes `C_Ψ`.

use crate::gain::RiskPreference;
use crate::optimize::gamma_star;

/// Recovers the resilience constant from one measured operating point using
/// Prop. 2: `Γ = 1 − C_Ψ/γ  ⇒  C_Ψ = γ·(1 − Γ)`.
///
/// # Panics
///
/// Panics unless `0 < gamma <= 1` and `0 <= degradation <= 1`.
///
/// # Examples
///
/// ```
/// use pdos_analysis::inverse::c_psi_from_observation;
///
/// // γ = 0.4 with 75% degradation implies C_Ψ = 0.1.
/// assert!((c_psi_from_observation(0.4, 0.75) - 0.1).abs() < 1e-12);
/// ```
pub fn c_psi_from_observation(gamma: f64, degradation: f64) -> f64 {
    assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0,1]");
    assert!(
        (0.0..=1.0).contains(&degradation),
        "degradation must be in [0,1]"
    );
    gamma * (1.0 - degradation)
}

/// Infers the risk exponent κ of an attacker assumed to operate at the
/// Prop. 3 optimum `γ* = γ`.
///
/// From the stationarity condition `κγ² + C_Ψ(1−κ)γ − C_Ψ = 0`:
///
/// ```text
/// κ = C_Ψ·(1 − γ) / (γ·(γ − C_Ψ))
/// ```
///
/// Returns `None` when the observation is inconsistent with an optimizing
/// attacker (`γ <= C_Ψ` — the operating point causes no modelled damage —
/// or `γ >= 1`).
///
/// # Examples
///
/// ```
/// use pdos_analysis::inverse::infer_kappa;
/// use pdos_analysis::optimize::gamma_star;
/// use pdos_analysis::gain::RiskPreference;
///
/// // Forward: a κ = 2 attacker picks γ*. Inverse: recover κ = 2.
/// let risk = RiskPreference::new(2.0).unwrap();
/// let gamma = gamma_star(0.15, risk);
/// let kappa = infer_kappa(gamma, 0.15).unwrap();
/// assert!((kappa - 2.0).abs() < 1e-9);
/// ```
pub fn infer_kappa(gamma: f64, c_psi: f64) -> Option<f64> {
    if !(gamma > c_psi && gamma < 1.0 && c_psi > 0.0) {
        return None;
    }
    Some(c_psi * (1.0 - gamma) / (gamma * (gamma - c_psi)))
}

/// A defender-side profile of an observed (assumed-optimal) attacker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackerProfile {
    /// The resilience constant implied by the observation.
    pub c_psi: f64,
    /// The inferred risk exponent.
    pub kappa: f64,
    /// Where the attacker would move if a defense multiplied `C_Ψ` by
    /// `defense_factor` (> 1 = the defense made the victims more
    /// resilient): the new γ*. A good defense pushes this up, toward
    /// detectability.
    pub gamma_after_defense: f64,
}

/// Profiles an attacker from one measured operating point and predicts
/// its response to a defense scaling `C_Ψ` by `defense_factor`.
///
/// Returns `None` when the observation is inconsistent with an optimizing
/// attacker, or the post-defense `C_Ψ` leaves the model's domain.
pub fn profile_attacker(
    gamma: f64,
    degradation: f64,
    defense_factor: f64,
) -> Option<AttackerProfile> {
    if !(defense_factor > 0.0 && defense_factor.is_finite()) {
        return None;
    }
    let c_psi = c_psi_from_observation(gamma, degradation);
    let kappa = infer_kappa(gamma, c_psi)?;
    let c_after = c_psi * defense_factor;
    if !(0.0 < c_after && c_after < 1.0) {
        return None;
    }
    let risk = RiskPreference::new(kappa).ok()?;
    Some(AttackerProfile {
        c_psi,
        kappa,
        gamma_after_defense: gamma_star(c_after, risk),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gain::RiskPreference;
    use crate::model::degradation;

    #[test]
    fn c_psi_inversion_is_exact() {
        for c in [0.05, 0.2, 0.6] {
            for gamma in [0.3, 0.5, 0.9] {
                if gamma <= c {
                    continue;
                }
                let d = degradation(gamma, c);
                assert!((c_psi_from_observation(gamma, d) - c).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn kappa_roundtrips_through_the_optimum() {
        for c in [0.04, 0.15, 0.5] {
            for kappa in [0.3, 1.0, 2.5, 7.0] {
                let risk = RiskPreference::new(kappa).unwrap();
                let g = gamma_star(c, risk);
                let back = infer_kappa(g, c).expect("optimal point is invertible");
                assert!(
                    (back - kappa).abs() < 1e-6,
                    "C={c} kappa={kappa}: inferred {back}"
                );
            }
        }
    }

    #[test]
    fn neutral_attacker_detected_from_sqrt_point() {
        // γ = sqrt(C): Corollary 3's signature.
        let c = 0.09f64;
        let k = infer_kappa(c.sqrt(), c).unwrap();
        assert!((k - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inconsistent_observations_rejected() {
        assert_eq!(infer_kappa(0.1, 0.2), None); // gamma below C_Ψ
        assert_eq!(infer_kappa(1.0, 0.2), None); // flooding: not interior
        assert_eq!(infer_kappa(0.5, 0.0), None); // no damage constant
    }

    #[test]
    fn defense_prediction_moves_gamma_up() {
        // A defense that raises the victims' resilience constant (e.g.
        // admitting fast-recovering short-RTT flows, or raising `a`)
        // forces the optimizing attacker to be louder: for κ = 1,
        // γ* = sqrt(C_Ψ), so scaling C_Ψ by 4 doubles γ* — pushing the
        // attack toward the rate detector's alarm region.
        let c = 0.09f64;
        let gamma = c.sqrt(); // neutral optimum: 0.3
        let d = degradation(gamma, c);
        let profile = profile_attacker(gamma, d, 4.0).unwrap();
        assert!((profile.kappa - 1.0).abs() < 1e-9);
        assert!((profile.gamma_after_defense - 0.6).abs() < 1e-9);
    }

    #[test]
    fn degenerate_defense_factors_rejected() {
        let c = 0.09f64;
        let gamma = c.sqrt();
        let d = degradation(gamma, c);
        assert!(profile_attacker(gamma, d, 0.0).is_none());
        assert!(profile_attacker(gamma, d, f64::INFINITY).is_none());
        // Factor pushing C_Ψ past 1 leaves the model.
        assert!(profile_attacker(gamma, d, 20.0).is_none());
    }

    proptest::proptest! {
        /// Inference is the exact inverse of optimization across the
        /// domain.
        #[test]
        fn prop_inverse_of_forward(c in 0.01f64..0.9, kappa in 0.05f64..10.0) {
            let risk = RiskPreference::new(kappa).unwrap();
            let g = gamma_star(c, risk);
            if let Some(back) = infer_kappa(g, c) {
                proptest::prop_assert!((back - kappa).abs() / kappa < 1e-6);
            } else {
                proptest::prop_assert!(false, "optimal point must be invertible");
            }
        }
    }
}
