//! # pdos-analysis — the analytical core of the DSN 2005 PDoS paper
//!
//! Dependency-free implementations of every equation in Luo & Chang,
//! *"Optimizing the Pulsing Denial-of-Service Attacks"* (DSN 2005):
//!
//! | Paper | Here |
//! |---|---|
//! | Eq. (1) converged window | [`model::converged_window`] |
//! | Prop. 1 (Eq. 2) throughput under attack | [`model::throughput_under_attack_per_flow`] |
//! | Eq. (4)/(7) normalized rate γ | [`model::gamma_from_mu`] |
//! | Eq. (5) attack gain | [`gain::attack_gain`] |
//! | Lemma 1 (Eq. 8) | [`model::psi_normal`] |
//! | Lemma 2 (Eq. 9) | [`model::psi_attack`] |
//! | Prop. 2 (Eq. 10–11) | [`model::degradation`], [`model::c_psi`] |
//! | Prop. 3 (Eq. 13) + Cor. 1–3 | [`optimize::gamma_star`] |
//! | Prop. 4 (Eq. 16), Cor. 4 (Eq. 17–18) | [`optimize::mu_optimal`], [`optimize::mu_optimal_neutral`], [`model::c_victim`] |
//! | §2.3 PAA / synchronization | [`timeseries`], [`period`] |
//! | §5 timeout extension (future work) | [`timeout_ext`] |
//! | shrew baseline (Kuzmanovic & Knightly) | [`shrew_model`] |
//! | defender-side inference (extension) | [`inverse`] |
//! | defense sensitivity analysis (extension) | [`sensitivity`] |
//!
//! The intended consumer is a **defender**: given a population of TCP
//! flows, these formulas say how much damage a pulsing attacker can do at
//! a given average-rate budget — i.e. what a rate-based detector must be
//! able to see — and where the attacker's optimal operating point lies.
//!
//! ## Example: solve the paper's running optimization
//!
//! ```
//! use pdos_analysis::prelude::*;
//!
//! // 25 victim flows from the ns-2 setup; 75 ms pulses at 30 Mbps.
//! let victims = VictimSet::paper_ns2(25);
//! let sol = solve(&victims, 0.075, 30e6, RiskPreference::NEUTRAL)?;
//! // Corollary 3: γ* = sqrt(C_Ψ).
//! let c = c_psi(&victims, 0.075, 30e6)?;
//! assert!((sol.gamma_star - c.sqrt()).abs() < 1e-12);
//! # Ok::<(), pdos_analysis::params::ParamError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fairness;
pub mod gain;
pub mod inverse;
pub mod model;
pub mod optimize;
pub mod params;
pub mod period;
pub mod sensitivity;
pub mod shrew_model;
pub mod timeout_ext;
pub mod timeseries;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::fairness::{
        attack_shares, baseline_shares, jain_index, predicted_fairness, FairnessPrediction,
    };
    pub use crate::gain::{
        attack_gain, attack_gain_measured, gain_curve, RiskClass, RiskPreference,
    };
    pub use crate::inverse::{
        c_psi_from_observation, infer_kappa, profile_attacker, AttackerProfile,
    };
    pub use crate::model::{
        c_psi, c_victim, converged_window, degradation, gamma_from_mu, mu_from_gamma, psi_attack,
        psi_attack_exact, psi_normal, transient_error,
    };
    pub use crate::optimize::{
        gamma_star, gamma_star_numeric, mu_optimal, mu_optimal_neutral, plan_for_degradation,
        solve, DamagePlan, OptimalAttack,
    };
    pub use crate::params::{spread_rtts, ParamError, VictimSet};
    pub use crate::period::{autocorrelation, count_peaks, dominant_lag, period_from_peak_count};
    pub use crate::sensitivity::{
        c_psi_elasticities, gamma_star_elasticity, parameter_what_if, CpsiElasticities, WhatIfRow,
    };
    pub use crate::shrew_model::{shrew_curve, shrew_degradation, shrew_throughput};
    pub use crate::timeout_ext::{FlowRegime, TimeoutModel};
    pub use crate::timeseries::{mean, paa, standardize, std_dev, zero_mean};
}
