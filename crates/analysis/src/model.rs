//! The throughput model of §2: converged window (Eq. 1), per-flow
//! throughput under attack (Proposition 1), aggregate throughput
//! (Lemmas 1–2), and normalized degradation (Proposition 2).

use crate::params::{ParamError, VictimSet};

/// Eq. (1): the congestion window a victim converges to under a
/// fixed-period attack,
/// `W̄ = a · T_AIMD / ((1 − b) · d · RTT)` (in segments).
///
/// # Examples
///
/// ```
/// // TCP (a=1, b=0.5, d=2), 2 s period, 100 ms RTT: W̄ = 20 segments.
/// let w = pdos_analysis::model::converged_window(1.0, 0.5, 2.0, 2.0, 0.1);
/// assert!((w - 20.0).abs() < 1e-12);
/// ```
pub fn converged_window(a: f64, b: f64, d: f64, t_aimd: f64, rtt: f64) -> f64 {
    a * t_aimd / ((1.0 - b) * d * rtt)
}

/// The window trajectory across attack epochs: starting from `w1`, each
/// epoch multiplies by `b` and then additive increase restores
/// `(a/d)·(T_AIMD/RTT)` segments before the next epoch:
/// `W_{n+1} = b·W_n + (a/d)·(T_AIMD/RTT)`.
///
/// Returns the first `n` window values `W_1..W_n` (values *just before*
/// each attack epoch).
pub fn window_trajectory(
    a: f64,
    b: f64,
    d: f64,
    t_aimd: f64,
    rtt: f64,
    w1: f64,
    n: usize,
) -> Vec<f64> {
    let gain_per_period = (a / d) * (t_aimd / rtt);
    let mut w = Vec::with_capacity(n);
    let mut cur = w1;
    for _ in 0..n {
        w.push(cur);
        cur = b * cur + gain_per_period;
    }
    w
}

/// The minimum number of attack pulses needed to bring the window from
/// `w1` to within `tol` (relative) of the converged value `W̄` (used as
/// `N_attack` in Proposition 1). The paper notes fewer than 10 pulses
/// suffice for standard TCP.
pub fn pulses_to_converge(
    a: f64,
    b: f64,
    d: f64,
    t_aimd: f64,
    rtt: f64,
    w1: f64,
    tol: f64,
) -> usize {
    let w_bar = converged_window(a, b, d, t_aimd, rtt);
    let mut cur = w1;
    let gain_per_period = (a / d) * (t_aimd / rtt);
    for n in 1..=1000 {
        if (cur - w_bar).abs() <= tol * w_bar.max(f64::MIN_POSITIVE) {
            return n;
        }
        cur = b * cur + gain_per_period;
    }
    1000
}

/// Proposition 1 (Eq. 2): bytes a single victim flow delivers during an
/// `N`-pulse attack, split into the transient phase (windows `w[0..]`
/// still converging) and the steady sawtooth phase.
///
/// * `w1` — window just before the first pulse (segments).
/// * `n_pulses` — total pulses `N`.
/// * `tol` — relative tolerance defining convergence for `N_attack`.
///
/// # Panics
///
/// Panics if `n_pulses` is zero.
#[allow(clippy::too_many_arguments)] // the paper's Prop. 1 parameter list
pub fn throughput_under_attack_per_flow(
    a: f64,
    b: f64,
    d: f64,
    t_aimd: f64,
    rtt: f64,
    s_packet: f64,
    w1: f64,
    n_pulses: usize,
    tol: f64,
) -> f64 {
    assert!(n_pulses > 0, "need at least one pulse");
    let n_attack = pulses_to_converge(a, b, d, t_aimd, rtt, w1, tol).min(n_pulses);
    let ratio = t_aimd / rtt;
    let w = window_trajectory(a, b, d, t_aimd, rtt, w1, n_attack);

    // Transient: N_attack - 1 free-of-attack intervals; during the i-th the
    // flow sends (b·W_i + (a/2d)·ratio)·ratio packets.
    let transient_packets: f64 = w
        .iter()
        .take(n_attack.saturating_sub(1))
        .map(|wi| (b * wi + (a / (2.0 * d)) * ratio) * ratio)
        .sum();

    // Steady: each of the remaining N - N_attack periods delivers
    // a(1+b)/(2d(1-b)) · ratio² packets.
    let steady_per_period = a * (1.0 + b) / (2.0 * d * (1.0 - b)) * ratio * ratio;
    let steady_packets = steady_per_period * (n_pulses - n_attack) as f64;

    (transient_packets + steady_packets) * s_packet
}

/// Lemma 1 (Eq. 8): aggregate bytes the victims deliver with **no** attack
/// over the same span — the flows saturate the bottleneck:
/// `Ψ_normal = R_bottle · (N−1) · T_AIMD / 8`.
pub fn psi_normal(r_bottle: f64, n_pulses: usize, t_aimd: f64) -> f64 {
    r_bottle * (n_pulses.saturating_sub(1)) as f64 * t_aimd / 8.0
}

/// Lemma 2 (Eq. 9): aggregate bytes the victim population delivers under
/// the attack, approximating every window by its converged value:
/// `Ψ_attack = a(1+b)·T_AIMD²·S_packet / (2d(1−b)) · (N−1) · Σ 1/RTT_i²`.
pub fn psi_attack(victims: &VictimSet, n_pulses: usize, t_aimd: f64) -> f64 {
    let (a, b, d) = (victims.a(), victims.b(), victims.d());
    a * (1.0 + b) * t_aimd * t_aimd * victims.s_packet() / (2.0 * d * (1.0 - b))
        * (n_pulses.saturating_sub(1)) as f64
        * victims.inv_rtt_sq_sum()
}

/// The exact aggregate of Proposition 1 across a victim population: the
/// transient-aware counterpart of Lemma 2's Eq. (9). `w1s[i]` is flow
/// `i`'s window just before the first pulse.
///
/// # Errors
///
/// Returns [`ParamError`] when `w1s` does not match the population size.
///
/// # Panics
///
/// Panics if `n_pulses` is zero (per Proposition 1).
pub fn psi_attack_exact(
    victims: &VictimSet,
    n_pulses: usize,
    t_aimd: f64,
    w1s: &[f64],
    tol: f64,
) -> Result<f64, ParamError> {
    if w1s.len() != victims.n_flows() {
        return Err(ParamError::new(format!(
            "need one initial window per flow: {} windows for {} flows",
            w1s.len(),
            victims.n_flows()
        )));
    }
    Ok(victims
        .rtts()
        .iter()
        .zip(w1s)
        .map(|(&rtt, &w1)| {
            throughput_under_attack_per_flow(
                victims.a(),
                victims.b(),
                victims.d(),
                t_aimd,
                rtt,
                victims.s_packet(),
                w1,
                n_pulses,
                tol,
            )
        })
        .sum())
}

/// The relative error of Lemma 2's steady-state approximation against the
/// exact Proposition 1 aggregate: `(Ψ_exact − Ψ_approx)/Ψ_exact`.
///
/// Positive values mean the approximation *under*-counts the victims'
/// throughput (it ignores the extra bytes sent while large initial
/// windows decay) and therefore *over*-states the degradation — the
/// paper justifies neglecting this because convergence takes under 10
/// pulses.
///
/// # Errors
///
/// Returns [`ParamError`] when `w1s` does not match the population size.
pub fn transient_error(
    victims: &VictimSet,
    n_pulses: usize,
    t_aimd: f64,
    w1s: &[f64],
) -> Result<f64, ParamError> {
    let exact = psi_attack_exact(victims, n_pulses, t_aimd, w1s, 0.02)?;
    let approx = psi_attack(victims, n_pulses, t_aimd);
    if exact <= 0.0 {
        return Ok(0.0);
    }
    Ok((exact - approx) / exact)
}

/// Eq. (11): the retained-throughput (resilience) constant
/// `C_Ψ = 4a(1+b)·T_extent·S_packet·C_attack / ((1−b)·d·R_bottle) · Σ 1/RTT_i²`,
/// where `C_attack = R_attack / R_bottle`.
///
/// The normalized degradation then reads `Γ = 1 − C_Ψ/γ` (Prop. 2):
/// `C_Ψ` is the share of their normal throughput the victims *retain*
/// per unit of normalized attack rate — larger `C_Ψ` means a more
/// resilient population.
///
/// # Errors
///
/// Returns [`ParamError`] when `t_extent` or `r_attack` is non-positive.
pub fn c_psi(victims: &VictimSet, t_extent: f64, r_attack: f64) -> Result<f64, ParamError> {
    if !(t_extent > 0.0 && t_extent.is_finite()) {
        return Err(ParamError::new("T_extent must be positive"));
    }
    if !(r_attack > 0.0 && r_attack.is_finite()) {
        return Err(ParamError::new("R_attack must be positive"));
    }
    let c_attack = r_attack / victims.r_bottle();
    Ok(c_victim(victims) * t_extent * c_attack)
}

/// Eq. (18): the victim-population constant
/// `C_victim = 4a(1+b)·S_packet / ((1−b)·d·R_bottle) · Σ 1/RTT_i²`
/// (so that `C_Ψ = C_victim · T_extent · C_attack`).
pub fn c_victim(victims: &VictimSet) -> f64 {
    4.0 * victims.a() * (1.0 + victims.b()) * victims.s_packet()
        / ((1.0 - victims.b()) * victims.d() * victims.r_bottle())
        * victims.inv_rtt_sq_sum()
}

/// Proposition 2 (Eq. 10): normalized throughput degradation
/// `Γ = 1 − C_Ψ/γ`, clamped into `[0, 1]` outside the model's domain.
pub fn degradation(gamma: f64, c_psi: f64) -> f64 {
    if gamma <= 0.0 {
        return 0.0;
    }
    (1.0 - c_psi / gamma).clamp(0.0, 1.0)
}

/// Eq. (7): `γ = C_attack / (1 + μ)` with `μ = T_space / T_extent`.
pub fn gamma_from_mu(c_attack: f64, mu: f64) -> f64 {
    c_attack / (1.0 + mu)
}

/// Inverts Eq. (7): the `μ` achieving a target `γ`.
///
/// # Panics
///
/// Panics if `gamma` is non-positive.
pub fn mu_from_gamma(c_attack: f64, gamma: f64) -> f64 {
    assert!(gamma > 0.0, "gamma must be positive");
    c_attack / gamma - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn victims() -> VictimSet {
        VictimSet::paper_ns2(15)
    }

    #[test]
    fn eq1_matches_hand_computation() {
        // a=1, b=0.5, d=2: W̄ = T/(1·RTT) = T_AIMD/RTT.
        assert!((converged_window(1.0, 0.5, 2.0, 2.0, 0.2) - 10.0).abs() < 1e-12);
        // Larger b (gentler decrease) -> larger converged window.
        assert!(
            converged_window(1.0, 0.875, 2.0, 2.0, 0.2) > converged_window(1.0, 0.5, 2.0, 2.0, 0.2)
        );
    }

    #[test]
    fn trajectory_converges_to_eq1_fixed_point() {
        let (a, b, d, t, rtt) = (1.0, 0.5, 2.0, 2.0, 0.1);
        let w_bar = converged_window(a, b, d, t, rtt);
        let w = window_trajectory(a, b, d, t, rtt, 100.0, 50);
        assert!(
            (w[49] - w_bar).abs() < 1e-6,
            "W_50 = {} vs W̄ = {}",
            w[49],
            w_bar
        );
        // Fixed point is invariant.
        let w2 = window_trajectory(a, b, d, t, rtt, w_bar, 5);
        assert!(w2.iter().all(|wi| (wi - w_bar).abs() < 1e-9));
    }

    #[test]
    fn convergence_takes_few_pulses_for_tcp() {
        // The paper: fewer than 10 pulses for typical TCP.
        let n = pulses_to_converge(1.0, 0.5, 2.0, 2.0, 0.1, 100.0, 0.05);
        assert!(n <= 10, "took {n} pulses");
    }

    #[test]
    fn prop1_reduces_to_steady_formula_when_started_converged() {
        let (a, b, d, t, rtt, s) = (1.0, 0.5, 2.0, 2.0, 0.1, 1000.0);
        let w_bar = converged_window(a, b, d, t, rtt);
        let n = 101;
        let psi = throughput_under_attack_per_flow(a, b, d, t, rtt, s, w_bar, n, 0.01);
        let steady = a * (1.0 + b) / (2.0 * d * (1.0 - b)) * (t / rtt).powi(2) * (n - 1) as f64 * s;
        let rel = (psi - steady).abs() / steady;
        assert!(rel < 0.02, "psi {psi} vs steady {steady}");
    }

    #[test]
    fn prop1_transient_adds_throughput_for_large_initial_window() {
        let (a, b, d, t, rtt, s) = (1.0, 0.5, 2.0, 2.0, 0.1, 1000.0);
        let w_bar = converged_window(a, b, d, t, rtt);
        let from_converged = throughput_under_attack_per_flow(a, b, d, t, rtt, s, w_bar, 100, 0.01);
        let from_large =
            throughput_under_attack_per_flow(a, b, d, t, rtt, s, 10.0 * w_bar, 100, 0.01);
        assert!(from_large > from_converged);
    }

    #[test]
    fn lemma1_linear_in_pulses_and_rate() {
        assert_eq!(psi_normal(15e6, 31, 2.0), 15e6 * 30.0 * 2.0 / 8.0);
        assert_eq!(psi_normal(15e6, 1, 2.0), 0.0);
    }

    #[test]
    fn lemma2_scales_with_period_squared() {
        let v = victims();
        let one = psi_attack(&v, 31, 1.0);
        let two = psi_attack(&v, 31, 2.0);
        assert!((two / one - 4.0).abs() < 1e-9);
    }

    #[test]
    fn prop2_consistency_gamma_formulation() {
        // Γ computed from Eq. (10) must equal 1 - Ψ_attack/Ψ_normal when
        // T_AIMD is chosen from γ.
        let v = victims();
        let (t_extent, r_attack) = (0.075, 30e6);
        let c = c_psi(&v, t_extent, r_attack).unwrap();
        for gamma in [0.2, 0.4, 0.6, 0.8] {
            let t_aimd = r_attack * t_extent / (v.r_bottle() * gamma);
            let direct = 1.0 - psi_attack(&v, 101, t_aimd) / psi_normal(v.r_bottle(), 101, t_aimd);
            let via_c = degradation(gamma, c);
            assert!(
                (direct - via_c).abs() < 1e-9,
                "gamma={gamma}: direct {direct} vs via_c {via_c}"
            );
        }
    }

    #[test]
    fn c_psi_composition_matches_eq18() {
        let v = victims();
        let c = c_psi(&v, 0.05, 25e6).unwrap();
        let composed = c_victim(&v) * 0.05 * (25e6 / 15e6);
        assert!((c - composed).abs() < 1e-12);
    }

    #[test]
    fn c_psi_rejects_bad_inputs() {
        let v = victims();
        assert!(c_psi(&v, 0.0, 25e6).is_err());
        assert!(c_psi(&v, 0.05, 0.0).is_err());
        assert!(c_psi(&v, -0.05, 25e6).is_err());
    }

    #[test]
    fn degradation_clamps() {
        assert_eq!(degradation(0.5, 0.1), 0.8);
        assert_eq!(degradation(0.05, 0.1), 0.0); // C_Ψ > γ: model says no damage
        assert_eq!(degradation(0.0, 0.1), 0.0);
        assert_eq!(degradation(1.0, 0.0), 1.0);
    }

    #[test]
    fn gamma_mu_roundtrip() {
        let c_attack = 30e6 / 15e6;
        for mu in [0.5, 1.0, 10.0, 39.0] {
            let g = gamma_from_mu(c_attack, mu);
            assert!((mu_from_gamma(c_attack, g) - mu).abs() < 1e-9);
        }
    }

    #[test]
    fn more_flows_increase_c_psi() {
        let few = c_psi(&VictimSet::paper_ns2(15), 0.05, 25e6).unwrap();
        let many = c_psi(&VictimSet::paper_ns2(45), 0.05, 25e6).unwrap();
        assert!(many > few);
    }

    #[test]
    fn exact_aggregate_matches_lemma2_when_started_converged() {
        let v = victims();
        let t_aimd = 1.5;
        let w1s: Vec<f64> = v
            .rtts()
            .iter()
            .map(|&rtt| converged_window(v.a(), v.b(), v.d(), t_aimd, rtt))
            .collect();
        let err = transient_error(&v, 101, t_aimd, &w1s).unwrap();
        assert!(
            err.abs() < 0.03,
            "starting converged, the approximation is near-exact: {err}"
        );
    }

    #[test]
    fn transient_error_decays_with_pulse_count() {
        // Starting from big pre-attack windows, the steady-state
        // approximation under-counts the transient extra bytes; the error
        // washes out as 1/N.
        let v = victims();
        let t_aimd = 1.0;
        let w1s = vec![60.0; v.n_flows()];
        let short = transient_error(&v, 10, t_aimd, &w1s).unwrap();
        let long = transient_error(&v, 200, t_aimd, &w1s).unwrap();
        assert!(short > 0.0, "short attacks under-count: {short}");
        assert!(
            long < short / 3.0,
            "error must wash out with N: {short} -> {long}"
        );
    }

    #[test]
    fn exact_aggregate_validates_window_count() {
        let v = victims();
        assert!(psi_attack_exact(&v, 10, 1.0, &[10.0], 0.02).is_err());
    }

    proptest::proptest! {
        /// Γ is non-increasing in C_Ψ and non-decreasing in γ.
        #[test]
        fn prop_degradation_monotone(gamma in 0.01f64..1.0, c1 in 0.0f64..1.0, c2 in 0.0f64..1.0) {
            let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
            proptest::prop_assert!(degradation(gamma, lo) >= degradation(gamma, hi));
            let g2 = (gamma + 0.1).min(1.0);
            proptest::prop_assert!(degradation(g2, c1) >= degradation(gamma, c1));
        }

        /// The window trajectory is monotone toward the fixed point from
        /// either side.
        #[test]
        fn prop_trajectory_monotone(w1 in 0.1f64..200.0) {
            let (a, b, d, t, rtt) = (1.0, 0.5, 2.0, 1.0, 0.1);
            let w_bar = converged_window(a, b, d, t, rtt);
            let w = window_trajectory(a, b, d, t, rtt, w1, 30);
            for pair in w.windows(2) {
                let (x, y) = (pair[0], pair[1]);
                if x < w_bar {
                    proptest::prop_assert!(y >= x - 1e-12 && y <= w_bar + 1e-9);
                } else {
                    proptest::prop_assert!(y <= x + 1e-12 && y >= w_bar - 1e-9);
                }
            }
        }
    }
}
