//! The optimization results of §3.2: the optimal normalized rate γ*
//! (Proposition 3, Corollaries 1–3) and the optimal duty-cycle reciprocal
//! μ* (Proposition 4, Corollary 4).

use crate::gain::{attack_gain, RiskPreference};
use crate::model::{c_victim, mu_from_gamma};
use crate::params::{ParamError, VictimSet};

/// Proposition 3 (Eq. 13): the gain-maximizing normalized rate
///
/// ```text
///        C_Ψ(1−κ) − sqrt(C_Ψ²(1−κ)² + 4κC_Ψ)
/// γ*  =  ------------------------------------
///                        −2κ
/// ```
///
/// evaluated in the numerically stable rationalized form
/// `γ* = 2C_Ψ / (sqrt(C_Ψ²(1−κ)² + 4κC_Ψ) + C_Ψ(1−κ))`, which also gives
/// the right limits: κ → 0 yields 1 (Corollary 2) and κ → ∞ yields C_Ψ
/// (Corollary 1). κ = 1 reduces to `sqrt(C_Ψ)` (Corollary 3).
///
/// # Panics
///
/// Panics if `c_psi` is outside `(0, 1)` — Proposition 2 requires it.
///
/// # Examples
///
/// ```
/// use pdos_analysis::optimize::gamma_star;
/// use pdos_analysis::gain::RiskPreference;
///
/// let g = gamma_star(0.09, RiskPreference::NEUTRAL);
/// assert!((g - 0.3).abs() < 1e-12); // sqrt(0.09)
/// ```
pub fn gamma_star(c_psi: f64, risk: RiskPreference) -> f64 {
    assert!(
        c_psi > 0.0 && c_psi < 1.0,
        "C_Ψ must be in (0,1), got {c_psi}"
    );
    let kappa = risk.kappa();
    if kappa == 0.0 {
        // Corollary 2's limit: the pure damage maximizer floods.
        return 1.0;
    }
    let t = c_psi * (1.0 - kappa);
    let disc = (t * t + 4.0 * kappa * c_psi).sqrt();
    2.0 * c_psi / (disc + t)
}

/// Brute-force verification of Proposition 3: grid search of the gain over
/// `(C_Ψ, 1)` with `n` points. Used by tests and as an independent check
/// for exotic κ.
pub fn gamma_star_numeric(c_psi: f64, risk: RiskPreference, n: usize) -> f64 {
    assert!(n >= 3, "need at least 3 grid points");
    let lo = c_psi.max(1e-9);
    let hi = 1.0;
    let mut best = (lo, f64::MIN);
    for i in 0..=n {
        let gamma = lo + (hi - lo) * i as f64 / n as f64;
        let g = attack_gain(gamma, c_psi, risk);
        if g > best.1 {
            best = (gamma, g);
        }
    }
    best.0
}

/// Proposition 4 (Eq. 16): the optimal `μ* = T_space/T_extent` given the
/// pulse height ratio `C_attack = R_attack/R_bottle`:
/// `μ* = C_attack/γ* − 1`.
///
/// # Panics
///
/// Panics if `c_psi` is outside `(0, 1)` or `c_attack` is non-positive.
pub fn mu_optimal(c_attack: f64, c_psi: f64, risk: RiskPreference) -> f64 {
    assert!(c_attack > 0.0, "C_attack must be positive");
    mu_from_gamma(c_attack, gamma_star(c_psi, risk))
}

/// Corollary 4 (Eq. 17): for a risk-neutral attacker,
/// `μ* = sqrt(C_attack / (T_extent · C_victim)) − 1`.
///
/// # Errors
///
/// Returns [`ParamError`] when `t_extent` or `r_attack` is non-positive.
pub fn mu_optimal_neutral(
    victims: &VictimSet,
    t_extent: f64,
    r_attack: f64,
) -> Result<f64, ParamError> {
    if !(t_extent > 0.0 && t_extent.is_finite()) {
        return Err(ParamError::new("T_extent must be positive"));
    }
    if !(r_attack > 0.0 && r_attack.is_finite()) {
        return Err(ParamError::new("R_attack must be positive"));
    }
    let c_attack = r_attack / victims.r_bottle();
    Ok((c_attack / (t_extent * c_victim(victims))).sqrt() - 1.0)
}

/// A fully solved optimal attack: the γ*, the μ*, the implied period and
/// the predicted gain, bundled for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalAttack {
    /// The optimal normalized average rate.
    pub gamma_star: f64,
    /// The optimal `T_space/T_extent`.
    pub mu_star: f64,
    /// The implied attack period `T_AIMD = (1 + μ*)·T_extent`, seconds.
    pub period: f64,
    /// The analytical gain at the optimum.
    pub gain: f64,
    /// The analytical degradation Γ at the optimum.
    pub degradation: f64,
}

/// Solves the full §3.2 problem for a concrete victim set, pulse width and
/// pulse rate.
///
/// # Errors
///
/// Returns [`ParamError`] when the parameters leave the model's domain
/// (including `C_Ψ >= 1`, where no damaging-yet-stealthy attack exists).
pub fn solve(
    victims: &VictimSet,
    t_extent: f64,
    r_attack: f64,
    risk: RiskPreference,
) -> Result<OptimalAttack, ParamError> {
    let c_psi = crate::model::c_psi(victims, t_extent, r_attack)?;
    if c_psi >= 1.0 {
        return Err(ParamError::new(format!(
            "C_Ψ = {c_psi:.4} >= 1: the model predicts no feasible gain for these parameters"
        )));
    }
    let c_attack = r_attack / victims.r_bottle();
    let gs = gamma_star(c_psi, risk);
    let mu = mu_from_gamma(c_attack, gs);
    Ok(OptimalAttack {
        gamma_star: gs,
        mu_star: mu,
        period: (1.0 + mu) * t_extent,
        gain: attack_gain(gs, c_psi, risk),
        degradation: crate::model::degradation(gs, c_psi),
    })
}

/// The damage dial of the paper's introduction: PDoS "can cause
/// different levels of damage, ranging from degradation-of-service to
/// absolute denial-of-service". Given a *target* degradation, this
/// returns the quietest attack achieving it and the exposure it costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DamagePlan {
    /// The minimal normalized average rate achieving the target
    /// (`γ = C_Ψ/(1 − Γ_target)`, from inverting Prop. 2).
    pub gamma: f64,
    /// The pulse spacing `μ = T_space/T_extent` realizing that γ.
    pub mu: f64,
    /// The implied attack period, seconds.
    pub period: f64,
    /// The risk factor `(1 − γ)^κ` the attacker pays at this point — the
    /// exposure cost of the chosen damage level.
    pub exposure_factor: f64,
}

/// Solves the minimum-rate attack reaching `target_degradation` against
/// `victims` with pulses of `(t_extent, r_attack)` shape, reporting the
/// exposure a κ-attacker perceives there.
///
/// # Errors
///
/// Returns [`ParamError`] when the parameters leave the model's domain or
/// the target is infeasible for this pulse height
/// (`γ` would exceed `C_attack` — the attacker cannot pulse hard enough).
pub fn plan_for_degradation(
    victims: &VictimSet,
    t_extent: f64,
    r_attack: f64,
    target_degradation: f64,
    risk: RiskPreference,
) -> Result<DamagePlan, ParamError> {
    if !(0.0 < target_degradation && target_degradation < 1.0) {
        return Err(ParamError::new(format!(
            "target degradation must be in (0,1), got {target_degradation}"
        )));
    }
    let c = crate::model::c_psi(victims, t_extent, r_attack)?;
    let gamma = c / (1.0 - target_degradation);
    if gamma >= 1.0 {
        return Err(ParamError::new(format!(
            "target degradation {target_degradation} needs gamma = {gamma:.3} >= 1:              only a flood reaches it with these victims"
        )));
    }
    let c_attack = r_attack / victims.r_bottle();
    if gamma > c_attack {
        return Err(ParamError::new(format!(
            "gamma = {gamma:.3} exceeds C_attack = {c_attack:.3}: raise R_attack"
        )));
    }
    let mu = mu_from_gamma(c_attack, gamma);
    Ok(DamagePlan {
        gamma,
        mu,
        period: (1.0 + mu) * t_extent,
        exposure_factor: risk.factor(gamma),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn risk(kappa: f64) -> RiskPreference {
        RiskPreference::new(kappa).unwrap()
    }

    #[test]
    fn corollary3_neutral_is_sqrt() {
        for c in [0.01, 0.09, 0.25, 0.5, 0.81] {
            assert!((gamma_star(c, RiskPreference::NEUTRAL) - c.sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn corollary1_averse_limit_is_c_psi() {
        let c = 0.2;
        let g = gamma_star(c, risk(1e6));
        assert!((g - c).abs() < 1e-3, "κ→∞ limit: got {g}, want {c}");
        // Monotone: more averse -> closer to C_Ψ.
        assert!(gamma_star(c, risk(10.0)) < gamma_star(c, risk(2.0)));
    }

    #[test]
    fn corollary2_loving_limit_is_one() {
        let c = 0.2;
        assert_eq!(gamma_star(c, risk(0.0)), 1.0);
        let g = gamma_star(c, risk(1e-9));
        assert!((g - 1.0).abs() < 1e-6, "κ→0 limit: got {g}");
        // Monotone: more loving -> closer to 1.
        assert!(gamma_star(c, risk(0.1)) > gamma_star(c, risk(0.5)));
    }

    #[test]
    fn gamma_star_strictly_inside_feasible_interval() {
        for c in [0.05, 0.2, 0.5, 0.9] {
            for k in [0.25, 0.5, 1.0, 2.0, 8.0] {
                let g = gamma_star(c, risk(k));
                assert!(g > c && g < 1.0, "C_Ψ={c} κ={k}: γ*={g} outside ({c},1)");
            }
        }
    }

    #[test]
    fn closed_form_matches_grid_search() {
        for c in [0.05, 0.15, 0.4] {
            for k in [0.3, 1.0, 3.0] {
                let exact = gamma_star(c, risk(k));
                let grid = gamma_star_numeric(c, risk(k), 100_000);
                assert!(
                    (exact - grid).abs() < 1e-4,
                    "C_Ψ={c} κ={k}: closed {exact} vs grid {grid}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "C_Ψ must be in (0,1)")]
    fn gamma_star_rejects_large_c_psi() {
        gamma_star(1.2, RiskPreference::NEUTRAL);
    }

    #[test]
    fn mu_optimal_matches_corollary4_when_neutral() {
        let v = VictimSet::paper_ns2(25);
        let (t_extent, r_attack) = (0.075, 30e6);
        let c_psi = crate::model::c_psi(&v, t_extent, r_attack).unwrap();
        let via_eq16 = mu_optimal(r_attack / v.r_bottle(), c_psi, RiskPreference::NEUTRAL);
        let via_eq17 = mu_optimal_neutral(&v, t_extent, r_attack).unwrap();
        assert!(
            (via_eq16 - via_eq17).abs() < 1e-9,
            "Eq16 {via_eq16} vs Eq17 {via_eq17}"
        );
    }

    #[test]
    fn mu_optimal_neutral_validates() {
        let v = VictimSet::paper_ns2(25);
        assert!(mu_optimal_neutral(&v, 0.0, 30e6).is_err());
        assert!(mu_optimal_neutral(&v, 0.075, -1.0).is_err());
    }

    #[test]
    fn solve_bundles_consistent_results() {
        let v = VictimSet::paper_ns2(25);
        let sol = solve(&v, 0.075, 30e6, RiskPreference::NEUTRAL).unwrap();
        // Period consistency: γ* from the period must round-trip.
        let c_attack = 30e6 / v.r_bottle();
        let gamma_from_period = c_attack * 0.075 / sol.period;
        assert!((gamma_from_period - sol.gamma_star).abs() < 1e-9);
        assert!(sol.gain > 0.0 && sol.gain < 1.0);
        assert!(sol.degradation > 0.0 && sol.degradation <= 1.0);
        assert!(sol.mu_star > 0.0);
    }

    #[test]
    fn solve_rejects_hopeless_parameters() {
        // A single-flow 1 Mbps "bottleneck" with a tiny RTT makes C_Ψ huge.
        let v = VictimSet::new(1.0, 0.5, 2.0, 1500.0, 1e6, vec![0.001]).unwrap();
        assert!(solve(&v, 0.5, 10e6, RiskPreference::NEUTRAL).is_err());
    }

    #[test]
    fn risk_aversion_lowers_gamma_and_lengthens_period() {
        let v = VictimSet::paper_ns2(25);
        let neutral = solve(&v, 0.075, 30e6, RiskPreference::NEUTRAL).unwrap();
        let averse = solve(&v, 0.075, 30e6, risk(4.0)).unwrap();
        assert!(averse.gamma_star < neutral.gamma_star);
        assert!(averse.period > neutral.period);
    }

    #[test]
    fn damage_plan_inverts_prop2() {
        let v = VictimSet::paper_ns2(25);
        let (t_extent, r_attack) = (0.075, 30e6);
        // C_Ψ = 0.252 here, so Γ = 0.5 needs γ ≈ 0.5 — comfortably feasible.
        let plan =
            plan_for_degradation(&v, t_extent, r_attack, 0.5, RiskPreference::NEUTRAL).unwrap();
        // Plugging the plan's γ back into Prop. 2 returns the target.
        let c = crate::model::c_psi(&v, t_extent, r_attack).unwrap();
        let gamma_check = crate::model::degradation(plan.gamma, c);
        assert!((gamma_check - 0.5).abs() < 1e-9);
        // Period consistency with Eq. (7).
        let gamma_from_period = (r_attack / v.r_bottle()) * t_extent / plan.period;
        assert!((gamma_from_period - plan.gamma).abs() < 1e-9);
        assert!(plan.exposure_factor > 0.0 && plan.exposure_factor < 1.0);
    }

    #[test]
    fn more_damage_costs_more_exposure() {
        let v = VictimSet::paper_ns2(25);
        let plan = |target: f64| {
            plan_for_degradation(&v, 0.075, 30e6, target, RiskPreference::NEUTRAL).unwrap()
        };
        let mild = plan(0.3);
        let severe = plan(0.6);
        assert!(severe.gamma > mild.gamma);
        assert!(severe.exposure_factor < mild.exposure_factor);
        assert!(severe.period < mild.period, "more damage = tighter pulses");
    }

    #[test]
    fn infeasible_damage_targets_rejected() {
        let v = VictimSet::paper_ns2(25);
        // Γ -> 1 requires flooding (here already Γ = 0.8 needs γ > 1).
        assert!(plan_for_degradation(&v, 0.075, 30e6, 0.8, RiskPreference::NEUTRAL).is_err());
        // Degenerate targets rejected outright.
        assert!(plan_for_degradation(&v, 0.075, 30e6, 0.0, RiskPreference::NEUTRAL).is_err());
        assert!(plan_for_degradation(&v, 0.075, 30e6, 1.0, RiskPreference::NEUTRAL).is_err());
        // A sub-capacity pulse (R_attack < R_bottle, C_attack = 2/3) hits
        // the duty-cycle ceiling before γ reaches 1.
        let weak = plan_for_degradation(&v, 0.030, 10e6, 0.96, RiskPreference::NEUTRAL);
        let msg = weak.unwrap_err().to_string();
        assert!(msg.contains("C_attack"), "{msg}");
    }

    proptest::proptest! {
        /// γ* is a stationary point: gain at γ* beats gain at nearby points.
        #[test]
        fn prop_gamma_star_is_local_max(c in 0.02f64..0.9, k in 0.05f64..6.0) {
            let r = risk(k);
            let gs = gamma_star(c, r);
            let g0 = attack_gain(gs, c, r);
            for eps in [1e-3, 5e-3] {
                let left = (gs - eps).max(c + 1e-9);
                let right = (gs + eps).min(1.0);
                proptest::prop_assert!(attack_gain(left, c, r) <= g0 + 1e-12);
                proptest::prop_assert!(attack_gain(right, c, r) <= g0 + 1e-12);
            }
        }

        /// μ* inverts back to γ* through Eq. (7).
        #[test]
        fn prop_mu_gamma_consistency(c in 0.02f64..0.9, k in 0.1f64..5.0, c_attack in 1.0f64..10.0) {
            let r = risk(k);
            let mu = mu_optimal(c_attack, c, r);
            let gamma = crate::model::gamma_from_mu(c_attack, mu);
            proptest::prop_assert!((gamma - gamma_star(c, r)).abs() < 1e-9);
        }
    }
}
