//! Input parameters of the analytical model.
//!
//! The analysis crate is deliberately dependency-free pure math: rates are
//! plain `f64` bits-per-second, times are `f64` seconds, sizes are `f64`
//! bytes — exactly the units the paper's equations use. The `scenarios`
//! crate bridges these to the typed simulator quantities.

use std::error::Error;
use std::fmt;

/// A violation of the model's parameter domain.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamError(String);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid model parameter: {}", self.0)
    }
}

impl Error for ParamError {}

impl ParamError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        ParamError(msg.into())
    }
}

/// The victim population and protocol constants entering Eq. (9)–(11):
/// `AIMD(a, b)` senders with delayed-ACK factor `d`, packet size
/// `S_packet`, sharing a bottleneck of capacity `R_bottle`, one RTT per
/// victim flow.
///
/// # Examples
///
/// ```
/// use pdos_analysis::params::VictimSet;
///
/// // The paper's ns-2 setting: 15 NewReno flows, RTTs spread over
/// // 20..460 ms, 1000-byte packets, 15 Mbps bottleneck.
/// let victims = VictimSet::paper_ns2(15);
/// assert_eq!(victims.n_flows(), 15);
/// assert!((victims.rtts()[0] - 0.020).abs() < 1e-12);
/// assert!((victims.rtts()[14] - 0.460).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VictimSet {
    a: f64,
    b: f64,
    d: f64,
    s_packet: f64,
    r_bottle: f64,
    rtts: Vec<f64>,
}

impl VictimSet {
    /// Creates a validated victim set.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when `a <= 0`, `b` is outside `(0,1)`,
    /// `d < 1`, sizes/rates are non-positive, or any RTT is non-positive.
    pub fn new(
        a: f64,
        b: f64,
        d: f64,
        s_packet: f64,
        r_bottle: f64,
        rtts: Vec<f64>,
    ) -> Result<Self, ParamError> {
        if !(a > 0.0 && a.is_finite()) {
            return Err(ParamError::new(format!("AIMD a must be positive, got {a}")));
        }
        if !(b > 0.0 && b < 1.0) {
            return Err(ParamError::new(format!("AIMD b must be in (0,1), got {b}")));
        }
        if !(d >= 1.0 && d.is_finite()) {
            return Err(ParamError::new(format!(
                "delayed-ACK factor d must be >= 1, got {d}"
            )));
        }
        if !(s_packet > 0.0 && s_packet.is_finite()) {
            return Err(ParamError::new("packet size must be positive"));
        }
        if !(r_bottle > 0.0 && r_bottle.is_finite()) {
            return Err(ParamError::new("bottleneck rate must be positive"));
        }
        if rtts.is_empty() {
            return Err(ParamError::new("at least one victim flow required"));
        }
        if rtts.iter().any(|&r| !(r > 0.0 && r.is_finite())) {
            return Err(ParamError::new("all RTTs must be positive"));
        }
        Ok(VictimSet {
            a,
            b,
            d,
            s_packet,
            r_bottle,
            rtts,
        })
    }

    /// The paper's ns-2 population (§4.1): `n` TCP NewReno flows
    /// (`AIMD(1, 0.5)`, `d = 2`), 1000-byte packets, 15 Mbps bottleneck,
    /// RTTs evenly spread over 20–460 ms.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn paper_ns2(n: usize) -> Self {
        assert!(n > 0, "need at least one victim flow");
        let rtts = spread_rtts(n, 0.020, 0.460);
        VictimSet::new(1.0, 0.5, 2.0, 1000.0, 15e6, rtts)
            .expect("paper parameters are valid by construction")
    }

    /// The paper's test-bed population (§4.2): 10 flows through a 10 Mbps
    /// Dummynet bottleneck with 150 ms one-way delay (RTT ≈ 300 ms).
    pub fn paper_testbed() -> Self {
        VictimSet::new(1.0, 0.5, 2.0, 1000.0, 10e6, vec![0.300; 10])
            .expect("paper parameters are valid by construction")
    }

    /// AIMD additive increase `a` (segments per RTT).
    pub fn a(&self) -> f64 {
        self.a
    }

    /// AIMD multiplicative decrease `b`.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Delayed-ACK factor `d`.
    pub fn d(&self) -> f64 {
        self.d
    }

    /// Packet size in bytes.
    pub fn s_packet(&self) -> f64 {
        self.s_packet
    }

    /// Bottleneck capacity in bits per second.
    pub fn r_bottle(&self) -> f64 {
        self.r_bottle
    }

    /// Per-flow round-trip times, in seconds.
    pub fn rtts(&self) -> &[f64] {
        &self.rtts
    }

    /// Number of victim flows.
    pub fn n_flows(&self) -> usize {
        self.rtts.len()
    }

    /// `Σ 1/RTT_i²`, the victim-population weight in Eq. (9)/(11)/(18).
    pub fn inv_rtt_sq_sum(&self) -> f64 {
        self.rtts.iter().map(|r| 1.0 / (r * r)).sum()
    }
}

/// Evenly spreads `n` RTTs over `[lo, hi]` seconds (inclusive endpoints;
/// a single flow gets `lo`).
///
/// # Panics
///
/// Panics if `n` is zero or `lo > hi`.
pub fn spread_rtts(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one RTT");
    assert!(lo <= hi, "RTT range inverted");
    if n == 1 {
        return vec![lo];
    }
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_valid() {
        let v = VictimSet::paper_ns2(25);
        assert_eq!(v.n_flows(), 25);
        assert_eq!(v.a(), 1.0);
        assert_eq!(v.b(), 0.5);
        assert_eq!(v.d(), 2.0);
        assert_eq!(v.s_packet(), 1000.0);
        assert_eq!(v.r_bottle(), 15e6);
        let tb = VictimSet::paper_testbed();
        assert_eq!(tb.n_flows(), 10);
        assert_eq!(tb.r_bottle(), 10e6);
    }

    #[test]
    fn rtt_spread_endpoints() {
        let r = spread_rtts(15, 0.020, 0.460);
        assert_eq!(r.len(), 15);
        assert!((r[0] - 0.020).abs() < 1e-12);
        assert!((r[14] - 0.460).abs() < 1e-12);
        assert!(r.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(spread_rtts(1, 0.1, 0.2), vec![0.1]);
    }

    #[test]
    fn inv_rtt_sq_sum_matches_manual() {
        let v = VictimSet::new(1.0, 0.5, 2.0, 1000.0, 15e6, vec![0.1, 0.2]).unwrap();
        let expected = 1.0 / 0.01 + 1.0 / 0.04;
        assert!((v.inv_rtt_sq_sum() - expected).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_domains() {
        let ok = |a, b, d, s, r, rt: Vec<f64>| VictimSet::new(a, b, d, s, r, rt);
        assert!(ok(0.0, 0.5, 2.0, 1e3, 1e6, vec![0.1]).is_err());
        assert!(ok(1.0, 1.0, 2.0, 1e3, 1e6, vec![0.1]).is_err());
        assert!(ok(1.0, 0.5, 0.5, 1e3, 1e6, vec![0.1]).is_err());
        assert!(ok(1.0, 0.5, 2.0, 0.0, 1e6, vec![0.1]).is_err());
        assert!(ok(1.0, 0.5, 2.0, 1e3, 0.0, vec![0.1]).is_err());
        assert!(ok(1.0, 0.5, 2.0, 1e3, 1e6, vec![]).is_err());
        assert!(ok(1.0, 0.5, 2.0, 1e3, 1e6, vec![-0.1]).is_err());
        assert!(ok(1.0, 0.5, 2.0, 1e3, 1e6, vec![0.1]).is_ok());
    }

    #[test]
    fn error_display() {
        let e = VictimSet::new(0.0, 0.5, 2.0, 1e3, 1e6, vec![0.1]).unwrap_err();
        assert!(e.to_string().contains("invalid model parameter"));
    }
}
