//! Periodicity detection for the quasi-global synchronization analysis
//! (§2.3): the paper counts "pinnacles" in the incoming-traffic series and
//! divides the observation window by their number; we additionally confirm
//! the period with the autocorrelation function.

use crate::timeseries::{mean, std_dev};

/// The (biased, normalized) autocorrelation of `series` at integer `lag`.
///
/// Returns 0 for degenerate inputs (lag out of range, constant series).
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    let n = series.len();
    if lag >= n {
        return 0.0;
    }
    let m = mean(series);
    let denom: f64 = series.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - lag)
        .map(|i| (series[i] - m) * (series[i + lag] - m))
        .sum();
    num / denom
}

/// Finds the dominant period of `series` by locating the lag with the
/// highest autocorrelation in `[min_lag, max_lag]`.
///
/// Returns `None` for degenerate inputs (empty/constant series, empty lag
/// range) or when no lag shows positive correlation.
///
/// # Examples
///
/// ```
/// // A clean square wave with period 10.
/// let s: Vec<f64> = (0..200).map(|i| if i % 10 == 0 { 1.0 } else { 0.0 }).collect();
/// assert_eq!(pdos_analysis::period::dominant_lag(&s, 2, 50), Some(10));
/// ```
pub fn dominant_lag(series: &[f64], min_lag: usize, max_lag: usize) -> Option<usize> {
    if series.is_empty() || min_lag > max_lag || min_lag == 0 {
        return None;
    }
    let max_lag = max_lag.min(series.len().saturating_sub(1));
    let mut best: Option<(usize, f64)> = None;
    for lag in min_lag..=max_lag {
        let r = autocorrelation(series, lag);
        if r > best.map_or(0.0, |(_, b)| b) {
            best = Some((lag, r));
        }
    }
    best.map(|(lag, _)| lag)
}

/// Counts the "pinnacles" of §2.3: local maxima exceeding
/// `mean + threshold_sigmas · stddev`, separated by at least `min_gap`
/// samples (so one pulse doesn't count twice).
pub fn count_peaks(series: &[f64], threshold_sigmas: f64, min_gap: usize) -> usize {
    if series.len() < 3 {
        return 0;
    }
    let cut = mean(series) + threshold_sigmas * std_dev(series);
    let mut peaks = 0usize;
    let mut last_peak: Option<usize> = None;
    for i in 1..series.len() - 1 {
        let is_peak = series[i] > cut && series[i] >= series[i - 1] && series[i] >= series[i + 1];
        if is_peak {
            let far_enough = last_peak.is_none_or(|p| i - p >= min_gap.max(1));
            if far_enough {
                peaks += 1;
                last_peak = Some(i);
            }
        }
    }
    peaks
}

/// The paper's Fig. 3 measurement: given the observation window length in
/// seconds and the peak count, the inferred period (`60 s / 30 peaks = 2 s`
/// in Fig. 3(a)). Returns `None` when no peaks were found.
pub fn period_from_peak_count(window_secs: f64, peaks: usize) -> Option<f64> {
    if peaks == 0 {
        None
    } else {
        Some(window_secs / peaks as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse_train(period: usize, width: usize, cycles: usize) -> Vec<f64> {
        let mut s = vec![0.0; period * cycles];
        for c in 0..cycles {
            for w in 0..width {
                s[c * period + w] = 10.0;
            }
        }
        s
    }

    #[test]
    fn autocorrelation_basics() {
        let s = pulse_train(8, 1, 10);
        assert!((autocorrelation(&s, 0) - 1.0).abs() < 1e-12);
        assert!(autocorrelation(&s, 8) > autocorrelation(&s, 3));
        assert_eq!(autocorrelation(&s, 1000), 0.0);
        assert_eq!(autocorrelation(&[1.0, 1.0, 1.0], 1), 0.0);
    }

    #[test]
    fn dominant_lag_finds_pulse_period() {
        let s = pulse_train(40, 3, 12);
        assert_eq!(dominant_lag(&s, 5, 100), Some(40));
    }

    #[test]
    fn dominant_lag_degenerate_inputs() {
        assert_eq!(dominant_lag(&[], 1, 10), None);
        assert_eq!(dominant_lag(&[1.0; 50], 1, 10), None);
        assert_eq!(dominant_lag(&[1.0, 2.0], 0, 10), None);
        assert_eq!(dominant_lag(&[1.0, 2.0], 5, 2), None);
    }

    #[test]
    fn peak_count_matches_cycles() {
        let s = pulse_train(50, 2, 24);
        assert_eq!(count_peaks(&s, 1.0, 10), 24);
    }

    #[test]
    fn min_gap_merges_ringing() {
        // Twin spikes 2 samples apart should count once with min_gap 5.
        let mut s = vec![0.0; 100];
        for base in [10, 40, 70] {
            s[base] = 10.0;
            s[base + 2] = 10.0;
        }
        assert_eq!(count_peaks(&s, 1.0, 5), 3);
        assert_eq!(count_peaks(&s, 1.0, 1), 6);
    }

    #[test]
    fn fig3_period_arithmetic() {
        // Fig. 3(a): 30 pinnacles in 60 s -> 2 s.
        assert_eq!(period_from_peak_count(60.0, 30), Some(2.0));
        // Fig. 3(b): 24 pinnacles in 60 s -> 2.5 s.
        assert_eq!(period_from_peak_count(60.0, 24), Some(2.5));
        assert_eq!(period_from_peak_count(60.0, 0), None);
    }

    #[test]
    fn short_series_has_no_peaks() {
        assert_eq!(count_peaks(&[1.0, 2.0], 0.5, 1), 0);
    }

    proptest::proptest! {
        /// The dominant lag of a synthetic pulse train equals its period
        /// whenever the search range contains it.
        #[test]
        fn prop_dominant_lag_recovers_period(period in 5usize..60, width in 1usize..4) {
            let s = pulse_train(period, width.min(period - 1), 10);
            let got = dominant_lag(&s, 2, period * 2);
            proptest::prop_assert_eq!(got, Some(period));
        }
    }
}
