//! Sensitivity analysis of the gain model: how the attacker's optimum
//! moves when the victims' parameters change.
//!
//! Orientation: Prop. 2 reads `Ψ_attack/Ψ_normal = C_Ψ/γ`, so `C_Ψ` is
//! the victims' **retained-throughput (resilience) constant** — the share
//! of their normal throughput they keep per unit of normalized attack
//! rate. Consequences for the optimizing attacker:
//!
//! * `γ* = sqrt(C_Ψ)` (neutral): resilient victims force a **louder**
//!   attack — good for a defender relying on rate-based detection;
//! * the best achievable gain `G* = (1 − sqrt(C_Ψ))²` **falls** as `C_Ψ`
//!   grows.
//!
//! So a defender wants `C_Ψ` large. The elasticities below say which
//! parameter moves it how much — including the counter-intuitive entries
//! (e.g. doubling bottleneck capacity *lowers* `C_Ψ`, diluting the
//! attacker's footprint and raising their normalized gain, even though
//! the victims' absolute throughput under attack is unchanged).

use crate::gain::RiskPreference;
use crate::model::c_psi;
use crate::optimize::gamma_star;
use crate::params::{ParamError, VictimSet};

/// The elasticity `d ln γ* / d ln C_Ψ` at `(c_psi, κ)`, computed by a
/// central difference in log space.
///
/// For κ = 1 this is exactly `1/2` (Corollary 3); it approaches 1 for a
/// very risk-averse attacker (γ* tracks C_Ψ, Corollary 1) and 0 for a
/// risk-loving one (γ* pinned near 1, Corollary 2).
///
/// # Panics
///
/// Panics if `c_psi` is outside `(0, 1)`.
pub fn gamma_star_elasticity(c_psi: f64, risk: RiskPreference) -> f64 {
    assert!(c_psi > 0.0 && c_psi < 1.0, "C_Ψ must be in (0,1)");
    let h = 1e-4;
    let up = (c_psi * (1.0 + h)).min(1.0 - 1e-12);
    let down = c_psi * (1.0 - h);
    let g_up = gamma_star(up, risk).ln();
    let g_down = gamma_star(down, risk).ln();
    (g_up - g_down) / (up.ln() - down.ln())
}

/// Exact per-parameter elasticities of `C_Ψ` (from Eq. 11's algebraic
/// form `C_Ψ ∝ a·(1+b)/((1−b)·d) · S·T_extent·R_attack/R_bottle² · Σ1/RTT²`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpsiElasticities {
    /// `d ln C_Ψ / d ln a` = 1: faster additive increase means faster
    /// recovery between pulses — more resilience.
    pub a: f64,
    /// `d ln C_Ψ / d ln d` = −1: delayed ACKs slow recovery.
    pub d: f64,
    /// `d ln C_Ψ / d ln R_bottle` = −2 (once directly, once through
    /// `C_attack`).
    pub r_bottle: f64,
    /// `d ln C_Ψ / d ln b` at the operating point (through `(1+b)/(1−b)`).
    pub b: f64,
}

/// Exact elasticities of Eq. (11) at the victim set's parameters.
pub fn c_psi_elasticities(victims: &VictimSet) -> CpsiElasticities {
    let b = victims.b();
    CpsiElasticities {
        a: 1.0,
        d: -1.0,
        r_bottle: -2.0,
        // d/db ln[(1+b)/(1-b)] = 1/(1+b) + 1/(1-b), times b for elasticity.
        b: b * (1.0 / (1.0 + b) + 1.0 / (1.0 - b)),
    }
}

/// A row of the parameter what-if table.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfRow {
    /// Human-readable label of the change.
    pub change: String,
    /// The resilience constant after the change.
    pub c_psi: f64,
    /// The risk-neutral attacker's optimal normalized rate, `sqrt(C_Ψ)`.
    pub gamma_star: f64,
    /// The attacker's best achievable gain, `(1 − sqrt(C_Ψ))²`
    /// (`NaN` when `C_Ψ` leaves `(0, 1)`).
    pub g_star: f64,
}

/// Builds a what-if table for a victim population facing a
/// `(T_extent, R_attack)` attacker. Rows are descriptive, not
/// prescriptions — note that "double the capacity" *helps* the
/// normalized attack even though it doubles the victims' no-attack
/// throughput, while adding short-RTT flows (whose `1/RTT²` dominates
/// `Σ`) *hurts* it.
///
/// # Errors
///
/// Returns [`ParamError`] when the base parameters leave the model
/// domain.
pub fn parameter_what_if(
    victims: &VictimSet,
    t_extent: f64,
    r_attack: f64,
) -> Result<Vec<WhatIfRow>, ParamError> {
    let base_c = c_psi(victims, t_extent, r_attack)?;
    let row = |label: &str, c: f64| {
        let (gs, g_star) = if c > 0.0 && c < 1.0 {
            let gs = gamma_star(c, RiskPreference::NEUTRAL);
            (gs, (1.0 - gs) * (1.0 - gs))
        } else {
            (f64::NAN, f64::NAN)
        };
        WhatIfRow {
            change: label.to_string(),
            c_psi: c,
            gamma_star: gs,
            g_star,
        }
    };

    // Doubling R_bottle scales C_Ψ by 1/4 (elasticity −2).
    let double_capacity = base_c / 4.0;
    // Doubling the flow count by cloning the population doubles Σ1/RTT².
    let double_flows = base_c * 2.0;
    // Doubling d halves C_Ψ.
    let double_delack = base_c / 2.0;
    // Removing the shortest-RTT half of the flows: recompute the sum.
    let mut rtts = victims.rtts().to_vec();
    rtts.sort_by(|x, y| x.partial_cmp(y).expect("finite RTTs"));
    let survivors = rtts.split_off(rtts.len() / 2);
    let pruned = VictimSet::new(
        victims.a(),
        victims.b(),
        victims.d(),
        victims.s_packet(),
        victims.r_bottle(),
        survivors,
    )?;
    let shed_short_rtt = c_psi(&pruned, t_extent, r_attack)?;

    Ok(vec![
        row("baseline", base_c),
        row("double bottleneck capacity", double_capacity),
        row("double the victim flow count", double_flows),
        row("move short-RTT flows off the bottleneck", shed_short_rtt),
        row("delayed-ACK factor 2 -> 4", double_delack),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_elasticity_is_one_half() {
        for c in [0.05, 0.2, 0.7] {
            let e = gamma_star_elasticity(c, RiskPreference::NEUTRAL);
            assert!((e - 0.5).abs() < 1e-6, "C={c}: {e}");
        }
    }

    #[test]
    fn elasticity_orders_with_risk_appetite() {
        let c = 0.2;
        let averse = gamma_star_elasticity(c, RiskPreference::new(20.0).unwrap());
        let neutral = gamma_star_elasticity(c, RiskPreference::NEUTRAL);
        let loving = gamma_star_elasticity(c, RiskPreference::new(0.05).unwrap());
        assert!(
            loving < neutral && neutral < averse,
            "loving {loving} < neutral {neutral} < averse {averse}"
        );
        assert!(averse <= 1.0 + 1e-6);
        assert!(loving >= -1e-6);
    }

    #[test]
    fn exact_cpsi_elasticities() {
        let v = VictimSet::paper_ns2(15);
        let e = c_psi_elasticities(&v);
        assert_eq!(e.a, 1.0);
        assert_eq!(e.d, -1.0);
        assert_eq!(e.r_bottle, -2.0);
        // b = 0.5: 0.5·(1/1.5 + 1/0.5) = 4/3.
        assert!((e.b - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn what_if_directions_are_correct() {
        let v = VictimSet::paper_ns2(25);
        let rows = parameter_what_if(&v, 0.075, 30e6).unwrap();
        assert_eq!(rows.len(), 5);
        let base = &rows[0];

        // Doubling capacity quarters C_Ψ — the attacker's normalized
        // optimum gets *quieter* and its best gain *rises*.
        assert!((rows[1].c_psi - base.c_psi / 4.0).abs() < 1e-12);
        assert!((rows[1].gamma_star - base.gamma_star / 2.0).abs() < 1e-9);
        assert!(rows[1].g_star > base.g_star);

        // More victim flows raise C_Ψ: the attack must get louder and its
        // gain ceiling falls (the Figs. 6–9 panel progression).
        assert!(rows[2].c_psi > base.c_psi);
        assert!(rows[2].gamma_star > base.gamma_star);
        assert!(rows[2].g_star < base.g_star);

        // Shedding the short-RTT flows removes most of Σ1/RTT²: the
        // remaining population is less resilient.
        assert!(rows[3].c_psi < base.c_psi / 2.0);

        // Slower delayed-ACK recovery also lowers resilience.
        assert!((rows[4].c_psi - base.c_psi / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "(0,1)")]
    fn elasticity_rejects_out_of_domain() {
        gamma_star_elasticity(1.5, RiskPreference::NEUTRAL);
    }

    proptest::proptest! {
        /// The elasticity lies in [0, 1]: γ* never moves faster than C_Ψ,
        /// never backwards.
        #[test]
        fn prop_elasticity_bounded(c in 0.02f64..0.9, kappa in 0.05f64..15.0) {
            let e = gamma_star_elasticity(c, RiskPreference::new(kappa).unwrap());
            proptest::prop_assert!((-1e-6..=1.0 + 1e-6).contains(&e), "e = {e}");
        }

        /// G* is monotone decreasing in C_Ψ for the neutral attacker.
        #[test]
        fn prop_gain_ceiling_monotone(c1 in 0.01f64..0.9, c2 in 0.01f64..0.9) {
            let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
            let g = |c: f64| {
                let gs = gamma_star(c, RiskPreference::NEUTRAL);
                (1.0 - gs) * (1.0 - gs)
            };
            proptest::prop_assert!(g(lo) >= g(hi) - 1e-12);
        }
    }
}
