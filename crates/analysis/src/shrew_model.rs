//! The timeout-based (shrew) attack throughput model of Kuzmanovic &
//! Knightly (SIGCOMM 2003) — the baseline the paper's §1.1/§4.1.3 compare
//! the AIMD-based attack against.
//!
//! For a victim whose losses always force a retransmission timeout, the
//! normalized throughput under a pulse train of period `T` is governed by
//! when the post-timeout retransmission lands relative to the next pulse:
//!
//! ```text
//! ρ(T) = ( ⌈min_rto/T⌉·T − min_rto ) / ( ⌈min_rto/T⌉·T )
//! ```
//!
//! with deep nulls at `T = min_rto/n` — the "shrew frequencies". The
//! AIMD-based model (Prop. 2) has no such nulls, which is exactly the
//! structural difference Fig. 10 exhibits.

/// Kuzmanovic & Knightly's normalized throughput `ρ(T)` for a
/// timeout-bound victim under pulse period `t_aimd`, minimum RTO
/// `min_rto` (both seconds).
///
/// Returns a value in `[0, 1]`: the fraction of the (shrew-relevant)
/// capacity the victim retains.
///
/// # Panics
///
/// Panics when either argument is non-positive.
///
/// # Examples
///
/// ```
/// use pdos_analysis::shrew_model::shrew_throughput;
///
/// // Period = min RTO: total denial.
/// assert_eq!(shrew_throughput(1.0, 1.0), 0.0);
/// // Period 1.5 s: the flow transmits for the (1.5 - 1.0) s left over.
/// assert!((shrew_throughput(1.5, 1.0) - 1.0/3.0).abs() < 1e-12);
/// ```
pub fn shrew_throughput(t_aimd: f64, min_rto: f64) -> f64 {
    assert!(t_aimd > 0.0, "attack period must be positive");
    assert!(min_rto > 0.0, "min RTO must be positive");
    let k = (min_rto / t_aimd).ceil();
    ((k * t_aimd - min_rto) / (k * t_aimd)).clamp(0.0, 1.0)
}

/// The degradation `1 − ρ(T)` implied by the shrew model, comparable to
/// the AIMD model's Γ.
pub fn shrew_degradation(t_aimd: f64, min_rto: f64) -> f64 {
    1.0 - shrew_throughput(t_aimd, min_rto)
}

/// Samples `ρ(T)` over a period range — the double-dip curve the original
/// shrew paper plots.
///
/// # Panics
///
/// Panics when the range is empty or inverted, or `n < 2`.
pub fn shrew_curve(t_lo: f64, t_hi: f64, min_rto: f64, n: usize) -> Vec<(f64, f64)> {
    assert!(n >= 2, "need at least two samples");
    assert!(0.0 < t_lo && t_lo < t_hi, "need 0 < t_lo < t_hi");
    (0..n)
        .map(|i| {
            let t = t_lo + (t_hi - t_lo) * i as f64 / (n - 1) as f64;
            (t, shrew_throughput(t, min_rto))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nulls_at_all_subharmonics() {
        for n in 1..=6u32 {
            let t = 1.0 / f64::from(n);
            assert_eq!(shrew_throughput(t, 1.0), 0.0, "null expected at 1/{n}");
            assert_eq!(shrew_degradation(t, 1.0), 1.0);
        }
    }

    #[test]
    fn recovery_between_nulls() {
        // Between 1/2 and 1: local maximum as T grows toward 1 (just
        // below 1 the retransmission at 2T-1 leaves the biggest gap).
        let rho_06 = shrew_throughput(0.6, 1.0);
        let rho_09 = shrew_throughput(0.9, 1.0);
        assert!(rho_06 > 0.0 && rho_09 > 0.0);
        // (2·0.6−1)/1.2 = 1/6; (2·0.9−1)/1.8 = 4/9.
        assert!((rho_06 - 1.0 / 6.0).abs() < 1e-12);
        assert!((rho_09 - 4.0 / 9.0).abs() < 1e-12);
        assert!(rho_09 > rho_06);
    }

    #[test]
    fn long_periods_approach_full_throughput() {
        assert!(shrew_throughput(10.0, 1.0) > 0.89);
        assert!(shrew_throughput(100.0, 1.0) > 0.98);
    }

    #[test]
    fn curve_sampling() {
        let c = shrew_curve(0.4, 3.0, 1.0, 27);
        assert_eq!(c.len(), 27);
        assert!(c.iter().all(|&(_, r)| (0.0..=1.0).contains(&r)));
        // Contains a point near the T=1 null with tiny throughput.
        let near_null = c
            .iter()
            .filter(|(t, _)| (t - 1.0).abs() < 0.06)
            .map(|&(_, r)| r)
            .fold(f64::MAX, f64::min);
        assert!(near_null < 0.1, "near-null throughput {near_null}");
    }

    #[test]
    fn min_rto_scales_the_structure() {
        // The Linux test-bed's 200 ms RTO moves the null to T = 0.2 s.
        assert_eq!(shrew_throughput(0.2, 0.2), 0.0);
        assert!(shrew_throughput(1.0, 0.2) > 0.7);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_period() {
        shrew_throughput(0.0, 1.0);
    }

    proptest::proptest! {
        /// ρ is always in [0, 1] and exactly 0 on the subharmonics.
        #[test]
        fn prop_rho_bounded(t in 0.01f64..10.0, rto in 0.05f64..5.0) {
            let r = shrew_throughput(t, rto);
            proptest::prop_assert!((0.0..=1.0).contains(&r));
        }
    }
}
