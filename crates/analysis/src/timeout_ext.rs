//! Timeout-aware extension of the throughput model (the paper's §5 future
//! work).
//!
//! The DSN 2005 model assumes every victim reacts to each pulse with fast
//! retransmit / fast recovery. That assumption breaks in two regimes the
//! paper itself observes:
//!
//! * **over-gain** (§4.1.1): when the converged window `W̄` of Eq. (1)
//!   falls below `dupack_threshold + 1` segments, a victim cannot gather
//!   enough duplicate ACKs and takes retransmission timeouts instead —
//!   real damage exceeds the FR-only prediction;
//! * **shrew points** (§4.1.3): when `T_AIMD ≈ min_rto/n`, the
//!   retransmission after the timeout collides with the next pulse and the
//!   flow starves almost completely.
//!
//! This module models both effects per flow, keeping the FR expression for
//! flows with comfortable windows.

use crate::model::{converged_window, psi_normal};
use crate::params::VictimSet;

/// Per-flow regime classification under the extended model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowRegime {
    /// The window stays above the duplicate-ACK threshold: the FR-based
    /// Lemma-2 term applies.
    FastRecovery,
    /// The window is pinned low: the flow times out on (most) pulses.
    TimeoutBound,
    /// Timeout-bound *and* the pulse period collides with the timeout
    /// subharmonics: near-complete starvation.
    ShrewLocked,
}

/// Extended-model knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeoutModel {
    /// Segments of window below which fast retransmit fails
    /// (`dupack_threshold + 1`; 4 for standard TCP).
    pub fr_window_floor: f64,
    /// The victims' minimum RTO, seconds.
    pub min_rto: f64,
    /// Relative tolerance for shrew-point matching.
    pub shrew_tolerance: f64,
    /// Largest subharmonic index checked for shrew locking.
    pub max_subharmonic: u32,
}

impl Default for TimeoutModel {
    fn default() -> Self {
        TimeoutModel {
            fr_window_floor: 4.0,
            min_rto: 1.0, // ns-2 default
            shrew_tolerance: 0.08,
            max_subharmonic: 5,
        }
    }
}

impl TimeoutModel {
    /// Classifies one flow with round-trip time `rtt` under a pulse period
    /// `t_aimd`.
    pub fn regime(&self, victims: &VictimSet, t_aimd: f64, rtt: f64) -> FlowRegime {
        let w_bar = converged_window(victims.a(), victims.b(), victims.d(), t_aimd, rtt);
        if w_bar >= self.fr_window_floor {
            return FlowRegime::FastRecovery;
        }
        let is_shrew = (1..=self.max_subharmonic).any(|n| {
            let target = self.min_rto / f64::from(n);
            (t_aimd - target).abs() / target <= self.shrew_tolerance
        });
        if is_shrew {
            FlowRegime::ShrewLocked
        } else {
            FlowRegime::TimeoutBound
        }
    }

    /// Per-flow bytes delivered per attack period under the extended model.
    fn bytes_per_period(&self, victims: &VictimSet, t_aimd: f64, rtt: f64) -> f64 {
        let (a, b, d, s) = (victims.a(), victims.b(), victims.d(), victims.s_packet());
        let fr_term = a * (1.0 + b) / (2.0 * d * (1.0 - b)) * (t_aimd / rtt).powi(2) * s;
        match self.regime(victims, t_aimd, rtt) {
            FlowRegime::FastRecovery => fr_term,
            FlowRegime::ShrewLocked => {
                // Retransmissions collide with pulses: at most one segment
                // per period survives (and never more than the FR-mode
                // delivery — at very short periods even FR predicts less
                // than a segment per period).
                s.min(fr_term)
            }
            FlowRegime::TimeoutBound => {
                // The flow idles for min_rto, then slow-starts for the rest
                // of the period: ~2^(t/(d·RTT)) segments delivered, capped
                // by what FR mode would have delivered.
                let active = (t_aimd - self.min_rto).max(0.0);
                let doublings = active / (d * rtt);
                let segments = (2f64.powf(doublings.min(30.0)) - 1.0).max(1.0);
                (segments * s).min(fr_term)
            }
        }
    }

    /// Aggregate bytes under attack (the timeout-aware replacement of
    /// Lemma 2's Eq. 9).
    pub fn psi_attack_ext(&self, victims: &VictimSet, n_pulses: usize, t_aimd: f64) -> f64 {
        let periods = n_pulses.saturating_sub(1) as f64;
        victims
            .rtts()
            .iter()
            .map(|&rtt| self.bytes_per_period(victims, t_aimd, rtt))
            .sum::<f64>()
            * periods
    }

    /// The timeout-aware degradation `Γ_ext = 1 − Ψ_ext/Ψ_normal`, clamped
    /// to `[0, 1]`.
    pub fn degradation_ext(&self, victims: &VictimSet, t_aimd: f64) -> f64 {
        let n = 101; // (N−1) cancels; any n > 1 works
        let psi_a = self.psi_attack_ext(victims, n, t_aimd);
        let psi_n = psi_normal(victims.r_bottle(), n, t_aimd);
        (1.0 - psi_a / psi_n).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{c_psi, degradation};

    fn victims() -> VictimSet {
        VictimSet::paper_ns2(15)
    }

    #[test]
    fn comfortable_windows_stay_in_fr() {
        let m = TimeoutModel::default();
        // Long period, short RTT: W̄ large.
        assert_eq!(m.regime(&victims(), 2.0, 0.020), FlowRegime::FastRecovery);
    }

    #[test]
    fn short_periods_push_long_rtt_flows_into_timeout() {
        let m = TimeoutModel::default();
        // T_AIMD = 0.3 s, RTT = 460 ms: W̄ = 0.3/0.46 < 1.
        assert_eq!(m.regime(&victims(), 0.3, 0.460), FlowRegime::TimeoutBound);
    }

    #[test]
    fn shrew_period_locks() {
        let m = TimeoutModel::default();
        // T_AIMD = min_rto = 1 s with a long-RTT flow (W̄ = 1/0.46 < 4).
        assert_eq!(m.regime(&victims(), 1.0, 0.460), FlowRegime::ShrewLocked);
        assert_eq!(m.regime(&victims(), 0.5, 0.460), FlowRegime::ShrewLocked);
        // Off-harmonic period with the same small window: plain timeout.
        assert_eq!(m.regime(&victims(), 0.7, 0.460), FlowRegime::TimeoutBound);
    }

    #[test]
    fn extended_degradation_never_below_fr_model_at_shrew_points() {
        let v = victims();
        let m = TimeoutModel::default();
        let (t_extent, r_attack) = (0.1, 30e6);
        let c = c_psi(&v, t_extent, r_attack).unwrap();
        // At the shrew period T_AIMD = 1 s:
        let t_aimd = 1.0;
        let gamma = r_attack * t_extent / (v.r_bottle() * t_aimd);
        let fr = degradation(gamma, c);
        let ext = m.degradation_ext(&v, t_aimd);
        assert!(
            ext >= fr - 1e-9,
            "extended model must predict at least FR damage: ext {ext} vs fr {fr}"
        );
    }

    #[test]
    fn extended_model_agrees_with_fr_when_windows_large() {
        let v = VictimSet::new(1.0, 0.5, 2.0, 1000.0, 15e6, vec![0.05; 10]).unwrap();
        let m = TimeoutModel::default();
        let t_aimd = 3.0; // W̄ = 3/0.05 = 60 segments: comfortably FR
        let psi_fr = crate::model::psi_attack(&v, 51, t_aimd);
        let psi_ext = m.psi_attack_ext(&v, 51, t_aimd);
        assert!((psi_fr - psi_ext).abs() / psi_fr < 1e-9);
    }

    #[test]
    fn starvation_orders_regimes() {
        // For the same (long-RTT) flow, shrew-locked delivers less than
        // timeout-bound, which delivers no more than FR.
        let v = victims();
        let m = TimeoutModel::default();
        let rtt = 0.460;
        let shrew = m.bytes_per_period(&v, 1.0, rtt);
        let timeout = m.bytes_per_period(&v, 1.4, rtt);
        assert!(shrew <= timeout, "shrew {shrew} vs timeout {timeout}");
    }

    proptest::proptest! {
        /// Extended degradation is always within [0, 1] and at least the
        /// FR-only model's value (timeouts only ever hurt the victims).
        #[test]
        fn prop_ext_dominates_fr(t_aimd in 0.2f64..4.0) {
            let v = victims();
            let m = TimeoutModel::default();
            let ext = m.degradation_ext(&v, t_aimd);
            proptest::prop_assert!((0.0..=1.0).contains(&ext));
            let psi_fr = crate::model::psi_attack(&v, 101, t_aimd);
            let psi_ext = m.psi_attack_ext(&v, 101, t_aimd);
            proptest::prop_assert!(psi_ext <= psi_fr * (1.0 + 1e-9));
        }
    }
}
