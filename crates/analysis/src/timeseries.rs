//! Time-series tooling used to exhibit the quasi-global synchronization
//! phenomenon (§2.3): normalization and the piecewise aggregate
//! approximation (PAA) of Keogh et al. that the paper applies to the
//! incoming-traffic series before plotting Fig. 3.

/// Shifts a series to zero mean (the paper's first normalization step).
///
/// Returns an empty vector for empty input.
pub fn zero_mean(series: &[f64]) -> Vec<f64> {
    if series.is_empty() {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    series.iter().map(|x| x - mean).collect()
}

/// Standardizes a series to zero mean and unit variance. A constant series
/// maps to all zeros.
pub fn standardize(series: &[f64]) -> Vec<f64> {
    let centered = zero_mean(series);
    if centered.is_empty() {
        return centered;
    }
    let var = centered.iter().map(|x| x * x).sum::<f64>() / centered.len() as f64;
    let sd = var.sqrt();
    if sd == 0.0 {
        return centered;
    }
    centered.iter().map(|x| x / sd).collect()
}

/// Piecewise aggregate approximation: reduces `series` to `segments`
/// values, each the mean of one (approximately equal) frame.
///
/// When the length does not divide evenly, boundary samples contribute
/// fractionally to both adjacent frames, following the original
/// formulation's continuous framing.
///
/// # Panics
///
/// Panics if `segments` is zero or exceeds the series length.
///
/// # Examples
///
/// ```
/// let series = [1.0, 1.0, 5.0, 5.0];
/// assert_eq!(pdos_analysis::timeseries::paa(&series, 2), vec![1.0, 5.0]);
/// ```
pub fn paa(series: &[f64], segments: usize) -> Vec<f64> {
    assert!(segments > 0, "PAA needs at least one segment");
    assert!(
        segments <= series.len(),
        "PAA segments ({segments}) exceed series length ({})",
        series.len()
    );
    let n = series.len() as f64;
    let w = n / segments as f64; // frame width in samples (possibly fractional)
    (0..segments)
        .map(|k| {
            let start = k as f64 * w;
            let end = start + w;
            let mut acc = 0.0;
            let mut i = start.floor() as usize;
            while (i as f64) < end && i < series.len() {
                let lo = (i as f64).max(start);
                let hi = ((i + 1) as f64).min(end);
                acc += series[i] * (hi - lo);
                i += 1;
            }
            acc / w
        })
        .collect()
}

/// Mean of a series (0 for empty input).
pub fn mean(series: &[f64]) -> f64 {
    if series.is_empty() {
        0.0
    } else {
        series.iter().sum::<f64>() / series.len() as f64
    }
}

/// Population standard deviation (0 for empty input).
pub fn std_dev(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let m = mean(series);
    (series.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / series.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mean_centers() {
        let out = zero_mean(&[1.0, 2.0, 3.0]);
        assert!((mean(&out)).abs() < 1e-12);
        assert_eq!(out, vec![-1.0, 0.0, 1.0]);
        assert!(zero_mean(&[]).is_empty());
    }

    #[test]
    fn standardize_gives_unit_variance() {
        let out = standardize(&[2.0, 4.0, 6.0, 8.0]);
        assert!(mean(&out).abs() < 1e-12);
        assert!((std_dev(&out) - 1.0).abs() < 1e-12);
        // Constant series degrades gracefully.
        assert_eq!(standardize(&[5.0, 5.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn paa_even_division_takes_frame_means() {
        let s = [1.0, 3.0, 5.0, 7.0, 9.0, 11.0];
        assert_eq!(paa(&s, 3), vec![2.0, 6.0, 10.0]);
        assert_eq!(paa(&s, 6), s.to_vec());
        assert_eq!(paa(&s, 1), vec![6.0]);
    }

    #[test]
    fn paa_fractional_frames_weight_boundaries() {
        // 3 samples into 2 segments: frames [0,1.5) and [1.5,3).
        let s = [0.0, 6.0, 12.0];
        let out = paa(&s, 2);
        // Frame 1: 1·0 + 0.5·6 = 3 over width 1.5 -> 2.
        // Frame 2: 0.5·6 + 1·12 = 15 over width 1.5 -> 10.
        assert!((out[0] - 2.0).abs() < 1e-12);
        assert!((out[1] - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn paa_zero_segments_panics() {
        paa(&[1.0], 0);
    }

    #[test]
    #[should_panic(expected = "exceed series length")]
    fn paa_too_many_segments_panics() {
        paa(&[1.0], 2);
    }

    proptest::proptest! {
        /// PAA preserves the overall mean.
        #[test]
        fn prop_paa_preserves_mean(s in proptest::collection::vec(-100.0f64..100.0, 4..200),
                                   frac in 0.1f64..1.0) {
            let segments = ((s.len() as f64 * frac) as usize).max(1);
            let out = paa(&s, segments);
            proptest::prop_assert!((mean(&out) - mean(&s)).abs() < 1e-6);
        }

        /// Standardization is idempotent up to floating error.
        #[test]
        fn prop_standardize_idempotent(s in proptest::collection::vec(-100.0f64..100.0, 2..100)) {
            let once = standardize(&s);
            let twice = standardize(&once);
            for (a, b) in once.iter().zip(&twice) {
                proptest::prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
