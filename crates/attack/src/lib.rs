//! # pdos-attack — pulsing-DoS workload generators for `pdos-sim`
//!
//! Simulation-only traffic sources reproducing the attack model of Luo &
//! Chang (DSN 2005) §2.1: the pulse train `A(T_extent, R_attack, T_space,
//! N)`, the flooding baseline it degenerates to, and helpers for the shrew
//! (timeout-synchronized) special case of §4.1.3. These agents exist to
//! drive the defensive evaluation (detector benchmarks, gain-model
//! validation); they emit packets only inside the discrete-event
//! simulator.
//!
//! ## Example
//!
//! ```
//! use pdos_attack::prelude::*;
//! use pdos_sim::time::SimDuration;
//! use pdos_sim::units::BitsPerSec;
//!
//! // The Fig. 3(b) test-bed attack: 100 ms pulses at 50 Mbps every 2.5 s.
//! let train = PulseTrain::new(
//!     SimDuration::from_millis(100),
//!     BitsPerSec::from_mbps(50.0),
//!     SimDuration::from_millis(2400),
//! )?;
//! assert_eq!(train.period(), SimDuration::from_millis(2500));
//! # Ok::<(), pdos_attack::pulse::PulseError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod pulse;
pub mod shrew;
pub mod source;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::pulse::{PulseError, PulseSchedule, PulseTrain};
    pub use crate::shrew::{classify_shrew, shrew_period, ShrewSpec};
    pub use crate::source::{CbrSource, PulseSource, SchedulePulseSource, SourceStats};
}
