//! The pulse-train model `A(T_extent, R_attack, T_space, N)` of §2.1.

use pdos_sim::time::SimDuration;
use pdos_sim::units::{BitsPerSec, Bytes};
use std::error::Error;
use std::fmt;

/// A problem with pulse-train parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum PulseError {
    /// `T_extent` must be positive.
    ZeroExtent,
    /// `R_attack` must be positive.
    ZeroRate,
    /// The requested normalized rate γ is infeasible: it must satisfy
    /// `0 < γ <= R_attack / R_bottle` (duty cycle at most 1).
    InfeasibleGamma {
        /// The requested γ.
        gamma: f64,
        /// The maximum feasible γ (= `C_attack = R_attack / R_bottle`).
        max: f64,
    },
}

impl fmt::Display for PulseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PulseError::ZeroExtent => write!(f, "pulse width T_extent must be positive"),
            PulseError::ZeroRate => write!(f, "pulse rate R_attack must be positive"),
            PulseError::InfeasibleGamma { gamma, max } => write!(
                f,
                "normalized attack rate {gamma} is infeasible; must be in (0, {max:.4}]"
            ),
        }
    }
}

impl Error for PulseError {}

/// A fixed-period pulse train: `N` pulses of width `T_extent` at rate
/// `R_attack`, separated by `T_space` of silence. The attack period is
/// `T_AIMD = T_extent + T_space`.
///
/// # Examples
///
/// The Fig. 3(a) attack (50 ms pulses at 100 Mbps every 2 s):
///
/// ```
/// use pdos_attack::pulse::PulseTrain;
/// use pdos_sim::time::SimDuration;
/// use pdos_sim::units::BitsPerSec;
///
/// let train = PulseTrain::new(
///     SimDuration::from_millis(50),
///     BitsPerSec::from_mbps(100.0),
///     SimDuration::from_millis(1950),
/// )?;
/// assert_eq!(train.period(), SimDuration::from_secs(2));
/// // Average rate: 100 Mbps x 50/2000 = 2.5 Mbps.
/// assert!((train.mean_rate().as_mbps() - 2.5).abs() < 1e-9);
/// // Normalized against a 15 Mbps bottleneck: gamma = 1/6.
/// assert!((train.gamma(BitsPerSec::from_mbps(15.0)) - 1.0/6.0).abs() < 1e-9);
/// # Ok::<(), pdos_attack::pulse::PulseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PulseTrain {
    extent: SimDuration,
    rate: BitsPerSec,
    space: SimDuration,
}

impl PulseTrain {
    /// Creates a pulse train from the paper's three shape parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PulseError`] when `T_extent` or `R_attack` is zero.
    /// (`T_space = 0` is legal: it degenerates to flooding, as §2.1 notes.)
    pub fn new(
        extent: SimDuration,
        rate: BitsPerSec,
        space: SimDuration,
    ) -> Result<Self, PulseError> {
        if extent.is_zero() {
            return Err(PulseError::ZeroExtent);
        }
        if rate.is_zero() {
            return Err(PulseError::ZeroRate);
        }
        Ok(PulseTrain {
            extent,
            rate,
            space,
        })
    }

    /// Builds the train that achieves normalized average rate `gamma`
    /// against `bottleneck` (Eq. 4): the period becomes
    /// `T_AIMD = R_attack·T_extent / (R_bottle·γ)`.
    ///
    /// # Errors
    ///
    /// Returns [`PulseError::InfeasibleGamma`] unless
    /// `0 < γ <= R_attack/R_bottle`.
    pub fn from_gamma(
        extent: SimDuration,
        rate: BitsPerSec,
        bottleneck: BitsPerSec,
        gamma: f64,
    ) -> Result<Self, PulseError> {
        if extent.is_zero() {
            return Err(PulseError::ZeroExtent);
        }
        if rate.is_zero() || bottleneck.is_zero() {
            return Err(PulseError::ZeroRate);
        }
        let c_attack = rate.as_bps() / bottleneck.as_bps();
        if !(gamma > 0.0 && gamma <= c_attack) {
            return Err(PulseError::InfeasibleGamma {
                gamma,
                max: c_attack,
            });
        }
        let period_s = rate.as_bps() * extent.as_secs_f64() / (bottleneck.as_bps() * gamma);
        let space_s = (period_s - extent.as_secs_f64()).max(0.0);
        Ok(PulseTrain {
            extent,
            rate,
            space: SimDuration::from_secs_f64(space_s),
        })
    }

    /// Pulse width `T_extent`.
    pub fn extent(&self) -> SimDuration {
        self.extent
    }

    /// In-pulse sending rate `R_attack`.
    pub fn rate(&self) -> BitsPerSec {
        self.rate
    }

    /// Inter-pulse silence `T_space`.
    pub fn space(&self) -> SimDuration {
        self.space
    }

    /// Attack period `T_AIMD = T_extent + T_space`.
    pub fn period(&self) -> SimDuration {
        self.extent + self.space
    }

    /// Duty cycle `T_extent / T_AIMD` in `(0, 1]`.
    pub fn duty_cycle(&self) -> f64 {
        self.extent / self.period()
    }

    /// `μ = T_space / T_extent`, the reciprocal of the duty cycle minus one
    /// (the paper's optimization variable).
    pub fn mu(&self) -> f64 {
        self.space / self.extent
    }

    /// Average attack rate `R_attack · T_extent / T_AIMD`.
    pub fn mean_rate(&self) -> BitsPerSec {
        BitsPerSec::from_bps(self.rate.as_bps() * self.duty_cycle())
    }

    /// Normalized average rate `γ` against `bottleneck` (Eq. 4).
    ///
    /// # Panics
    ///
    /// Panics if `bottleneck` is zero.
    pub fn gamma(&self, bottleneck: BitsPerSec) -> f64 {
        assert!(!bottleneck.is_zero(), "bottleneck rate must be positive");
        self.mean_rate().as_bps() / bottleneck.as_bps()
    }

    /// Bytes sent per pulse.
    pub fn bytes_per_pulse(&self) -> Bytes {
        self.rate.bytes_in(self.extent)
    }

    /// Number of `packet_size` packets per pulse (at least 1).
    pub fn packets_per_pulse(&self, packet_size: Bytes) -> u64 {
        (self.bytes_per_pulse().as_u64() / packet_size.as_u64().max(1)).max(1)
    }

    /// Whether this train degenerates to a flood (`T_space = 0`).
    pub fn is_flood(&self) -> bool {
        self.space.is_zero()
    }
}

/// The fully general attack of §2.1: a finite schedule of possibly
/// different pulses `A(T_extent(n), R_attack(n), T_space(n), N)`. The
/// fixed-period [`PulseTrain`] is the `N`-fold repetition special case
/// the paper analyzes; the general form expresses ramps, alternating
/// intensities, and other adaptive shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct PulseSchedule {
    pulses: Vec<PulseTrain>,
}

impl PulseSchedule {
    /// Creates a schedule from individual pulse shapes. Each entry's
    /// `space()` is the gap *after* that pulse (the last entry's space is
    /// unused).
    ///
    /// # Errors
    ///
    /// Returns [`PulseError::ZeroExtent`] for an empty schedule.
    pub fn new(pulses: Vec<PulseTrain>) -> Result<Self, PulseError> {
        if pulses.is_empty() {
            return Err(PulseError::ZeroExtent);
        }
        Ok(PulseSchedule { pulses })
    }

    /// A ramp: `n` pulses of the same shape whose rates climb linearly
    /// from `start_rate` to `end_rate` — the adaptive attacker probing how
    /// loud it can get.
    ///
    /// # Errors
    ///
    /// Returns [`PulseError`] for degenerate shapes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn ramp(
        extent: SimDuration,
        space: SimDuration,
        start_rate: BitsPerSec,
        end_rate: BitsPerSec,
        n: usize,
    ) -> Result<Self, PulseError> {
        assert!(n > 0, "need at least one pulse");
        let pulses = (0..n)
            .map(|i| {
                let f = if n == 1 {
                    0.0
                } else {
                    i as f64 / (n - 1) as f64
                };
                let rate = BitsPerSec::from_bps(
                    start_rate.as_bps() + (end_rate.as_bps() - start_rate.as_bps()) * f,
                );
                PulseTrain::new(extent, rate, space)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PulseSchedule { pulses })
    }

    /// The individual pulses.
    pub fn pulses(&self) -> &[PulseTrain] {
        &self.pulses
    }

    /// Number of pulses `N`.
    pub fn len(&self) -> usize {
        self.pulses.len()
    }

    /// Whether the schedule is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.pulses.is_empty()
    }

    /// Total duration from the first pulse's start to the last pulse's
    /// end (the trailing space is not counted).
    pub fn duration(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for (i, p) in self.pulses.iter().enumerate() {
            total += p.extent();
            if i + 1 < self.pulses.len() {
                total += p.space();
            }
        }
        total
    }

    /// Total attack bytes over the schedule.
    pub fn total_bytes(&self) -> Bytes {
        self.pulses
            .iter()
            .map(PulseTrain::bytes_per_pulse)
            .fold(Bytes::ZERO, Bytes::saturating_add)
    }

    /// Average rate over the schedule's duration.
    pub fn mean_rate(&self) -> BitsPerSec {
        let d = self.duration().as_secs_f64();
        if d == 0.0 {
            return BitsPerSec::ZERO;
        }
        BitsPerSec::from_bps(self.total_bytes().as_bits() as f64 / d)
    }
}

impl fmt::Display for PulseTrain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pulse(extent={}, rate={}, space={}, period={})",
            self.extent,
            self.rate,
            self.space,
            self.period()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3a() -> PulseTrain {
        PulseTrain::new(
            SimDuration::from_millis(50),
            BitsPerSec::from_mbps(100.0),
            SimDuration::from_millis(1950),
        )
        .unwrap()
    }

    #[test]
    fn period_and_duty_cycle() {
        let t = fig3a();
        assert_eq!(t.period(), SimDuration::from_secs(2));
        assert!((t.duty_cycle() - 0.025).abs() < 1e-12);
        assert!((t.mu() - 39.0).abs() < 1e-12);
        assert!(!t.is_flood());
    }

    #[test]
    fn pulse_volume() {
        let t = fig3a();
        assert_eq!(t.bytes_per_pulse().as_u64(), 625_000);
        assert_eq!(t.packets_per_pulse(Bytes::from_u64(1000)), 625);
    }

    #[test]
    fn from_gamma_inverts_gamma() {
        let bottle = BitsPerSec::from_mbps(15.0);
        for gamma in [0.05, 0.1, 0.3, 0.5, 0.9] {
            let t = PulseTrain::from_gamma(
                SimDuration::from_millis(75),
                BitsPerSec::from_mbps(30.0),
                bottle,
                gamma,
            )
            .unwrap();
            assert!(
                (t.gamma(bottle) - gamma).abs() < 1e-6,
                "gamma {gamma} roundtrip gave {}",
                t.gamma(bottle)
            );
        }
    }

    #[test]
    fn from_gamma_rejects_infeasible() {
        let bottle = BitsPerSec::from_mbps(15.0);
        // C_attack = 2: gamma up to 2 feasible (flooding at 2x).
        let err = PulseTrain::from_gamma(
            SimDuration::from_millis(50),
            BitsPerSec::from_mbps(30.0),
            bottle,
            2.5,
        )
        .unwrap_err();
        assert!(matches!(err, PulseError::InfeasibleGamma { .. }));
        assert!(err.to_string().contains("infeasible"));
        assert!(PulseTrain::from_gamma(
            SimDuration::from_millis(50),
            BitsPerSec::from_mbps(30.0),
            bottle,
            0.0
        )
        .is_err());
    }

    #[test]
    fn gamma_equals_cattack_means_flood() {
        let bottle = BitsPerSec::from_mbps(15.0);
        let t = PulseTrain::from_gamma(
            SimDuration::from_millis(50),
            BitsPerSec::from_mbps(30.0),
            bottle,
            2.0,
        )
        .unwrap();
        assert!(t.is_flood());
        assert_eq!(t.period(), t.extent());
    }

    #[test]
    fn constructor_rejects_degenerate_shapes() {
        assert_eq!(
            PulseTrain::new(
                SimDuration::ZERO,
                BitsPerSec::from_mbps(1.0),
                SimDuration::ZERO
            )
            .unwrap_err(),
            PulseError::ZeroExtent
        );
        assert_eq!(
            PulseTrain::new(
                SimDuration::from_millis(1),
                BitsPerSec::ZERO,
                SimDuration::ZERO
            )
            .unwrap_err(),
            PulseError::ZeroRate
        );
    }

    #[test]
    fn display_shows_shape() {
        assert!(fig3a().to_string().contains("period=2.000s"));
    }

    #[test]
    fn schedule_accounts_duration_and_volume() {
        let a = PulseTrain::new(
            SimDuration::from_millis(50),
            BitsPerSec::from_mbps(40.0),
            SimDuration::from_millis(950),
        )
        .unwrap();
        let b = PulseTrain::new(
            SimDuration::from_millis(100),
            BitsPerSec::from_mbps(20.0),
            SimDuration::from_millis(400),
        )
        .unwrap();
        let sched = PulseSchedule::new(vec![a, b.clone(), b]).unwrap();
        assert_eq!(sched.len(), 3);
        assert!(!sched.is_empty());
        // 50 + 950 + 100 + 400 + 100 ms (no trailing space).
        assert_eq!(sched.duration(), SimDuration::from_millis(1600));
        // 250 kB + 250 kB + 250 kB.
        assert_eq!(sched.total_bytes().as_u64(), 750_000);
        assert!((sched.mean_rate().as_mbps() - 3.75).abs() < 1e-9);
    }

    #[test]
    fn ramp_interpolates_rates() {
        let sched = PulseSchedule::ramp(
            SimDuration::from_millis(50),
            SimDuration::from_millis(450),
            BitsPerSec::from_mbps(10.0),
            BitsPerSec::from_mbps(50.0),
            5,
        )
        .unwrap();
        let rates: Vec<f64> = sched.pulses().iter().map(|p| p.rate().as_mbps()).collect();
        assert_eq!(rates, vec![10.0, 20.0, 30.0, 40.0, 50.0]);
    }

    #[test]
    fn empty_schedule_rejected() {
        assert!(PulseSchedule::new(vec![]).is_err());
    }

    proptest::proptest! {
        /// `from_gamma` always produces a train whose measured gamma matches
        /// the request, across the feasible region.
        #[test]
        fn prop_gamma_roundtrip(gamma in 0.01f64..1.0, extent_ms in 10u64..500, rate_mbps in 16f64..200.0) {
            let bottle = BitsPerSec::from_mbps(15.0);
            let t = PulseTrain::from_gamma(
                SimDuration::from_millis(extent_ms),
                BitsPerSec::from_mbps(rate_mbps),
                bottle,
                gamma,
            ).unwrap();
            proptest::prop_assert!((t.gamma(bottle) - gamma).abs() < 1e-6);
            proptest::prop_assert!(t.duty_cycle() > 0.0 && t.duty_cycle() <= 1.0);
        }
    }
}
