//! Shrew (timeout-based) attack helpers.
//!
//! §4.1.3: when the pulsing period `T_AIMD` is close to `min_rto / n` for
//! an integer `n >= 1`, each retransmission after a timeout collides with
//! the next pulse, pinning senders in the timeout state — the shrew attack
//! of Kuzmanovic & Knightly. The paper's analytical model assumes fast
//! recovery instead, so these points show up as gain spikes above the
//! analytical curve.

use crate::pulse::{PulseError, PulseTrain};
use pdos_sim::time::SimDuration;
use pdos_sim::units::BitsPerSec;

/// The pulse period that synchronizes with the `n`-th subharmonic of the
/// minimum retransmission timeout: `T_AIMD = min_rto / n`.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Examples
///
/// ```
/// use pdos_attack::shrew::shrew_period;
/// use pdos_sim::time::SimDuration;
///
/// // ns-2's 1 s minimum RTO: the fundamental shrew period is 1 s.
/// assert_eq!(shrew_period(SimDuration::from_secs(1), 1), SimDuration::from_secs(1));
/// assert_eq!(shrew_period(SimDuration::from_secs(1), 3).as_nanos(), 333_333_333);
/// ```
pub fn shrew_period(min_rto: SimDuration, n: u32) -> SimDuration {
    assert!(n > 0, "subharmonic index n must be at least 1");
    min_rto / u64::from(n)
}

/// Classifies a pulse period against the shrew subharmonics of `min_rto`.
///
/// Returns `Some(n)` when `period` is within `tolerance` (relative) of
/// `min_rto / n` for some `n` in `1..=max_n`.
///
/// # Examples
///
/// ```
/// use pdos_attack::shrew::classify_shrew;
/// use pdos_sim::time::SimDuration;
///
/// let min_rto = SimDuration::from_secs(1);
/// assert_eq!(classify_shrew(SimDuration::from_millis(500), min_rto, 5, 0.1), Some(2));
/// assert_eq!(classify_shrew(SimDuration::from_millis(710), min_rto, 5, 0.1), None);
/// ```
pub fn classify_shrew(
    period: SimDuration,
    min_rto: SimDuration,
    max_n: u32,
    tolerance: f64,
) -> Option<u32> {
    if period.is_zero() {
        return None;
    }
    (1..=max_n).find(|&n| {
        let target = shrew_period(min_rto, n).as_secs_f64();
        let rel = (period.as_secs_f64() - target).abs() / target;
        rel <= tolerance
    })
}

/// The shrew-attack parameter set of Kuzmanovic & Knightly, phrased in the
/// paper's pulse-train terms: period locked to `min_rto`, pulse width of
/// roughly the victims' RTT scale so every flow sees losses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrewSpec {
    /// The victims' minimum retransmission timeout.
    pub min_rto: SimDuration,
    /// Which subharmonic to lock onto (1 = the classic `T_AIMD = min_rto`).
    pub subharmonic: u32,
    /// Pulse width.
    pub extent: SimDuration,
}

impl ShrewSpec {
    /// The attack period this spec locks to.
    pub fn period(&self) -> SimDuration {
        shrew_period(self.min_rto, self.subharmonic)
    }

    /// The inter-pulse space (`period - extent`), saturating at zero when
    /// the extent exceeds the period.
    pub fn space(&self) -> SimDuration {
        let p = self.period();
        if self.extent >= p {
            SimDuration::ZERO
        } else {
            p - self.extent
        }
    }

    /// Builds the concrete pulse train locked to this spec's period.
    ///
    /// # Errors
    ///
    /// Returns [`PulseError`] when `rate` is zero or the extent is zero.
    pub fn train(&self, rate: BitsPerSec) -> Result<PulseTrain, PulseError> {
        PulseTrain::new(self.extent, rate, self.space())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subharmonics_divide_min_rto() {
        let rto = SimDuration::from_secs(1);
        assert_eq!(shrew_period(rto, 1), SimDuration::from_secs(1));
        assert_eq!(shrew_period(rto, 2), SimDuration::from_millis(500));
        assert_eq!(shrew_period(rto, 4), SimDuration::from_millis(250));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_subharmonic_panics() {
        shrew_period(SimDuration::from_secs(1), 0);
    }

    #[test]
    fn classification_finds_fig10_points() {
        // Fig. 10 normal-gain case: T_AIMD = 500 ms and 1000 ms are shrew
        // points for ns-2's 1 s min RTO.
        let rto = SimDuration::from_secs(1);
        assert_eq!(
            classify_shrew(SimDuration::from_millis(1000), rto, 5, 0.05),
            Some(1)
        );
        assert_eq!(
            classify_shrew(SimDuration::from_millis(500), rto, 5, 0.05),
            Some(2)
        );
        // And the under-gain case: 1000/3 ms.
        assert_eq!(
            classify_shrew(SimDuration::from_nanos(333_333_333), rto, 5, 0.05),
            Some(3)
        );
    }

    #[test]
    fn classification_rejects_off_harmonics() {
        let rto = SimDuration::from_secs(1);
        assert_eq!(
            classify_shrew(SimDuration::from_millis(700), rto, 5, 0.05),
            None
        );
        assert_eq!(
            classify_shrew(SimDuration::from_millis(1500), rto, 5, 0.05),
            None
        );
        assert_eq!(classify_shrew(SimDuration::ZERO, rto, 5, 0.05), None);
    }

    #[test]
    fn spec_derives_space() {
        let spec = ShrewSpec {
            min_rto: SimDuration::from_secs(1),
            subharmonic: 2,
            extent: SimDuration::from_millis(100),
        };
        assert_eq!(spec.period(), SimDuration::from_millis(500));
        assert_eq!(spec.space(), SimDuration::from_millis(400));

        let wide = ShrewSpec {
            extent: SimDuration::from_millis(600),
            ..spec
        };
        assert_eq!(wide.space(), SimDuration::ZERO);
    }

    #[test]
    fn spec_builds_a_locked_train() {
        let spec = ShrewSpec {
            min_rto: SimDuration::from_secs(1),
            subharmonic: 1,
            extent: SimDuration::from_millis(50),
        };
        let train = spec.train(BitsPerSec::from_mbps(50.0)).unwrap();
        assert_eq!(train.period(), SimDuration::from_secs(1));
        assert_eq!(
            classify_shrew(train.period(), spec.min_rto, 5, 0.01),
            Some(1)
        );
    }

    proptest::proptest! {
        /// Every exact subharmonic within range classifies as itself.
        #[test]
        fn prop_exact_subharmonics_classify(n in 1u32..10) {
            let rto = SimDuration::from_secs(1);
            let period = shrew_period(rto, n);
            proptest::prop_assert_eq!(classify_shrew(period, rto, 10, 0.01), Some(n));
        }
    }
}
