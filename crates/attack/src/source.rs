//! Simulation agents that emit attack traffic.

use crate::pulse::{PulseSchedule, PulseTrain};
use pdos_sim::agent::{Agent, AgentCtx};
use pdos_sim::node::NodeId;
use pdos_sim::packet::{FlowId, Packet, PacketKind};
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::units::{BitsPerSec, Bytes};
use std::any::Any;

/// A pulsing source: replays a [`PulseTrain`] toward a target node.
///
/// Within each pulse, packets of `packet_size` are emitted back-to-back at
/// the pulse rate (`i`-th packet at `pulse_start + i · size·8/R_attack`).
/// The train stops after `max_pulses` pulses, or runs for the whole
/// simulation when unlimited.
#[derive(Debug, Clone)]
pub struct PulseSource {
    train: PulseTrain,
    flow: FlowId,
    target: NodeId,
    packet_size: Bytes,
    max_pulses: Option<u64>,
    gap: SimDuration,
    packets_per_pulse: u64,

    pulse_idx: u64,
    in_pulse_idx: u64,
    pulse_start: SimTime,
    started: bool,
    stats: SourceStats,
}

/// Counters kept by attack sources.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Attack packets emitted.
    pub packets_sent: u64,
    /// Attack bytes emitted.
    pub bytes_sent: u64,
    /// Pulses completed.
    pub pulses_completed: u64,
}

impl PulseSource {
    /// Creates a pulsing source for `flow`, aimed at `target`.
    ///
    /// # Panics
    ///
    /// Panics if `packet_size` is zero.
    pub fn new(
        train: PulseTrain,
        flow: FlowId,
        target: NodeId,
        packet_size: Bytes,
        max_pulses: Option<u64>,
    ) -> Self {
        assert!(
            packet_size != Bytes::ZERO,
            "attack packet size must be positive"
        );
        let gap = train.rate().tx_time(packet_size);
        let packets_per_pulse = train.packets_per_pulse(packet_size);
        PulseSource {
            train,
            flow,
            target,
            packet_size,
            max_pulses,
            gap,
            packets_per_pulse,
            pulse_idx: 0,
            in_pulse_idx: 0,
            pulse_start: SimTime::ZERO,
            started: false,
            stats: SourceStats::default(),
        }
    }

    /// The pulse shape this source replays.
    pub fn train(&self) -> &PulseTrain {
        &self.train
    }

    /// Counters.
    pub fn stats(&self) -> SourceStats {
        self.stats
    }

    fn emit(&mut self, ctx: &mut AgentCtx<'_>) {
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += self.packet_size.as_u64();
        ctx.send(Packet::new(
            self.flow,
            ctx.node(),
            self.target,
            self.packet_size,
            PacketKind::Attack,
        ));
    }

    /// Sends the current packet and schedules the next tick.
    fn tick(&mut self, ctx: &mut AgentCtx<'_>) {
        if let Some(max) = self.max_pulses {
            if self.pulse_idx >= max {
                return;
            }
        }
        self.emit(ctx);
        self.in_pulse_idx += 1;
        if self.in_pulse_idx < self.packets_per_pulse {
            ctx.timer_at(
                self.pulse_start + self.gap.saturating_mul(self.in_pulse_idx),
                0,
            );
        } else {
            // Pulse complete; line up the next one.
            self.stats.pulses_completed += 1;
            self.pulse_idx += 1;
            self.in_pulse_idx = 0;
            self.pulse_start += self.train.period();
            let more = self.max_pulses.is_none_or(|max| self.pulse_idx < max);
            if more {
                ctx.timer_at(self.pulse_start, 0);
            }
        }
    }
}

impl Agent for PulseSource {
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.started {
            return;
        }
        self.started = true;
        self.pulse_start = ctx.now();
        self.tick(ctx);
    }

    fn on_packet(&mut self, _packet: Packet, _ctx: &mut AgentCtx<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut AgentCtx<'_>) {
        self.tick(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Agent>> {
        Some(Box::new(self.clone()))
    }
}

/// Replays a general [`PulseSchedule`] (§2.1's varying-pulse attack):
/// each scheduled pulse is emitted with its own width, rate and trailing
/// gap, then the source stops.
#[derive(Debug, Clone)]
pub struct SchedulePulseSource {
    schedule: PulseSchedule,
    flow: FlowId,
    target: NodeId,
    packet_size: Bytes,

    pulse_idx: usize,
    in_pulse_idx: u64,
    pulse_start: SimTime,
    started: bool,
    stats: SourceStats,
}

impl SchedulePulseSource {
    /// Creates a source replaying `schedule` toward `target`.
    ///
    /// # Panics
    ///
    /// Panics if `packet_size` is zero.
    pub fn new(schedule: PulseSchedule, flow: FlowId, target: NodeId, packet_size: Bytes) -> Self {
        assert!(
            packet_size != Bytes::ZERO,
            "attack packet size must be positive"
        );
        SchedulePulseSource {
            schedule,
            flow,
            target,
            packet_size,
            pulse_idx: 0,
            in_pulse_idx: 0,
            pulse_start: SimTime::ZERO,
            started: false,
            stats: SourceStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> SourceStats {
        self.stats
    }

    fn tick(&mut self, ctx: &mut AgentCtx<'_>) {
        let Some(pulse) = self.schedule.pulses().get(self.pulse_idx) else {
            return;
        };
        let gap = pulse.rate().tx_time(self.packet_size);
        let per_pulse = pulse.packets_per_pulse(self.packet_size);

        self.stats.packets_sent += 1;
        self.stats.bytes_sent += self.packet_size.as_u64();
        ctx.send(Packet::new(
            self.flow,
            ctx.node(),
            self.target,
            self.packet_size,
            PacketKind::Attack,
        ));
        self.in_pulse_idx += 1;
        if self.in_pulse_idx < per_pulse {
            ctx.timer_at(self.pulse_start + gap.saturating_mul(self.in_pulse_idx), 0);
        } else {
            self.stats.pulses_completed += 1;
            let period = pulse.period();
            self.pulse_idx += 1;
            self.in_pulse_idx = 0;
            self.pulse_start += period;
            if self.pulse_idx < self.schedule.len() {
                ctx.timer_at(self.pulse_start, 0);
            }
        }
    }
}

impl Agent for SchedulePulseSource {
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.started {
            return;
        }
        self.started = true;
        self.pulse_start = ctx.now();
        self.tick(ctx);
    }

    fn on_packet(&mut self, _packet: Packet, _ctx: &mut AgentCtx<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut AgentCtx<'_>) {
        self.tick(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Agent>> {
        Some(Box::new(self.clone()))
    }
}

/// A constant-bit-rate source: the flooding baseline (and, with
/// `PacketKind::Background`, plain UDP cross-traffic).
#[derive(Debug, Clone)]
pub struct CbrSource {
    rate: BitsPerSec,
    flow: FlowId,
    target: NodeId,
    packet_size: Bytes,
    kind: PacketKind,
    gap: SimDuration,
    stop_at: Option<SimTime>,
    stats: SourceStats,
}

impl CbrSource {
    /// Creates a CBR source sending `kind` packets at `rate` until
    /// `stop_at` (or forever).
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `packet_size` is zero, or if `kind` is a TCP
    /// kind (CBR traffic cannot impersonate the TCP agents).
    pub fn new(
        rate: BitsPerSec,
        flow: FlowId,
        target: NodeId,
        packet_size: Bytes,
        kind: PacketKind,
        stop_at: Option<SimTime>,
    ) -> Self {
        assert!(!rate.is_zero(), "CBR rate must be positive");
        assert!(
            packet_size != Bytes::ZERO,
            "CBR packet size must be positive"
        );
        assert!(
            matches!(kind, PacketKind::Attack | PacketKind::Background),
            "CBR sources emit Attack or Background packets only"
        );
        let gap = rate.tx_time(packet_size);
        CbrSource {
            rate,
            flow,
            target,
            packet_size,
            kind,
            gap,
            stop_at,
            stats: SourceStats::default(),
        }
    }

    /// The constant sending rate.
    pub fn rate(&self) -> BitsPerSec {
        self.rate
    }

    /// Counters.
    pub fn stats(&self) -> SourceStats {
        self.stats
    }

    fn tick(&mut self, ctx: &mut AgentCtx<'_>) {
        if let Some(stop) = self.stop_at {
            if ctx.now() >= stop {
                return;
            }
        }
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += self.packet_size.as_u64();
        ctx.send(Packet::new(
            self.flow,
            ctx.node(),
            self.target,
            self.packet_size,
            self.kind,
        ));
        ctx.timer_after(self.gap, 0);
    }
}

impl Agent for CbrSource {
    fn start(&mut self, ctx: &mut AgentCtx<'_>) {
        self.tick(ctx);
    }

    fn on_packet(&mut self, _packet: Packet, _ctx: &mut AgentCtx<'_>) {}

    fn on_timer(&mut self, _token: u64, ctx: &mut AgentCtx<'_>) {
        self.tick(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn clone_box(&self) -> Option<Box<dyn Agent>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdos_sim::agent::Effect;

    fn train() -> PulseTrain {
        // 10 ms pulses at 8 Mbps -> 10 kB per pulse -> 10 packets of 1 kB.
        PulseTrain::new(
            SimDuration::from_millis(10),
            BitsPerSec::from_mbps(8.0),
            SimDuration::from_millis(90),
        )
        .unwrap()
    }

    fn drive_timers(agent: &mut dyn Agent, until: SimTime) -> Vec<(SimTime, Packet)> {
        // A miniature scheduler for a single agent: applies its timer
        // effects in order.
        let mut out = Vec::new();
        let mut pending: Vec<(SimTime, u64)> = Vec::new();
        let mut fx = Vec::new();
        {
            let mut ctx = AgentCtx::new(SimTime::ZERO, NodeId::from_u32(0), &mut fx);
            agent.start(&mut ctx);
        }
        loop {
            for e in fx.drain(..) {
                match e {
                    Effect::Send(p) => {
                        out.push((out.last().map(|(t, _)| *t).unwrap_or(SimTime::ZERO), p))
                    }
                    Effect::TimerAt { at, token } => pending.push((at, token)),
                    Effect::CancelTimer { token } => pending.retain(|&(_, t)| t != token),
                }
            }
            pending.sort_by_key(|(at, _)| *at);
            let Some((at, token)) = (if pending.is_empty() {
                None
            } else {
                Some(pending.remove(0))
            }) else {
                break;
            };
            if at > until {
                break;
            }
            let mut ctx = AgentCtx::new(at, NodeId::from_u32(0), &mut fx);
            agent.on_timer(token, &mut ctx);
            // tag sends with the firing time
            for e in &fx {
                if let Effect::Send(p) = e {
                    out.push((at, *p));
                }
            }
            fx.retain(|e| !matches!(e, Effect::Send(_)));
        }
        out
    }

    #[test]
    fn pulse_source_emits_expected_volume() {
        let mut src = PulseSource::new(
            train(),
            FlowId::from_u32(100),
            NodeId::from_u32(5),
            Bytes::from_u64(1000),
            Some(3),
        );
        let sent = drive_timers(&mut src, SimTime::from_secs(10));
        // 3 pulses x 10 packets.
        assert_eq!(sent.len(), 30);
        assert_eq!(src.stats().packets_sent, 30);
        assert_eq!(src.stats().pulses_completed, 3);
        assert_eq!(src.stats().bytes_sent, 30_000);
        assert!(sent.iter().all(|(_, p)| p.kind == PacketKind::Attack));
    }

    #[test]
    fn pulse_timing_respects_period() {
        let mut src = PulseSource::new(
            train(),
            FlowId::from_u32(100),
            NodeId::from_u32(5),
            Bytes::from_u64(1000),
            Some(2),
        );
        let sent = drive_timers(&mut src, SimTime::from_secs(10));
        // First packet of second pulse fires exactly one period (100 ms) in.
        let second_pulse_first = sent[10].0;
        assert_eq!(second_pulse_first, SimTime::from_millis(100));
        // Packets within a pulse are gap-spaced: 1 kB at 8 Mbps = 1 ms.
        assert_eq!(sent[1].0, SimTime::from_millis(1));
        assert_eq!(sent[9].0, SimTime::from_millis(9));
    }

    #[test]
    fn unlimited_train_keeps_pulsing() {
        let mut src = PulseSource::new(
            train(),
            FlowId::from_u32(100),
            NodeId::from_u32(5),
            Bytes::from_u64(1000),
            None,
        );
        let sent = drive_timers(&mut src, SimTime::from_millis(450));
        // Pulses at 0, 100, 200, 300, 400 ms: 5 pulses under way, the last
        // truncated by the horizon at 450 ms (all 10 packets fit in 10 ms).
        assert_eq!(sent.len(), 50);
    }

    #[test]
    fn cbr_source_is_constant_rate() {
        let mut src = CbrSource::new(
            BitsPerSec::from_mbps(8.0),
            FlowId::from_u32(100),
            NodeId::from_u32(5),
            Bytes::from_u64(1000),
            PacketKind::Background,
            Some(SimTime::from_millis(10)),
        );
        let sent = drive_timers(&mut src, SimTime::from_secs(1));
        // One packet per ms for 10 ms (the stop time cuts the stream).
        assert_eq!(sent.len(), 10);
        assert!(sent.iter().all(|(_, p)| p.kind == PacketKind::Background));
    }

    #[test]
    fn schedule_source_replays_varying_pulses() {
        // Two pulses: 10 pkts at 8 Mbps, then 5 pkts at 4 Mbps, 100 ms
        // period each.
        let p1 = PulseTrain::new(
            SimDuration::from_millis(10),
            BitsPerSec::from_mbps(8.0),
            SimDuration::from_millis(90),
        )
        .unwrap();
        let p2 = PulseTrain::new(
            SimDuration::from_millis(10),
            BitsPerSec::from_mbps(4.0),
            SimDuration::from_millis(90),
        )
        .unwrap();
        let sched = PulseSchedule::new(vec![p1, p2]).unwrap();
        let mut src = SchedulePulseSource::new(
            sched,
            FlowId::from_u32(1),
            NodeId::from_u32(5),
            Bytes::from_u64(1000),
        );
        let sent = drive_timers(&mut src, SimTime::from_secs(5));
        // Pulse 1: 10 kB = 10 pkts; pulse 2: 5 kB = 5 pkts; then stops.
        assert_eq!(sent.len(), 15);
        assert_eq!(src.stats().pulses_completed, 2);
        // Second pulse starts exactly one period (100 ms) in.
        assert_eq!(sent[10].0, SimTime::from_millis(100));
        // Its packets are spaced at the *second* pulse's rate: 2 ms.
        assert_eq!(sent[11].0, SimTime::from_millis(102));
    }

    #[test]
    fn flood_degenerate_train_matches_cbr_volume() {
        // A pulse train with T_space = 0 is a flood (§2.1): over the same
        // horizon it must emit the same volume as a CBR source at the
        // pulse rate.
        let flood_train = PulseTrain::new(
            SimDuration::from_millis(10),
            BitsPerSec::from_mbps(8.0),
            SimDuration::ZERO,
        )
        .unwrap();
        assert!(flood_train.is_flood());
        let mut pulsed = PulseSource::new(
            flood_train,
            FlowId::from_u32(1),
            NodeId::from_u32(5),
            Bytes::from_u64(1000),
            None,
        );
        let mut cbr = CbrSource::new(
            BitsPerSec::from_mbps(8.0),
            FlowId::from_u32(1),
            NodeId::from_u32(5),
            Bytes::from_u64(1000),
            PacketKind::Attack,
            Some(SimTime::from_millis(100)),
        );
        let a = drive_timers(&mut pulsed, SimTime::from_millis(100)).len();
        let b = drive_timers(&mut cbr, SimTime::from_millis(100)).len();
        assert!(
            a.abs_diff(b) <= 1,
            "flood-degenerate pulse train ({a} pkts) must match CBR ({b} pkts)"
        );
    }

    #[test]
    fn source_stats_track_bytes_and_pulses() {
        let mut src = CbrSource::new(
            BitsPerSec::from_mbps(8.0),
            FlowId::from_u32(1),
            NodeId::from_u32(5),
            Bytes::from_u64(500),
            PacketKind::Attack,
            Some(SimTime::from_millis(5)),
        );
        let sent = drive_timers(&mut src, SimTime::from_secs(1));
        assert_eq!(src.stats().packets_sent as usize, sent.len());
        assert_eq!(src.stats().bytes_sent, 500 * sent.len() as u64);
        assert_eq!(src.rate().as_mbps(), 8.0);
    }

    #[test]
    #[should_panic(expected = "Attack or Background")]
    fn cbr_rejects_tcp_kinds() {
        CbrSource::new(
            BitsPerSec::from_mbps(1.0),
            FlowId::from_u32(1),
            NodeId::from_u32(0),
            Bytes::from_u64(100),
            PacketKind::Ack { cum_seq: 0 },
            None,
        );
    }

    #[test]
    #[should_panic(expected = "packet size")]
    fn pulse_source_rejects_zero_packet() {
        PulseSource::new(
            train(),
            FlowId::from_u32(1),
            NodeId::from_u32(0),
            Bytes::ZERO,
            None,
        );
    }
}
