//! Ablation: aggregate-based congestion control (the paper's [19]) as a
//! PDoS defense. Sweeps γ with and without the ACC penalty box on the
//! bottleneck and compares the attack gain.

use pdos_bench::{fast_mode, standard_gammas, warmup, window};
use pdos_scenarios::prelude::*;

fn sweep_for(queue: BottleneckQueue) -> GainSweep {
    let flows = if fast_mode() { 6 } else { 12 };
    let mut spec = ScenarioSpec::ns2_dumbbell(flows);
    spec.queue = queue;
    let exp = GainExperiment::new(spec).warmup(warmup()).window(window());
    exp.sweep(0.075, 30e6, &standard_gammas())
        .expect("sweep runs")
}

fn main() {
    println!("=== Ablation: ACC (pushback) defense vs plain RED (75 ms pulses, 30 Mbps) ===\n");
    let red = sweep_for(BottleneckQueue::Red);
    let acc = sweep_for(BottleneckQueue::AccRed);

    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10}",
        "gamma", "Γ:RED", "G:RED", "Γ:ACC", "G:ACC"
    );
    let mut red_mean = 0.0;
    let mut acc_mean = 0.0;
    for (r, a) in red.points.iter().zip(&acc.points) {
        println!(
            "{:>6.2} | {:>10.3} {:>10.3} | {:>10.3} {:>10.3}",
            r.gamma, r.degradation_sim, r.g_sim, a.degradation_sim, a.g_sim
        );
        red_mean += r.g_sim;
        acc_mean += a.g_sim;
    }
    red_mean /= red.points.len() as f64;
    acc_mean /= acc.points.len() as f64;
    println!("\nmean gain: RED {red_mean:.3} vs ACC {acc_mean:.3}");
    println!("ACC identifies the line-rate-busting aggregate within two epochs and");
    println!("rate-limits it — the defense that catches what volume detectors miss.");
}
