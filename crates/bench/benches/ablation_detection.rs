//! Ablation: the modelled risk factor (1-γ)^κ vs measured detectability.
//! Sweeps γ and runs the flooding (rate) detector and the DTW waveform
//! detector against the bottleneck's incoming traffic.

use pdos_analysis::gain::RiskPreference;
use pdos_attack::pulse::PulseTrain;
use pdos_bench::fast_mode;
use pdos_detect::prelude::*;
use pdos_scenarios::prelude::*;
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::trace::TraceFilter;
use pdos_sim::units::BitsPerSec;

fn main() {
    println!("=== Ablation: modelled risk factor vs measured detectability ===\n");
    let flows = if fast_mode() { 6 } else { 10 };
    let spec = ScenarioSpec::ns2_dumbbell(flows);
    let bin = SimDuration::from_millis(100);
    let warm = SimDuration::from_secs(5);
    let win = SimDuration::from_secs(if fast_mode() { 15 } else { 40 });
    let (t_extent, r_attack) = (0.075, 30e6);

    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>10}",
        "gamma", "(1-g)^1", "rate-alarm", "dtw-match", "ewma-util"
    );
    for gamma in [0.1, 0.2, 0.35, 0.5, 0.7, 0.9] {
        let train = PulseTrain::from_gamma(
            SimDuration::from_secs_f64(t_extent),
            BitsPerSec::from_bps(r_attack),
            spec.bottleneck,
            gamma,
        )
        .expect("feasible gamma");
        let period_bins =
            ((train.period().as_nanos() as f64) / (bin.as_nanos() as f64)).round() as usize;

        let mut bench = spec.build().expect("builds");
        let trace = bench.trace_bottleneck(TraceFilter::All, bin);
        bench.attach_pulse_attack(train, SimTime::ZERO + warm, None);
        bench.run_until(SimTime::ZERO + warm + win);
        let first = (warm.as_nanos() / bin.as_nanos()) as usize;
        let bytes: Vec<u64> = bench.sim.trace(trace).bytes_per_bin()[first..].to_vec();

        let rate =
            RateDetector::conventional(spec.bottleneck.as_bps(), bin.as_secs_f64()).run(&bytes);
        let dtw = if (4..=bytes.len()).contains(&period_bins) {
            let on = ((t_extent / bin.as_secs_f64()).round() as usize).clamp(1, period_bins - 1);
            let series: Vec<f64> = bytes.iter().map(|&b| b as f64).collect();
            DtwPulseDetector::new(period_bins, on, 0.75, Some(period_bins / 2))
                .sweep(&series)
                .detected
        } else {
            false
        };
        println!(
            "{:>6.2} {:>10.3} {:>12} {:>12} {:>10.3}",
            gamma,
            RiskPreference::NEUTRAL.factor(gamma),
            if rate.detected { "ALARM" } else { "quiet" },
            if dtw { "MATCH" } else { "miss" },
            rate.final_utilization,
        );
    }
    println!("\nThe volume detector's alarm boundary tracks the (1-gamma) risk model;");
    println!("DTW sees the waveform even at low gamma - the evasion costs the paper cites.");
}
