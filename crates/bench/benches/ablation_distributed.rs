//! Ablation: distributed pulsing. Synchronized bots reproduce the
//! single-attacker damage; staggered bots (same aggregate volume) lose
//! the pulse concentration the PDoS effect depends on — and become easier
//! prey for the volume detector because the traffic looks smoother.

use pdos_attack::pulse::PulseTrain;
use pdos_bench::fast_mode;
use pdos_detect::prelude::*;
use pdos_scenarios::prelude::*;
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::trace::TraceFilter;
use pdos_sim::units::BitsPerSec;

fn main() {
    println!(
        "=== Ablation: distributed pulsing (aggregate 30 Mbps, 75 ms pulses, gamma=0.4) ===\n"
    );
    let flows = if fast_mode() { 6 } else { 12 };
    let spec = ScenarioSpec::ns2_dumbbell(flows);
    let warm = SimTime::from_secs(8);
    let secs = if fast_mode() { 15 } else { 40 };
    let end = warm + SimDuration::from_secs(secs);
    let bin = SimDuration::from_millis(100);

    // Baseline.
    let mut base = spec.build().expect("builds");
    base.run_until(warm);
    let b0 = base.goodput_bytes();
    base.run_until(end);
    let baseline = base.goodput_bytes() - b0;

    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>14}",
        "sources", "phasing", "degradation", "rate-alarm", "spectral"
    );
    for (n, phasing) in [
        (1, AttackPhasing::Synchronized),
        (4, AttackPhasing::Synchronized),
        (8, AttackPhasing::Synchronized),
        (4, AttackPhasing::Staggered),
        (8, AttackPhasing::Staggered),
    ] {
        let train = PulseTrain::new(
            SimDuration::from_millis(75),
            BitsPerSec::from_mbps(30.0),
            SimDuration::from_millis(300),
        )
        .expect("valid train");
        let mut bench = spec.build().expect("builds");
        let trace = bench.trace_bottleneck(TraceFilter::All, bin);
        bench
            .attach_distributed_pulse_attack(train, warm, n, phasing)
            .expect("feasible");
        bench.run_until(warm);
        let g0 = bench.goodput_bytes();
        bench.run_until(end);
        let degradation = 1.0 - (bench.goodput_bytes() - g0) as f64 / baseline as f64;

        let first = (warm.as_nanos() / bin.as_nanos()) as usize;
        let bytes: Vec<u64> = bench.sim.trace(trace).bytes_per_bin()[first..].to_vec();
        let rate = RateDetector::conventional(15e6, bin.as_secs_f64()).run(&bytes);
        let series: Vec<f64> = bytes.iter().map(|&b| b as f64).collect();
        let spectral = SpectralDetector::new(2, 40, 15.0).sweep(&series);

        println!(
            "{:>10} {:>12} {:>14.3} {:>12} {:>14}",
            n,
            format!("{phasing:?}"),
            degradation,
            if rate.detected { "ALARM" } else { "quiet" },
            spectral
                .dominant_period
                .map(|p| format!("T~{:.1}s", p as f64 * bin.as_secs_f64()))
                .unwrap_or_else(|| "none".into()),
        );
    }
    println!("\nSynchronization is load-bearing: staggered bots deliver the same bytes");
    println!("but much less damage (pulse amplitude falls below the buffer).");
}
