//! Ablation: mice vs elephants under a pulsing attack — the population
//! split of the shrew paper's title ("the shrew vs. the mice and
//! elephants"). Short request/response flows must restart from slow start
//! after every pulse-induced loss, so the attack hits them relatively
//! harder than the greedy bulk flows.

use pdos_attack::pulse::PulseTrain;
use pdos_bench::fast_mode;
use pdos_scenarios::spec::ScenarioSpec;
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::units::BitsPerSec;
use pdos_tcp::sender::TcpSender;

struct ClassGoodput {
    mice: u64,
    elephants: u64,
}

fn run(attacked: bool) -> ClassGoodput {
    let mut spec = ScenarioSpec::ns2_dumbbell(if fast_mode() { 6 } else { 12 });
    spec.mice_flows = spec.n_flows / 2;
    let warm = SimTime::from_secs(8);
    let secs: u64 = if fast_mode() { 15 } else { 40 };
    let end = warm + SimDuration::from_secs(secs);

    let mut bench = spec.build().expect("builds");
    if attacked {
        let train = PulseTrain::new(
            SimDuration::from_millis(75),
            BitsPerSec::from_mbps(30.0),
            SimDuration::from_millis(300),
        )
        .expect("valid train");
        bench.attach_pulse_attack(train, warm, None);
    }
    bench.run_until(warm);
    let before = bench.goodput_per_flow();
    bench.run_until(end);
    let after = bench.goodput_per_flow();

    let mut out = ClassGoodput {
        mice: 0,
        elephants: 0,
    };
    for (i, h) in bench.flows.iter().enumerate() {
        let is_mouse = bench
            .sim
            .agent_as::<TcpSender>(h.sender)
            .expect("sender")
            .stats()
            .bursts_completed
            > 0
            || {
                // A mouse under heavy attack may never finish a burst;
                // identify by configuration instead (odd index first).
                i % 2 == 1
            };
        let delivered = after[i] - before[i];
        if is_mouse {
            out.mice += delivered;
        } else {
            out.elephants += delivered;
        }
    }
    out
}

fn main() {
    println!("=== Ablation: mice vs elephants under PDoS (gamma = 0.4) ===\n");
    let base = run(false);
    let hit = run(true);
    let deg = |b: u64, a: u64| 1.0 - a as f64 / b.max(1) as f64;

    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "class", "baseline(MB)", "attacked(MB)", "degradation"
    );
    println!(
        "{:>12} {:>14.2} {:>14.2} {:>14.3}",
        "mice",
        base.mice as f64 / 1e6,
        hit.mice as f64 / 1e6,
        deg(base.mice, hit.mice)
    );
    println!(
        "{:>12} {:>14.2} {:>14.2} {:>14.3}",
        "elephants",
        base.elephants as f64 / 1e6,
        hit.elephants as f64 / 1e6,
        deg(base.elephants, hit.elephants)
    );
    println!("\nThe bulk (elephant) flows lose almost everything; the mice, whose");
    println!("demand is think-time-limited rather than bandwidth-limited, retain a");
    println!("larger fraction of their (small) demand — PDoS is above all a");
    println!("bulk-transfer throttle, which is also why volume detectors miss it.");
}
