//! Ablation: pulse width at fixed normalized rate. Eq. (11) makes C_Ψ
//! proportional to T_extent, so at fixed γ the FR-only model predicts
//! *less* degradation for wider pulses (the period grows with the width,
//! leaving more recovery time). Simulation says the opposite (§4.1.1:
//! "the longer the duration of each attack pulse is, the more severe the
//! PDoS attack") because wider pulses at the same height drop packets
//! from more flows and force timeouts. This bench prints both sides of
//! that disagreement — the under/over-gain story in one axis.

use pdos_analysis::model::{c_psi, degradation};
use pdos_bench::{experiment, fast_mode};
use pdos_scenarios::spec::ScenarioSpec;

fn main() {
    println!("=== Ablation: pulse width at fixed gamma = 0.4 (R_attack = 30 Mbps) ===\n");
    let flows = if fast_mode() { 6 } else { 15 };
    let exp = experiment(flows);
    let victims = ScenarioSpec::ns2_dumbbell(flows).victims();
    let baseline = exp.baseline_bytes().expect("baseline runs");
    let (gamma, r_attack) = (0.4, 30e6);

    println!(
        "{:>10} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "T_extent", "T_AIMD", "Γ_model", "Γ_sim", "TOs", "FRs"
    );
    for t_extent_ms in [25.0, 50.0, 75.0, 100.0, 150.0, 200.0] {
        let t_extent = t_extent_ms / 1000.0;
        let c = c_psi(&victims, t_extent, r_attack).expect("valid");
        let p = exp
            .run_point(t_extent, r_attack, gamma, baseline)
            .expect("point runs");
        println!(
            "{:>8}ms {:>7.2}s {:>10.3} {:>10.3} {:>8} {:>8}",
            t_extent_ms,
            p.t_aimd,
            degradation(gamma, c),
            p.degradation_sim,
            p.timeouts,
            p.fast_recoveries
        );
    }
    println!("\nThe FR-only model's Γ *falls* with pulse width (C_Ψ ∝ T_extent), while");
    println!("the measured Γ *rises*: wide pulses push flows into timeout — exactly");
    println!("the regime split behind the paper's under/over-gain classification.");
}
