//! Ablation (Sec. 5 forward-looking claim): a PDoS attacker gains more
//! against a RED bottleneck than against a drop-tail bottleneck.

use pdos_bench::{fast_mode, standard_gammas, warmup, window};
use pdos_scenarios::prelude::*;

fn sweep_for(queue: BottleneckQueue) -> GainSweep {
    let flows = if fast_mode() { 8 } else { 15 };
    let mut spec = ScenarioSpec::ns2_dumbbell(flows);
    spec.queue = queue;
    let exp = GainExperiment::new(spec).warmup(warmup()).window(window());
    exp.sweep(0.075, 30e6, &standard_gammas())
        .expect("sweep runs")
}

fn main() {
    println!("=== Ablation: RED vs DropTail bottleneck (75 ms pulses, 30 Mbps) ===\n");
    let red = sweep_for(BottleneckQueue::Red);
    let droptail = sweep_for(BottleneckQueue::DropTail);

    println!(
        "{:>6} | {:>10} {:>10} | {:>10} {:>10}",
        "gamma", "G_sim:RED", "Γ:RED", "G_sim:DT", "Γ:DT"
    );
    let mut red_mean = 0.0;
    let mut dt_mean = 0.0;
    for (r, d) in red.points.iter().zip(&droptail.points) {
        println!(
            "{:>6.2} | {:>10.3} {:>10.3} | {:>10.3} {:>10.3}",
            r.gamma, r.g_sim, r.degradation_sim, d.g_sim, d.degradation_sim
        );
        red_mean += r.g_sim;
        dt_mean += d.g_sim;
    }
    red_mean /= red.points.len() as f64;
    dt_mean /= droptail.points.len() as f64;
    println!("\nmean gain: RED {red_mean:.3} vs DropTail {dt_mean:.3}");
    println!(
        "paper's Sec. 5 claim (RED >= DropTail): {}",
        if red_mean >= dt_mean - 0.02 {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}
