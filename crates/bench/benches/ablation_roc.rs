//! Ablation: detector ROC vs attack rate. For each γ, simulated benign
//! and attacked traces (independent derived seeds) feed the spectral
//! detector's threshold sweep; the AUC quantifies how *detectable* the
//! attack really is — the measured counterpart of the (1-γ)^κ exposure
//! model. All traces are generated in one pass of the parallel
//! deterministic runner.

use pdos_bench::fast_mode;
use pdos_detect::roc::{auc, roc_curve};
use pdos_detect::spectral::SpectralDetector;
use pdos_scenarios::figures::{roc_specs, ROC_GAMMAS};
use pdos_scenarios::runner::{RunOutcome, SeedPolicy, SweepRunner};
use pdos_sim::time::SimDuration;

fn main() {
    println!("=== Ablation: spectral-detector ROC vs attack rate ===\n");
    let (n_traces, secs): (u64, u64) = if fast_mode() { (4, 15) } else { (8, 30) };
    let thresholds = [4.0, 8.0, 15.0, 30.0, 60.0];

    // `Derived` gives every replica its own seed from master ‖ spec hash;
    // replica ids differ, so benign traces differ without hand-picking
    // seeds the way the old serial loop did.
    let specs = roc_specs(n_traces, SimDuration::from_secs(secs));
    let report = SweepRunner::new(1)
        .seed_policy(SeedPolicy::Derived)
        .run(&specs);

    let mut benign: Vec<Vec<u64>> = Vec::new();
    let mut attacked: Vec<(f64, Vec<u64>)> = Vec::new();
    for (spec, record) in specs.iter().zip(&report.records) {
        match &record.outcome {
            RunOutcome::Benign { trace, .. } => benign.push(trace.clone()),
            RunOutcome::Point { trace, .. } => {
                let gamma = spec.attack.expect("attacked spec").gamma;
                attacked.push((gamma, trace.clone()));
            }
            other => panic!("{} failed: {other:?}", record.id),
        }
    }

    println!(
        "{:>6} {:>8} {:>30}",
        "gamma", "AUC", "best (tpr, fpr) point"
    );
    for gamma in ROC_GAMMAS {
        let traces: Vec<Vec<u64>> = attacked
            .iter()
            .filter(|(g, _)| (g - gamma).abs() < 1e-9)
            .map(|(_, t)| t.clone())
            .collect();
        let points = roc_curve(&benign, &traces, &thresholds, |th, t| {
            let series: Vec<f64> = t.iter().map(|&b| b as f64).collect();
            SpectralDetector::new(3, 60, th).sweep(&series).detected
        });
        let best = points
            .iter()
            .max_by(|a, b| {
                (a.tpr - a.fpr)
                    .partial_cmp(&(b.tpr - b.fpr))
                    .expect("finite")
            })
            .expect("non-empty");
        println!(
            "{:>6.2} {:>8.3} {:>20}",
            gamma,
            auc(&points),
            format!(
                "tpr {:.2} / fpr {:.2} @ th {}",
                best.tpr, best.fpr, best.threshold
            )
        );
    }
    println!(
        "\n[runner] {} traces on {} workers: wall {:.1}s, speedup {:.2}x",
        report.records.len(),
        report.jobs,
        report.wall.as_secs_f64(),
        report.cpu_time().as_secs_f64() / report.wall.as_secs_f64().max(1e-9),
    );
    println!("\nPeriodicity betrays the attack at low gamma — exactly where the volume");
    println!("detector (and the (1-gamma)^kappa model) says the attacker is safest.");
    println!("At high gamma the period shrinks below the 100 ms sampling bins and the");
    println!("spectral AUC collapses: the detector's blind spot mirrors the paper's");
    println!("remark that waveform detectors fail once T_extent drops below the");
    println!("sampling period (Sec. 1.1).");
}
