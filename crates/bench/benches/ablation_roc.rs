//! Ablation: detector ROC vs attack rate. For each γ, simulated benign
//! and attacked traces (different seeds) feed the spectral detector's
//! threshold sweep; the AUC quantifies how *detectable* the attack really
//! is — the measured counterpart of the (1-γ)^κ exposure model.

use pdos_attack::pulse::PulseTrain;
use pdos_bench::fast_mode;
use pdos_detect::roc::{auc, roc_curve};
use pdos_detect::spectral::SpectralDetector;
use pdos_scenarios::spec::ScenarioSpec;
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::trace::TraceFilter;
use pdos_sim::units::BitsPerSec;

fn trace(seed: u64, gamma: Option<f64>, secs: u64) -> Vec<u64> {
    let mut spec = ScenarioSpec::ns2_dumbbell(8);
    spec.seed = seed;
    // Perturb flow start phases per seed so benign traces differ.
    spec.start_stagger = SimDuration::from_millis(89 + seed % 37);
    let bin = SimDuration::from_millis(100);
    let warm = SimTime::from_secs(5);
    let mut bench = spec.build().expect("builds");
    let id = bench.trace_bottleneck(TraceFilter::All, bin);
    if let Some(g) = gamma {
        let train = PulseTrain::from_gamma(
            SimDuration::from_millis(75),
            BitsPerSec::from_mbps(30.0),
            spec.bottleneck,
            g,
        )
        .expect("feasible");
        bench.attach_pulse_attack(train, warm, None);
    }
    bench.run_until(warm + SimDuration::from_secs(secs));
    let first = 50; // skip warm-up bins
    bench.sim.trace(id).bytes_per_bin()[first..].to_vec()
}

fn main() {
    println!("=== Ablation: spectral-detector ROC vs attack rate ===\n");
    let (n_traces, secs): (u64, u64) = if fast_mode() { (4, 15) } else { (8, 30) };
    let thresholds = [4.0, 8.0, 15.0, 30.0, 60.0];

    let benign: Vec<Vec<u64>> = (0..n_traces).map(|s| trace(s + 1, None, secs)).collect();
    println!("{:>6} {:>8} {:>30}", "gamma", "AUC", "best (tpr, fpr) point");
    for gamma in [0.1, 0.2, 0.4, 0.7] {
        let attacked: Vec<Vec<u64>> = (0..n_traces)
            .map(|s| trace(s + 100, Some(gamma), secs))
            .collect();
        let points = roc_curve(&benign, &attacked, &thresholds, |th, t| {
            let series: Vec<f64> = t.iter().map(|&b| b as f64).collect();
            SpectralDetector::new(3, 60, th).sweep(&series).detected
        });
        let best = points
            .iter()
            .max_by(|a, b| {
                (a.tpr - a.fpr)
                    .partial_cmp(&(b.tpr - b.fpr))
                    .expect("finite")
            })
            .expect("non-empty");
        println!(
            "{:>6.2} {:>8.3} {:>20}",
            gamma,
            auc(&points),
            format!("tpr {:.2} / fpr {:.2} @ th {}", best.tpr, best.fpr, best.threshold)
        );
    }
    println!("\nPeriodicity betrays the attack at low gamma — exactly where the volume");
    println!("detector (and the (1-gamma)^kappa model) says the attacker is safest.");
    println!("At high gamma the period shrinks below the 100 ms sampling bins and the");
    println!("spectral AUC collapses: the detector's blind spot mirrors the paper's");
    println!("remark that waveform detectors fail once T_extent drops below the");
    println!("sampling period (Sec. 1.1).");
}
