//! Baseline: the shrew attack's double-dip throughput curve (Kuzmanovic &
//! Knightly, SIGCOMM 2003 — the paper's reference [10]). Sweeps the pulse
//! period `T` across the shrew nulls of the 1 s minimum RTO and compares
//! the measured normalized victim throughput with the analytic ρ(T).
//!
//! This validates the workspace's shrew-model module against the
//! simulator, and exhibits the structural contrast with the AIMD gain
//! model: ρ(T) has nulls at min_rto/n, Γ(γ) does not.

use pdos_analysis::shrew_model::shrew_throughput;
use pdos_attack::pulse::PulseTrain;
use pdos_bench::fast_mode;
use pdos_scenarios::spec::ScenarioSpec;
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::units::BitsPerSec;

fn main() {
    println!("=== Baseline: shrew double-dip curve (min RTO = 1 s) ===\n");
    // Homogeneous short-RTT victims: each pulse wipes a whole window
    // (timeout), and RTT << T lets the flow recover to full rate inside
    // the inter-pulse gap — the regime where K&K's fluid model ρ(T) =
    // (⌈RTO/T⌉·T − RTO)/(⌈RTO/T⌉·T) applies.
    let mut spec = ScenarioSpec::ns2_dumbbell(if fast_mode() { 4 } else { 6 });
    spec.rtt_lo = 0.080;
    spec.rtt_hi = 0.100;

    let warm = SimTime::from_secs(6);
    let secs: u64 = if fast_mode() { 20 } else { 50 };
    let end = warm + SimDuration::from_secs(secs);

    // Baseline without attack.
    let mut base = spec.build().expect("builds");
    base.run_until(warm);
    let b0 = base.goodput_bytes();
    base.run_until(end);
    let baseline = (base.goodput_bytes() - b0) as f64;

    println!(
        "{:>8} {:>12} {:>12} {:>8}",
        "T (s)", "rho_model", "rho_sim", "null?"
    );
    let periods_ms: &[u64] = &[
        330, 400, 500, 600, 700, 800, 900, 1000, 1100, 1300, 1500, 1800, 2200, 2600, 3000,
    ];
    for &t_ms in periods_ms {
        let train = PulseTrain::new(
            SimDuration::from_millis(50),
            BitsPerSec::from_mbps(50.0),
            SimDuration::from_millis(t_ms - 50),
        )
        .expect("valid train");
        let mut bench = spec.build().expect("builds");
        bench.attach_pulse_attack(train, warm, None);
        bench.run_until(warm);
        let g0 = bench.goodput_bytes();
        bench.run_until(end);
        let rho_sim = (bench.goodput_bytes() - g0) as f64 / baseline;
        let t = t_ms as f64 / 1000.0;
        let rho_model = shrew_throughput(t, 1.0);
        let is_null = [1.0f64, 0.5, 1.0 / 3.0]
            .iter()
            .any(|n| (t - n).abs() / n < 0.02);
        println!(
            "{:>8.2} {:>12.3} {:>12.3} {:>8}",
            t,
            rho_model,
            rho_sim,
            if is_null { "<- null" } else { "" }
        );
    }
    println!("\nExpect rho_sim dips near T = 1.0 s and 0.5 s (and 1/3 s), recovering");
    println!("between and beyond them — the Kuzmanovic & Knightly signature.");
}
