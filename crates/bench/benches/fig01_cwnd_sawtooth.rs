//! Figure 1: the cwnd trajectory under a fixed-period AIMD attack —
//! transient convergence, then a steady sawtooth whose pre-epoch peaks
//! follow Eq. (1)'s fixed point and the W_{n+1} = b·W_n + (a/d)(T/RTT)
//! recursion.

use pdos_analysis::model::{converged_window, window_trajectory};
use pdos_attack::pulse::PulseTrain;
use pdos_scenarios::spec::ScenarioSpec;
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::units::BitsPerSec;
use pdos_tcp::sender::TcpSender;
use pdos_tcp::stats::CwndSample;

fn main() {
    println!("=== Fig. 1: cwnd under an AIMD-based attack with fixed period ===");
    let mut spec = ScenarioSpec::ns2_dumbbell(1);
    spec.rtt_lo = 0.200;
    spec.rtt_hi = 0.200;
    spec.tcp.record_cwnd = true;

    let t_aimd = 2.0;
    let train = PulseTrain::new(
        SimDuration::from_millis(100),
        BitsPerSec::from_mbps(40.0),
        SimDuration::from_millis(1900),
    )
    .expect("valid train");
    let attack_start = SimTime::from_secs(10);

    let mut bench = spec.build().expect("builds");
    bench.attach_pulse_attack(train, attack_start, None);
    bench.run_until(SimTime::from_secs(50));

    let sender = bench
        .sim
        .agent_as::<TcpSender>(bench.flows[0].sender)
        .expect("sender");
    let trace: Vec<&CwndSample> = sender.cwnd_trace().iter().collect();

    // Windows just before each attack epoch (sampled at epoch - 10 ms).
    let mut pre_epoch = Vec::new();
    for k in 0..20u64 {
        let epoch = attack_start + SimDuration::from_secs_f64(t_aimd * k as f64);
        let probe = epoch - SimDuration::from_millis(10);
        if let Some(s) = trace.iter().rev().find(|s| s.at <= probe) {
            pre_epoch.push(s.cwnd);
        }
    }

    let w1 = pre_epoch.first().copied().unwrap_or(0.0);
    let predicted = window_trajectory(1.0, 0.5, 2.0, t_aimd, 0.200, w1, pre_epoch.len());
    let w_bar = converged_window(1.0, 0.5, 2.0, t_aimd, 0.200);

    println!("Eq. (1) converged window W_bar = {w_bar:.1} segments\n");
    println!("{:>6} {:>12} {:>12}", "epoch", "W_sim", "W_model");
    for (i, (sim, model)) in pre_epoch.iter().zip(&predicted).enumerate() {
        println!("{i:>6} {sim:>12.1} {model:>12.1}");
    }
    let steady: Vec<f64> = pre_epoch.iter().skip(10).copied().collect();
    if !steady.is_empty() {
        let mean = steady.iter().sum::<f64>() / steady.len() as f64;
        println!("\nsteady-phase mean pre-epoch window: {mean:.1} (model {w_bar:.1})");
    }
}
