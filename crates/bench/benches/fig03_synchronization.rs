//! Figure 3: the quasi-global synchronization phenomenon. (a) the ns-2
//! environment: 24 flows, 50 ms / 100 Mbps pulses every 2 s -> 30 peaks
//! per minute; (b) the test-bed environment: 15 flows, 100 ms / 50 Mbps
//! pulses every 2.5 s -> 24 peaks per minute.

use pdos_attack::pulse::PulseTrain;
use pdos_bench::{fast_mode, render_strip};
use pdos_scenarios::spec::ScenarioSpec;
use pdos_scenarios::sync::SyncExperiment;
use pdos_sim::time::SimDuration;
use pdos_sim::units::BitsPerSec;

fn run_case(
    label: &str,
    spec: ScenarioSpec,
    extent_ms: u64,
    rate_mbps: f64,
    space_ms: u64,
    expected_peaks_per_min: usize,
) {
    let window_secs: u64 = if fast_mode() { 20 } else { 60 };
    let train = PulseTrain::new(
        SimDuration::from_millis(extent_ms),
        BitsPerSec::from_mbps(rate_mbps),
        SimDuration::from_millis(space_ms),
    )
    .expect("valid train");
    let expected = train.period().as_secs_f64();
    let result = SyncExperiment::new(spec)
        .warmup(SimDuration::from_secs(8))
        .window(SimDuration::from_secs(window_secs))
        .run(train)
        .expect("sync experiment runs");

    println!("\n--- {label} ---");
    println!("attack period T_AIMD            : {expected:.2} s");
    println!(
        "pinnacles in {window_secs} s          : {} (paper: {} per 60 s)",
        result.peaks, expected_peaks_per_min
    );
    if let Some(p) = result.period_from_peaks {
        println!("period from peak count          : {p:.2} s");
    }
    if let Some(p) = result.period_from_autocorr {
        println!("period from autocorrelation     : {p:.2} s");
    }
    println!("normalized incoming traffic (PAA):");
    render_strip(&result.paa_series);
}

fn main() {
    println!("=== Fig. 3: quasi-global synchronization ===");
    run_case(
        "Fig. 3(a): ns-2, 24 flows, T_extent=50ms R=100Mbps T_space=1950ms",
        ScenarioSpec::ns2_dumbbell(24),
        50,
        100.0,
        1950,
        30,
    );
    run_case(
        "Fig. 3(b): test-bed, 15 flows, T_extent=100ms R=50Mbps T_space=2400ms",
        {
            let mut s = ScenarioSpec::testbed();
            s.n_flows = 15;
            s
        },
        100,
        50.0,
        2400,
        24,
    );
}
