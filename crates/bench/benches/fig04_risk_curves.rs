//! Figure 4: the risk factor (1-γ)^κ for risk-loving (κ<1), risk-neutral
//! (κ=1) and risk-averse (κ>1) attackers, plus the Corollary 1–3 limits.

use pdos_analysis::gain::RiskPreference;
use pdos_analysis::optimize::gamma_star;

fn main() {
    println!("=== Fig. 4: attacker risk preference (1-gamma)^kappa ===\n");
    let kappas = [0.25, 0.5, 1.0, 2.0, 4.0];
    print!("{:>6}", "gamma");
    for k in kappas {
        print!(" {:>9}", format!("k={k}"));
    }
    println!();
    for i in 0..=10 {
        let gamma = i as f64 / 10.0;
        print!("{gamma:>6.1}");
        for k in kappas {
            let risk = RiskPreference::new(k).expect("valid kappa");
            print!(" {:>9.4}", risk.factor(gamma));
        }
        println!();
    }

    println!("\nOptimal gamma* for C_psi = 0.15 (Prop. 3 and corollaries):");
    for k in [0.01, 0.25, 1.0, 4.0, 100.0] {
        let risk = RiskPreference::new(k).expect("valid kappa");
        println!("  kappa = {k:>6}: gamma* = {:.4}", gamma_star(0.15, risk));
    }
    println!("  kappa -> 0   : gamma* -> 1        (Corollary 2, risk-loving limit)");
    println!(
        "  kappa  = 1   : gamma* = sqrt(C)   (Corollary 3) = {:.4}",
        0.15f64.sqrt()
    );
    println!("  kappa -> inf : gamma* -> C_psi    (Corollary 1, risk-averse limit)");
}
