//! Figure 6: attack gain vs normalized attack rate at
//! R_attack = 25 Mbps, four panels (15/25/35/45 TCP flows), three pulse
//! widths (50/75/100 ms). Analytic curve (Eq. 5 + Prop. 2) vs simulation.

use pdos_bench::{print_gain_panel, PANEL_FLOWS};

fn main() {
    println!("=== Fig. 6: gain vs gamma, R_attack = 25 Mbps ===");
    for &flows in &PANEL_FLOWS {
        print_gain_panel(flows, 25.0);
    }
}
