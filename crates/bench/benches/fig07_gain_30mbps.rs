//! Figure 7: attack gain vs normalized attack rate at
//! R_attack = 30 Mbps, four panels (15/25/35/45 TCP flows), three pulse
//! widths (50/75/100 ms). Analytic curve (Eq. 5 + Prop. 2) vs simulation,
//! regenerated through the parallel deterministic runner.

use pdos_bench::run_gain_figure;
use pdos_scenarios::figures::GainFigure;

fn main() {
    println!("=== Fig. 7: gain vs gamma, R_attack = 30 Mbps ===");
    run_gain_figure(GainFigure::Fig07);
}
