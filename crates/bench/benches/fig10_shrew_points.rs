//! Figure 10: the PDoS / shrew-attack interaction. Three parameter cases;
//! γ values whose implied period lands on min_rto/n (n = 1, 2, 3) show
//! simulated gains far above the FR-only analytical curve.

use pdos_bench::{experiment, fast_mode};

fn main() {
    println!("=== Fig. 10: PDoS vs shrew points (ns-2 min RTO = 1 s) ===");
    let flows = if fast_mode() { 8 } else { 15 };
    let exp = experiment(flows);
    let baseline = exp.baseline_bytes().expect("baseline runs");

    // The paper's three cases: (R_attack Mbps, T_extent ms).
    for (r_mbps, t_ms) in [(30.0, 100.0), (40.0, 75.0), (50.0, 50.0)] {
        let r_attack = r_mbps * 1e6;
        let t_extent = t_ms / 1000.0;
        // γ grid: regular samples plus the exact shrew harmonics
        // T_AIMD = 1, 1/2, 1/3 s  =>  γ = R·T_extent / (15e6 · T_AIMD).
        let mut gammas: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
        for n in 1..=3u32 {
            let g = r_attack * t_extent / (15e6 / f64::from(n));
            if g < 1.0 {
                gammas.push(g);
            }
        }
        gammas.sort_by(|a, b| a.partial_cmp(b).unwrap());
        gammas.dedup_by(|a, b| (*a - *b).abs() < 1e-6);

        let sweep = exp
            .sweep_with_baseline(t_extent, r_attack, &gammas, baseline)
            .expect("sweep runs");
        println!(
            "\n--- R_attack = {r_mbps} Mbps, T_extent = {t_ms} ms (C_psi = {:.3}) ---",
            sweep.c_psi
        );
        println!(
            "{:>6} {:>8} {:>8} {:>8} {:>7} {:>6}",
            "gamma", "T_AIMD", "G_curve", "G_sim", "shrew", "TOs"
        );
        for p in &sweep.points {
            println!(
                "{:>6.3} {:>7.2}s {:>8.3} {:>8.3} {:>7} {:>6}",
                p.gamma,
                p.t_aimd,
                p.g_analytic,
                p.g_sim,
                p.shrew
                    .map(|n| format!("O(n={n})"))
                    .unwrap_or_else(|| "-".into()),
                p.timeouts,
            );
        }
    }
    println!("\n'O' rows mark shrew points: expect G_sim >> G_curve there (Sec. 4.1.3).");
}
