//! Figure 12: the test-bed experiment. 10 victim flows through a 10 Mbps
//! Dummynet-style bottleneck (150 ms delay, RED per Sec. 4.2, Linux
//! 200 ms min RTO), T_extent = 150 ms, R_attack in {15, 20, 30} Mbps.

use pdos_bench::{fast_mode, standard_gammas};
use pdos_scenarios::prelude::*;
use pdos_sim::time::SimDuration;

fn main() {
    println!("=== Fig. 12: test-bed gain vs gamma (10 flows, 10 Mbps bottleneck) ===");
    let (warm, win) = if fast_mode() { (4, 15) } else { (10, 60) };
    let exp = GainExperiment::new(ScenarioSpec::testbed())
        .warmup(SimDuration::from_secs(warm))
        .window(SimDuration::from_secs(win));
    let baseline = exp.baseline_bytes().expect("baseline runs");
    println!(
        "baseline goodput: {:.2} Mbps of 10 Mbps\n",
        baseline as f64 * 8.0 / win as f64 / 1e6
    );

    let t_extent = 0.150;
    for r_mbps in [15.0, 20.0, 30.0] {
        let sweep = exp
            .sweep_with_baseline(t_extent, r_mbps * 1e6, &standard_gammas(), baseline)
            .expect("sweep runs");
        println!(
            "--- R_attack = {r_mbps} Mbps (C_psi = {:.3}, class {}) ---",
            sweep.c_psi, sweep.class
        );
        println!(
            "{:>6} {:>8} {:>8} {:>8} {:>6}",
            "gamma", "T_AIMD", "G_curve", "G_sim", "class"
        );
        for p in &sweep.points {
            println!(
                "{:>6.2} {:>7.2}s {:>8.3} {:>8.3} {:>6}",
                p.gamma, p.t_aimd, p.g_analytic, p.g_sim, p.class
            );
        }
        println!();
    }
    println!("Paper: normal-gain at 20 Mbps, over-gain tendency at 30 Mbps,");
    println!("under-gain tendency at 15 Mbps.");
}
