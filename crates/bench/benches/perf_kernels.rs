//! Criterion micro-benchmarks of the workspace's hot kernels: the event
//! loop, RED enqueue path, the closed-form optimizer, DTW, and PAA.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pdos_analysis::gain::RiskPreference;
use pdos_analysis::optimize::gamma_star;
use pdos_analysis::timeseries::paa;
use pdos_attack::pulse::PulseTrain;
use pdos_detect::dtw::dtw_distance;
use pdos_scenarios::spec::ScenarioSpec;
use pdos_sim::node::NodeId;
use pdos_sim::packet::{FlowId, Packet, PacketKind};
use pdos_sim::queue::{EnqueueOutcome, QueueDiscipline, RedConfig, RedQueue};
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::units::{BitsPerSec, Bytes};
use std::hint::black_box;

fn bench_event_loop(c: &mut Criterion) {
    c.bench_function("sim/dumbbell_1s_8flows", |b| {
        b.iter_batched(
            || ScenarioSpec::ns2_dumbbell(8).build().expect("builds"),
            |mut bench| {
                bench.run_until(SimTime::from_secs(1));
                black_box(bench.sim.stats().events)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_attacked_second(c: &mut Criterion) {
    c.bench_function("sim/dumbbell_1s_8flows_attacked", |b| {
        b.iter_batched(
            || {
                let mut bench = ScenarioSpec::ns2_dumbbell(8).build().expect("builds");
                let train = PulseTrain::new(
                    SimDuration::from_millis(50),
                    BitsPerSec::from_mbps(50.0),
                    SimDuration::from_millis(450),
                )
                .expect("valid");
                bench.attach_pulse_attack(train, SimTime::ZERO, None);
                bench
            },
            |mut bench| {
                bench.run_until(SimTime::from_secs(1));
                black_box(bench.sim.stats().events)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_red_enqueue(c: &mut Criterion) {
    c.bench_function("queue/red_enqueue_dequeue", |b| {
        let pkt = Packet::new(
            FlowId::from_u32(0),
            NodeId::from_u32(0),
            NodeId::from_u32(1),
            Bytes::from_u64(1000),
            PacketKind::Background,
        );
        b.iter_batched(
            || RedQueue::new(RedConfig::ns2_default(64), BitsPerSec::from_mbps(15.0), 7),
            |mut q| {
                let mut kept = 0u32;
                for i in 0..1000u64 {
                    if q.enqueue(pkt, SimTime::from_nanos(i * 100)) == EnqueueOutcome::Enqueued {
                        kept += 1;
                    }
                    if i % 2 == 0 {
                        let _ = q.dequeue(SimTime::from_nanos(i * 100 + 50));
                    }
                }
                black_box(kept)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_gamma_star(c: &mut Criterion) {
    c.bench_function("analysis/gamma_star", |b| {
        let risk = RiskPreference::new(2.5).expect("valid");
        b.iter(|| black_box(gamma_star(black_box(0.17), risk)))
    });
}

fn bench_dtw(c: &mut Criterion) {
    let a: Vec<f64> = (0..200).map(|i| ((i % 20) as f64 / 20.0).sin()).collect();
    let b2: Vec<f64> = (0..200)
        .map(|i| (((i + 3) % 20) as f64 / 20.0).sin())
        .collect();
    c.bench_function("detect/dtw_200x200_banded", |b| {
        b.iter(|| black_box(dtw_distance(black_box(&a), black_box(&b2), Some(10))))
    });
}

fn bench_paa(c: &mut Criterion) {
    let series: Vec<f64> = (0..1200).map(|i| (i as f64 * 0.1).sin()).collect();
    c.bench_function("analysis/paa_1200_to_240", |b| {
        b.iter(|| black_box(paa(black_box(&series), 240)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_event_loop, bench_attacked_second, bench_red_enqueue,
              bench_gamma_star, bench_dtw, bench_paa
}
criterion_main!(benches);
