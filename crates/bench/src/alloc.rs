//! A counting global allocator for the perf harness.
//!
//! `pdos bench` reports allocation counts alongside throughput; the
//! counters live here so any binary can opt in by registering
//! [`CountingAllocator`] as its `#[global_allocator]` (the `pdos` CLI
//! does). The counters are process-global atomics: one relaxed
//! fetch-add per allocation, negligible against the cost of the
//! allocation itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A `System`-backed allocator that counts allocations and bytes.
///
/// Register it in a binary with
/// `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
/// and read the counters back with [`snapshot`].
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the counters are plain atomics.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Cumulative allocation counters since process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Heap allocations performed (allocs + reallocs).
    pub allocations: u64,
    /// Bytes requested across those allocations.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// The counter deltas from `earlier` to `self`.
    pub fn since(self, earlier: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocations: self.allocations.wrapping_sub(earlier.allocations),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// Reads the current counters. Returns zeros unless [`CountingAllocator`]
/// is the registered global allocator of this process.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
    }
}

/// Whether the counting allocator is actually registered in this process
/// (detected by probing: an allocation must move the counter).
pub fn is_counting() -> bool {
    let before = snapshot();
    let probe = vec![0u8; 64];
    std::hint::black_box(&probe);
    let after = snapshot();
    after.allocations > before.allocations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_is_monotone() {
        let a = AllocSnapshot {
            allocations: 10,
            bytes: 100,
        };
        let b = AllocSnapshot {
            allocations: 14,
            bytes: 160,
        };
        let d = b.since(a);
        assert_eq!(d.allocations, 4);
        assert_eq!(d.bytes, 60);
    }

    #[test]
    fn probing_does_not_panic() {
        // The bench test binary does not register the allocator, so the
        // probe usually reports false; either answer must be safe.
        let _ = is_counting();
        let _ = snapshot();
    }
}
