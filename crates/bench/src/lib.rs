//! Shared helpers for the figure-regeneration benchmarks.
//!
//! Each bench target in `benches/` regenerates one figure of Luo & Chang
//! (DSN 2005): it prints the analytical curve and the simulated points in
//! aligned rows, the way the paper plots lines and symbols. Absolute
//! numbers differ from the paper's testbeds; the *shape* (who wins, where
//! the maxima sit, where shrew spikes appear) is the reproduction target.
//!
//! Set `PDOS_BENCH_FAST=1` to shrink measurement windows for smoke runs.

use pdos_scenarios::prelude::*;
use pdos_sim::time::SimDuration;

/// The pulse widths the figure panels sweep (§4.1): 50, 75, 100 ms.
pub const TEXTENTS: [f64; 3] = [0.050, 0.075, 0.100];

/// The flow counts of the four panels of each of Figs. 6–9.
pub const PANEL_FLOWS: [usize; 4] = [15, 25, 35, 45];

/// Standard γ sampling for the gain figures.
pub fn standard_gammas() -> Vec<f64> {
    gamma_grid(0.08, 0.92, 8)
}

/// Measurement window, honoring `PDOS_BENCH_FAST`.
pub fn window() -> SimDuration {
    if fast_mode() {
        SimDuration::from_secs(12)
    } else {
        SimDuration::from_secs(40)
    }
}

/// Warm-up length, honoring `PDOS_BENCH_FAST`.
pub fn warmup() -> SimDuration {
    if fast_mode() {
        SimDuration::from_secs(4)
    } else {
        SimDuration::from_secs(10)
    }
}

/// Whether the fast (smoke-test) mode is requested.
pub fn fast_mode() -> bool {
    std::env::var_os("PDOS_BENCH_FAST").is_some()
}

/// Builds the standard experiment driver for a flow count.
pub fn experiment(n_flows: usize) -> GainExperiment {
    GainExperiment::new(ScenarioSpec::ns2_dumbbell(n_flows))
        .warmup(warmup())
        .window(window())
}

/// Prints one figure panel: for each pulse width, the analytic and
/// simulated gain at each γ, plus the §4.1.1 classification.
pub fn print_gain_panel(n_flows: usize, r_attack_mbps: f64) {
    let exp = experiment(n_flows);
    let r_attack = r_attack_mbps * 1e6;
    let gammas = standard_gammas();
    let baseline = exp
        .baseline_bytes()
        .expect("baseline simulation must run");
    println!(
        "\n--- {n_flows} TCP flows, R_attack = {r_attack_mbps} Mbps (baseline {:.2} Mbps) ---",
        baseline as f64 * 8.0 / window().as_secs_f64() / 1e6
    );
    println!(
        "{:>9} {:>6} | {:>8} {:>8} {:>8} | {:>6} {:>6}",
        "T_extent", "gamma", "T_AIMD", "G_curve", "G_sim", "shrew", "class"
    );
    for &t_extent in &TEXTENTS {
        let sweep = exp
            .sweep_with_baseline(t_extent, r_attack, &gammas, baseline)
            .expect("sweep must run");
        for p in &sweep.points {
            println!(
                "{:>7}ms {:>6.2} | {:>7.2}s {:>8.3} {:>8.3} | {:>6} {:>6}",
                (t_extent * 1000.0) as u64,
                p.gamma,
                p.t_aimd,
                p.g_analytic,
                p.g_sim,
                p.shrew.map(|n| n.to_string()).unwrap_or_else(|| "-".into()),
                p.class,
            );
        }
        println!(
            "  -> sweep class ({}ms, C_psi={:.3}): {}",
            (t_extent * 1000.0) as u64,
            sweep.c_psi,
            sweep.class
        );
    }
}

/// Renders a normalized series as an ASCII strip (for the Fig. 3 benches).
pub fn render_strip(series: &[f64]) {
    const GLYPHS: &[u8] = b" .:-=+*#%@";
    let (lo, hi) = series
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    let span = (hi - lo).max(1e-9);
    let line: String = series
        .iter()
        .map(|&x| {
            let idx = (((x - lo) / span) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)] as char
        })
        .collect();
    for chunk in line.as_bytes().chunks(100) {
        println!("  {}", std::str::from_utf8(chunk).expect("ascii"));
    }
}
