//! Shared helpers for the figure-regeneration benchmarks.
//!
//! Each bench target in `benches/` regenerates one figure of Luo & Chang
//! (DSN 2005): it prints the analytical curve and the simulated points in
//! aligned rows, the way the paper plots lines and symbols. Absolute
//! numbers differ from the paper's testbeds; the *shape* (who wins, where
//! the maxima sit, where shrew spikes appear) is the reproduction target.
//!
//! Set `PDOS_BENCH_FAST=1` to shrink measurement windows for smoke runs.

pub mod alloc;
pub mod perf;

use pdos_analysis::model::c_psi;
use pdos_scenarios::prelude::*;
use pdos_sim::time::SimDuration;

/// The pulse widths the figure panels sweep (§4.1): 50, 75, 100 ms.
pub const TEXTENTS: [f64; 3] = [0.050, 0.075, 0.100];

/// The flow counts of the four panels of each of Figs. 6–9.
pub const PANEL_FLOWS: [usize; 4] = [15, 25, 35, 45];

/// Standard γ sampling for the gain figures.
pub fn standard_gammas() -> Vec<f64> {
    gamma_grid(0.08, 0.92, 8)
}

/// Measurement window, honoring `PDOS_BENCH_FAST`.
pub fn window() -> SimDuration {
    if fast_mode() {
        SimDuration::from_secs(12)
    } else {
        SimDuration::from_secs(40)
    }
}

/// Warm-up length, honoring `PDOS_BENCH_FAST`.
pub fn warmup() -> SimDuration {
    if fast_mode() {
        SimDuration::from_secs(4)
    } else {
        SimDuration::from_secs(10)
    }
}

/// Whether the fast (smoke-test) mode is requested.
pub fn fast_mode() -> bool {
    std::env::var_os("PDOS_BENCH_FAST").is_some()
}

/// Builds the standard experiment driver for a flow count.
pub fn experiment(n_flows: usize) -> GainExperiment {
    GainExperiment::new(ScenarioSpec::ns2_dumbbell(n_flows))
        .warmup(warmup())
        .window(window())
}

/// The figure grid at bench resolution, honoring `PDOS_BENCH_FAST`: the
/// full panel/width/γ enumeration with bench windows.
pub fn figure_grid() -> FigureGrid {
    FigureGrid {
        flows: PANEL_FLOWS.to_vec(),
        textents: TEXTENTS.to_vec(),
        gammas: standard_gammas(),
        warmup: warmup(),
        window: window(),
    }
}

/// Regenerates one gain figure (Figs. 6–9) through the parallel
/// deterministic runner and prints the same panel tables the serial
/// loops used to, plus a throughput line. `PDOS_BENCH_JOBS` overrides
/// the worker count (default: one per CPU).
pub fn run_gain_figure(fig: GainFigure) {
    let jobs = std::env::var("PDOS_BENCH_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let grid = figure_grid();
    let specs = gain_figure_specs(fig, &grid);
    // `FromScenario` pins the figures' scenario seeds, so the parallel
    // sweep reproduces the historical serial tables exactly.
    let report = SweepRunner::new(0)
        .seed_policy(SeedPolicy::FromScenario)
        .jobs(jobs)
        .run(&specs);
    print_gain_report(fig, &grid, &report);
}

fn print_gain_report(fig: GainFigure, grid: &FigureGrid, report: &SweepReport) {
    let r_attack_mbps = fig.r_attack_mbps();
    let per_panel = grid.textents.len() * grid.gammas.len();
    for (panel, &n_flows) in grid.flows.iter().enumerate() {
        let records = &report.records[panel * per_panel..(panel + 1) * per_panel];
        let baseline = records
            .iter()
            .map(|r| r.baseline_bytes)
            .find(|&b| b > 0)
            .unwrap_or(0);
        println!(
            "\n--- {n_flows} TCP flows, R_attack = {r_attack_mbps} Mbps (baseline {:.2} Mbps) ---",
            baseline as f64 * 8.0 / grid.window.as_secs_f64() / 1e6
        );
        println!(
            "{:>9} {:>6} | {:>8} {:>8} {:>8} | {:>6} {:>6}",
            "T_extent", "gamma", "T_AIMD", "G_curve", "G_sim", "shrew", "class"
        );
        for (width, &t_extent) in grid.textents.iter().enumerate() {
            let n = grid.gammas.len();
            let curve = &records[width * n..(width + 1) * n];
            let mut pairs = Vec::with_capacity(n);
            for r in curve {
                match &r.outcome {
                    RunOutcome::Point { point: p, .. } => {
                        println!(
                            "{:>7}ms {:>6.2} | {:>7.2}s {:>8.3} {:>8.3} | {:>6} {:>6}",
                            (t_extent * 1000.0) as u64,
                            p.gamma,
                            p.t_aimd,
                            p.g_analytic,
                            p.g_sim,
                            p.shrew.map(|n| n.to_string()).unwrap_or_else(|| "-".into()),
                            p.class,
                        );
                        pairs.push((p.g_analytic, p.g_sim));
                    }
                    RunOutcome::Infeasible { reason } => {
                        println!("  (skipped {}: {reason})", r.id);
                    }
                    other => panic!("{} failed: {other:?}", r.id),
                }
            }
            let c = c_psi(
                &ScenarioSpec::ns2_dumbbell(n_flows).victims(),
                t_extent,
                r_attack_mbps * 1e6,
            )
            .expect("figure parameters are valid");
            println!(
                "  -> sweep class ({}ms, C_psi={:.3}): {}",
                (t_extent * 1000.0) as u64,
                c,
                GainClass::classify_sweep(&pairs, 0.12)
            );
        }
    }
    println!(
        "\n[runner] {} runs on {} workers: wall {:.1}s, cpu {:.1}s, speedup {:.2}x, {:.2} runs/s",
        report.records.len(),
        report.jobs,
        report.wall.as_secs_f64(),
        report.cpu_time().as_secs_f64(),
        report.cpu_time().as_secs_f64() / report.wall.as_secs_f64().max(1e-9),
        report.runs_per_sec()
    );
}

/// Renders a normalized series as an ASCII strip (for the Fig. 3 benches).
pub fn render_strip(series: &[f64]) {
    const GLYPHS: &[u8] = b" .:-=+*#%@";
    let (lo, hi) = series
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    let span = (hi - lo).max(1e-9);
    let line: String = series
        .iter()
        .map(|&x| {
            let idx = (((x - lo) / span) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx.min(GLYPHS.len() - 1)] as char
        })
        .collect();
    for chunk in line.as_bytes().chunks(100) {
        println!("  {}", std::str::from_utf8(chunk).expect("ascii"));
    }
}
