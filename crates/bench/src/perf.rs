//! The engine performance harness behind `pdos bench`.
//!
//! Unlike the figure benches in `benches/` (which reproduce the paper's
//! plots), this module measures the *simulator itself*: how many events
//! and packets per second the hot path sustains on canonical macro
//! workloads, plus targeted microbenches of the event queue and the
//! queue disciplines. Every run is deterministic; only the wall-clock
//! measurements vary between hosts.
//!
//! The harness writes `BENCH_<date>.json` reports (see `docs/PERF.md`)
//! that seed the perf trajectory of the repository: CI runs the smoke
//! variant and fails on a >20% events/sec regression against the
//! committed baseline.

use crate::alloc::{self, AllocSnapshot};
use pdos_attack::pulse::PulseTrain;
use pdos_scenarios::experiment::GainExperiment;
use pdos_scenarios::runner::{AttackPoint, ExperimentSpec, SeedPolicy, SweepRunner};
use pdos_scenarios::spec::ScenarioSpec;
use pdos_sim::event::{Event, EventQueue};
use pdos_sim::node::NodeId;
use pdos_sim::packet::{FlowId, Packet, PacketKind};
use pdos_sim::profile::{ProfileSnapshot, EVENT_KINDS};
use pdos_sim::queue::{QueueDiscipline, QueueSpec, RedConfig};
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::topology::TopologyBuilder;
use pdos_sim::units::{BitsPerSec, Bytes};
use pdos_tcp::bank::{SenderBank, SinkBank};
use std::fmt::Write as _;
use std::time::Instant;

/// One macro workload measurement: a full simulated scenario timed
/// end-to-end.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroResult {
    /// Workload name (`fig06-smoke`, ...).
    pub name: String,
    /// Simulated horizon, seconds.
    pub sim_secs: f64,
    /// Events the engine processed.
    pub events: u64,
    /// Packets that reached an endpoint (delivered + unclaimed).
    pub packets: u64,
    /// Wall-clock time, seconds.
    pub wall_secs: f64,
}

impl MacroResult {
    /// Events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-9)
    }

    /// Endpoint packets per wall-clock second.
    pub fn packets_per_sec(&self) -> f64 {
        self.packets as f64 / self.wall_secs.max(1e-9)
    }
}

/// One microbench measurement: a tight loop over a single subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroResult {
    /// Microbench name (`event-queue`, ...).
    pub name: String,
    /// Operations performed.
    pub ops: u64,
    /// Wall-clock time, seconds.
    pub wall_secs: f64,
}

impl MicroResult {
    /// Operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall_secs.max(1e-9)
    }
}

/// The warm-start macro: the same sweep grid measured cold (every run
/// simulates its own warm-up) and warm-started (one warm-up is simulated,
/// checkpointed, and forked per run), with the results asserted identical.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStartResult {
    /// Workload name (`fig06-grid-warmstart`).
    pub name: String,
    /// Sweep points in the grid (excluding the shared baseline).
    pub points: u64,
    /// Wall-clock seconds for the cold sweep.
    pub cold_wall_secs: f64,
    /// Wall-clock seconds for the warm-started sweep.
    pub warm_wall_secs: f64,
    /// Approximate heap footprint of the shared checkpoint, bytes.
    pub checkpoint_bytes: u64,
}

impl WarmStartResult {
    /// Cold wall time over warm wall time (> 1 means forking wins).
    pub fn speedup(&self) -> f64 {
        self.cold_wall_secs / self.warm_wall_secs.max(1e-9)
    }
}

/// A full harness run: macro workloads, microbenches, and process-level
/// resource readings.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    /// Whether the smoke (CI-sized) variant ran.
    pub smoke: bool,
    /// Worker shards requested for the sharded macro leg (1 = the run
    /// measured only the sequential engine). Reports from schemas
    /// `pdos-bench/1` and `/2` predate sharding and imply 1.
    pub shards: usize,
    /// Macro workload measurements.
    pub macros: Vec<MacroResult>,
    /// Microbench measurements.
    pub micros: Vec<MicroResult>,
    /// The cold-vs-forked warm-start comparison (`None` in reports from
    /// schema `pdos-bench/1`, which predates checkpointing).
    pub warm_start: Option<WarmStartResult>,
    /// Peak resident set size, bytes (Linux `VmHWM`; `None` elsewhere).
    pub peak_rss_bytes: Option<u64>,
    /// Allocation counters over the macro workloads (`None` unless the
    /// counting allocator is registered, as it is in the `pdos` binary).
    pub alloc: Option<AllocSnapshot>,
    /// Logical cores the host exposes (reports from schemas `/1`–`/3`
    /// predate the field and read back as `None`). The sharded-speedup
    /// gate keys on this: a 1-core host has no parallelism to measure,
    /// so the gate records itself as skipped instead of silently passing.
    pub host_cores: usize,
    /// Per-event-type cost breakdown of the scale macros, recorded only
    /// when the harness runs with profiling on (`pdos bench --profile`).
    pub profile: Option<ProfileSnapshot>,
}

impl PerfReport {
    /// The named macro result, if present.
    pub fn macro_result(&self, name: &str) -> Option<&MacroResult> {
        self.macros.iter().find(|m| m.name == name)
    }

    /// Serializes the report as JSON (schema `pdos-bench/4`; readers also
    /// accept `/3`, which lacks the `host_cores` and `profile` fields,
    /// `/2`, which also lacks `shards`, and `/1`, which also lacks the
    /// `warm_start` section).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"schema\":\"pdos-bench/4\",\"date\":\"{}\",\"smoke\":{},\"shards\":{},\
             \"host_cores\":{},\"macros\":[",
            self.date, self.smoke, self.shards, self.host_cores
        );
        for (i, m) in self.macros.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"sim_secs\":{},\"events\":{},\"packets\":{},\
                 \"wall_secs\":{:.6},\"events_per_sec\":{:.1},\"packets_per_sec\":{:.1}}}",
                m.name,
                m.sim_secs,
                m.events,
                m.packets,
                m.wall_secs,
                m.events_per_sec(),
                m.packets_per_sec(),
            );
        }
        s.push_str("],\"micros\":[");
        for (i, m) in self.micros.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"ops\":{},\"wall_secs\":{:.6},\"ops_per_sec\":{:.1}}}",
                m.name,
                m.ops,
                m.wall_secs,
                m.ops_per_sec(),
            );
        }
        s.push_str("],");
        match &self.warm_start {
            Some(w) => {
                let _ = write!(
                    s,
                    "\"warm_start\":{{\"name\":\"{}\",\"points\":{},\
                     \"cold_wall_secs\":{:.6},\"warm_wall_secs\":{:.6},\
                     \"speedup\":{:.3},\"checkpoint_bytes\":{}}},",
                    w.name,
                    w.points,
                    w.cold_wall_secs,
                    w.warm_wall_secs,
                    w.speedup(),
                    w.checkpoint_bytes,
                );
            }
            None => s.push_str("\"warm_start\":null,"),
        }
        match self.peak_rss_bytes {
            Some(b) => {
                let _ = write!(s, "\"peak_rss_bytes\":{b},");
            }
            None => s.push_str("\"peak_rss_bytes\":null,"),
        }
        match self.alloc {
            Some(a) => {
                let _ = write!(
                    s,
                    "\"alloc\":{{\"allocations\":{},\"bytes\":{}}},",
                    a.allocations, a.bytes
                );
            }
            None => s.push_str("\"alloc\":null,"),
        }
        match &self.profile {
            Some(p) => {
                s.push_str("\"profile\":{\"kinds\":[");
                for (i, (name, k)) in EVENT_KINDS.iter().zip(p.kinds.iter()).enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "{{\"name\":\"{}\",\"count\":{},\"wall_nanos\":{},\
                         \"allocations\":{},\"alloc_bytes\":{}}}",
                        name, k.count, k.wall_nanos, k.allocations, k.alloc_bytes
                    );
                }
                s.push_str("]}}");
            }
            None => s.push_str("\"profile\":null}"),
        }
        s
    }

    /// A human-readable summary table.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pdos bench ({}{}) — {}",
            if self.smoke { "smoke" } else { "full" },
            if self.shards > 1 {
                format!(", {} shards", self.shards)
            } else {
                String::new()
            },
            self.date
        );
        let _ = writeln!(
            out,
            "  {:<24} {:>12} {:>12} {:>9} {:>14} {:>14}",
            "macro workload", "events", "packets", "wall s", "events/s", "packets/s"
        );
        for m in &self.macros {
            let _ = writeln!(
                out,
                "  {:<24} {:>12} {:>12} {:>9.3} {:>14.0} {:>14.0}",
                m.name,
                m.events,
                m.packets,
                m.wall_secs,
                m.events_per_sec(),
                m.packets_per_sec()
            );
        }
        let _ = writeln!(
            out,
            "  {:<24} {:>12} {:>9} {:>14}",
            "microbench", "ops", "wall s", "ops/s"
        );
        for m in &self.micros {
            let _ = writeln!(
                out,
                "  {:<24} {:>12} {:>9.3} {:>14.0}",
                m.name,
                m.ops,
                m.wall_secs,
                m.ops_per_sec()
            );
        }
        if let Some(w) = &self.warm_start {
            let _ = writeln!(
                out,
                "  {:<24} {:>4} points, cold {:.3} s vs forked {:.3} s \
                 ({:.2}x), checkpoint {:.1} MiB",
                w.name,
                w.points,
                w.cold_wall_secs,
                w.warm_wall_secs,
                w.speedup(),
                w.checkpoint_bytes as f64 / (1024.0 * 1024.0)
            );
        }
        if let Some(rss) = self.peak_rss_bytes {
            let _ = writeln!(out, "  peak RSS: {:.1} MiB", rss as f64 / (1024.0 * 1024.0));
        }
        if let Some(a) = self.alloc {
            let _ = writeln!(
                out,
                "  allocations (macro phase): {} ({:.1} MiB)",
                a.allocations,
                a.bytes as f64 / (1024.0 * 1024.0)
            );
        }
        let _ = writeln!(out, "  host cores: {}", self.host_cores);
        if let Some(p) = &self.profile {
            let _ = writeln!(out, "  profile (scale macros):");
            out.push_str(&p.summary());
        }
        out
    }
}

/// Runs the harness: the CI-sized smoke variant (`smoke = true`: the
/// fig06 smoke macro plus shortened microbenches) or the full set of
/// macro workloads. `shards > 1` adds a second leg of the million-flow
/// macro on the sharded engine (same workload, `shards` workers) so the
/// report carries a sequential-vs-sharded comparison. With `profile` the
/// scale macros run under the engine's self-profiler (hash-neutral; see
/// [`pdos_sim::profile`]) and the report carries the per-event-type
/// breakdown.
pub fn run(smoke: bool, shards: usize, profile: bool) -> PerfReport {
    if profile && alloc::is_counting() {
        pdos_sim::profile::set_alloc_probe(profile_alloc_probe);
    }
    let alloc_before = alloc::is_counting().then(alloc::snapshot);
    let mut profile_acc: Option<ProfileSnapshot> = None;
    let mut fold_profile = |snap: Option<ProfileSnapshot>| {
        if let Some(snap) = snap {
            profile_acc
                .get_or_insert_with(ProfileSnapshot::default)
                .merge(&snap);
        }
    };
    let mut macros = vec![fig06_smoke(), fig06_smoke_metered()];
    if !smoke {
        macros.push(single_bottleneck_60s());
        macros.push(rtt_heterogeneous_50());
    }
    // The mid-size scale tier: cheap enough to gate every PR while the
    // full million-flow tier stays a nightly/full-run concern.
    let (bank, snap) = flow_bank_run(profile);
    fold_profile(snap);
    macros.push(bank);
    // The scale macro: >= 1e5 struct-of-arrays flows (1e6 in the full
    // variant). Debug builds shrink it to a smoke-sized token — their
    // perf numbers are meaningless and the full flow count takes minutes
    // unoptimized — so honest scale readings come from release runs only.
    let flows = if cfg!(debug_assertions) {
        5_000
    } else if smoke {
        100_000
    } else {
        1_000_000
    };
    let (seq, snap) = million_flow_run(flows, 1, profile);
    fold_profile(snap);
    macros.push(seq);
    if shards > 1 {
        let (sharded, snap) = million_flow_run(flows, shards, profile);
        fold_profile(snap);
        // The sharded engine's contract is bit-identity, so the sharded
        // leg must process exactly the event sequence the sequential leg
        // did — only the wall clock may differ.
        let sequential = macros.last().expect("sequential leg just pushed");
        assert_eq!(
            (sequential.events, sequential.packets),
            (sharded.events, sharded.packets),
            "sharded macro leg diverged from the sequential engine"
        );
        macros.push(sharded);
    }
    let alloc = alloc_before.map(|before| alloc::snapshot().since(before));
    let warm_start = Some(fig06_grid_warmstart());
    let scale = if smoke { 1 } else { 4 };
    let micros = vec![
        micro_event_queue(200_000 * scale),
        micro_timer_churn(100_000 * scale),
        micro_queue_discipline(200_000 * scale),
    ];
    PerfReport {
        date: today_utc(),
        smoke,
        shards: shards.max(1),
        macros,
        micros,
        warm_start,
        peak_rss_bytes: peak_rss_bytes(),
        alloc,
        host_cores: host_cores(),
        profile: profile_acc,
    }
}

/// The profiler's allocation probe, backed by this crate's counting
/// allocator (zeros unless a binary registered it; see [`crate::alloc`]).
fn profile_alloc_probe() -> (u64, u64) {
    let s = alloc::snapshot();
    (s.allocations, s.bytes)
}

/// Logical cores the host exposes (1 when the reading is unavailable).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of clusters in the [`million_flow_smoke`] topology (and the
/// upper bound on useful shards for it).
pub const MILLION_FLOW_CLUSTERS: usize = 8;

/// Builds the million-flow topology: [`MILLION_FLOW_CLUSTERS`] dumbbell
/// clusters (sender host → router → sink host; the router→sink hop is
/// the 50 Mbps bottleneck) joined into a ring by 50 ms core links. The
/// core carries no traffic but keeps the graph connected, and its high
/// latency is where [`pdos_sim::shard::ShardPlan`] cuts — every shard
/// gets a 50 ms lookahead horizon. `flows` are spread evenly across the
/// clusters as [`SenderBank`]/[`SinkBank`] pairs bound through dense
/// flow-range bindings, so per-flow state is struct-of-arrays flat and
/// nothing in the build keeps a per-flow map at all.
pub fn build_million_flow_sim(flows: usize) -> pdos_sim::engine::Simulator {
    assert!(
        flows >= MILLION_FLOW_CLUSTERS,
        "need at least one flow per cluster"
    );
    let per = flows / MILLION_FLOW_CLUSTERS;
    let extra = flows % MILLION_FLOW_CLUSTERS;
    let mut t = TopologyBuilder::with_seed(42);
    let mut hosts = Vec::new();
    let mut routers = Vec::new();
    for c in 0..MILLION_FLOW_CLUSTERS {
        let tx = t.add_host(format!("tx{c}"));
        let r = t.add_router(format!("r{c}"));
        let rx = t.add_host(format!("rx{c}"));
        let n = per + usize::from(c < extra);
        // Access: fat and deep enough that the initial window burst of
        // every flow in the cluster queues instead of dropping.
        t.add_duplex_link(
            tx,
            r,
            BitsPerSec::from_mbps(1000.0),
            SimDuration::from_millis(1),
            QueueSpec::DropTail { capacity: n + 64 },
        );
        t.add_duplex_link(
            r,
            rx,
            BitsPerSec::from_mbps(50.0),
            SimDuration::from_millis(5),
            QueueSpec::DropTail { capacity: 100 },
        );
        hosts.push((tx, rx, n));
        routers.push(r);
    }
    for c in 0..MILLION_FLOW_CLUSTERS {
        let next = routers[(c + 1) % MILLION_FLOW_CLUSTERS];
        t.add_duplex_link(
            routers[c],
            next,
            BitsPerSec::from_mbps(100.0),
            SimDuration::from_millis(50),
            QueueSpec::DropTail { capacity: 64 },
        );
    }
    let mut sim = t.build().expect("million-flow topology builds");
    let segment = Bytes::from_u64(1000);
    let rto = SimDuration::from_millis(500);
    let mut first = 0u32;
    for &(tx, rx, n) in &hosts {
        let tx_id = sim.attach_agent(
            tx,
            Box::new(SenderBank::new(
                FlowId::from_u32(first),
                n,
                rx,
                segment,
                rto,
            )),
        );
        let rx_id = sim.attach_agent(
            rx,
            Box::new(SinkBank::new(FlowId::from_u32(first), n, segment)),
        );
        sim.bind_flow_range(tx, first..first + n as u32, tx_id);
        sim.bind_flow_range(rx, first..first + n as u32, rx_id);
        first += n as u32;
    }
    sim
}

/// The scale macro: `flows` concurrent greedy AIMD flows (struct-of-
/// arrays banks) over the clustered ring topology, simulated for one
/// second. With `shards > 1` the run goes through the sharded engine —
/// which, by the determinism contract, processes the exact same event
/// sequence, so the two legs differ only in wall clock.
pub fn million_flow_smoke(flows: usize, shards: usize) -> MacroResult {
    million_flow_run(flows, shards, false).0
}

fn million_flow_run(
    flows: usize,
    shards: usize,
    profile: bool,
) -> (MacroResult, Option<ProfileSnapshot>) {
    let horizon = SimDuration::from_secs(1);
    let mut sim = build_million_flow_sim(flows);
    let engaged = sim.enable_sharding(shards);
    if profile {
        sim.enable_profiler();
    }
    let t0 = Instant::now();
    sim.run_until(SimTime::ZERO + horizon);
    let wall = t0.elapsed().as_secs_f64();
    let stats = sim.stats();
    let name = if engaged > 1 {
        format!("million-flow-smoke-x{engaged}")
    } else {
        "million-flow-smoke".to_string()
    };
    let result = MacroResult {
        name,
        sim_secs: horizon.as_secs_f64(),
        events: stats.events,
        packets: stats.delivered + stats.unclaimed,
        wall_secs: wall,
    };
    (result, sim.profile_snapshot())
}

/// Flows in the [`flow_bank_smoke`] mid-size tier.
pub const FLOW_BANK_FLOWS: usize = 10_000;

/// The mid-size scale macro: [`FLOW_BANK_FLOWS`] struct-of-arrays flows
/// on the clustered ring for one simulated second — small enough to gate
/// every PR in CI, big enough that an O(flows) regression in the bank
/// hot path moves the needle far past the gate's noise budget.
pub fn flow_bank_smoke() -> MacroResult {
    flow_bank_run(false).0
}

fn flow_bank_run(profile: bool) -> (MacroResult, Option<ProfileSnapshot>) {
    let horizon = SimDuration::from_secs(1);
    let mut sim = build_million_flow_sim(FLOW_BANK_FLOWS);
    if profile {
        sim.enable_profiler();
    }
    let t0 = Instant::now();
    sim.run_until(SimTime::ZERO + horizon);
    let wall = t0.elapsed().as_secs_f64();
    let stats = sim.stats();
    let result = MacroResult {
        name: "flow-bank-smoke".to_string(),
        sim_secs: horizon.as_secs_f64(),
        events: stats.events,
        packets: stats.delivered + stats.unclaimed,
        wall_secs: wall,
    };
    (result, sim.profile_snapshot())
}

/// The warm-start macro: a six-point fig06-style γ grid over one shared
/// scenario, swept cold (`warm_start(false)`: each of the seven runs —
/// baseline plus six points — simulates the 4 s warm-up itself) and then
/// warm-started (one warm-up, checkpointed, seven forks). Both sweeps run
/// on one worker so the wall-clock ratio isolates the checkpointing win,
/// and the reports are asserted bitwise-identical — the macro doubles as
/// an end-to-end equivalence check on every bench run.
pub fn fig06_grid_warmstart() -> WarmStartResult {
    let gammas = [0.20, 0.30, 0.40, 0.50, 0.60, 0.70];
    let scenario = ScenarioSpec::ns2_dumbbell(8);
    let warmup = SimDuration::from_secs(4);
    let window = SimDuration::from_secs(2);
    let specs: Vec<ExperimentSpec> = gammas
        .iter()
        .map(|&gamma| {
            ExperimentSpec::attacked(
                format!("bench/warmstart/g{gamma:.2}"),
                scenario.clone(),
                AttackPoint {
                    t_extent: 0.075,
                    r_attack: 25e6,
                    gamma,
                },
            )
            .warmup(warmup)
            .window(window)
        })
        .collect();
    let runner = SweepRunner::new(0)
        .seed_policy(SeedPolicy::FromScenario)
        .jobs(1);

    let t0 = Instant::now();
    let cold = runner.clone().warm_start(false).run(&specs);
    let cold_wall_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let warm = runner.warm_start(true).run(&specs);
    let warm_wall_secs = t1.elapsed().as_secs_f64();
    assert_eq!(
        cold.results_json(),
        warm.results_json(),
        "warm-start must be bitwise result-neutral"
    );

    let checkpoint_bytes = GainExperiment::new(scenario)
        .warmup(warmup)
        .window(window)
        .warm_start(None)
        .map(|w| w.approx_bytes() as u64)
        .unwrap_or(0);
    WarmStartResult {
        name: "fig06-grid-warmstart".to_string(),
        points: gammas.len() as u64,
        cold_wall_secs,
        warm_wall_secs,
        checkpoint_bytes,
    }
}

/// The canonical regression-gate workload: the fig06 smoke scenario
/// (8 flows, 75 ms pulses at 25 Mbps, γ = 0.4, 4 s warm-up + 8 s
/// window) — the same scenario family as the golden conformance traces.
pub fn fig06_smoke() -> MacroResult {
    run_attacked(
        "fig06-smoke",
        ScenarioSpec::ns2_dumbbell(8),
        0.075,
        25e6,
        0.40,
        SimDuration::from_secs(4),
        SimDuration::from_secs(8),
        false,
    )
}

/// The regression-gate workload with the metrics registry enabled —
/// reported alongside [`fig06_smoke`] so the observability layer's
/// runtime overhead stays visible in every bench report. The CI gate
/// itself keys on the unmetered `fig06-smoke` only.
pub fn fig06_smoke_metered() -> MacroResult {
    run_attacked(
        "fig06-smoke-metrics",
        ScenarioSpec::ns2_dumbbell(8),
        0.075,
        25e6,
        0.40,
        SimDuration::from_secs(4),
        SimDuration::from_secs(8),
        true,
    )
}

/// A long benign run: 15 flows sharing the ns-2 bottleneck for 60 s of
/// simulated time with no attack — pure TCP/queue dynamics.
pub fn single_bottleneck_60s() -> MacroResult {
    run_benign(
        "single-bottleneck-60s",
        ScenarioSpec::ns2_dumbbell(15),
        SimDuration::from_secs(60),
    )
}

/// A wide, RTT-heterogeneous attacked run: 50 flows with RTTs spread
/// 20–460 ms under 75 ms pulses at 30 Mbps, γ = 0.4.
pub fn rtt_heterogeneous_50() -> MacroResult {
    run_attacked(
        "rtt-heterogeneous-50",
        ScenarioSpec::ns2_dumbbell(50),
        0.075,
        30e6,
        0.40,
        SimDuration::from_secs(5),
        SimDuration::from_secs(15),
        false,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_attacked(
    name: &str,
    spec: ScenarioSpec,
    t_extent: f64,
    r_attack: f64,
    gamma: f64,
    warmup: SimDuration,
    window: SimDuration,
    metered: bool,
) -> MacroResult {
    let train = PulseTrain::from_gamma(
        SimDuration::from_secs_f64(t_extent),
        BitsPerSec::from_bps(r_attack),
        spec.bottleneck,
        gamma,
    )
    .expect("canonical bench attack parameters are feasible");
    let mut bench = spec.build().expect("canonical bench scenario builds");
    if metered {
        bench.sim.enable_metrics();
    }
    // Warm up first, attach at the boundary: the same event order the
    // experiment layer uses for both its cold and forked runs.
    let t0 = Instant::now();
    bench.run_until(SimTime::ZERO + warmup);
    bench.attach_pulse_attack(train, SimTime::ZERO + warmup, None);
    bench.run_until(SimTime::ZERO + warmup + window);
    let wall = t0.elapsed().as_secs_f64();
    let stats = bench.sim.stats();
    MacroResult {
        name: name.to_string(),
        sim_secs: (warmup + window).as_secs_f64(),
        events: stats.events,
        packets: stats.delivered + stats.unclaimed,
        wall_secs: wall,
    }
}

fn run_benign(name: &str, spec: ScenarioSpec, horizon: SimDuration) -> MacroResult {
    let mut bench = spec.build().expect("canonical bench scenario builds");
    let t0 = Instant::now();
    bench.run_until(SimTime::ZERO + horizon);
    let wall = t0.elapsed().as_secs_f64();
    let stats = bench.sim.stats();
    MacroResult {
        name: name.to_string(),
        sim_secs: horizon.as_secs_f64(),
        events: stats.events,
        packets: stats.delivered + stats.unclaimed,
        wall_secs: wall,
    }
}

/// A tiny deterministic generator for bench schedules (SplitMix64).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Event-queue microbench: interleaved schedule/pop of packet-tier
/// events with pseudorandom timestamps (the engine's arrival pattern).
pub fn micro_event_queue(n: u64) -> MicroResult {
    let mut q = EventQueue::new();
    let mut rng = Mix(7);
    let t0 = Instant::now();
    let mut ops = 0u64;
    for i in 0..n {
        let at = SimTime::from_nanos(rng.next() % 1_000_000_000);
        q.schedule(
            at,
            Event::LinkTxDone {
                link: pdos_sim::link::LinkId::from_u32((i % 64) as u32),
            },
        );
        ops += 1;
        if i % 2 == 1 {
            let _ = std::hint::black_box(q.pop());
            ops += 1;
        }
    }
    while q.pop().is_some() {
        ops += 1;
    }
    MicroResult {
        name: "event-queue".to_string(),
        ops,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

/// Timer-churn microbench: the RTO pattern — every armed timer is
/// superseded before it fires (schedule, then cancel or supersede),
/// which is exactly the load lazy cancellation turns into heap bloat.
pub fn micro_timer_churn(n: u64) -> MicroResult {
    let mut q = EventQueue::new();
    let mut rng = Mix(11);
    let agent = pdos_sim::agent::AgentId::from_u32(0);
    let t0 = Instant::now();
    let mut ops = 0u64;
    let mut pending = Vec::new();
    for i in 0..n {
        let at = SimTime::from_nanos(1_000_000 + rng.next() % 4_000_000_000);
        pending.push(q.schedule_timer(at, agent, i));
        ops += 1;
        // Cancel the previously armed timer (RTO re-arm churn).
        if pending.len() >= 2 {
            let stale = pending.remove(0);
            q.cancel_timer(stale);
            ops += 1;
        }
        if i % 8 == 7 {
            let _ = std::hint::black_box(q.pop());
            ops += 1;
        }
    }
    while q.pop().is_some() {
        ops += 1;
    }
    MicroResult {
        name: "timer-churn".to_string(),
        ops,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

/// Queue-discipline microbench: RED enqueue/dequeue under a bursty
/// arrival pattern (the bottleneck's inner loop).
pub fn micro_queue_discipline(n: u64) -> MicroResult {
    let mut red = QueueSpec::Red(RedConfig::ns2_default(60)).build(BitsPerSec::from_mbps(15.0), 3);
    let mut rng = Mix(13);
    let pkt = Packet::new(
        FlowId::from_u32(1),
        NodeId::from_u32(0),
        NodeId::from_u32(1),
        Bytes::from_u64(1000),
        PacketKind::Background,
    );
    let t0 = Instant::now();
    let mut ops = 0u64;
    let mut now = SimTime::ZERO;
    for i in 0..n {
        now += SimDuration::from_nanos(200_000 + rng.next() % 600_000);
        let _ = std::hint::black_box(red.enqueue(pkt, now));
        ops += 1;
        // Bursts: drain every second slot so the queue oscillates.
        if i % 2 == 0 {
            let _ = std::hint::black_box(red.dequeue(now));
            ops += 1;
        }
    }
    MicroResult {
        name: "red-queue".to_string(),
        ops,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

/// The current UTC date as `YYYY-MM-DD`, computed from the system clock
/// (civil-from-days; no external date dependency).
pub fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days algorithm.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Peak resident set size of this process in bytes, read from
/// `/proc/self/status` (`VmHWM`). `None` on non-Linux hosts.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Extracts `events_per_sec` for the named macro workload from a
/// report previously serialized with [`PerfReport::to_json`]. This is a
/// purpose-built extractor for the harness's own output format, not a
/// general JSON parser.
/// Whether `json` is a bench report this harness can read: schema
/// `pdos-bench/4` (current), `pdos-bench/3` (lacks the `host_cores` and
/// `profile` fields, so [`extract_host_cores`] returns `None`),
/// `pdos-bench/2` (also lacks `shards`, so [`extract_shards`] defaults
/// to 1) or `pdos-bench/1` (also lacks the `warm_start` section, so its
/// extractors return `None` gracefully).
pub fn schema_supported(json: &str) -> bool {
    [
        "pdos-bench/1",
        "pdos-bench/2",
        "pdos-bench/3",
        "pdos-bench/4",
    ]
    .iter()
    .any(|v| json.contains(&format!("\"schema\":\"{v}\"")))
}

/// The logical core count the report was produced on. Reports from
/// schemas `/1`–`/3` predate the field and read as `None`.
pub fn extract_host_cores(json: &str) -> Option<usize> {
    extract_number_after(json, "\"host_cores\":").map(|v| (v as usize).max(1))
}

/// The named kind's event count from the report's `profile` section, if
/// the report was produced with `--profile`.
pub fn extract_profile_kind_count(json: &str, kind: &str) -> Option<u64> {
    let obj = &json[json.find("\"profile\":{")?..];
    let needle = format!("\"name\":\"{kind}\"");
    let rest = &obj[obj.find(&needle)?..];
    extract_number_after(rest, "\"count\":").map(|v| v as u64)
}

/// The worker shards the report's macros were run with. Reports from
/// schemas `/1` and `/2` predate sharding and read as 1.
pub fn extract_shards(json: &str) -> usize {
    extract_number_after(json, "\"shards\":")
        .map(|v| (v as usize).max(1))
        .unwrap_or(1)
}

/// Extracts a top-level numeric field (`null` and absence both yield
/// `None`). Purpose-built for the harness's own output format.
fn extract_number_after(json: &str, key: &str) -> Option<f64> {
    let v = &json[json.find(key)? + key.len()..];
    let end = v
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(v.len());
    v[..end].parse().ok()
}

/// The report's peak RSS in bytes, if recorded.
pub fn extract_peak_rss_bytes(json: &str) -> Option<u64> {
    extract_number_after(json, "\"peak_rss_bytes\":").map(|v| v as u64)
}

/// The report's macro-phase allocation count, if recorded.
pub fn extract_alloc_allocations(json: &str) -> Option<u64> {
    let obj = &json[json.find("\"alloc\":")?..];
    extract_number_after(obj, "\"allocations\":").map(|v| v as u64)
}

/// The warm-start macro's cold/forked speedup, if recorded (`None` for
/// schema `pdos-bench/1` reports).
pub fn extract_warm_start_speedup(json: &str) -> Option<f64> {
    let obj = &json[json.find("\"warm_start\":{")?..];
    extract_number_after(obj, "\"speedup\":")
}

/// The warm-start macro's checkpoint footprint in bytes, if recorded.
pub fn extract_warm_start_checkpoint_bytes(json: &str) -> Option<u64> {
    let obj = &json[json.find("\"warm_start\":{")?..];
    extract_number_after(obj, "\"checkpoint_bytes\":").map(|v| v as u64)
}

pub fn extract_macro_events_per_sec(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\":\"{name}\"");
    let obj_start = json.find(&needle)?;
    let rest = &json[obj_start..];
    let obj_end = rest.find('}').unwrap_or(rest.len());
    let obj = &rest[..obj_end];
    let key = "\"events_per_sec\":";
    let v = &obj[obj.find(key)? + key.len()..];
    let end = v
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(v.len());
    v[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrips_the_gate_metric() {
        let report = PerfReport {
            date: "2026-08-06".into(),
            smoke: true,
            shards: 4,
            macros: vec![MacroResult {
                name: "fig06-smoke".into(),
                sim_secs: 12.0,
                events: 1_000_000,
                packets: 300_000,
                wall_secs: 0.5,
            }],
            micros: vec![MicroResult {
                name: "event-queue".into(),
                ops: 100,
                wall_secs: 0.001,
            }],
            warm_start: Some(WarmStartResult {
                name: "fig06-grid-warmstart".into(),
                points: 6,
                cold_wall_secs: 0.9,
                warm_wall_secs: 0.3,
                checkpoint_bytes: 2_000_000,
            }),
            peak_rss_bytes: Some(12 * 1024 * 1024),
            alloc: Some(AllocSnapshot {
                allocations: 42,
                bytes: 1024,
            }),
            host_cores: 8,
            profile: Some({
                let mut p = ProfileSnapshot::default();
                p.kinds[0].count = 1_000;
                p.kinds[0].wall_nanos = 5_000;
                p
            }),
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"pdos-bench/4\""), "{json}");
        assert!(schema_supported(&json), "{json}");
        assert!(json.contains("\"shards\":4"), "{json}");
        assert_eq!(extract_shards(&json), 4);
        assert_eq!(extract_host_cores(&json), Some(8));
        assert_eq!(extract_profile_kind_count(&json, "deliver"), Some(1_000));
        assert_eq!(extract_profile_kind_count(&json, "timer"), Some(0));
        assert_eq!(extract_profile_kind_count(&json, "nonexistent"), None);
        assert!(json.contains("\"peak_rss_bytes\":12582912"), "{json}");
        assert!(json.contains("\"allocations\":42"), "{json}");
        assert!(json.contains("\"checkpoint_bytes\":2000000"), "{json}");
        let eps = extract_macro_events_per_sec(&json, "fig06-smoke").expect("metric extracted");
        assert!((eps - 2_000_000.0).abs() < 1.0, "{eps}");
        assert_eq!(extract_macro_events_per_sec(&json, "nonexistent"), None);
        assert_eq!(extract_peak_rss_bytes(&json), Some(12 * 1024 * 1024));
        assert_eq!(extract_alloc_allocations(&json), Some(42));
        let speedup = extract_warm_start_speedup(&json).expect("speedup extracted");
        assert!((speedup - 3.0).abs() < 1e-9, "{speedup}");
        assert_eq!(extract_warm_start_checkpoint_bytes(&json), Some(2_000_000));
        assert!(report.summary().contains("fig06-smoke"));
        assert!(report.summary().contains("fig06-grid-warmstart"));
    }

    #[test]
    fn null_fields_serialize() {
        let report = PerfReport {
            date: "2026-08-06".into(),
            smoke: false,
            shards: 1,
            macros: vec![],
            micros: vec![],
            warm_start: None,
            peak_rss_bytes: None,
            alloc: None,
            host_cores: 1,
            profile: None,
        };
        let json = report.to_json();
        assert!(json.contains("\"warm_start\":null"), "{json}");
        assert!(json.contains("\"peak_rss_bytes\":null"), "{json}");
        assert!(json.contains("\"alloc\":null"), "{json}");
        assert!(json.contains("\"profile\":null"), "{json}");
        assert_eq!(extract_warm_start_speedup(&json), None);
        assert_eq!(extract_peak_rss_bytes(&json), None);
        assert_eq!(extract_profile_kind_count(&json, "deliver"), None);
    }

    #[test]
    fn schema_1_reports_still_read() {
        // A pre-warm-start report (the `/1` schema): the gate metric and
        // resource readings extract; the warm-start extractors return None.
        let v1 = "{\"schema\":\"pdos-bench/1\",\"date\":\"2026-08-07\",\"smoke\":true,\
                  \"macros\":[{\"name\":\"fig06-smoke\",\"events_per_sec\":5416242.3}],\
                  \"micros\":[],\"peak_rss_bytes\":7032832,\
                  \"alloc\":{\"allocations\":101752,\"bytes\":30148821}}";
        assert!(schema_supported(v1));
        assert!(!schema_supported("{\"schema\":\"pdos-bench/99\"}"));
        let eps = extract_macro_events_per_sec(v1, "fig06-smoke").unwrap();
        assert!((eps - 5_416_242.3).abs() < 0.5, "{eps}");
        assert_eq!(extract_peak_rss_bytes(v1), Some(7_032_832));
        assert_eq!(extract_alloc_allocations(v1), Some(101_752));
        assert_eq!(extract_warm_start_speedup(v1), None);
        assert_eq!(extract_warm_start_checkpoint_bytes(v1), None);
        assert_eq!(extract_shards(v1), 1, "pre-sharding schema implies 1");
        assert_eq!(extract_host_cores(v1), None, "pre-/4 schema has no cores");
    }

    #[test]
    fn schema_2_reports_still_read() {
        // A pre-sharding report (the `/2` schema): everything extracts;
        // the shards field defaults to 1.
        let v2 = "{\"schema\":\"pdos-bench/2\",\"date\":\"2026-08-07\",\"smoke\":true,\
                  \"macros\":[{\"name\":\"fig06-smoke\",\"events_per_sec\":5416242.3}],\
                  \"micros\":[],\"warm_start\":{\"name\":\"fig06-grid-warmstart\",\
                  \"points\":6,\"cold_wall_secs\":0.9,\"warm_wall_secs\":0.3,\
                  \"speedup\":3.000,\"checkpoint_bytes\":2000000},\
                  \"peak_rss_bytes\":7032832,\"alloc\":null}";
        assert!(schema_supported(v2));
        let eps = extract_macro_events_per_sec(v2, "fig06-smoke").unwrap();
        assert!((eps - 5_416_242.3).abs() < 0.5, "{eps}");
        assert_eq!(extract_shards(v2), 1);
        let speedup = extract_warm_start_speedup(v2).unwrap();
        assert!((speedup - 3.0).abs() < 1e-9, "{speedup}");
        assert_eq!(extract_host_cores(v2), None);
    }

    #[test]
    fn schema_3_reports_still_read() {
        // A pre-host-cores/profile report (the `/3` schema, the last one
        // before this harness profiled itself): everything extracts; the
        // new fields read back as absent.
        let v3 = "{\"schema\":\"pdos-bench/3\",\"date\":\"2026-08-07\",\"smoke\":true,\
                  \"shards\":2,\
                  \"macros\":[{\"name\":\"million-flow-smoke\",\"events_per_sec\":191621.4}],\
                  \"micros\":[],\"warm_start\":{\"name\":\"fig06-grid-warmstart\",\
                  \"points\":6,\"cold_wall_secs\":0.9,\"warm_wall_secs\":0.3,\
                  \"speedup\":3.000,\"checkpoint_bytes\":2000000},\
                  \"peak_rss_bytes\":7032832,\"alloc\":{\"allocations\":297545,\
                  \"bytes\":291000000}}";
        assert!(schema_supported(v3));
        let eps = extract_macro_events_per_sec(v3, "million-flow-smoke").unwrap();
        assert!((eps - 191_621.4).abs() < 0.5, "{eps}");
        assert_eq!(extract_shards(v3), 2);
        assert_eq!(extract_alloc_allocations(v3), Some(297_545));
        assert_eq!(extract_host_cores(v3), None);
        assert_eq!(extract_profile_kind_count(v3, "deliver"), None);
    }

    #[test]
    fn million_flow_macro_is_shard_invariant() {
        // A miniature of the scale macro (the real flow counts only run
        // under `pdos bench` in release builds): the sharded engine must
        // process the byte-identical event sequence, so events and
        // packets agree exactly between one and many workers.
        let sequential = million_flow_smoke(2_000, 1);
        let sharded = million_flow_smoke(2_000, 4);
        assert_eq!(sequential.name, "million-flow-smoke");
        assert_eq!(sharded.name, "million-flow-smoke-x4");
        assert!(sequential.events > 0, "{sequential:?}");
        assert!(sequential.packets > 0, "{sequential:?}");
        assert_eq!(sequential.events, sharded.events);
        assert_eq!(sequential.packets, sharded.packets);
    }

    #[test]
    fn warmstart_macro_speeds_up_and_records_checkpoint_size() {
        let w = fig06_grid_warmstart();
        assert_eq!(w.points, 6);
        assert!(w.checkpoint_bytes > 0, "{w:?}");
        // The macro asserts result-equality internally; the perf bar
        // itself (>= 1.3x) is enforced by the CLI gate against the
        // committed report, not here, to keep the test robust on loaded
        // machines — but forking should never be slower than cold.
        assert!(w.speedup() > 1.0, "warm-start slower than cold: {:?}", w);
    }

    #[test]
    fn date_is_civil_and_plausible() {
        let d = today_utc();
        assert_eq!(d.len(), 10, "{d}");
        assert_eq!(&d[4..5], "-");
        let year: i32 = d[..4].parse().unwrap();
        assert!(year >= 2024, "{d}");
    }

    #[test]
    fn microbenches_run_quickly_and_count_ops() {
        let eq = micro_event_queue(2_000);
        assert!(eq.ops >= 2_000);
        assert!(eq.ops_per_sec() > 0.0);
        let tc = micro_timer_churn(2_000);
        assert!(tc.ops >= 2_000);
        let rq = micro_queue_discipline(2_000);
        assert!(rq.ops >= 2_000);
    }

    #[test]
    fn rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM available on Linux");
            assert!(rss > 0);
        }
    }
}
