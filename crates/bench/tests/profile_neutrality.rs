//! The self-profiler is an observer, not a participant: enabling it must
//! leave every simulation outcome byte-identical — same event count, same
//! traffic, same drops — and a disabled profiler must report nothing
//! (its per-event hooks compile down to one branch on a dead flag).

use pdos_bench::perf::build_million_flow_sim;
use pdos_sim::profile::EVENT_KINDS;
use pdos_sim::time::SimTime;

const FLOWS: usize = 5_000;

#[test]
fn profiler_does_not_perturb_the_run() {
    let run = |profile: bool| {
        let mut sim = build_million_flow_sim(FLOWS);
        if profile {
            sim.enable_profiler();
        }
        sim.run_until(SimTime::from_secs(1));
        (format!("{:?}", sim.stats()), sim.profile_snapshot())
    };
    let (plain_stats, plain_snapshot) = run(false);
    let (profiled_stats, profiled_snapshot) = run(true);

    assert_eq!(
        plain_stats, profiled_stats,
        "profiling changed the simulation outcome"
    );
    assert!(
        plain_snapshot.is_none(),
        "a disabled profiler must report nothing"
    );

    // The enabled profiler must account for exactly the events the
    // engine processed.
    let snapshot = profiled_snapshot.expect("enabled profiler reports");
    let events: u64 = snapshot.kinds.iter().map(|k| k.count).sum();
    assert!(
        plain_stats.contains(&format!("events: {events}")),
        "profiled event total {events} missing from stats {plain_stats}"
    );
    let deliver = EVENT_KINDS
        .iter()
        .position(|&k| k == "deliver")
        .expect("deliver kind exists");
    assert!(
        snapshot.kinds[deliver].count > 0,
        "a closed-loop run must deliver packets"
    );
}
