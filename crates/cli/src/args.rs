//! Minimal dependency-free argument parsing: `--key value` pairs and
//! boolean `--flag`s after a subcommand.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A user error in the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for ArgError {}

/// Parsed command line: a subcommand plus `--key value` options and
/// `--flag` booleans.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Option keys every subcommand accepts, used for typo detection.
const KNOWN_KEYS: &[&str] = &[
    "flows",
    "textent-ms",
    "rattack-mbps",
    "gamma",
    "kappa",
    "points",
    "period-s",
    "window-s",
    "seed",
    "queue",
    "csv",
    "capacity-mbps",
    "bin-ms",
    "min-rto-ms",
    "trace-out",
    "target-degradation",
    "fig",
    "jobs",
    "master-seed",
    "out",
    "golden-dir",
    "scenarios",
    "baseline",
    "scenario",
    "format",
    "budget-secs",
    "repro-dir",
    "replay",
    "shrink-budget",
    "fault",
    "cc",
    "shards",
];
const KNOWN_FLAGS: &[&str] = &[
    "ecn",
    "droptail",
    "help",
    "testbed",
    "smoke",
    "bless",
    "warm-start",
    "no-warm-start",
    "profile",
];

impl Args {
    /// Parses `argv[1..]`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on missing values, unknown keys, or a missing
    /// subcommand.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, ArgError> {
        let mut it = argv.into_iter().peekable();
        let command = it
            .next()
            .ok_or_else(|| ArgError("missing subcommand; try `pdos help`".into()))?;
        let mut args = Args {
            command,
            ..Args::default()
        };
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument '{tok}' (options are --key value)"
                )));
            };
            if KNOWN_FLAGS.contains(&key) {
                args.flags.push(key.to_string());
            } else if KNOWN_KEYS.contains(&key) {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError(format!("option --{key} needs a value")))?;
                args.options.insert(key.to_string(), value);
            } else {
                return Err(ArgError(format!("unknown option --{key}")));
            }
        }
        Ok(args)
    }

    /// Whether `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse '{v}'"))),
        }
    }

    /// A required numeric option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when missing or unparsable.
    pub fn require_num<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let v = self
            .options
            .get(key)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))?;
        v.parse()
            .map_err(|_| ArgError(format!("--{key}: cannot parse '{v}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("simulate --flows 15 --gamma 0.3 --ecn").unwrap();
        assert_eq!(a.command, "simulate");
        assert_eq!(a.num::<usize>("flows", 0).unwrap(), 15);
        assert_eq!(a.num::<f64>("gamma", 0.0).unwrap(), 0.3);
        assert!(a.flag("ecn"));
        assert!(!a.flag("droptail"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("solve").unwrap();
        assert_eq!(a.num::<usize>("flows", 25).unwrap(), 25);
        assert_eq!(a.get("queue"), None);
    }

    #[test]
    fn missing_subcommand_rejected() {
        assert!(Args::parse(Vec::new()).is_err());
    }

    #[test]
    fn unknown_option_rejected() {
        let e = parse("solve --bogus 3").unwrap_err();
        assert!(e.to_string().contains("--bogus"));
    }

    #[test]
    fn missing_value_rejected() {
        let e = parse("solve --flows").unwrap_err();
        assert!(e.to_string().contains("needs a value"));
    }

    #[test]
    fn unparsable_value_rejected() {
        let a = parse("solve --flows abc").unwrap();
        assert!(a.num::<usize>("flows", 1).is_err());
        assert!(a.require_num::<usize>("flows").is_err());
    }

    #[test]
    fn positional_after_command_rejected() {
        assert!(parse("solve stray").is_err());
    }

    #[test]
    fn required_option_enforced() {
        let a = parse("detect").unwrap();
        assert!(a.require_num::<f64>("capacity-mbps").is_err());
    }

    #[test]
    fn sweep_figure_options_round_trip() {
        let a = parse(
            "sweep --fig fig06 --jobs 3 --smoke --master-seed 17 --cc cubic --out /tmp/r.json",
        )
        .unwrap();
        assert_eq!(a.command, "sweep");
        assert_eq!(a.get("fig"), Some("fig06"));
        assert_eq!(a.get("cc"), Some("cubic"));
        assert_eq!(a.num::<usize>("jobs", 0).unwrap(), 3);
        assert!(a.flag("smoke"));
        assert_eq!(a.num::<u64>("master-seed", 0).unwrap(), 17);
        assert_eq!(a.get("out"), Some("/tmp/r.json"));
        // Absent flags and keys fall back cleanly.
        assert!(!a.flag("bless"));
        assert_eq!(a.num::<u64>("seed", 9).unwrap(), 9);
    }

    #[test]
    fn warm_start_flags_round_trip() {
        let a = parse("sweep --fig fig06 --no-warm-start").unwrap();
        assert!(a.flag("no-warm-start"));
        assert!(!a.flag("warm-start"));
        let b = parse("sweep --fig fig06 --warm-start").unwrap();
        assert!(b.flag("warm-start"));
        assert!(!b.flag("no-warm-start"));
    }

    #[test]
    fn fuzz_options_round_trip() {
        let a = parse(
            "fuzz --scenarios 300 --budget-secs 900 --master-seed 3 --jobs 2 \
             --out /tmp/f.json --repro-dir /tmp/repros --shrink-budget 16 --fault none",
        )
        .unwrap();
        assert_eq!(a.command, "fuzz");
        assert_eq!(a.num::<usize>("scenarios", 0).unwrap(), 300);
        assert_eq!(a.num::<u64>("budget-secs", 0).unwrap(), 900);
        assert_eq!(a.get("repro-dir"), Some("/tmp/repros"));
        assert_eq!(a.num::<usize>("shrink-budget", 0).unwrap(), 16);
        assert_eq!(a.get("fault"), Some("none"));
        let b = parse("fuzz --replay /tmp/repros/case.repro").unwrap();
        assert_eq!(b.get("replay"), Some("/tmp/repros/case.repro"));
    }

    #[test]
    fn check_options_round_trip() {
        let a = parse("check --scenarios 50 --golden-dir tests/golden --bless --jobs 2").unwrap();
        assert_eq!(a.command, "check");
        assert_eq!(a.num::<usize>("scenarios", 0).unwrap(), 50);
        assert_eq!(a.get("golden-dir"), Some("tests/golden"));
        assert!(a.flag("bless"));
        assert_eq!(a.num::<usize>("jobs", 0).unwrap(), 2);
    }
}
