//! Subcommand implementations. Each returns the report text it would
//! print, so the logic is directly unit-testable.

use crate::args::{ArgError, Args};
use pdos_analysis::gain::RiskPreference;
use pdos_analysis::model::{c_psi, mu_from_gamma};
use pdos_analysis::optimize::{plan_for_degradation, solve};
use pdos_analysis::sensitivity::parameter_what_if;
use pdos_attack::pulse::PulseTrain;
use pdos_conformance::{OracleConfig, GOLDEN_FILE};
use pdos_detect::cusum::CusumDetector;
use pdos_detect::rate::RateDetector;
use pdos_detect::roc::{auc, roc_curve};
use pdos_detect::spectral::SpectralDetector;
use pdos_detect::streaming::{
    alarm_stream_json, Alarm, StreamingCusum, StreamingDetector, StreamingRate, StreamingSpectral,
};
use pdos_scenarios::experiment::{gamma_grid, GainExperiment};
use pdos_scenarios::figures::{
    gain_figure_specs, gain_figure_specs_cc, roc_specs, FigureGrid, GainFigure,
};
use pdos_scenarios::runner::{AttackPoint, ExperimentSpec, RunOutcome, SeedPolicy, SweepRunner};
use pdos_scenarios::spec::{BottleneckQueue, ScenarioSpec};
use pdos_scenarios::sync::SyncExperiment;
use pdos_sim::time::SimDuration;
use pdos_sim::units::BitsPerSec;
use pdos_tcp::cc::CcSpec;
use std::fmt::Write as _;

/// The top-level help text.
pub const HELP: &str = "\
pdos — a simulation laboratory for pulsing denial-of-service research
(reproduction of Luo & Chang, DSN 2005; simulation only, no real traffic)

USAGE: pdos <command> [--key value] [--flag]

COMMANDS
  solve      solve the gain model: optimal gamma*, mu*, period, what-if table
             --flows N (25)  --textent-ms T (75)  --rattack-mbps R (30)
             --kappa K (1.0)  --target-degradation D (also plan the
             quietest attack reaching damage level D)
  simulate   run one attacked scenario and report measured vs modelled damage
             --flows N (15)  --textent-ms T (75)  --rattack-mbps R (30)
             --gamma G (0.3)  --window-s W (30)  --seed S (1)
             --queue red|droptail|acc (red)  --ecn  --testbed (use the
             Fig. 11 test-bed scenario: 10 Mbps, 150 ms, 200 ms min RTO)
             --trace-out FILE (write the bottleneck's binned byte trace,
             --bin-ms B (100) wide bins, consumable by `pdos detect`)
  sweep      gamma sweep printing CSV rows (gamma,t_aimd,g_curve,g_sim,class)
             same options as simulate, plus --points N (8) and --jobs N
             (0 = one worker per CPU)
             --shards N (1): run every point on the sharded engine with
             N conservative-lookahead workers; results are bit-identical
             to --shards 1 (see docs/SHARDING.md)
             --fig fig06|fig07|fig08|fig09 runs a whole paper figure
             through the parallel deterministic runner instead:
             --jobs N (0)  --smoke (CI-sized grid)  --master-seed S (0)
             --fig roc runs the ROC ablation instead: benign and attacked
             traces through the runner, scored by the streaming detectors
             across a threshold sweep (reports per-scorer curves + AUC;
             --out FILE writes the deterministic pdos-roc/1 JSON)
             --cc aimd|cubic|bbr-lite|dctcp (aimd): victims run the
             chosen congestion control; the summary reports the measured
             per-algorithm (gamma*, mu*) next to the analytic AIMD
             reference  --out FILE (write the full JSON report)
             --warm-start | --no-warm-start (default on): simulate each
             distinct warm-up prefix once, checkpoint it, and fork every
             sweep point from the checkpoint; results are bitwise
             identical either way (cold fallback is automatic)
  sync       the Fig. 3 synchronization experiment
             --flows N (12)  --textent-ms T (50)  --rattack-mbps R (100)
             --period-s P (2)  --window-s W (30)
  detect     run the volume + spectral detectors over a binned byte trace
             --csv FILE (one integer per line: bytes per bin)
             --capacity-mbps C  --bin-ms B (100)
  serve      streaming detection service: feed traces bin by bin through
             the online CUSUM + rate + spectral detector bank and emit
             the deterministic pdos-detect/1 alarm-stream JSON
             --replay FILE (score one recorded trace, the `pdos simulate
             --trace-out` format; requires --capacity-mbps C)
             --bin-ms B (100)
             live mode (default, no --replay): simulate a scenario set
             and score each run's bottleneck trace in spec order —
             --scenario golden|fig06-smoke (golden)  --jobs N (0; never
             affects the alarm stream)
             --out FILE (write the JSON; printed to stdout otherwise)
  bench      engine performance harness: macro workloads (events/s,
             packets/s), the fig06-grid-warmstart macro (cold vs forked
             sweep wall time + checkpoint size), and event-queue and
             queue-discipline microbenches, plus the flow-bank-smoke
             (1e4 flows, gates every PR) and million-flow-smoke (>= 1e5
             struct-of-arrays flows) scale macros, written as a
             BENCH_<date>.json report (schema pdos-bench/4; /1-/3
             baselines still read)
             --shards N (1): add a second million-flow leg on the
             sharded engine for a sequential-vs-sharded comparison
             (speedup gate skipped, with a record, on 1-core hosts)
             --profile: run the scale macros under the engine's
             self-profiler and report the per-event-type breakdown
             --smoke (CI-sized: fig06 smoke macro only)  --out FILE
             (default BENCH_<date>.json)  --baseline FILE (fail on a >20%
             fig06-smoke or flow-bank-smoke events/s regression, >30%
             peak-RSS or allocation-count growth, or a warm-start speedup
             below 1.3x)
  metrics    run a scenario set with the metrics registry enabled and
             export the merged per-link/per-flow/engine snapshot
             --scenario fig06-smoke|golden (fig06-smoke)  --jobs N (0)
             --format json|csv (json)  --out FILE (print to stdout
             when omitted)
  check      conformance suite: a fig06 smoke sweep with the runtime
             invariant checkers on, golden-trace digest regression, and
             the analytic differential oracle (randomized scenarios vs
             the Eq. 5 gain curves within EXPERIMENTS.md tolerance bands)
             --jobs N (0)  --scenarios N (50)  --master-seed S (7)
             --golden-dir DIR (tests/golden)  --bless (regenerate the
             golden digests)  --out FILE (write the report)
             --warm-start | --no-warm-start (default on) for the smoke
             sweep's warm-start checkpointing
             --cc all (also run the congestion-control differential
             battery: every registered algorithm simulates the same
             ECN-marked canonical point and all traces must be
             pairwise distinct)
             --shards N (1; N>1 re-runs the canonical set on a sharded
             engine and requires digest byte-identity with --shards 1)
  fuzz       scenario fuzzing campaign: seeded random case families
             (oracle-envelope and diverse dumbbells, parking-lot,
             fat-tree and flow-bank topologies) through the oracle +
             invariant-checker + golden-digest machinery, with
             shrink-on-violation
             --scenarios N (200)  --budget-secs S (0 = uncapped; the
             unit is *simulated* seconds, so the budget is
             machine-independent)  --master-seed S (7)  --jobs N (0;
             never affects the report bytes)
             --out FILE (stable pdos-fuzz/1 JSON report)
             --repro-dir DIR (one self-contained .repro per violation,
             minimized by the shrinker)
             --shrink-budget N (64; replays allowed per shrink)
             --fault none|link-accounting|omit-link-stats|cubic-window|
             cusum-drift|shard-skew (self-test drill: deliberately
             inject a bug into every dumbbell case; the campaign must
             catch it — cusum-drift desynchronizes the streaming
             detector state, which the detector-equivalence stage must
             flag; shard-skew delivers a cross-shard packet before the
             lookahead window on the sharded engine, which the
             clock-monotonicity checker must flag)
             --replay FILE (re-run one .repro file; exits non-zero
             while the recorded violation still reproduces)
  help       this text
";

/// Resolves `--warm-start` / `--no-warm-start` (default: on). Warm-start
/// checkpointing is bitwise result-neutral, so the flag is purely a
/// wall-clock/debugging knob.
fn warm_start_of(args: &Args) -> Result<bool, ArgError> {
    if args.flag("warm-start") && args.flag("no-warm-start") {
        return Err(ArgError(
            "--warm-start and --no-warm-start are mutually exclusive".into(),
        ));
    }
    Ok(!args.flag("no-warm-start"))
}

/// Resolves `--cc` against the congestion-control registry (default:
/// `aimd`, the paper's sender).
fn cc_of(args: &Args) -> Result<CcSpec, ArgError> {
    let key = args.get("cc").unwrap_or("aimd");
    CcSpec::from_key(key).ok_or_else(|| {
        let known: Vec<&str> = CcSpec::ALL.iter().map(|c| c.key()).collect();
        ArgError(format!(
            "--cc must be one of {}; got '{key}'",
            known.join(", ")
        ))
    })
}

fn queue_of(args: &Args) -> Result<BottleneckQueue, ArgError> {
    match args.get("queue").unwrap_or("red") {
        "red" => Ok(BottleneckQueue::Red),
        "droptail" => Ok(BottleneckQueue::DropTail),
        "acc" => Ok(BottleneckQueue::AccRed),
        other => Err(ArgError(format!(
            "--queue must be red, droptail or acc; got '{other}'"
        ))),
    }
}

fn spec_of(args: &Args, default_flows: usize) -> Result<ScenarioSpec, ArgError> {
    let mut spec = if args.flag("testbed") {
        let mut s = ScenarioSpec::testbed();
        s.n_flows = args.num("flows", s.n_flows)?;
        s
    } else {
        ScenarioSpec::ns2_dumbbell(args.num("flows", default_flows)?)
    };
    spec.queue = queue_of(args)?;
    spec.seed = args.num("seed", 1u64)?;
    spec.tcp.ecn = args.flag("ecn");
    if let Some(ms) = args.get("min-rto-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| ArgError(format!("--min-rto-ms: cannot parse '{ms}'")))?;
        spec.tcp.min_rto = SimDuration::from_millis(ms);
    }
    Ok(spec)
}

/// `pdos solve`.
pub fn cmd_solve(args: &Args) -> Result<String, ArgError> {
    let flows: usize = args.num("flows", 25)?;
    let t_extent = args.num("textent-ms", 75.0)? / 1000.0;
    let r_attack = args.num("rattack-mbps", 30.0)? * 1e6;
    let kappa: f64 = args.num("kappa", 1.0)?;
    let risk = RiskPreference::new(kappa).map_err(ArgError)?;
    let victims = ScenarioSpec::ns2_dumbbell(flows).victims();

    let sol = solve(&victims, t_extent, r_attack, risk).map_err(|e| ArgError(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "victims: {flows} flows, 15 Mbps bottleneck; pulses {} ms at {} Mbps; kappa = {kappa}",
        t_extent * 1000.0,
        r_attack / 1e6
    );
    let _ = writeln!(out, "  gamma*          = {:.4}", sol.gamma_star);
    let _ = writeln!(out, "  mu*             = {:.3}", sol.mu_star);
    let _ = writeln!(out, "  period T_AIMD   = {:.3} s", sol.period);
    let _ = writeln!(out, "  degradation     = {:.3}", sol.degradation);
    let _ = writeln!(out, "  gain at optimum = {:.3}", sol.gain);
    if let Some(target) = args.get("target-degradation") {
        let target: f64 = target
            .parse()
            .map_err(|_| ArgError(format!("--target-degradation: cannot parse '{target}'")))?;
        let plan = plan_for_degradation(&victims, t_extent, r_attack, target, risk)
            .map_err(|e| ArgError(e.to_string()))?;
        let _ = writeln!(
            out,
            "\nquietest attack reaching {:.0}% degradation:",
            target * 100.0
        );
        let _ = writeln!(out, "  gamma           = {:.4}", plan.gamma);
        let _ = writeln!(out, "  mu              = {:.3}", plan.mu);
        let _ = writeln!(out, "  period T_AIMD   = {:.3} s", plan.period);
        let _ = writeln!(out, "  exposure factor = {:.3}", plan.exposure_factor);
    }
    let _ = writeln!(out, "\nwhat-if (risk-neutral attacker):");
    let _ = writeln!(
        out,
        "  {:<42} {:>8} {:>8} {:>8}",
        "change", "C_psi", "gamma*", "G*"
    );
    for row in
        parameter_what_if(&victims, t_extent, r_attack).map_err(|e| ArgError(e.to_string()))?
    {
        let _ = writeln!(
            out,
            "  {:<42} {:>8.3} {:>8.3} {:>8.3}",
            row.change, row.c_psi, row.gamma_star, row.g_star
        );
    }
    Ok(out)
}

/// `pdos simulate`.
pub fn cmd_simulate(args: &Args) -> Result<String, ArgError> {
    let spec = spec_of(args, 15)?;
    let t_extent = args.num("textent-ms", 75.0)? / 1000.0;
    let r_attack = args.num("rattack-mbps", 30.0)? * 1e6;
    let gamma: f64 = args.num("gamma", 0.3)?;
    let window: u64 = args.num("window-s", 30)?;

    let exp = GainExperiment::new(spec)
        .warmup(SimDuration::from_secs(8))
        .window(SimDuration::from_secs(window));
    let baseline = exp.baseline_bytes().map_err(|e| ArgError(e.to_string()))?;
    let trace_bin = args
        .get("trace-out")
        .map(|_| -> Result<SimDuration, ArgError> {
            Ok(SimDuration::from_secs_f64(
                args.num("bin-ms", 100.0)? / 1000.0,
            ))
        })
        .transpose()?;
    let (p, bins) = exp
        .run_point_traced(t_extent, r_attack, gamma, baseline, trace_bin)
        .map_err(|e| ArgError(e.to_string()))?;

    let mut out = String::new();
    if let Some(path) = args.get("trace-out") {
        let body: String = bins.iter().map(|b| format!("{b}\n")).collect();
        std::fs::write(path, body).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "wrote {} bins to {path}", bins.len());
    }
    let _ = writeln!(
        out,
        "attack: {} ms pulses at {} Mbps, gamma = {gamma} (T_AIMD = {:.3} s)",
        t_extent * 1000.0,
        r_attack / 1e6,
        p.t_aimd
    );
    let _ = writeln!(
        out,
        "baseline goodput          : {:.2} Mbps",
        baseline as f64 * 8.0 / window as f64 / 1e6
    );
    let _ = writeln!(
        out,
        "degradation (model / sim) : {:.3} / {:.3}",
        p.degradation_analytic, p.degradation_sim
    );
    let _ = writeln!(
        out,
        "gain        (model / sim) : {:.3} / {:.3}",
        p.g_analytic, p.g_sim
    );
    let _ = writeln!(
        out,
        "victim timeouts / FRs     : {} / {}",
        p.timeouts, p.fast_recoveries
    );
    if let Some(n) = p.shrew {
        let _ = writeln!(
            out,
            "NOTE: period sits on the shrew subharmonic min_rto/{n}"
        );
    }
    let _ = writeln!(out, "classification            : {}", p.class);
    Ok(out)
}

/// `pdos sweep`: a γ sweep as CSV, or — with `--fig` — a whole paper
/// figure through the parallel deterministic runner with a JSON report.
pub fn cmd_sweep(args: &Args) -> Result<String, ArgError> {
    if args.get("fig").is_some() {
        return cmd_sweep_figure(args);
    }
    let spec = spec_of(args, 15)?;
    let t_extent = args.num("textent-ms", 75.0)? / 1000.0;
    let r_attack = args.num("rattack-mbps", 30.0)? * 1e6;
    let points: usize = args.num("points", 8)?;
    let window: u64 = args.num("window-s", 30)?;
    let jobs: usize = args.num("jobs", 0)?;
    let shards: usize = args.num("shards", 1)?;
    if points < 2 {
        return Err(ArgError("--points must be at least 2".into()));
    }

    // Enumerate the grid as specs and fan it out; `FromScenario` keeps the
    // CSV identical to the historical serial loop at any worker count.
    let warmup = SimDuration::from_secs(8);
    let window = SimDuration::from_secs(window);
    let specs: Vec<ExperimentSpec> = gamma_grid(0.08, 0.92, points)
        .into_iter()
        .map(|gamma| {
            ExperimentSpec::attacked(
                format!("sweep/g{gamma:.3}"),
                spec.clone(),
                AttackPoint {
                    t_extent,
                    r_attack,
                    gamma,
                },
            )
            .warmup(warmup)
            .window(window)
            .sharded(shards)
        })
        .collect();
    let report = SweepRunner::new(0)
        .seed_policy(SeedPolicy::FromScenario)
        .jobs(jobs)
        .warm_start(warm_start_of(args)?)
        .run(&specs);
    if let Some(rec) = report.records.iter().find_map(|r| match &r.outcome {
        RunOutcome::Failed { reason } => Some(format!("{}: {reason}", r.id)),
        _ => None,
    }) {
        return Err(ArgError(rec));
    }

    let c = c_psi(&spec.victims(), t_extent, r_attack).map_err(|e| ArgError(e.to_string()))?;
    let mut out = String::from("gamma,t_aimd_s,g_curve,g_sim,degradation_sim,timeouts,class\n");
    let points_measured = report.points();
    for p in &points_measured {
        let _ = writeln!(
            out,
            "{:.3},{:.3},{:.4},{:.4},{:.4},{},{}",
            p.gamma, p.t_aimd, p.g_analytic, p.g_sim, p.degradation_sim, p.timeouts, p.class
        );
    }
    let pairs: Vec<(f64, f64)> = points_measured
        .iter()
        .map(|p| (p.g_analytic, p.g_sim))
        .collect();
    let class = pdos_scenarios::classify::GainClass::classify_sweep(&pairs, 0.12);
    let _ = writeln!(out, "# C_psi = {c:.4}, sweep class = {class}");
    Ok(out)
}

/// `pdos sweep --fig figNN`: one gain figure through the runner.
fn cmd_sweep_figure(args: &Args) -> Result<String, ArgError> {
    let fig_name = args.get("fig").unwrap_or_default();
    if fig_name == "roc" {
        return cmd_sweep_roc(args);
    }
    let fig = GainFigure::from_name(fig_name).ok_or_else(|| {
        ArgError(format!(
            "--fig must be one of fig06, fig07, fig08, fig09, roc; got '{fig_name}'"
        ))
    })?;
    let jobs: usize = args.num("jobs", 0)?;
    let grid = if args.flag("smoke") {
        FigureGrid::smoke()
    } else {
        FigureGrid::full()
    };
    // Without --master-seed the figures' pinned scenario seeds are kept
    // (the paper-exact sweep); with it, every run gets an independent
    // seed derived from master seed + spec hash.
    let (master_seed, policy) = match args.get("master-seed") {
        None => (0, SeedPolicy::FromScenario),
        Some(_) => (args.num("master-seed", 0u64)?, SeedPolicy::Derived),
    };
    let cc = cc_of(args)?;
    let shards: usize = args.num("shards", 1)?;
    let specs: Vec<ExperimentSpec> = gain_figure_specs_cc(fig, &grid, cc)
        .into_iter()
        .map(|s| s.sharded(shards))
        .collect();
    let report = SweepRunner::new(master_seed)
        .seed_policy(policy)
        .jobs(jobs)
        .warm_start(warm_start_of(args)?)
        .run(&specs);

    let mut out = String::new();
    let (mut ok, mut infeasible, mut failed) = (0usize, 0usize, 0usize);
    for r in &report.records {
        match &r.outcome {
            RunOutcome::Point { .. } => ok += 1,
            RunOutcome::Benign { .. } => {}
            RunOutcome::Infeasible { .. } => infeasible += 1,
            RunOutcome::Failed { reason } => {
                failed += 1;
                let _ = writeln!(out, "FAILED {}: {reason}", r.id);
            }
        }
    }
    let _ = writeln!(
        out,
        "{}: {} runs ({} ok, {} infeasible, {} failed) on {} workers",
        fig.name(),
        report.records.len(),
        ok,
        infeasible,
        failed,
        report.jobs
    );
    let _ = writeln!(
        out,
        "wall {:.2} s, cpu {:.2} s, speedup {:.2}x, {:.2} runs/s",
        report.wall.as_secs_f64(),
        report.cpu_time().as_secs_f64(),
        report.cpu_time().as_secs_f64() / report.wall.as_secs_f64().max(1e-9),
        report.runs_per_sec()
    );
    // Per-algorithm optimum: the measured γ* is the argmax of G_sim over
    // the swept grid, with μ* implied by Eq. 2 at that rate; the analytic
    // Eq. 5 solution (which models AIMD senders) is printed alongside as
    // the paper's reference point.
    let points = report.points();
    if let Some(best) = points
        .iter()
        .copied()
        .max_by(|a, b| a.g_sim.total_cmp(&b.g_sim))
    {
        let r_attack = fig.r_attack_mbps() * 1e6;
        let victims = ScenarioSpec::ns2_dumbbell(grid.flows[0]).victims();
        let mu = mu_from_gamma(r_attack / victims.r_bottle(), best.gamma);
        let _ = writeln!(
            out,
            "cc={}: measured gamma* = {:.3}, mu* = {:.2} (T = {:.3} s, G_sim = {:.3})",
            cc.key(),
            best.gamma,
            mu,
            best.t_aimd,
            best.g_sim
        );
        match solve(
            &victims,
            grid.textents[0],
            r_attack,
            RiskPreference::NEUTRAL,
        ) {
            Ok(sol) => {
                let _ = writeln!(
                    out,
                    "analytic AIMD reference ({} flows, {:.0} ms pulses): gamma* = {:.3}, mu* = {:.2}",
                    grid.flows[0],
                    grid.textents[0] * 1000.0,
                    sol.gamma_star,
                    sol.mu_star
                );
            }
            Err(e) => {
                let _ = writeln!(out, "analytic AIMD reference unavailable: {e}");
            }
        }
    }
    if let Some(path) = args.get("out") {
        std::fs::write(path, report.to_json())
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "report written to {path}");
    }
    if failed > 0 {
        return Err(ArgError(format!("{failed} runs failed:\n{out}")));
    }
    Ok(out)
}

/// The utilization thresholds the ROC ablation sweeps the rate scorer
/// over, and the sigma thresholds for the dispersion-CUSUM scorer.
const ROC_RATE_THRESHOLDS: [f64; 7] = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
const ROC_CUSUM_THRESHOLDS: [f64; 7] = [2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0];

/// `pdos sweep --fig roc`: the ROC ablation — benign and attacked traces
/// generated through the (warm-startable) runner, then scored by the
/// *streaming* detectors across a threshold sweep. The output — human
/// table and `pdos-roc/1` JSON — is a pure function of the traces, so it
/// is byte-identical across `--jobs` and warm-start settings.
fn cmd_sweep_roc(args: &Args) -> Result<String, ArgError> {
    let jobs: usize = args.num("jobs", 0)?;
    let (n_traces, window) = if args.flag("smoke") {
        (2, SimDuration::from_secs(8))
    } else {
        (5, SimDuration::from_secs(30))
    };
    let specs = roc_specs(n_traces, window);
    let report = SweepRunner::new(0)
        .seed_policy(SeedPolicy::FromScenario)
        .jobs(jobs)
        .warm_start(warm_start_of(args)?)
        .run(&specs);

    let (mut benign, mut attacked): (Vec<Vec<u64>>, Vec<Vec<u64>>) = (Vec::new(), Vec::new());
    for (spec, r) in specs.iter().zip(&report.records) {
        match &r.outcome {
            RunOutcome::Point { trace, .. } => attacked.push(trace.clone()),
            RunOutcome::Benign { trace, .. } => benign.push(trace.clone()),
            RunOutcome::Infeasible { reason } | RunOutcome::Failed { reason } => {
                return Err(ArgError(format!("{}: {reason}", spec.id)));
            }
        }
    }
    let capacity = specs[0].scenario.bottleneck.as_bps();
    let bin_secs = 0.1;

    // Both scorers run *streaming* detectors over each trace — the same
    // state machines `pdos serve` deploys, so the curve measures the
    // online pipeline, not the batch one.
    let rate_points = roc_curve(&benign, &attacked, &ROC_RATE_THRESHOLDS, |th, trace| {
        let det = RateDetector::new(capacity, bin_secs, th, 0.05, 5)
            .expect("roc thresholds are in domain");
        let mut s = StreamingRate::new(det);
        trace.iter().any(|&b| s.push(b).is_some())
    });
    let cusum_points = roc_curve(&benign, &attacked, &ROC_CUSUM_THRESHOLDS, |th, trace| {
        let dispersion: Vec<u64> = trace.windows(2).map(|w| w[0].abs_diff(w[1])).collect();
        let calib = (dispersion.len() / 2).max(2);
        let mut s = StreamingCusum::new(calib, 0.5, th);
        dispersion.iter().any(|&b| s.push(b).is_some())
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "roc: {} traces ({} benign, {} attacked), gammas {:?}",
        benign.len() + attacked.len(),
        benign.len(),
        attacked.len(),
        pdos_scenarios::figures::ROC_GAMMAS
    );
    let _ = writeln!(out, "scorer,threshold,tpr,fpr");
    for (name, points) in [("rate", &rate_points), ("cusum-dispersion", &cusum_points)] {
        for p in points.iter() {
            let _ = writeln!(out, "{name},{:.2},{:.3},{:.3}", p.threshold, p.tpr, p.fpr);
        }
    }
    let _ = writeln!(out, "rate AUC             = {:.3}", auc(&rate_points));
    let _ = writeln!(out, "cusum-dispersion AUC = {:.3}", auc(&cusum_points));

    if let Some(path) = args.get("out") {
        let mut json = String::from("{\"schema\":\"pdos-roc/1\",");
        let _ = write!(
            json,
            "\"n_benign\":{},\"n_attacked\":{},\"scorers\":[",
            benign.len(),
            attacked.len()
        );
        for (i, (name, points)) in [("rate", &rate_points), ("cusum-dispersion", &cusum_points)]
            .into_iter()
            .enumerate()
        {
            if i > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "{{\"name\":\"{name}\",\"auc\":{},\"points\":[",
                auc(points)
            );
            for (j, p) in points.iter().enumerate() {
                if j > 0 {
                    json.push(',');
                }
                let _ = write!(
                    json,
                    "{{\"threshold\":{},\"tpr\":{},\"fpr\":{}}}",
                    p.threshold, p.tpr, p.fpr
                );
            }
            json.push_str("]}");
        }
        json.push_str("]}");
        std::fs::write(path, json).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "report written to {path}");
    }
    Ok(out)
}

/// `pdos metrics` — runs a scenario set with the metrics registry on and
/// exports the merged observability snapshot (per-link, per-flow and
/// engine scopes, plus the CLI's own sweep wall-time phase counter).
pub fn cmd_metrics(args: &Args) -> Result<String, ArgError> {
    let scenario = args.get("scenario").unwrap_or("fig06-smoke");
    let format = args.get("format").unwrap_or("json");
    if !matches!(format, "json" | "csv") {
        return Err(ArgError(format!(
            "--format must be json or csv; got '{format}'"
        )));
    }
    let jobs: usize = args.num("jobs", 0)?;
    let specs: Vec<ExperimentSpec> = match scenario {
        "fig06-smoke" => gain_figure_specs(GainFigure::Fig06, &FigureGrid::smoke())
            .into_iter()
            .map(ExperimentSpec::metered)
            .collect(),
        "golden" => pdos_conformance::canonical_specs()
            .into_iter()
            .map(ExperimentSpec::metered)
            .collect(),
        other => {
            return Err(ArgError(format!(
                "--scenario must be fig06-smoke or golden; got '{other}'"
            )));
        }
    };

    // The sweep itself is a profiled phase: its wall time lands in the
    // snapshot under cli/sweep_wall_nanos (the only wall-clock-dependent
    // entry — everything else is virtual-time deterministic).
    let mut profile = pdos_metrics::MetricsRegistry::new();
    let mut clock = pdos_metrics::WallClock::new();
    let report =
        pdos_metrics::time_phase(&mut profile, &mut clock, "cli", "sweep_wall_nanos", || {
            SweepRunner::new(0)
                .seed_policy(SeedPolicy::FromScenario)
                .jobs(jobs)
                .run(&specs)
        });
    if let Some(failure) = report.records.iter().find_map(|r| match &r.outcome {
        RunOutcome::Failed { reason } => Some(format!("{}: {reason}", r.id)),
        _ => None,
    }) {
        return Err(ArgError(failure));
    }
    let mut merged = report
        .merged_metrics()
        .ok_or_else(|| ArgError("no successful metered runs to merge".into()))?;
    merged.merge(&profile.snapshot());

    let body = match format {
        "csv" => merged.to_csv(),
        _ => merged.to_json(),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{scenario}: merged {} metrics from {} runs on {} workers",
        merged.entries.len(),
        report.records.len(),
        report.jobs
    );
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &body)
                .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
            let _ = writeln!(out, "metrics written to {path}");
        }
        None => out.push_str(&body),
    }
    Ok(out)
}

/// `pdos check` — the conformance suite. Fails (non-zero exit) on any
/// invariant violation, golden-trace drift, or oracle band breach; when
/// `--out` is given the report is written even on failure, so CI can
/// upload it as an artifact.
pub fn cmd_check(args: &Args) -> Result<String, ArgError> {
    let jobs: usize = args.num("jobs", 0)?;
    let scenarios: usize = args.num("scenarios", 50)?;
    let master_seed: u64 = args.num("master-seed", 7)?;
    let shards: usize = args.num("shards", 1)?;
    let golden_path =
        std::path::Path::new(args.get("golden-dir").unwrap_or("tests/golden")).join(GOLDEN_FILE);
    // `--cc` is validated up front so a typo fails before the sweep runs.
    let cc_battery = match args.get("cc") {
        None => false,
        Some(key) if key == "all" || CcSpec::from_key(key).is_some() => true,
        Some(key) => {
            let known: Vec<&str> = CcSpec::ALL.iter().map(|c| c.key()).collect();
            return Err(ArgError(format!(
                "--cc must be 'all' or a registry key ({}); got '{key}'",
                known.join(", ")
            )));
        }
    };
    let mut out = String::new();
    let mut problems: Vec<String> = Vec::new();

    // 1. A whole figure smoke sweep with the invariant checkers on.
    let specs: Vec<ExperimentSpec> = gain_figure_specs(GainFigure::Fig06, &FigureGrid::smoke())
        .into_iter()
        .map(ExperimentSpec::checked)
        .collect();
    let report = SweepRunner::new(0)
        .seed_policy(SeedPolicy::FromScenario)
        .jobs(jobs)
        .warm_start(warm_start_of(args)?)
        .run(&specs);
    let clean = report
        .records
        .iter()
        .filter(|r| matches!(r.outcome, RunOutcome::Point { .. }))
        .count();
    let _ = writeln!(
        out,
        "invariants: fig06 smoke sweep under checks: {clean}/{} runs clean ({:.2} s wall)",
        report.records.len(),
        report.wall.as_secs_f64()
    );
    for r in &report.records {
        if let RunOutcome::Failed { reason } | RunOutcome::Infeasible { reason } = &r.outcome {
            problems.push(format!("invariants: {}: {reason}", r.id));
        }
    }

    // 2. Golden-trace digests.
    match pdos_conformance::compute_digests(jobs) {
        Err(e) => problems.push(format!("golden: {e}")),
        Ok(digests) => {
            if args.flag("bless") {
                if let Some(dir) = golden_path.parent() {
                    std::fs::create_dir_all(dir)
                        .map_err(|e| ArgError(format!("cannot create {}: {e}", dir.display())))?;
                }
                std::fs::write(
                    &golden_path,
                    pdos_conformance::golden::format_digests(&digests),
                )
                .map_err(|e| ArgError(format!("cannot write {}: {e}", golden_path.display())))?;
                let _ = writeln!(
                    out,
                    "golden: blessed {} digests into {}",
                    digests.len(),
                    golden_path.display()
                );
            } else {
                match std::fs::read_to_string(&golden_path) {
                    Err(e) => problems.push(format!(
                        "golden: cannot read {} ({e}); run `pdos check --bless`",
                        golden_path.display()
                    )),
                    Ok(text) => match pdos_conformance::golden::parse_digests(&text) {
                        Err(e) => problems.push(format!("golden: {e}")),
                        Ok(stored) => {
                            let drift = pdos_conformance::golden::compare(&digests, &stored);
                            let _ = writeln!(
                                out,
                                "golden: {} digests vs {}: {}",
                                digests.len(),
                                golden_path.display(),
                                if drift.is_empty() { "match" } else { "DRIFT" }
                            );
                            problems.extend(drift.into_iter().map(|d| format!("golden: {d}")));
                        }
                    },
                }
            }
        }
    }

    // 2b. Sharded-engine byte-identity (opt-in via `--shards N`). The
    // canonical set re-runs on a sharded engine; its digests must equal
    // the unsharded golden set exactly — sharding is contractually
    // invisible at digest resolution.
    if shards > 1 {
        match pdos_conformance::compute_digests_sharded(jobs, shards) {
            Err(e) => problems.push(format!("shards: --shards {shards}: {e}")),
            Ok(sharded) => match std::fs::read_to_string(&golden_path)
                .map_err(|e| format!("cannot read {} ({e})", golden_path.display()))
                .and_then(|text| pdos_conformance::golden::parse_digests(&text))
            {
                Err(e) => problems.push(format!("shards: {e}")),
                Ok(stored) => {
                    let drift = pdos_conformance::golden::compare(&sharded, &stored);
                    let _ = writeln!(
                        out,
                        "shards: --shards {shards}: {} digests vs {}: {}",
                        sharded.len(),
                        golden_path.display(),
                        if drift.is_empty() {
                            "byte-identical"
                        } else {
                            "DRIFT"
                        }
                    );
                    problems.extend(drift.into_iter().map(|d| format!("shards: {d}")));
                }
            },
        }
    }

    // 3. The analytic differential oracle.
    let oracle = pdos_conformance::run_oracle(&OracleConfig {
        scenarios,
        master_seed,
        jobs,
        ..OracleConfig::default()
    });
    out.push_str(&oracle.summary());
    if !oracle.pass() {
        problems.push("oracle: tolerance bands breached (see report)".into());
    }

    // 4. The congestion-control differential battery (opt-in via `--cc`).
    // Every registered algorithm simulates the same ECN-marked canonical
    // point; aliasing — two algorithms producing byte-identical traces —
    // means registry dispatch is broken and fails the suite.
    if cc_battery {
        match pdos_conformance::compute_cc_digests(jobs) {
            Err(e) => problems.push(format!("cc: {e}")),
            Ok(digests) => {
                for d in &digests {
                    let _ = writeln!(
                        out,
                        "cc: {} bins={} digest={:016x}",
                        d.name, d.n_bins, d.digest
                    );
                }
                let mut aliased = false;
                for i in 0..digests.len() {
                    for j in i + 1..digests.len() {
                        if digests[i].digest == digests[j].digest {
                            aliased = true;
                            problems.push(format!(
                                "cc: {} and {} produced identical traces — registry dispatch is aliasing algorithms",
                                digests[i].name, digests[j].name
                            ));
                        }
                    }
                }
                let _ = writeln!(
                    out,
                    "cc: differential battery over {} algorithms: {}",
                    digests.len(),
                    if aliased { "ALIASED" } else { "all distinct" }
                );
            }
        }
    }

    if let Some(path) = args.get("out") {
        let mut full = out.clone();
        for p in &problems {
            let _ = writeln!(full, "PROBLEM: {p}");
        }
        std::fs::write(path, full).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "report written to {path}");
    }
    if problems.is_empty() {
        let _ = writeln!(out, "conformance: PASS");
        Ok(out)
    } else {
        Err(ArgError(format!(
            "conformance: FAIL ({} problem(s))\n{}\n{out}",
            problems.len(),
            problems.join("\n")
        )))
    }
}

/// `pdos fuzz` — the scenario fuzzing campaign (or, with `--replay`, a
/// single repro-file replay). Campaign violations are shrunk, written as
/// `.repro` files when `--repro-dir` is given, and fail the command with
/// a non-zero exit; the `--out` report is written even on failure, so CI
/// can upload it as an artifact.
pub fn cmd_fuzz(args: &Args) -> Result<String, ArgError> {
    if let Some(path) = args.get("replay") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
        let repro = pdos_fuzz::parse_repro(&text).map_err(ArgError)?;
        return match pdos_fuzz::replay_repro(&repro) {
            None => Ok(format!(
                "replay {path}: case {} passes — the recorded {} no longer reproduces\n",
                repro.id,
                repro.class.as_str()
            )),
            Some((class, detail)) if class == repro.class => Err(ArgError(format!(
                "replay {path}: REPRODUCED {} on case {}: {detail}",
                class.as_str(),
                repro.id
            ))),
            Some((class, detail)) => Err(ArgError(format!(
                "replay {path}: case {} now fails as {} (recorded {}): {detail}",
                repro.id,
                class.as_str(),
                repro.class.as_str()
            ))),
        };
    }

    let cfg = pdos_fuzz::CampaignConfig {
        scenarios: args.num("scenarios", 200)?,
        master_seed: args.num("master-seed", 7)?,
        budget_sim_secs: args.num("budget-secs", 0)?,
        jobs: args.num("jobs", 0)?,
        fault: pdos_fuzz::fault_from_str(args.get("fault").unwrap_or("none")).map_err(ArgError)?,
        shrink_budget: args.num("shrink-budget", 64)?,
        ..pdos_fuzz::CampaignConfig::default()
    };
    let mut report = pdos_fuzz::run_campaign(&cfg);
    if !report.pass() {
        pdos_fuzz::shrink_report(&mut report, &cfg);
    }
    let mut out = report.summary();
    if let Some(dir) = args.get("repro-dir") {
        if !report.pass() {
            std::fs::create_dir_all(dir)
                .map_err(|e| ArgError(format!("cannot create {dir}: {e}")))?;
            for v in &report.violations {
                let name = format!("{}.repro", v.case.id.replace('/', "-"));
                let path = std::path::Path::new(dir).join(&name);
                std::fs::write(&path, pdos_fuzz::format_repro(v, &cfg))
                    .map_err(|e| ArgError(format!("cannot write {}: {e}", path.display())))?;
            }
            let _ = writeln!(
                out,
                "wrote {} repro file(s) to {dir}",
                report.violations.len()
            );
        }
    }
    if let Some(path) = args.get("out") {
        std::fs::write(path, report.to_json())
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "report written to {path}");
    }
    if report.pass() {
        Ok(out)
    } else {
        Err(ArgError(format!(
            "fuzz: FAIL ({} violation(s))\n{out}",
            report.violations.len()
        )))
    }
}

/// `pdos bench` — the engine performance harness. Writes a
/// `BENCH_<date>.json` report (schema `pdos-bench/4`) and, with
/// `--baseline`, enforces the CI regression gates: the fig06-smoke and
/// flow-bank-smoke macros must stay within 20% of the baseline report's
/// events/sec, peak RSS and allocation count must stay within 30%, and
/// the fig06-grid-warmstart macro must keep forked sweeps at least 1.3x
/// faster than cold ones. Baselines in the older `pdos-bench/1`–`/3`
/// schemas are accepted (their missing fields simply skip the
/// corresponding gates). With `--shards N` the million-flow macro also
/// runs on the sharded engine, and the sharded leg must beat the
/// sequential one — except on 1-core hosts, where that gate records
/// itself as skipped (no parallelism to measure). With `--profile` the
/// scale macros run under the engine's self-profiler and the report
/// carries the per-event-type cost breakdown.
pub fn cmd_bench(args: &Args) -> Result<String, ArgError> {
    let shards: usize = args.num("shards", 1)?;
    let report = pdos_bench::perf::run(args.flag("smoke"), shards, args.flag("profile"));
    let path = match args.get("out") {
        Some(p) => p.to_string(),
        None => format!("BENCH_{}.json", report.date),
    };
    let json = report.to_json();
    std::fs::write(&path, &json).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
    let mut out = report.summary();
    let _ = writeln!(out, "report written to {path}");
    if let Some(baseline_path) = args.get("baseline") {
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| ArgError(format!("cannot read {baseline_path}: {e}")))?;
        if !pdos_bench::perf::schema_supported(&baseline) {
            return Err(ArgError(format!(
                "{baseline_path}: unsupported schema (want pdos-bench/1 through /4)"
            )));
        }
        let mut failures: Vec<String> = Vec::new();

        let gate = "fig06-smoke";
        let base = pdos_bench::perf::extract_macro_events_per_sec(&baseline, gate)
            .ok_or_else(|| ArgError(format!("{baseline_path}: no '{gate}' events_per_sec")))?;
        let now = report
            .macro_result(gate)
            .map(|m| m.events_per_sec())
            .ok_or_else(|| ArgError(format!("current run has no '{gate}' macro")))?;
        let ratio = now / base.max(1e-9);
        let _ = writeln!(
            out,
            "baseline gate: {gate} {:.0} events/s vs baseline {:.0} ({:+.1}%)",
            now,
            base,
            (ratio - 1.0) * 100.0
        );
        if ratio < 0.8 {
            failures.push(format!(
                "{gate} regressed {:.1}% ({now:.0} events/s vs {base:.0}; >20% budget)",
                (1.0 - ratio) * 100.0
            ));
        }

        // The mid-size scale gate: same 20% budget as fig06-smoke.
        // Baselines from before the flow-bank tier (schemas /1–/3) skip
        // it with a record rather than failing.
        let gate = "flow-bank-smoke";
        match pdos_bench::perf::extract_macro_events_per_sec(&baseline, gate) {
            Some(base) => {
                let now = report
                    .macro_result(gate)
                    .map(|m| m.events_per_sec())
                    .ok_or_else(|| ArgError(format!("current run has no '{gate}' macro")))?;
                let ratio = now / base.max(1e-9);
                let _ = writeln!(
                    out,
                    "baseline gate: {gate} {:.0} events/s vs baseline {:.0} ({:+.1}%)",
                    now,
                    base,
                    (ratio - 1.0) * 100.0
                );
                if ratio < 0.8 {
                    failures.push(format!(
                        "{gate} regressed {:.1}% ({now:.0} events/s vs {base:.0}; >20% budget)",
                        (1.0 - ratio) * 100.0
                    ));
                }
            }
            None => {
                let _ = writeln!(
                    out,
                    "baseline gate: {gate} skipped (baseline predates the flow-bank tier)"
                );
            }
        }

        // The sharded-speedup gate: when the report carries a sharded
        // million-flow leg, sharding must not lose to the sequential
        // engine — but only where the host can physically parallelize.
        // On a 1-core host the gate is recorded as skipped instead of
        // silently passing (or flakily failing on scheduler noise).
        if let Some(sharded) = report
            .macros
            .iter()
            .find(|m| m.name.starts_with("million-flow-smoke-x"))
        {
            if report.host_cores < 2 {
                let _ = writeln!(
                    out,
                    "baseline gate: sharded-speedup skipped (host_cores=1: \
                     no parallelism to measure)"
                );
            } else if let Some(seq) = report.macro_result("million-flow-smoke") {
                let speedup = sharded.events_per_sec() / seq.events_per_sec().max(1e-9);
                let _ = writeln!(
                    out,
                    "baseline gate: sharded-speedup {speedup:.2}x \
                     ({} cores, floor 1.00x)",
                    report.host_cores
                );
                if speedup < 1.0 {
                    failures.push(format!(
                        "sharded million-flow leg slower than sequential \
                         ({speedup:.2}x on {} cores)",
                        report.host_cores
                    ));
                }
            }
        }

        // Resource gates: 30% budgets, enforced only when both reports
        // carry the reading (a /1 baseline without them skips the gate).
        if let (Some(base_rss), Some(now_rss)) = (
            pdos_bench::perf::extract_peak_rss_bytes(&baseline),
            report.peak_rss_bytes,
        ) {
            let ratio = now_rss as f64 / base_rss.max(1) as f64;
            let _ = writeln!(
                out,
                "baseline gate: peak RSS {:.1} MiB vs baseline {:.1} MiB ({:+.1}%)",
                now_rss as f64 / (1024.0 * 1024.0),
                base_rss as f64 / (1024.0 * 1024.0),
                (ratio - 1.0) * 100.0
            );
            if ratio > 1.3 {
                failures.push(format!(
                    "peak RSS grew {:.1}% ({now_rss} bytes vs {base_rss}; >30% budget)",
                    (ratio - 1.0) * 100.0
                ));
            }
        }
        if let (Some(base_allocs), Some(now_allocs)) = (
            pdos_bench::perf::extract_alloc_allocations(&baseline),
            report.alloc.as_ref().map(|a| a.allocations),
        ) {
            let ratio = now_allocs as f64 / base_allocs.max(1) as f64;
            let _ = writeln!(
                out,
                "baseline gate: allocations {now_allocs} vs baseline {base_allocs} ({:+.1}%)",
                (ratio - 1.0) * 100.0
            );
            if ratio > 1.3 {
                failures.push(format!(
                    "allocation count grew {:.1}% ({now_allocs} vs {base_allocs}; >30% budget)",
                    (ratio - 1.0) * 100.0
                ));
            }
        }

        // Warm-start gate: forked sweeps must stay meaningfully faster
        // than cold ones, independent of what the baseline recorded.
        if let Some(ws) = &report.warm_start {
            let _ = writeln!(
                out,
                "baseline gate: {} speedup {:.2}x (floor 1.30x)",
                ws.name,
                ws.speedup()
            );
            if ws.speedup() < 1.3 {
                failures.push(format!(
                    "{} speedup {:.2}x below 1.30x floor (cold {:.3} s, forked {:.3} s)",
                    ws.name,
                    ws.speedup(),
                    ws.cold_wall_secs,
                    ws.warm_wall_secs
                ));
            }
        }

        if !failures.is_empty() {
            return Err(ArgError(format!(
                "bench: FAIL vs {baseline_path} — {}\n{out}",
                failures.join("; ")
            )));
        }
    }
    Ok(out)
}

/// `pdos sync`.
pub fn cmd_sync(args: &Args) -> Result<String, ArgError> {
    let spec = spec_of(args, 12)?;
    let t_extent_ms: u64 = args.num("textent-ms", 50)?;
    let r_attack = args.num("rattack-mbps", 100.0)?;
    let period_s: f64 = args.num("period-s", 2.0)?;
    let window: u64 = args.num("window-s", 30)?;
    let period = SimDuration::from_secs_f64(period_s);
    let extent = SimDuration::from_millis(t_extent_ms);
    if period <= extent {
        return Err(ArgError("--period-s must exceed --textent-ms".into()));
    }
    let train = PulseTrain::new(extent, BitsPerSec::from_mbps(r_attack), period - extent)
        .map_err(|e| ArgError(e.to_string()))?;
    let result = SyncExperiment::new(spec)
        .warmup(SimDuration::from_secs(8))
        .window(SimDuration::from_secs(window))
        .run(train)
        .map_err(|e| ArgError(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "attack period              : {:.2} s",
        result.expected_period
    );
    let _ = writeln!(out, "pinnacles in {window} s           : {}", result.peaks);
    if let Some(p) = result.period_from_peaks {
        let _ = writeln!(out, "period from peak count     : {p:.2} s");
    }
    if let Some(p) = result.period_from_autocorr {
        let _ = writeln!(out, "period from autocorrelation: {p:.2} s");
    }
    Ok(out)
}

/// `pdos detect` — over an externally supplied binned byte trace.
pub fn cmd_detect(args: &Args) -> Result<String, ArgError> {
    let path = args
        .get("csv")
        .ok_or_else(|| ArgError("missing required option --csv".into()))?;
    let capacity = args.require_num::<f64>("capacity-mbps")? * 1e6;
    let bin_ms: f64 = args.num("bin-ms", 100.0)?;
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let bytes = parse_trace(&text)?;
    if bytes.is_empty() {
        return Err(ArgError(format!("{path} contains no samples")));
    }
    Ok(detect_report(&bytes, capacity, bin_ms / 1000.0))
}

/// Parses a one-integer-per-line trace (blank lines and `#` comments
/// ignored).
///
/// # Errors
///
/// Returns [`ArgError`] naming the first bad line.
pub fn parse_trace(text: &str) -> Result<Vec<u64>, ArgError> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .map(|(i, l)| {
            l.parse::<u64>()
                .map_err(|_| ArgError(format!("line {}: '{l}' is not a byte count", i + 1)))
        })
        .collect()
}

/// Runs both detectors over a binned trace and formats the report.
pub fn detect_report(bytes: &[u64], capacity_bps: f64, bin_secs: f64) -> String {
    let volume = RateDetector::conventional(capacity_bps, bin_secs).run(bytes);
    let series: Vec<f64> = bytes.iter().map(|&b| b as f64).collect();
    let max_period = (bytes.len() / 3).max(3);
    let spectral = SpectralDetector::new(2, max_period, 12.0).sweep(&series);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "samples: {} bins of {:.0} ms",
        bytes.len(),
        bin_secs * 1000.0
    );
    let _ = writeln!(
        out,
        "volume detector   : {} (final EWMA utilization {:.3})",
        if volume.detected { "ALARM" } else { "quiet" },
        volume.final_utilization
    );
    match spectral.dominant_period {
        Some(p) => {
            let _ = writeln!(
                out,
                "spectral detector : PERIODIC, dominant period ~ {:.2} s (power ratio {:.1})",
                p as f64 * bin_secs,
                spectral.peak_power / spectral.median_power.max(1e-12)
            );
        }
        None => {
            let _ = writeln!(out, "spectral detector : no dominant period");
        }
    }
    // CUSUM runs on both the raw volume (mean shifts: floods) and the
    // successive-difference dispersion (spikiness: pulsing attacks).
    let calib = (bytes.len() / 4).clamp(2, 100);
    let on_mean = CusumDetector::new(calib, 0.5, 8.0).scan(bytes);
    let dispersion: Vec<u64> = bytes.windows(2).map(|w| w[0].abs_diff(w[1])).collect();
    let on_dispersion = CusumDetector::new(
        calib.min(dispersion.len().saturating_sub(1).max(2)),
        0.5,
        8.0,
    )
    .scan(&dispersion);
    let describe = |scan: &pdos_detect::cusum::CusumScan| match scan {
        pdos_detect::cusum::CusumScan::Report(rep) => match (rep.detected, rep.onset_bin) {
            (true, Some(onset)) => {
                format!("CHANGE at ~{:.1} s into the trace", onset as f64 * bin_secs)
            }
            _ => "no shift".to_string(),
        },
        pdos_detect::cusum::CusumScan::TooFewBins { needed, got } => {
            format!("uncalibrated ({got}/{needed} bins)")
        }
    };
    let _ = writeln!(out, "cusum (volume)    : {}", describe(&on_mean));
    let _ = writeln!(out, "cusum (dispersion): {}", describe(&on_dispersion));
    out
}

/// Feeds one binned trace through the online detector bank and collects
/// every alarm in the fixed bank order (cusum, rate, spectral) so the
/// stream is deterministic even when several detectors fire on one bin.
fn serve_alarms(bytes: &[u64], capacity_bps: f64, bin_secs: f64) -> Vec<Alarm> {
    let calib = (bytes.len() / 4).clamp(2, 100);
    let mut cusum = StreamingCusum::new(calib, 0.5, 8.0);
    let mut rate = StreamingRate::conventional(capacity_bps, bin_secs);
    let mut spectral = StreamingSpectral::conventional();
    let mut alarms = Vec::new();
    for &b in bytes {
        alarms.extend(cusum.push(b));
        alarms.extend(rate.push(b));
        alarms.extend(spectral.push(b));
    }
    alarms
}

/// `pdos serve` — the streaming detection service. Replays a recorded
/// trace (`--replay`) or simulates a scenario set live, scoring every
/// run's bottleneck trace bin by bin through the online detector bank,
/// and emits the deterministic `pdos-detect/1` alarm-stream JSON.
///
/// The output never mentions worker counts or wall-clock, so it is
/// byte-identical across `--jobs`.
fn cmd_serve(args: &Args) -> Result<String, ArgError> {
    let bin_ms: f64 = args.num("bin-ms", 100.0)?;
    let bin_secs = bin_ms / 1000.0;
    let mut out = String::new();

    let runs: Vec<(String, Vec<Alarm>)> = if let Some(path) = args.get("replay") {
        let capacity = args.require_num::<f64>("capacity-mbps")? * 1e6;
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
        let bytes = parse_trace(&text)?;
        if bytes.is_empty() {
            return Err(ArgError(format!("{path} contains no samples")));
        }
        let _ = writeln!(out, "serve: replaying {} bins from {path}", bytes.len());
        vec![(path.to_string(), serve_alarms(&bytes, capacity, bin_secs))]
    } else {
        let scenario = args.get("scenario").unwrap_or("golden");
        let jobs: usize = args.num("jobs", 0)?;
        let bin = SimDuration::from_secs_f64(bin_secs);
        let specs: Vec<ExperimentSpec> = match scenario {
            "golden" => pdos_conformance::canonical_specs(),
            "fig06-smoke" => gain_figure_specs(GainFigure::Fig06, &FigureGrid::smoke()),
            other => {
                return Err(ArgError(format!(
                    "--scenario must be golden or fig06-smoke; got '{other}'"
                )))
            }
        }
        .into_iter()
        .map(|s| s.traced(bin).tapped())
        .collect();
        let _ = writeln!(
            out,
            "serve: scoring {} live runs from scenario set '{scenario}'",
            specs.len()
        );
        let report = SweepRunner::new(0)
            .seed_policy(SeedPolicy::FromScenario)
            .jobs(jobs)
            .run(&specs);
        let mut runs = Vec::with_capacity(specs.len());
        for (spec, r) in specs.iter().zip(&report.records) {
            let trace = match &r.outcome {
                RunOutcome::Point { trace, .. } | RunOutcome::Benign { trace, .. } => trace,
                RunOutcome::Infeasible { reason } | RunOutcome::Failed { reason } => {
                    return Err(ArgError(format!("{}: {reason}", spec.id)));
                }
            };
            let capacity = spec.scenario.bottleneck.as_bps();
            runs.push((spec.id.clone(), serve_alarms(trace, capacity, bin_secs)));
        }
        runs
    };

    let mut total = 0usize;
    for (id, alarms) in &runs {
        for a in alarms {
            let _ = writeln!(
                out,
                "{id}: {} alarm at bin {} (t={:.1} s, statistic {:.3})",
                a.detector,
                a.bin,
                a.bin as f64 * bin_secs,
                a.statistic
            );
        }
        total += alarms.len();
    }
    let _ = writeln!(out, "serve: {total} alarm(s) across {} run(s)", runs.len());

    let json = alarm_stream_json(&runs, bin_secs);
    if let Some(path) = args.get("out") {
        std::fs::write(path, &json).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "alarm stream written to {path}");
    } else {
        let _ = writeln!(out, "{json}");
    }
    Ok(out)
}

/// Dispatches a parsed command line.
///
/// # Errors
///
/// Returns [`ArgError`] for unknown commands or command failures.
pub fn run(args: &Args) -> Result<String, ArgError> {
    if args.flag("help") {
        return Ok(HELP.to_string());
    }
    match args.command.as_str() {
        "solve" => cmd_solve(args),
        "simulate" => cmd_simulate(args),
        "sweep" => cmd_sweep(args),
        "sync" => cmd_sync(args),
        "detect" => cmd_detect(args),
        "serve" => cmd_serve(args),
        "metrics" => cmd_metrics(args),
        "check" => cmd_check(args),
        "bench" => cmd_bench(args),
        "fuzz" => cmd_fuzz(args),
        "help" | "--help" | "-h" => Ok(HELP.to_string()),
        other => Err(ArgError(format!(
            "unknown command '{other}'; try `pdos help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).expect("parses")
    }

    #[test]
    fn help_is_reachable_every_way() {
        assert!(run(&parse("help")).unwrap().contains("USAGE"));
        assert!(run(&parse("solve --help")).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_rejected() {
        let e = run(&parse("frobnicate")).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
    }

    #[test]
    fn solve_prints_the_optimum_and_what_if() {
        let out = run(&parse("solve --flows 25 --textent-ms 75 --rattack-mbps 30")).unwrap();
        assert!(out.contains("gamma*"));
        assert!(out.contains("what-if"));
        assert!(out.contains("double bottleneck capacity"));
        // Corollary 3: neutral gamma* = sqrt(C_psi); both printed.
        assert!(out.contains("period T_AIMD"));
    }

    #[test]
    fn solve_respects_kappa() {
        let neutral = run(&parse("solve --kappa 1.0")).unwrap();
        let averse = run(&parse("solve --kappa 8.0")).unwrap();
        let g = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.contains("gamma*"))
                .and_then(|l| l.split('=').nth(1))
                .and_then(|v| v.trim().parse().ok())
                .expect("gamma* line")
        };
        assert!(g(&averse) < g(&neutral));
    }

    #[test]
    fn solve_plans_for_a_damage_target() {
        let out = run(&parse("solve --flows 25 --target-degradation 0.5")).unwrap();
        assert!(out.contains("quietest attack reaching 50%"), "{out}");
        assert!(out.contains("exposure factor"), "{out}");
        // Infeasible targets surface the model's explanation.
        let err = run(&parse("solve --flows 25 --target-degradation 0.95")).unwrap_err();
        assert!(err.to_string().contains("flood"), "{err}");
    }

    #[test]
    fn solve_rejects_bad_kappa() {
        assert!(run(&parse("solve --kappa -1")).is_err());
    }

    #[test]
    fn queue_parsing() {
        assert!(run(&parse("sweep --queue nonsense --points 2")).is_err());
    }

    #[test]
    fn trace_parsing_accepts_comments_and_rejects_garbage() {
        let ok = parse_trace("# header\n100\n\n200\n").unwrap();
        assert_eq!(ok, vec![100, 200]);
        let err = parse_trace("100\nxyz\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn detect_report_flags_flooding_and_periodicity() {
        // Flooding: full-capacity bins (15 Mbps, 100 ms bins = 187.5 kB).
        let flood = vec![187_500u64; 120];
        let rep = detect_report(&flood, 15e6, 0.1);
        assert!(rep.contains("ALARM"), "{rep}");

        // Pulsing: one big bin every 20.
        let pulses: Vec<u64> = (0..240)
            .map(|i| if i % 20 == 0 { 400_000 } else { 30_000 })
            .collect();
        let rep = detect_report(&pulses, 15e6, 0.1);
        assert!(rep.contains("quiet"), "{rep}");
        assert!(rep.contains("PERIODIC"), "{rep}");
        assert!(rep.contains("2.00 s"), "{rep}");
    }

    #[test]
    fn detect_requires_capacity() {
        let e = run(&parse("detect --csv nowhere.csv")).unwrap_err();
        assert!(e.to_string().contains("capacity-mbps"));
    }

    #[test]
    fn detect_reports_missing_file() {
        let e = run(&parse("detect --csv /nonexistent.csv --capacity-mbps 15")).unwrap_err();
        assert!(e.to_string().contains("cannot read"));
    }

    // The simulate/sweep/sync paths run real (short) simulations; keep one
    // fast smoke test each.
    #[test]
    fn simulate_smoke() {
        let out = run(&parse(
            "simulate --flows 4 --gamma 0.4 --window-s 6 --textent-ms 75 --rattack-mbps 30",
        ))
        .unwrap();
        assert!(out.contains("degradation (model / sim)"), "{out}");
    }

    #[test]
    fn simulate_trace_out_roundtrips_into_detect() {
        let path = std::env::temp_dir().join("pdos_cli_trace_test.txt");
        let path_s = path.to_str().expect("utf8 temp path");
        let cmd = format!("simulate --flows 4 --gamma 0.4 --window-s 8 --trace-out {path_s}");
        let out = run(&parse(&cmd)).unwrap();
        assert!(out.contains("wrote"), "{out}");
        let detect_cmd = format!("detect --csv {path_s} --capacity-mbps 15 --bin-ms 100");
        let rep = run(&parse(&detect_cmd)).unwrap();
        assert!(rep.contains("volume detector"), "{rep}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn testbed_flag_switches_the_scenario() {
        let out = run(&parse(
            "simulate --testbed --flows 3 --gamma 0.3 --window-s 6 --rattack-mbps 20",
        ))
        .unwrap();
        // The test-bed bottleneck is 10 Mbps, so the baseline must be
        // below 10 Mbps (the dumbbell would show ~13).
        let line = out
            .lines()
            .find(|l| l.contains("baseline goodput"))
            .expect("baseline line");
        let mbps: f64 = line
            .split(':')
            .nth(1)
            .and_then(|v| v.trim().trim_end_matches(" Mbps").parse().ok())
            .expect("parse baseline");
        assert!(mbps < 10.5, "{line}");
    }

    #[test]
    fn sweep_smoke_emits_csv() {
        let out = run(&parse(
            "sweep --flows 3 --points 2 --window-s 5 --textent-ms 75 --rattack-mbps 30",
        ))
        .unwrap();
        assert!(out.starts_with("gamma,"), "{out}");
        assert!(out.lines().count() >= 3, "{out}");
    }

    #[test]
    fn sweep_csv_is_identical_at_any_job_count() {
        let base = "sweep --flows 3 --points 2 --window-s 5 --textent-ms 75 --rattack-mbps 30";
        let serial = run(&parse(&format!("{base} --jobs 1"))).unwrap();
        let parallel = run(&parse(&format!("{base} --jobs 4"))).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sweep_fig_smoke_runs_and_writes_report() {
        let out_path = std::env::temp_dir().join("pdos-cli-test-fig06.json");
        let out = run(&parse(&format!(
            "sweep --fig fig06 --smoke --jobs 2 --out {}",
            out_path.display()
        )))
        .unwrap();
        assert!(out.contains("fig06: 4 runs"), "{out}");
        assert!(out.contains("runs/s"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        std::fs::remove_file(&out_path).ok();
        assert!(json.contains("\"seed_policy\":\"from-scenario\""), "{json}");
        assert!(json.contains("\"status\":\"ok\""), "{json}");
    }

    #[test]
    fn sweep_fig_warm_start_matches_cold_hash_for_hash() {
        // The acceptance bar for warm-start checkpointing: the fig06 grid's
        // SweepReport JSON must be identical (per-run results, seeds,
        // baselines, traces) with forked runs and with cold runs. Only the
        // wall-clock fields may differ, so compare from "runs": onward.
        let warm_path = std::env::temp_dir().join("pdos-cli-test-fig06-warm.json");
        let cold_path = std::env::temp_dir().join("pdos-cli-test-fig06-cold.json");
        run(&parse(&format!(
            "sweep --fig fig06 --smoke --jobs 2 --warm-start --out {}",
            warm_path.display()
        )))
        .unwrap();
        run(&parse(&format!(
            "sweep --fig fig06 --smoke --jobs 2 --no-warm-start --out {}",
            cold_path.display()
        )))
        .unwrap();
        let runs_of = |path: &std::path::Path| -> String {
            let json = std::fs::read_to_string(path).unwrap();
            json.split("\"runs\":")
                .nth(1)
                .expect("runs section")
                .to_string()
        };
        let (warm, cold) = (runs_of(&warm_path), runs_of(&cold_path));
        std::fs::remove_file(&warm_path).ok();
        std::fs::remove_file(&cold_path).ok();
        assert!(!warm.is_empty());
        assert_eq!(
            pdos_scenarios::runner::fnv1a64(warm.as_bytes()),
            pdos_scenarios::runner::fnv1a64(cold.as_bytes()),
            "warm-start must be bitwise result-neutral"
        );
        assert_eq!(warm, cold);
    }

    #[test]
    fn warm_start_flags_are_mutually_exclusive() {
        let e = run(&parse(
            "sweep --fig fig06 --smoke --warm-start --no-warm-start",
        ))
        .unwrap_err();
        assert!(e.to_string().contains("mutually exclusive"), "{e}");
    }

    #[test]
    fn sweep_fig_rejects_unknown_figure() {
        let e = run(&parse("sweep --fig fig42 --smoke")).unwrap_err();
        assert!(e.to_string().contains("fig06"), "{e}");
    }

    #[test]
    fn sweep_fig_cc_runs_per_algorithm_and_reports_the_optimum() {
        let out_path = std::env::temp_dir().join("pdos-cli-test-fig06-cubic.json");
        let out = run(&parse(&format!(
            "sweep --fig fig06 --smoke --jobs 2 --cc cubic --out {}",
            out_path.display()
        )))
        .unwrap();
        assert!(out.contains("cc=cubic: measured gamma* ="), "{out}");
        assert!(out.contains("mu* ="), "{out}");
        assert!(out.contains("analytic AIMD reference"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        std::fs::remove_file(&out_path).ok();
        // Every run id carries the algorithm tag, so reports never
        // collide with the legacy AIMD grid.
        assert!(json.contains("/cc-cubic"), "{json}");
    }

    #[test]
    fn sweep_fig_default_cc_is_byte_identical_to_explicit_aimd() {
        let default_path = std::env::temp_dir().join("pdos-cli-test-fig06-ccdefault.json");
        let aimd_path = std::env::temp_dir().join("pdos-cli-test-fig06-ccaimd.json");
        run(&parse(&format!(
            "sweep --fig fig06 --smoke --jobs 2 --out {}",
            default_path.display()
        )))
        .unwrap();
        run(&parse(&format!(
            "sweep --fig fig06 --smoke --jobs 2 --cc aimd --out {}",
            aimd_path.display()
        )))
        .unwrap();
        let runs_of = |path: &std::path::Path| -> String {
            let json = std::fs::read_to_string(path).unwrap();
            json.split("\"runs\":")
                .nth(1)
                .expect("runs section")
                .to_string()
        };
        let (default_runs, aimd_runs) = (runs_of(&default_path), runs_of(&aimd_path));
        std::fs::remove_file(&default_path).ok();
        std::fs::remove_file(&aimd_path).ok();
        // `--cc aimd` must be the legacy grid: same ids, seeds, traces.
        assert_eq!(default_runs, aimd_runs);
    }

    #[test]
    fn sweep_fig_rejects_unknown_cc() {
        let e = run(&parse("sweep --fig fig06 --smoke --cc tahoe99")).unwrap_err();
        assert!(
            e.to_string().contains("aimd, cubic, bbr-lite, dctcp"),
            "{e}"
        );
    }

    #[test]
    fn check_bless_then_verify_roundtrips() {
        // A tiny conformance pass against a temp golden dir: bless writes
        // the digests, the verify pass then matches them; --out lands the
        // report on disk both times. 4 oracle scenarios keep it fast —
        // the full 50-scenario run lives in the conformance crate's suite.
        let dir = std::env::temp_dir().join("pdos-cli-test-golden");
        let report_path = std::env::temp_dir().join("pdos-cli-test-check.txt");
        let _ = std::fs::remove_dir_all(&dir);
        let base = format!(
            "check --scenarios 4 --jobs 2 --golden-dir {} --out {}",
            dir.display(),
            report_path.display()
        );
        let blessed = run(&parse(&format!("{base} --bless"))).unwrap();
        assert!(blessed.contains("blessed 4 digests"), "{blessed}");
        assert!(blessed.contains("conformance: PASS"), "{blessed}");
        // The verify pass adds the sharded leg: the canonical set re-runs
        // on a two-shard engine and must match the file just blessed from
        // unsharded runs, digest for digest.
        let verified = run(&parse(&format!("{base} --shards 2"))).unwrap();
        assert!(verified.contains("golden:"), "{verified}");
        assert!(verified.contains("match"), "{verified}");
        assert!(
            verified.contains("shards: --shards 2: 4 digests"),
            "{verified}"
        );
        assert!(verified.contains("byte-identical"), "{verified}");
        assert!(verified.contains("conformance: PASS"), "{verified}");
        let report = std::fs::read_to_string(&report_path).unwrap();
        assert!(report.contains("oracle:"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&report_path);
    }

    #[test]
    fn check_fails_on_golden_drift_but_still_writes_the_report() {
        let dir = std::env::temp_dir().join("pdos-cli-test-golden-drift");
        let report_path = std::env::temp_dir().join("pdos-cli-test-check-drift.txt");
        std::fs::create_dir_all(&dir).unwrap();
        // A stale golden file with a wrong digest for one canonical run.
        std::fs::write(
            dir.join(pdos_conformance::GOLDEN_FILE),
            "golden/ns2-benign bins=1 total=1 digest=0000000000000001\n",
        )
        .unwrap();
        let cmd = format!(
            "check --scenarios 4 --jobs 2 --golden-dir {} --out {}",
            dir.display(),
            report_path.display()
        );
        let err = run(&parse(&cmd)).unwrap_err();
        assert!(err.to_string().contains("conformance: FAIL"), "{err}");
        assert!(err.to_string().contains("golden:"), "{err}");
        // The report exists despite the failure (the CI artifact path).
        let report = std::fs::read_to_string(&report_path).unwrap();
        assert!(report.contains("PROBLEM: golden:"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&report_path);
    }

    #[test]
    fn check_cc_battery_reports_distinct_algorithms() {
        let dir = std::env::temp_dir().join("pdos-cli-test-golden-cc");
        let _ = std::fs::remove_dir_all(&dir);
        let cmd = format!(
            "check --scenarios 4 --jobs 2 --cc all --bless --golden-dir {}",
            dir.display()
        );
        let out = run(&parse(&cmd)).unwrap();
        assert!(out.contains("cc: golden/cc-aimd"), "{out}");
        assert!(out.contains("cc: golden/cc-dctcp"), "{out}");
        assert!(
            out.contains("cc: differential battery over 4 algorithms: all distinct"),
            "{out}"
        );
        assert!(out.contains("conformance: PASS"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_rejects_unknown_cc() {
        let e = run(&parse("check --cc tahoe99 --scenarios 1")).unwrap_err();
        assert!(e.to_string().contains("'all' or a registry key"), "{e}");
    }

    #[test]
    fn metrics_smoke_writes_json_snapshot() {
        let out_path = std::env::temp_dir().join("pdos-cli-test-metrics.json");
        let out = run(&parse(&format!(
            "metrics --scenario fig06-smoke --jobs 2 --out {}",
            out_path.display()
        )))
        .unwrap();
        assert!(out.contains("fig06-smoke: merged"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        std::fs::remove_file(&out_path).ok();
        assert!(json.contains("\"schema\": \"pdos-metrics/1\""), "{json}");
        assert!(json.contains("\"scope\": \"link/0\""), "{json}");
        assert!(json.contains("\"scope\": \"flow/0\""), "{json}");
        assert!(json.contains("pops_packet_tier"), "{json}");
        assert!(json.contains("sweep_wall_nanos"), "{json}");
    }

    #[test]
    fn metrics_csv_prints_to_stdout_without_out() {
        let out = run(&parse(
            "metrics --scenario fig06-smoke --jobs 2 --format csv",
        ))
        .unwrap();
        assert!(out.contains("scope,name,kind,field,value"), "{out}");
        assert!(out.contains("link/0,enqueued,counter,value,"), "{out}");
    }

    #[test]
    fn metrics_rejects_unknown_scenario_and_format() {
        let e = run(&parse("metrics --scenario nonsense")).unwrap_err();
        assert!(e.to_string().contains("fig06-smoke"), "{e}");
        let e = run(&parse("metrics --format xml")).unwrap_err();
        assert!(e.to_string().contains("json or csv"), "{e}");
    }

    #[test]
    fn sync_smoke_reports_period() {
        let out = run(&parse(
            "sync --flows 4 --window-s 8 --period-s 2 --textent-ms 50 --rattack-mbps 100",
        ))
        .unwrap();
        assert!(out.contains("attack period"), "{out}");
    }

    #[test]
    fn sync_rejects_degenerate_period() {
        assert!(run(&parse("sync --period-s 0.01 --textent-ms 50")).is_err());
    }

    /// The smallest master seed whose generated set contains a
    /// multi-case dumbbell family (deterministic scan; see the fuzz
    /// crate's own suite for the same idiom).
    fn fuzz_drill_seed(n_cases: usize) -> u64 {
        (0u64..64)
            .find(|&s| {
                pdos_fuzz::gen::generate(s, n_cases)
                    .iter()
                    .any(|f| f.is_dumbbell() && f.cases.len() >= 2)
            })
            .expect("some small seed draws a dumbbell family")
    }

    #[test]
    fn fuzz_smoke_passes_and_reports_identically_at_any_job_count() {
        let seed = fuzz_drill_seed(4);
        let out_1 = std::env::temp_dir().join("pdos-cli-test-fuzz-j1.json");
        let out_2 = std::env::temp_dir().join("pdos-cli-test-fuzz-j2.json");
        let base = format!("fuzz --scenarios 4 --master-seed {seed}");
        let text = run(&parse(&format!(
            "{base} --jobs 1 --out {}",
            out_1.display()
        )))
        .unwrap();
        assert!(text.contains("no violations"), "{text}");
        assert!(text.contains("warm starts:"), "{text}");
        run(&parse(&format!(
            "{base} --jobs 2 --out {}",
            out_2.display()
        )))
        .unwrap();
        let (a, b) = (
            std::fs::read_to_string(&out_1).unwrap(),
            std::fs::read_to_string(&out_2).unwrap(),
        );
        let _ = std::fs::remove_file(&out_1);
        let _ = std::fs::remove_file(&out_2);
        assert!(a.starts_with("{\"schema\":\"pdos-fuzz/1\""), "{a}");
        assert_eq!(a, b, "the report must be byte-identical across --jobs");
    }

    #[test]
    fn fuzz_fault_drill_writes_repros_that_replay_red() {
        let seed = fuzz_drill_seed(2);
        let dir = std::env::temp_dir().join("pdos-cli-test-fuzz-repros");
        let report_path = std::env::temp_dir().join("pdos-cli-test-fuzz-drill.json");
        let _ = std::fs::remove_dir_all(&dir);
        let cmd = format!(
            "fuzz --scenarios 2 --master-seed {seed} --jobs 1 --fault link-accounting \
             --shrink-budget 12 --repro-dir {} --out {}",
            dir.display(),
            report_path.display()
        );
        let err = run(&parse(&cmd)).unwrap_err();
        assert!(err.to_string().contains("fuzz: FAIL"), "{err}");
        // The report was still written (the CI artifact path), and the
        // violations carry their shrunk cases.
        let json = std::fs::read_to_string(&report_path).unwrap();
        assert!(json.contains("\"status\":\"run-failed\""), "{json}");
        assert!(json.contains("\"shrunk\":{"), "{json}");

        // Every violation produced a repro file; replaying one under the
        // same fault reproduces the violation (non-zero exit).
        let mut repros: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        repros.sort();
        assert!(!repros.is_empty());
        let replay = format!("fuzz --replay {}", repros[0].display());
        let err = run(&parse(&replay)).unwrap_err();
        assert!(err.to_string().contains("REPRODUCED run-failed"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&report_path);
    }

    #[test]
    fn fuzz_rejects_unknown_fault_and_missing_replay_file() {
        let e = run(&parse("fuzz --fault nonsense")).unwrap_err();
        assert!(e.to_string().contains("unknown fault"), "{e}");
        let e = run(&parse("fuzz --replay /nonexistent.repro")).unwrap_err();
        assert!(e.to_string().contains("cannot read"), "{e}");
    }

    #[test]
    fn bench_smoke_writes_a_report_and_passes_a_fair_baseline() {
        let out_path = std::env::temp_dir().join("pdos-cli-test-bench.json");
        let cmd = format!("bench --smoke --profile --out {}", out_path.display());
        let out = run(&parse(&cmd)).unwrap();
        assert!(out.contains("fig06-smoke"), "{out}");
        assert!(out.contains("event-queue"), "{out}");
        assert!(out.contains("flow-bank-smoke"), "{out}");
        assert!(out.contains("host cores"), "{out}");
        assert!(out.contains("profile (scale macros)"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.contains("\"schema\":\"pdos-bench/4\""), "{json}");
        assert!(json.contains("\"warm_start\":{"), "{json}");
        let eps = pdos_bench::perf::extract_macro_events_per_sec(&json, "fig06-smoke").unwrap();
        assert!(eps > 0.0, "{eps}");
        let eps = pdos_bench::perf::extract_macro_events_per_sec(&json, "flow-bank-smoke").unwrap();
        assert!(eps > 0.0, "{eps}");
        let bytes = pdos_bench::perf::extract_warm_start_checkpoint_bytes(&json).unwrap();
        assert!(bytes > 0, "{json}");
        assert!(pdos_bench::perf::extract_host_cores(&json).unwrap() >= 1);
        let delivers = pdos_bench::perf::extract_profile_kind_count(&json, "deliver").unwrap();
        assert!(delivers > 0, "{json}");

        // The report it just wrote is a same-speed baseline: the gate
        // must pass against it.
        let cmd = format!(
            "bench --smoke --out {} --baseline {}",
            out_path.display(),
            out_path.display()
        );
        let out = run(&parse(&cmd)).unwrap();
        assert!(out.contains("baseline gate"), "{out}");
        assert!(out.contains("flow-bank-smoke"), "{out}");
        assert!(out.contains("peak RSS"), "{out}");
        assert!(out.contains("fig06-grid-warmstart speedup"), "{out}");
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn bench_flow_bank_gate_skips_on_pre_tier_baselines() {
        let base_path = std::env::temp_dir().join("pdos-cli-test-bench-v3base.json");
        let out_path = std::env::temp_dir().join("pdos-cli-test-bench-v3base-out.json");
        // A /3 baseline: fig06-smoke gates; the flow-bank gate must be
        // recorded as skipped, not failed.
        std::fs::write(
            &base_path,
            "{\"schema\":\"pdos-bench/3\",\"macros\":[{\"name\":\"fig06-smoke\",\
             \"events_per_sec\":1.0}]}",
        )
        .unwrap();
        let cmd = format!(
            "bench --smoke --out {} --baseline {}",
            out_path.display(),
            base_path.display()
        );
        let out = run(&parse(&cmd)).unwrap();
        assert!(
            out.contains("flow-bank-smoke skipped (baseline predates"),
            "{out}"
        );
        let _ = std::fs::remove_file(&base_path);
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn bench_baseline_rejects_unknown_schema() {
        let base_path = std::env::temp_dir().join("pdos-cli-test-bench-badschema.json");
        let out_path = std::env::temp_dir().join("pdos-cli-test-bench-badschema-out.json");
        std::fs::write(&base_path, "{\"schema\":\"pdos-bench/99\",\"macros\":[]}").unwrap();
        let cmd = format!(
            "bench --smoke --out {} --baseline {}",
            out_path.display(),
            base_path.display()
        );
        let err = run(&parse(&cmd)).unwrap_err();
        assert!(err.to_string().contains("unsupported schema"), "{err}");
        let _ = std::fs::remove_file(&base_path);
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn bench_baseline_gate_fails_on_a_big_regression() {
        let base_path = std::env::temp_dir().join("pdos-cli-test-bench-base.json");
        let out_path = std::env::temp_dir().join("pdos-cli-test-bench-out.json");
        // A fabricated baseline claiming an impossibly fast engine.
        std::fs::write(
            &base_path,
            "{\"schema\":\"pdos-bench/1\",\"macros\":[{\"name\":\"fig06-smoke\",\
             \"events_per_sec\":900000000000.0}]}",
        )
        .unwrap();
        let cmd = format!(
            "bench --smoke --out {} --baseline {}",
            out_path.display(),
            base_path.display()
        );
        let err = run(&parse(&cmd)).unwrap_err();
        assert!(err.to_string().contains("regressed"), "{err}");
        let _ = std::fs::remove_file(&base_path);
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn serve_replay_scores_a_recorded_trace() {
        let path = std::env::temp_dir().join("pdos-cli-test-serve-replay.txt");
        let out = run(&parse(&format!(
            "simulate --flows 4 --gamma 0.4 --window-s 8 --trace-out {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("bins to"), "{out}");
        let served = run(&parse(&format!(
            "serve --replay {} --capacity-mbps 15",
            path.display()
        )))
        .unwrap();
        assert!(served.contains("serve: replaying"), "{served}");
        assert!(served.contains("pdos-detect/1"), "{served}");
        assert!(served.contains("alarm(s) across 1 run(s)"), "{served}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_replay_requires_capacity() {
        let err = run(&parse("serve --replay nope.txt")).unwrap_err();
        assert!(err.to_string().contains("capacity-mbps"), "{err}");
        let err = run(&parse("serve --scenario warp-core")).unwrap_err();
        assert!(err.to_string().contains("golden or fig06-smoke"), "{err}");
    }

    #[test]
    fn serve_live_is_byte_identical_at_any_job_count() {
        let one = run(&parse("serve --scenario fig06-smoke --jobs 1")).unwrap();
        let two = run(&parse("serve --scenario fig06-smoke --jobs 2")).unwrap();
        assert_eq!(one, two, "the alarm stream must not depend on --jobs");
        assert!(one.contains("pdos-detect/1"), "{one}");
    }

    #[test]
    fn serve_replay_matches_live_on_the_same_trace() {
        // Score the first fig06-smoke run live, then record its trace
        // and replay it — the per-run alarm sequences must coincide.
        let live_path = std::env::temp_dir().join("pdos-cli-test-serve-live.json");
        run(&parse(&format!(
            "serve --scenario fig06-smoke --jobs 2 --out {}",
            live_path.display()
        )))
        .unwrap();
        let live_json = std::fs::read_to_string(&live_path).unwrap();

        let spec = gain_figure_specs(GainFigure::Fig06, &FigureGrid::smoke())
            .remove(0)
            .traced(SimDuration::from_millis(100))
            .tapped();
        let record = SweepRunner::new(0)
            .seed_policy(SeedPolicy::FromScenario)
            .jobs(1)
            .execute_one(&spec);
        let trace = match &record.outcome {
            RunOutcome::Point { trace, .. } | RunOutcome::Benign { trace, .. } => trace.clone(),
            other => panic!("unexpected outcome {other:?}"),
        };
        let trace_path = std::env::temp_dir().join("pdos-cli-test-serve-trace.txt");
        let text: String = trace.iter().map(|b| format!("{b}\n")).collect();
        std::fs::write(&trace_path, text).unwrap();
        let replay_path = std::env::temp_dir().join("pdos-cli-test-serve-replay.json");
        run(&parse(&format!(
            "serve --replay {} --capacity-mbps 15 --out {}",
            trace_path.display(),
            replay_path.display()
        )))
        .unwrap();
        let replay_json = std::fs::read_to_string(&replay_path).unwrap();

        // Alarm objects contain no nested brackets, so the first
        // "alarms":[...] segment of each stream is directly comparable.
        let alarms_of = |json: &str| -> String {
            json.split("\"alarms\":[")
                .nth(1)
                .expect("stream has a run")
                .split(']')
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(
            alarms_of(&live_json),
            alarms_of(&replay_json),
            "replaying the recorded trace must reproduce the live alarms"
        );
        for p in [&live_path, &trace_path, &replay_path] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn sweep_roc_smoke_reports_curves_and_auc() {
        let out_path = std::env::temp_dir().join("pdos-cli-test-roc.json");
        let out = run(&parse(&format!(
            "sweep --fig roc --smoke --jobs 2 --out {}",
            out_path.display()
        )))
        .unwrap();
        assert!(out.contains("scorer,threshold,tpr,fpr"), "{out}");
        assert!(out.contains("rate AUC"), "{out}");
        assert!(out.contains("cusum-dispersion AUC"), "{out}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.starts_with("{\"schema\":\"pdos-roc/1\""), "{json}");
        assert!(json.contains("\"name\":\"rate\""), "{json}");
        let _ = std::fs::remove_file(&out_path);
    }

    #[test]
    fn sweep_roc_warm_start_matches_cold_hash_for_hash() {
        let warm_path = std::env::temp_dir().join("pdos-cli-test-roc-warm.json");
        let cold_path = std::env::temp_dir().join("pdos-cli-test-roc-cold.json");
        run(&parse(&format!(
            "sweep --fig roc --smoke --warm-start --out {}",
            warm_path.display()
        )))
        .unwrap();
        run(&parse(&format!(
            "sweep --fig roc --smoke --no-warm-start --out {}",
            cold_path.display()
        )))
        .unwrap();
        let warm = std::fs::read_to_string(&warm_path).unwrap();
        let cold = std::fs::read_to_string(&cold_path).unwrap();
        assert_eq!(
            pdos_scenarios::runner::fnv1a64(warm.as_bytes()),
            pdos_scenarios::runner::fnv1a64(cold.as_bytes()),
            "warm-started ROC curves must match the cold run hash-for-hash"
        );
        let _ = std::fs::remove_file(&warm_path);
        let _ = std::fs::remove_file(&cold_path);
    }
}
