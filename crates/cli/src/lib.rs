//! # pdos-cli — the command-line front end of the PDoS laboratory
//!
//! A small, dependency-free CLI over the workspace: solve the DSN 2005
//! gain model, run simulated attack experiments, sweep parameters, and
//! run the bundled detectors over externally captured (binned) traffic
//! traces. Everything simulation-side is deterministic given `--seed`.
//!
//! ```text
//! pdos solve --flows 25 --textent-ms 75 --rattack-mbps 30
//! pdos simulate --gamma 0.3 --queue acc
//! pdos sweep --points 8 > sweep.csv
//! pdos detect --csv bins.txt --capacity-mbps 15
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;
