//! The `pdos` binary: parse, dispatch, print.

use pdos_cli::args::Args;
use pdos_cli::commands::{run, HELP};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print!("{HELP}");
        std::process::exit(2);
    }
    match Args::parse(argv).and_then(|args| run(&args)) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
