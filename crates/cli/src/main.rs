//! The `pdos` binary: parse, dispatch, print.

use pdos_cli::args::Args;
use pdos_cli::commands::{run, HELP};

/// Count allocations process-wide so `pdos bench` can report them
/// alongside throughput (see `pdos_bench::alloc`).
#[global_allocator]
static ALLOCATOR: pdos_bench::alloc::CountingAllocator = pdos_bench::alloc::CountingAllocator;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print!("{HELP}");
        std::process::exit(2);
    }
    match Args::parse(argv).and_then(|args| run(&args)) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
