//! The documented tolerance bands the differential oracle enforces.
//!
//! The numbers come from EXPERIMENTS.md, which records how closely the
//! simulator tracks the analytical gain model (Eq. 5 with Eq. 10) at the
//! published resolution (40 s measurement windows, the Fig. 6–9 panels):
//!
//! * right of the gain maximum (γ ≥ 0.56) analytic and simulated values
//!   differ by **< 0.04 on most panels**;
//! * the left side is systematically worse (36–57% relative error), which
//!   is the paper's own §4.1.2 observation — so the oracle only *bands*
//!   the right side and merely requires finiteness on the left;
//! * sweeps are classified with a **0.12** normal/under/over margin.
//!
//! CI runs the oracle on short windows (seconds, not the published 40 s)
//! over randomized small scenarios, where goodput quantization widens the
//! spread; [`ToleranceBands::short_window_factor`] scales the published
//! band accordingly. The factor was tuned once against the deterministic
//! oracle sweep — the runs are seeded, so the margin is not a flake
//! allowance but a documented loosening for small samples.

/// Tolerance bands for comparing simulated against analytic gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToleranceBands {
    /// γ at and beyond which the paper reports close agreement (the
    /// "right side of the maximum", §4.1.2).
    pub gamma_right: f64,
    /// Published absolute |G_sim − G_analytic| band on the right side at
    /// the full 40 s windows.
    pub right_abs_err: f64,
    /// Multiplier applied to [`ToleranceBands::right_abs_err`] for the
    /// CI-sized short-window oracle runs.
    pub short_window_factor: f64,
    /// Fraction of right-side points that must fall inside the band
    /// (EXPERIMENTS.md says "most panels", not "all").
    pub within_frac: f64,
    /// Absolute ceiling no right-side point may exceed, however unlucky
    /// the random scenario draw.
    pub hard_abs_err: f64,
    /// The sweep classification margin of §4.1.1.
    pub class_margin: f64,
    /// Smallest right-side sample on which the `within_frac` requirement
    /// is statistically meaningful; below it only the hard ceiling
    /// applies (a 3-point sample forces 80% up to "all 3").
    pub min_right_sample: usize,
}

impl ToleranceBands {
    /// The EXPERIMENTS.md bands, pre-scaled for CI's short windows.
    pub fn ci_default() -> ToleranceBands {
        ToleranceBands {
            gamma_right: 0.56,
            right_abs_err: 0.04,
            short_window_factor: 3.0,
            within_frac: 0.8,
            hard_abs_err: 0.30,
            class_margin: 0.12,
            min_right_sample: 8,
        }
    }

    /// The effective right-side band for one oracle run.
    pub fn effective_right_band(&self) -> f64 {
        self.right_abs_err * self.short_window_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_bands_quote_experiments_md() {
        let b = ToleranceBands::ci_default();
        assert_eq!(b.gamma_right, 0.56);
        assert_eq!(b.right_abs_err, 0.04);
        assert_eq!(b.class_margin, 0.12);
        assert!(b.effective_right_band() < b.hard_abs_err);
        assert!(b.within_frac > 0.5 && b.within_frac <= 1.0);
    }
}
