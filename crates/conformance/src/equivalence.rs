//! Batch-vs-streaming detector equivalence battery.
//!
//! The streaming detectors ([`pdos_detect::streaming`]) claim *exact*
//! arithmetic equivalence with their batch counterparts: pushing a
//! recorded series bin by bin through [`StreamingCusum`] /
//! [`StreamingRate`] must reach the same verdict — alarm or quiet, same
//! alarm bin, same onset, bit-identical peak statistic — as handing the
//! whole series to [`CusumDetector::scan`] / [`RateDetector::run`]. This
//! module holds that contract against real simulator traffic: the four
//! canonical golden scenarios plus a seeded sweep of randomized
//! scenarios (the oracle's draw ranges), every trace scored both ways,
//! every comparison down to `f64::to_bits`.
//!
//! Like the oracle, a battery run is a pure function of its
//! [`EquivalenceConfig`] — failures reproduce exactly.

use crate::golden::canonical_specs;
use pdos_detect::cusum::{CusumDetector, CusumScan};
use pdos_detect::rate::RateDetector;
use pdos_detect::streaming::{StreamingCusum, StreamingDetector, StreamingRate};
use pdos_scenarios::runner::{AttackPoint, ExperimentSpec, RunOutcome, SeedPolicy, SweepRunner};
use pdos_scenarios::spec::ScenarioSpec;
use pdos_sim::time::SimDuration;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Configuration of one equivalence battery run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EquivalenceConfig {
    /// Randomized scenarios to run on top of the four canonical ones.
    pub random_scenarios: usize,
    /// Seed for scenario generation *and* the runner's per-run seeds.
    pub master_seed: u64,
    /// Worker threads (0 = one per CPU).
    pub jobs: usize,
}

impl Default for EquivalenceConfig {
    /// CI defaults: 50 randomized scenarios on seed 7.
    fn default() -> EquivalenceConfig {
        EquivalenceConfig {
            random_scenarios: 50,
            master_seed: 7,
            jobs: 0,
        }
    }
}

/// The pulse widths the battery samples (the paper's §4.1 values).
const TEXTENTS: [f64; 3] = [0.050, 0.075, 0.100];

/// The trace bin width every battery run records at.
const BIN: SimDuration = SimDuration::from_millis(100);

/// The scenario list for `cfg`: the four canonical golden specs followed
/// by `cfg.random_scenarios` randomized attacked specs drawn exactly like
/// the oracle's (same flow/width/rate/γ ranges) — deterministic in
/// `cfg.master_seed`. Every spec records a 100 ms trace; the canonical
/// four additionally run tapped, so the engine-side detector feed is
/// exercised alongside the trace the scorers consume.
pub fn equivalence_specs(cfg: &EquivalenceConfig) -> Vec<ExperimentSpec> {
    let mut specs: Vec<ExperimentSpec> = canonical_specs()
        .into_iter()
        .map(ExperimentSpec::tapped)
        .collect();
    let mut rng = SmallRng::seed_from_u64(cfg.master_seed);
    specs.extend((0..cfg.random_scenarios).map(|i| {
        let n_flows = rng.random_range(3usize..=8);
        let t_extent = TEXTENTS[rng.random_range(0usize..TEXTENTS.len())];
        let r_attack = rng.random_range(25.0f64..=40.0) * 1e6;
        let gamma = rng.random_range(0.10f64..=0.90);
        ExperimentSpec::attacked(
            format!(
                "equiv/{i:03}/f{n_flows}/te{}ms/g{gamma:.3}",
                (t_extent * 1000.0).round() as u64
            ),
            ScenarioSpec::ns2_dumbbell(n_flows),
            AttackPoint {
                t_extent,
                r_attack,
                gamma,
            },
        )
        .warmup(SimDuration::from_secs(4))
        .window(SimDuration::from_secs(8))
        .traced(BIN)
    }));
    specs
}

/// What one battery run found.
#[derive(Debug, Clone, Default)]
pub struct EquivalenceOutcome {
    /// Scenarios executed.
    pub n_runs: usize,
    /// Traces scored both ways (batch and streaming).
    pub n_compared: usize,
    /// Mismatches and failed runs, one message each.
    pub failures: Vec<String>,
}

impl EquivalenceOutcome {
    /// Whether every trace scored identically both ways.
    pub fn pass(&self) -> bool {
        self.failures.is_empty() && self.n_compared == self.n_runs
    }

    /// A human-readable report of the battery.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "equivalence: {} runs, {} traces scored batch and streaming",
            self.n_runs, self.n_compared
        );
        if self.failures.is_empty() {
            let _ = writeln!(s, "  no mismatches");
        } else {
            let _ = writeln!(s, "  {} failure(s):", self.failures.len());
            for f in &self.failures {
                let _ = writeln!(s, "    {f}");
            }
        }
        let _ = writeln!(
            s,
            "  verdict: {}",
            if self.pass() { "PASS" } else { "FAIL" }
        );
        s
    }
}

/// Compares the batch CUSUM scan of `series` against a streaming pass
/// over the same bins, down to `f64::to_bits`. Empty = equivalent. The
/// exact per-series logic [`run_equivalence`] applies, public so the fuzz
/// campaign's detector stage holds generated traces to the same contract.
pub fn check_cusum_equivalence(
    id: &str,
    detector: &CusumDetector,
    streaming: &mut StreamingCusum,
    series: &[u64],
) -> Vec<String> {
    let mut failures = Vec::new();
    let batch = detector.scan(series);
    let mut pushed_alarm = None;
    for (i, &b) in series.iter().enumerate() {
        if let Some(alarm) = streaming.push(b) {
            if alarm.bin != i {
                failures.push(format!(
                    "{id}: alarm carries bin {} but fired on push {i} — the \
                     streaming state is out of sync with the series",
                    alarm.bin
                ));
            }
            pushed_alarm = Some(alarm);
        }
    }
    let online = streaming.scan();
    match (&batch, &online) {
        (CusumScan::Report(b), CusumScan::Report(s)) => {
            if b.detected != s.detected
                || b.alarm_bin != s.alarm_bin
                || b.onset_bin != s.onset_bin
                || b.peak_sigmas.to_bits() != s.peak_sigmas.to_bits()
            {
                failures.push(format!(
                    "{id}: cusum batch/streaming diverged: batch {b:?} vs streaming {s:?}"
                ));
            }
            if b.detected && pushed_alarm.map(|a| a.bin) != b.alarm_bin {
                failures.push(format!(
                    "{id}: cusum push emitted alarm at {pushed_alarm:?}, batch alarms at {:?}",
                    b.alarm_bin
                ));
            }
            if !b.detected && pushed_alarm.is_some() {
                failures.push(format!(
                    "{id}: cusum push emitted {pushed_alarm:?} on a batch-quiet series"
                ));
            }
        }
        (CusumScan::TooFewBins { .. }, CusumScan::TooFewBins { .. }) => {
            if batch != online {
                failures.push(format!(
                    "{id}: cusum TooFewBins disagreement: batch {batch:?} vs streaming {online:?}"
                ));
            }
        }
        _ => failures.push(format!(
            "{id}: cusum calibration disagreement: batch {batch:?} vs streaming {online:?}"
        )),
    }
    failures
}

/// Compares the batch rate-threshold run of `series` against a streaming
/// pass, down to `f64::to_bits` on the final utilization. Empty =
/// equivalent.
pub fn check_rate_equivalence(
    id: &str,
    detector: &RateDetector,
    streaming: &mut StreamingRate,
    series: &[u64],
) -> Vec<String> {
    let batch = detector.clone().run(series);
    for &b in series {
        streaming.push(b);
    }
    let online = streaming.report();
    if batch.detected != online.detected
        || batch.first_alarm_bin != online.first_alarm_bin
        || batch.alarm_bins != online.alarm_bins
        || batch.total_bins != online.total_bins
        || batch.final_utilization.to_bits() != online.final_utilization.to_bits()
    {
        vec![format!(
            "{id}: rate batch/streaming diverged: batch {batch:?} vs streaming {online:?}"
        )]
    } else {
        Vec::new()
    }
}

/// Runs the battery: simulate every spec, then score each recorded trace
/// batch-wise and streaming-wise with both detector families — CUSUM on
/// the raw bins *and* on the bin-to-bin dispersion (the conventional
/// change series), rate-threshold on the raw bins — requiring
/// bit-identical verdicts throughout.
pub fn run_equivalence(cfg: &EquivalenceConfig) -> EquivalenceOutcome {
    let specs = equivalence_specs(cfg);
    let report = SweepRunner::new(cfg.master_seed)
        .seed_policy(SeedPolicy::FromScenario)
        .jobs(cfg.jobs)
        .run(&specs);

    let mut out = EquivalenceOutcome {
        n_runs: specs.len(),
        ..EquivalenceOutcome::default()
    };
    for (spec, record) in specs.iter().zip(&report.records) {
        let trace = match &record.outcome {
            RunOutcome::Point { trace, .. } | RunOutcome::Benign { trace, .. } => trace,
            RunOutcome::Infeasible { reason } | RunOutcome::Failed { reason } => {
                out.failures.push(format!("{}: {reason}", spec.id));
                continue;
            }
        };
        out.n_compared += 1;
        let capacity = spec.scenario.bottleneck.as_bps();
        let bin_secs = BIN.as_secs_f64();
        // The short 8 s windows leave fewer bins than the conventional
        // 50-bin calibration, so size the CUSUM to the trace: half the
        // series calibrates, the other half is scanned.
        let calib = (trace.len() / 2).max(1);
        let dispersion: Vec<u64> = trace.windows(2).map(|w| w[0].abs_diff(w[1])).collect();
        for (label, series) in [("raw", trace.as_slice()), ("disp", dispersion.as_slice())] {
            let id = format!("{}/{label}", spec.id);
            out.failures.extend(check_cusum_equivalence(
                &id,
                &CusumDetector::new(calib, 0.5, 8.0),
                &mut StreamingCusum::new(calib, 0.5, 8.0),
                series,
            ));
        }
        out.failures.extend(check_rate_equivalence(
            &spec.id,
            &RateDetector::conventional(capacity, bin_secs),
            &mut StreamingRate::conventional(capacity, bin_secs),
            trace,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_generation_is_deterministic_and_traced() {
        let cfg = EquivalenceConfig {
            random_scenarios: 10,
            ..EquivalenceConfig::default()
        };
        let a = equivalence_specs(&cfg);
        let b = equivalence_specs(&cfg);
        assert_eq!(a.len(), 4 + 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.stable_hash(), y.stable_hash());
            assert!(
                x.trace_bin.is_some(),
                "{}: battery runs record traces",
                x.id
            );
        }
        // The canonical four lead the list, tapped.
        assert!(a[..4].iter().all(|s| s.id.starts_with("golden/")));
        assert!(
            a[..4].iter().all(|s| s.detect),
            "canonical specs run tapped"
        );
        // Distinct ids -> distinct derived seeds.
        let mut ids: Vec<&str> = a.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 14);
    }

    #[test]
    fn different_master_seeds_draw_different_scenarios() {
        let a = equivalence_specs(&EquivalenceConfig {
            random_scenarios: 5,
            master_seed: 1,
            ..EquivalenceConfig::default()
        });
        let b = equivalence_specs(&EquivalenceConfig {
            random_scenarios: 5,
            master_seed: 2,
            ..EquivalenceConfig::default()
        });
        assert!(a.iter().zip(&b).any(|(x, y)| x.id != y.id));
    }

    #[test]
    fn outcome_pass_logic() {
        let mut o = EquivalenceOutcome {
            n_runs: 3,
            n_compared: 3,
            failures: Vec::new(),
        };
        assert!(o.pass());
        assert!(o.summary().contains("PASS"));
        o.failures.push("boom".into());
        assert!(!o.pass());
        assert!(o.summary().contains("FAIL"));
        let short = EquivalenceOutcome {
            n_runs: 3,
            n_compared: 2,
            failures: Vec::new(),
        };
        assert!(!short.pass(), "an unscored run is a failure");
    }

    #[test]
    fn cusum_check_flags_a_drifted_streaming_state() {
        // A deliberately desynchronized streaming detector (fed one extra
        // bin before the comparison) must be caught, not silently passed —
        // this is the seam the fuzz campaign's cusum-drift drill leans on.
        let series: Vec<u64> = (0..40u64)
            .map(|i| if i < 30 { 100 } else { 5_000 })
            .collect();
        let mut drifted = StreamingCusum::new(10, 0.5, 4.0);
        drifted.push(100);
        let failures = check_cusum_equivalence(
            "drift",
            &CusumDetector::new(10, 0.5, 4.0),
            &mut drifted,
            &series,
        );
        assert!(!failures.is_empty(), "drifted state must not pass");
    }

    #[test]
    fn rate_check_flags_a_drifted_streaming_state() {
        let series = vec![2_000_000u64; 20];
        let mut drifted = StreamingRate::conventional(15e6, 0.1);
        drifted.push(2_000_000);
        let failures = check_rate_equivalence(
            "drift",
            &RateDetector::conventional(15e6, 0.1),
            &mut drifted,
            &series,
        );
        assert!(!failures.is_empty(), "drifted state must not pass");
    }
}
