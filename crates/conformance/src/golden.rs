//! Golden-trace regression: compact hashed digests of canonical runs.
//!
//! Each canonical scenario runs with the bottleneck's ingress traffic
//! recorded in 100 ms bins over the measurement window; the digest pins
//! `fnv1a64` over the little-endian bin bytes plus the bin count and byte
//! total. A digest is a complete fingerprint of the run's traffic
//! dynamics at bin resolution — any change to packet timing, queueing,
//! loss, TCP behaviour or seeding shows up as a digest mismatch, while
//! the stored file stays a few lines of text under version control
//! (`tests/golden/trace_digests.txt`).
//!
//! Regenerate after an *intentional* behaviour change with the CLI:
//! `pdos check --bless` (or set `PDOS_BLESS=1` for the test suite).

use pdos_scenarios::runner::{
    fnv1a64, AttackPoint, ExperimentSpec, RunOutcome, SeedPolicy, SweepRunner,
};
use pdos_scenarios::spec::{BottleneckQueue, ScenarioSpec};
use pdos_sim::time::SimDuration;
use std::fmt::Write as _;

/// File name of the stored digests, under the repository's golden dir.
pub const GOLDEN_FILE: &str = "trace_digests.txt";

/// One canonical run's trace fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDigest {
    /// The spec id (`golden/...`).
    pub name: String,
    /// Bins recorded over the measurement window.
    pub n_bins: usize,
    /// Total bytes across the bins.
    pub total_bytes: u64,
    /// `fnv1a64` over the little-endian `u64` bin values.
    pub digest: u64,
}

/// The canonical scenario set: both paper topologies, both bottleneck
/// disciplines, benign and attacked. Seeds are pinned by the scenarios
/// themselves ([`SeedPolicy::FromScenario`] in [`compute_digests`]).
pub fn canonical_specs() -> Vec<ExperimentSpec> {
    let warmup = SimDuration::from_secs(4);
    let window = SimDuration::from_secs(8);
    let bin = SimDuration::from_millis(100);
    let attack = AttackPoint {
        t_extent: 0.075,
        r_attack: 30e6,
        gamma: 0.40,
    };
    let mut droptail = ScenarioSpec::ns2_dumbbell(3);
    droptail.queue = BottleneckQueue::DropTail;
    vec![
        ExperimentSpec::benign("golden/ns2-benign", ScenarioSpec::ns2_dumbbell(3)),
        ExperimentSpec::attacked(
            "golden/ns2-red-attacked",
            ScenarioSpec::ns2_dumbbell(3),
            attack,
        ),
        ExperimentSpec::attacked("golden/ns2-droptail-attacked", droptail, attack),
        ExperimentSpec::attacked("golden/testbed-attacked", ScenarioSpec::testbed(), attack),
    ]
    .into_iter()
    .map(|s| s.warmup(warmup).window(window).traced(bin).checked())
    .collect()
}

/// The differential congestion-control battery: the fig06 canonical
/// attack point (25 Mbps pulses, `T_extent = 75 ms`, `γ = 0.40`) on the
/// ns-2 dumbbell, once per registered algorithm — the *same* scenario
/// each time, with ECN negotiated so the RED bottleneck marks as well as
/// drops (DCTCP is an ECN algorithm per RFC 8257, and the mark response
/// is exactly where the four reduction laws differ). Ids are
/// `golden/cc-<key>`; each algorithm pins its own digest so a behaviour
/// change in any one state machine — or an accidental coupling between
/// them — shows up as drift.
pub fn cc_differential_specs() -> Vec<ExperimentSpec> {
    let warmup = SimDuration::from_secs(4);
    let window = SimDuration::from_secs(8);
    let bin = SimDuration::from_millis(100);
    let attack = AttackPoint {
        t_extent: 0.075,
        r_attack: 25e6,
        gamma: 0.40,
    };
    pdos_tcp::cc::CcSpec::ALL
        .into_iter()
        .map(|cc| {
            let mut scenario = ScenarioSpec::ns2_dumbbell(3).with_cc(cc);
            scenario.tcp.ecn = true;
            ExperimentSpec::attacked(format!("golden/cc-{}", cc.key()), scenario, attack)
                .warmup(warmup)
                .window(window)
                .traced(bin)
                .checked()
        })
        .collect()
}

/// Runs the [`cc_differential_specs`] battery (invariant checkers on)
/// and fingerprints each algorithm's trace.
///
/// # Errors
///
/// Returns the failing run's id and reason if any run fails — including
/// invariant violations, which is the point: every algorithm must hold
/// the engine's conservation and TCP window audits.
pub fn compute_cc_digests(jobs: usize) -> Result<Vec<TraceDigest>, String> {
    compute_cc_digests_with(jobs, true)
}

/// Like [`compute_cc_digests`], but with warm-start checkpointing forced
/// on or off. Checkpoint forking is contractually byte-identical to cold
/// simulation for *every* congestion control, not just the AIMD seed —
/// the CC fork-equivalence matrix in the conformance suite pins both
/// paths equal per algorithm.
///
/// # Errors
///
/// Returns the failing run's id and reason if any run fails.
pub fn compute_cc_digests_with(jobs: usize, warm_start: bool) -> Result<Vec<TraceDigest>, String> {
    compute_digests_inner(cc_differential_specs(), jobs, warm_start).map(|(digests, _)| digests)
}

/// Fingerprints a binned trace: `fnv1a64` over the little-endian `u64`
/// bin values — the digest scheme every golden entry pins. Public so
/// other harnesses (the fuzz campaign's per-case digests) fingerprint
/// traces identically to the golden file.
pub fn digest_bins(bins: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(bins.len() * 8);
    for b in bins {
        bytes.extend_from_slice(&b.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Runs the canonical scenarios (invariant checkers on) and fingerprints
/// their traces.
///
/// # Errors
///
/// Returns the failing run's id and reason if any canonical run fails —
/// including invariant violations.
pub fn compute_digests(jobs: usize) -> Result<Vec<TraceDigest>, String> {
    compute_digests_inner(canonical_specs(), jobs, true).map(|(digests, _)| digests)
}

/// Like [`compute_digests`], but with warm-start checkpointing explicitly
/// forced on or off. Forking a checkpointed warm-up is contractually
/// byte-identical to re-simulating it, so both settings must produce the
/// same digests — the fork-equivalence conformance tests pin exactly that.
///
/// # Errors
///
/// Returns the failing run's id and reason if any canonical run fails.
pub fn compute_digests_with(jobs: usize, warm_start: bool) -> Result<Vec<TraceDigest>, String> {
    compute_digests_inner(canonical_specs(), jobs, warm_start).map(|(digests, _)| digests)
}

/// Like [`compute_digests_metered`], but with warm-start checkpointing
/// explicitly forced on or off.
///
/// # Errors
///
/// Returns the failing run's id and reason if any canonical run fails.
pub fn compute_digests_metered_with(
    jobs: usize,
    warm_start: bool,
) -> Result<(Vec<TraceDigest>, pdos_metrics::MetricsSnapshot), String> {
    let specs = canonical_specs()
        .into_iter()
        .map(ExperimentSpec::metered)
        .collect();
    let (digests, snapshot) = compute_digests_inner(specs, jobs, warm_start)?;
    Ok((
        digests,
        snapshot.ok_or("metered sweep produced no metrics snapshot")?,
    ))
}

/// Like [`compute_digests`], but runs every canonical scenario with the
/// engine's per-link detector tap enabled. Taps are contractually
/// hash-neutral — read-only binning on the forwarding path — so the
/// digests this returns must equal the plain [`compute_digests`] output;
/// the conformance suite pins exactly that against the golden literals.
///
/// # Errors
///
/// Returns the failing run's id and reason if any canonical run fails.
pub fn compute_digests_tapped(jobs: usize) -> Result<Vec<TraceDigest>, String> {
    let specs = canonical_specs()
        .into_iter()
        .map(ExperimentSpec::tapped)
        .collect();
    compute_digests_inner(specs, jobs, true).map(|(digests, _)| digests)
}

/// Like [`compute_digests`], but runs every canonical scenario with the
/// metrics registry enabled and returns the merged snapshot alongside the
/// digests. Metrics are contractually hash-neutral, so the digests this
/// returns must equal the plain [`compute_digests`] output — the
/// conformance suite pins exactly that.
///
/// # Errors
///
/// Returns the failing run's id and reason if any canonical run fails.
pub fn compute_digests_metered(
    jobs: usize,
) -> Result<(Vec<TraceDigest>, pdos_metrics::MetricsSnapshot), String> {
    compute_digests_metered_with(jobs, true)
}

/// Like [`compute_digests`], but runs every canonical scenario on a
/// sharded engine with `shards` requested shards. Sharding is
/// contractually bit-identical to sequential execution — the
/// conservative-lookahead rounds reproduce the exact global event order —
/// so the digests this returns must equal the plain [`compute_digests`]
/// output and the stored golden file; the conformance suite pins exactly
/// that for `shards ∈ {2, 4}` against the committed literals.
///
/// # Errors
///
/// Returns the failing run's id and reason if any canonical run fails.
pub fn compute_digests_sharded(jobs: usize, shards: usize) -> Result<Vec<TraceDigest>, String> {
    let specs = canonical_specs()
        .into_iter()
        .map(|s| s.sharded(shards))
        .collect();
    compute_digests_inner(specs, jobs, true).map(|(digests, _)| digests)
}

/// The strictest sharded leg: every canonical scenario on a sharded
/// engine with the invariant checkers (always on for canonical specs),
/// the metrics registry *and* the per-link detector tap enabled at once,
/// with warm-start forced on or off. All three observers are
/// contractually hash-neutral and shard-aware, so the digests must still
/// equal the plain unsharded [`compute_digests`] output.
///
/// # Errors
///
/// Returns the failing run's id and reason if any canonical run fails.
pub fn compute_digests_sharded_full(
    jobs: usize,
    shards: usize,
    warm_start: bool,
) -> Result<(Vec<TraceDigest>, pdos_metrics::MetricsSnapshot), String> {
    let specs = canonical_specs()
        .into_iter()
        .map(|s| s.sharded(shards).tapped().metered())
        .collect();
    let (digests, snapshot) = compute_digests_inner(specs, jobs, warm_start)?;
    Ok((
        digests,
        snapshot.ok_or("metered sharded sweep produced no metrics snapshot")?,
    ))
}

fn compute_digests_inner(
    specs: Vec<ExperimentSpec>,
    jobs: usize,
    warm_start: bool,
) -> Result<(Vec<TraceDigest>, Option<pdos_metrics::MetricsSnapshot>), String> {
    let report = SweepRunner::new(0)
        .seed_policy(SeedPolicy::FromScenario)
        .jobs(jobs)
        .warm_start(warm_start)
        .run(&specs);
    let digests = report
        .records
        .iter()
        .map(|r| {
            let trace = match &r.outcome {
                RunOutcome::Point { trace, .. } | RunOutcome::Benign { trace, .. } => trace,
                RunOutcome::Infeasible { reason } | RunOutcome::Failed { reason } => {
                    return Err(format!("{}: {reason}", r.id));
                }
            };
            Ok(TraceDigest {
                name: r.id.clone(),
                n_bins: trace.len(),
                total_bytes: trace.iter().sum(),
                digest: digest_bins(trace),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((digests, report.merged_metrics()))
}

/// Serializes digests to the stored text format (one line per run).
pub fn format_digests(digests: &[TraceDigest]) -> String {
    let mut s = String::from(
        "# Golden trace digests - regenerate with `pdos check --bless`\n\
         # after an intentional simulator behaviour change.\n",
    );
    for d in digests {
        let _ = writeln!(
            s,
            "{} bins={} total={} digest={:016x}",
            d.name, d.n_bins, d.total_bytes, d.digest
        );
    }
    s
}

/// Parses the stored text format.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_digests(text: &str) -> Result<Vec<TraceDigest>, String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|line| {
            let mut parts = line.split_whitespace();
            let name = parts.next().ok_or_else(|| format!("bad line: {line}"))?;
            let mut field = |prefix: &str| -> Result<&str, String> {
                parts
                    .next()
                    .and_then(|p| p.strip_prefix(prefix))
                    .ok_or_else(|| format!("bad line (expected {prefix}...): {line}"))
            };
            let n_bins = field("bins=")?
                .parse()
                .map_err(|_| format!("bad bins in: {line}"))?;
            let total_bytes = field("total=")?
                .parse()
                .map_err(|_| format!("bad total in: {line}"))?;
            let digest = u64::from_str_radix(field("digest=")?, 16)
                .map_err(|_| format!("bad digest in: {line}"))?;
            Ok(TraceDigest {
                name: name.to_string(),
                n_bins,
                total_bytes,
                digest,
            })
        })
        .collect()
}

/// Compares freshly computed digests against the stored golden set.
/// Returns one message per mismatch (empty = conforming).
pub fn compare(current: &[TraceDigest], golden: &[TraceDigest]) -> Vec<String> {
    let mut problems = Vec::new();
    for cur in current {
        match golden.iter().find(|g| g.name == cur.name) {
            None => problems.push(format!("{}: missing from the golden file", cur.name)),
            Some(g) if g != cur => problems.push(format!(
                "{}: digest drift: golden bins={} total={} digest={:016x}, \
                 current bins={} total={} digest={:016x}",
                cur.name,
                g.n_bins,
                g.total_bytes,
                g.digest,
                cur.n_bins,
                cur.total_bytes,
                cur.digest
            )),
            Some(_) => {}
        }
    }
    for g in golden {
        if !current.iter().any(|c| c.name == g.name) {
            problems.push(format!(
                "{}: in the golden file but no longer computed",
                g.name
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceDigest> {
        vec![
            TraceDigest {
                name: "golden/a".into(),
                n_bins: 80,
                total_bytes: 123_456,
                digest: 0xdead_beef_0123_4567,
            },
            TraceDigest {
                name: "golden/b".into(),
                n_bins: 80,
                total_bytes: 654_321,
                digest: 0x0123_4567_89ab_cdef,
            },
        ]
    }

    #[test]
    fn format_parse_roundtrip() {
        let d = sample();
        assert_eq!(parse_digests(&format_digests(&d)).unwrap(), d);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_digests("golden/a bins=80").is_err());
        assert!(parse_digests("golden/a bins=x total=1 digest=ff").is_err());
        assert!(parse_digests("golden/a bins=1 total=1 digest=zz").is_err());
        assert_eq!(parse_digests("# only comments\n\n").unwrap(), vec![]);
    }

    #[test]
    fn compare_reports_drift_and_membership() {
        let golden = sample();
        let mut current = sample();
        assert!(compare(&current, &golden).is_empty());
        current[0].digest ^= 1;
        let problems = compare(&current, &golden);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("digest drift"));
        current.remove(1);
        let problems = compare(&current, &golden);
        assert!(problems.iter().any(|p| p.contains("no longer computed")));
        current.push(TraceDigest {
            name: "golden/new".into(),
            n_bins: 1,
            total_bytes: 1,
            digest: 1,
        });
        let problems = compare(&current, &golden);
        assert!(problems
            .iter()
            .any(|p| p.contains("missing from the golden file")));
    }

    #[test]
    fn canonical_specs_cover_the_matrix() {
        let specs = canonical_specs();
        assert_eq!(specs.len(), 4);
        assert!(specs.iter().all(|s| s.trace_bin.is_some() && s.checks));
        assert_eq!(specs.iter().filter(|s| s.attack.is_none()).count(), 1);
        // Distinct ids -> distinct golden lines.
        let mut ids: Vec<&str> = specs.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn digest_is_order_sensitive() {
        assert_ne!(digest_bins(&[1, 2, 3]), digest_bins(&[3, 2, 1]));
        assert_ne!(digest_bins(&[]), digest_bins(&[0]));
    }
}
