//! # pdos-conformance — does the laboratory still tell the truth?
//!
//! Three independent mechanisms guard the reproduction against silent
//! regressions (see `docs/TESTING.md` for the full story):
//!
//! 1. **Runtime invariants** — the simulator's event engine, links,
//!    queues and TCP senders carry always-compiled, runtime-enabled
//!    checkers ([`pdos_sim::check`]); every conformance run executes with
//!    them on, so a conservation or clock bug fails the run rather than
//!    skewing a figure.
//! 2. **Golden traces** ([`golden`]) — hashed per-bin traffic digests of
//!    canonical scenarios, pinned under `tests/golden/` and re-blessable
//!    via `pdos check --bless`.
//! 3. **Differential oracle** ([`oracle`]) — randomized scenarios pushed
//!    through both the analytic gain model and the simulator, enforcing
//!    the tolerance bands documented in EXPERIMENTS.md ([`bands`]).
//! 4. **Detector equivalence** ([`equivalence`]) — canonical and
//!    randomized traces scored by both the batch and the streaming
//!    detectors, requiring bit-identical verdicts.
//! 5. **Shard equivalence** ([`sharding`]) — randomized topologies run
//!    unsharded, sharded cold and sharded warm-started, requiring
//!    digest-identical traces (see `docs/SHARDING.md`).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bands;
pub mod equivalence;
pub mod golden;
pub mod oracle;
pub mod sharding;

pub use bands::ToleranceBands;
pub use equivalence::{
    check_cusum_equivalence, check_rate_equivalence, equivalence_specs, run_equivalence,
    EquivalenceConfig, EquivalenceOutcome,
};
pub use golden::{
    canonical_specs, cc_differential_specs, compute_cc_digests, compute_cc_digests_with,
    compute_digests, compute_digests_metered, compute_digests_metered_with,
    compute_digests_sharded, compute_digests_sharded_full, compute_digests_tapped,
    compute_digests_with, digest_bins, TraceDigest, GOLDEN_FILE,
};
pub use oracle::{check_point, run_oracle, OracleConfig, OracleOutcome, PointVerdict};
pub use sharding::{
    run_shard_battery, shard_battery_specs, ShardBatteryConfig, ShardBatteryOutcome,
};
