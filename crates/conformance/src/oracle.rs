//! The analytic differential oracle.
//!
//! Sweeps randomized `(n_flows, T_extent, R_attack, γ)` scenarios through
//! **both** implementations of the paper's damage model — the closed-form
//! `pdos-analysis` curves (Eq. 1 / Eq. 5 with Eq. 10) and the
//! discrete-event simulator via [`pdos_scenarios::runner::SweepRunner`] —
//! and checks three things per run:
//!
//! 1. **identity** — the analytic values embedded in each measured point
//!    equal an independent recomputation through `pdos-analysis` (catches
//!    drift between the experiment driver and the model);
//! 2. **invariants** — every simulation runs with the runtime checkers
//!    enabled, so a conservation/clock/TCP violation fails the run;
//! 3. **bands** — right of the gain maximum (γ ≥ 0.56) the simulated gain
//!    must track the analytic curve within the documented
//!    [`ToleranceBands`].
//!
//! Scenario generation is seeded, so an oracle run is a pure function of
//! its [`OracleConfig`] — failures reproduce exactly.

use crate::bands::ToleranceBands;
use pdos_analysis::gain::{attack_gain, RiskPreference};
use pdos_analysis::model::{c_psi, degradation};
use pdos_scenarios::experiment::GainPoint;
use pdos_scenarios::runner::{AttackPoint, ExperimentSpec, RunOutcome, SweepRunner};
use pdos_scenarios::spec::ScenarioSpec;
use pdos_sim::time::SimDuration;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Configuration of one oracle sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleConfig {
    /// Number of randomized scenarios to run.
    pub scenarios: usize,
    /// Seed for scenario generation *and* the runner's per-run seeds.
    pub master_seed: u64,
    /// Worker threads (0 = one per CPU).
    pub jobs: usize,
    /// Warm-up before each measurement window.
    pub warmup: SimDuration,
    /// Measurement window per run.
    pub window: SimDuration,
    /// The tolerance bands to enforce.
    pub bands: ToleranceBands,
}

impl Default for OracleConfig {
    /// CI defaults: 50 scenarios, short windows, EXPERIMENTS.md bands.
    fn default() -> OracleConfig {
        OracleConfig {
            scenarios: 50,
            master_seed: 7,
            jobs: 0,
            warmup: SimDuration::from_secs(4),
            window: SimDuration::from_secs(8),
            bands: ToleranceBands::ci_default(),
        }
    }
}

/// What one oracle sweep found.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// Scenarios executed.
    pub n_runs: usize,
    /// Runs that produced a measured gain point.
    pub n_points: usize,
    /// Points right of the gain maximum (γ ≥ `bands.gamma_right`).
    pub n_right: usize,
    /// Right-side points inside the effective band.
    pub n_within: usize,
    /// Largest right-side |G_sim − G_analytic| observed.
    pub max_abs_err_right: f64,
    /// Mean right-side |G_sim − G_analytic|.
    pub mean_abs_err_right: f64,
    /// The bands that were enforced.
    pub bands: ToleranceBands,
    /// Hard failures: invariant violations, failed/infeasible runs,
    /// identity mismatches, band ceiling breaches.
    pub failures: Vec<String>,
}

impl OracleOutcome {
    /// Right-side points that must fall inside the band for a pass.
    ///
    /// Below [`ToleranceBands::min_right_sample`] right-side points the
    /// fraction requirement is waived (only the hard ceiling applies):
    /// rounding 80% up on a 3-point sample would demand all 3, turning a
    /// documented "most panels" band into an all-panels one.
    pub fn needed_within(&self) -> usize {
        if self.n_right < self.bands.min_right_sample {
            return 0;
        }
        (self.bands.within_frac * self.n_right as f64).ceil() as usize
    }

    /// Whether the sweep conforms.
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
            && self.n_points == self.n_runs
            && self.n_within >= self.needed_within()
    }

    /// A human-readable report of the sweep.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "oracle: {} runs, {} points, {} right-side (gamma >= {})",
            self.n_runs, self.n_points, self.n_right, self.bands.gamma_right
        );
        let _ = writeln!(
            s,
            "  within band {:.3}: {}/{} (need {}), max |err| {:.4}, mean |err| {:.4}",
            self.bands.effective_right_band(),
            self.n_within,
            self.n_right,
            self.needed_within(),
            self.max_abs_err_right,
            self.mean_abs_err_right,
        );
        if self.failures.is_empty() {
            let _ = writeln!(s, "  no hard failures");
        } else {
            let _ = writeln!(s, "  {} hard failure(s):", self.failures.len());
            for f in &self.failures {
                let _ = writeln!(s, "    {f}");
            }
        }
        let _ = writeln!(
            s,
            "  verdict: {}",
            if self.pass() { "PASS" } else { "FAIL" }
        );
        s
    }
}

/// The pulse widths the oracle samples (the paper's §4.1 values).
const TEXTENTS: [f64; 3] = [0.050, 0.075, 0.100];

/// Generates the randomized scenario list for `cfg` — deterministic in
/// `cfg.master_seed`. Every spec runs with the invariant checkers on.
pub fn oracle_specs(cfg: &OracleConfig) -> Vec<ExperimentSpec> {
    let mut rng = SmallRng::seed_from_u64(cfg.master_seed);
    (0..cfg.scenarios)
        .map(|i| {
            let n_flows = rng.random_range(3usize..=8);
            let t_extent = TEXTENTS[rng.random_range(0usize..TEXTENTS.len())];
            let r_attack = rng.random_range(25.0f64..=40.0) * 1e6;
            // 25 Mbps pulses into the 15 Mbps ns-2 bottleneck keep every
            // gamma below C_attack, so no draw is pulse-infeasible.
            let gamma = rng.random_range(0.10f64..=0.90);
            ExperimentSpec::attacked(
                format!(
                    "oracle/{i:03}/f{n_flows}/te{}ms/g{gamma:.3}",
                    (t_extent * 1000.0).round() as u64
                ),
                ScenarioSpec::ns2_dumbbell(n_flows),
                AttackPoint {
                    t_extent,
                    r_attack,
                    gamma,
                },
            )
            .warmup(cfg.warmup)
            .window(cfg.window)
            .checked()
        })
        .collect()
}

/// The verdict [`check_point`] renders on one measured gain point.
#[derive(Debug, Clone, Default)]
pub struct PointVerdict {
    /// Hard failures: identity breaches, out-of-range measured gain, and
    /// right-side band-ceiling breaches, formatted exactly as the oracle
    /// report lists them.
    pub failures: Vec<String>,
    /// `Some(|G_sim − G_analytic|)` when the point sits right of the gain
    /// maximum (γ ≥ [`ToleranceBands::gamma_right`]); `None` otherwise or
    /// when a hard failure pre-empted the band check.
    pub right_err: Option<f64>,
    /// Whether `right_err` falls inside the effective right-side band
    /// (always `false` when `right_err` is `None`).
    pub within: bool,
}

/// Renders the differential-oracle verdict on one measured point: the
/// identity checks (recorded analytic values vs an independent
/// recomputation through `pdos-analysis`), the measured-gain range check,
/// and the right-side tolerance band. This is the exact per-point logic
/// [`run_oracle`] applies, factored out so other harnesses (the fuzz
/// campaign) can hold arbitrary generated scenarios to the same bands.
pub fn check_point(
    id: &str,
    scenario: &ScenarioSpec,
    attack: AttackPoint,
    point: &GainPoint,
    bands: &ToleranceBands,
) -> PointVerdict {
    let mut v = PointVerdict::default();

    // Identity: the analytic values in the record must equal an
    // independent recomputation through pdos-analysis.
    let c = match c_psi(&scenario.victims(), attack.t_extent, attack.r_attack) {
        Ok(c) => c,
        Err(e) => {
            v.failures
                .push(format!("{id}: model rejected parameters: {e}"));
            return v;
        }
    };
    let g_expected = attack_gain(attack.gamma, c, RiskPreference::NEUTRAL);
    let d_expected = degradation(attack.gamma, c);
    if (point.g_analytic - g_expected).abs() > 1e-9 {
        v.failures.push(format!(
            "{id}: analytic-gain identity broken: recorded {} recomputed {}",
            point.g_analytic, g_expected
        ));
    }
    if (point.degradation_analytic - d_expected).abs() > 1e-9 {
        v.failures.push(format!(
            "{id}: analytic-degradation identity broken: recorded {} recomputed {}",
            point.degradation_analytic, d_expected
        ));
    }
    if !point.g_sim.is_finite() || !(0.0..=1.0 + 1e-9).contains(&point.g_sim) {
        v.failures
            .push(format!("{id}: measured gain out of range: {}", point.g_sim));
        return v;
    }

    // Band: the right side of the maximum must track the curve. Eq. 5
    // models AIMD(a, b) senders only, so the band is *enforced* for
    // `aimd` and recorded-but-reported for every other congestion
    // control — how far CUBIC/BBR/DCTCP drift from the AIMD curve is a
    // result, not a bug.
    if attack.gamma >= bands.gamma_right {
        let err = (point.g_sim - point.g_analytic).abs();
        v.right_err = Some(err);
        v.within = err <= bands.effective_right_band();
        let enforced = scenario.tcp.cc == pdos_tcp::cc::CcSpec::Aimd;
        if enforced && err > bands.hard_abs_err {
            v.failures.push(format!(
                "{id}: right-side error {err:.4} exceeds the hard ceiling {:.4}",
                bands.hard_abs_err
            ));
        }
    }
    v
}

/// Runs the differential oracle.
pub fn run_oracle(cfg: &OracleConfig) -> OracleOutcome {
    let specs = oracle_specs(cfg);
    let report = SweepRunner::new(cfg.master_seed).jobs(cfg.jobs).run(&specs);

    let mut out = OracleOutcome {
        n_runs: specs.len(),
        n_points: 0,
        n_right: 0,
        n_within: 0,
        max_abs_err_right: 0.0,
        mean_abs_err_right: 0.0,
        bands: cfg.bands,
        failures: Vec::new(),
    };
    let mut err_sum = 0.0;

    for (spec, record) in specs.iter().zip(&report.records) {
        let attack = spec.attack.expect("oracle specs are attacked");
        let point = match &record.outcome {
            RunOutcome::Point { point, .. } => point,
            RunOutcome::Benign { .. } => unreachable!("oracle runs no benign specs"),
            RunOutcome::Infeasible { reason } => {
                out.failures
                    .push(format!("{}: unexpectedly infeasible: {reason}", spec.id));
                continue;
            }
            RunOutcome::Failed { reason } => {
                out.failures.push(format!("{}: {reason}", spec.id));
                continue;
            }
        };
        out.n_points += 1;

        let verdict = check_point(&spec.id, &spec.scenario, attack, point, &cfg.bands);
        out.failures.extend(verdict.failures);
        if let Some(err) = verdict.right_err {
            out.n_right += 1;
            err_sum += err;
            out.max_abs_err_right = out.max_abs_err_right.max(err);
            if verdict.within {
                out.n_within += 1;
            }
        }
    }
    if out.n_right > 0 {
        out.mean_abs_err_right = err_sum / out.n_right as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_generation_is_deterministic_and_checked() {
        let cfg = OracleConfig {
            scenarios: 10,
            ..OracleConfig::default()
        };
        let a = oracle_specs(&cfg);
        let b = oracle_specs(&cfg);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.stable_hash(), y.stable_hash());
            assert!(x.checks, "oracle runs must audit invariants");
        }
        // Ids (and thus derived seeds) are all distinct.
        let mut ids: Vec<&str> = a.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn different_master_seeds_draw_different_scenarios() {
        let a = oracle_specs(&OracleConfig {
            scenarios: 5,
            master_seed: 1,
            ..OracleConfig::default()
        });
        let b = oracle_specs(&OracleConfig {
            scenarios: 5,
            master_seed: 2,
            ..OracleConfig::default()
        });
        assert!(a.iter().zip(&b).any(|(x, y)| x.id != y.id));
    }

    #[test]
    fn outcome_pass_logic() {
        let mut o = OracleOutcome {
            n_runs: 4,
            n_points: 4,
            n_right: 2,
            n_within: 2,
            max_abs_err_right: 0.01,
            mean_abs_err_right: 0.005,
            bands: ToleranceBands::ci_default(),
            failures: Vec::new(),
        };
        assert!(o.pass());
        assert!(o.summary().contains("PASS"));
        o.failures.push("boom".into());
        assert!(!o.pass());
        assert!(o.summary().contains("FAIL"));
    }

    #[test]
    fn small_right_side_samples_waive_the_fraction_band() {
        let bands = ToleranceBands::ci_default();
        // 3 right-side points, 2 in band: 66% < 80%, but demanding
        // ceil(0.8 * 3) = 3 would turn "most" into "all" — waived.
        let small = OracleOutcome {
            n_runs: 12,
            n_points: 12,
            n_right: bands.min_right_sample - 1,
            n_within: 0,
            max_abs_err_right: 0.15,
            mean_abs_err_right: 0.08,
            bands,
            failures: Vec::new(),
        };
        assert_eq!(small.needed_within(), 0);
        assert!(small.pass(), "hard-ceiling-clean small samples pass");
        // At the minimum sample the fraction bites again.
        let full = OracleOutcome {
            n_right: bands.min_right_sample,
            n_within: bands.min_right_sample - 3,
            ..small.clone()
        };
        assert!(full.needed_within() > full.n_within);
        assert!(!full.pass());
    }
}
