//! Sharded-vs-unsharded equivalence battery.
//!
//! The sharded engine ([`pdos_sim::shard`]) claims *exact* behavioural
//! equivalence with sequential execution: cutting the node graph into
//! shards that advance in conservative-lookahead rounds must reproduce
//! the global event order — and therefore every packet, every trace bin,
//! every digest — bit for bit, regardless of worker count. This module
//! holds that contract against a seeded sweep of randomized topologies:
//! each scenario runs unsharded (the baseline), sharded cold, and
//! sharded from a warm-start checkpoint fork, and all three traces must
//! fingerprint identically.
//!
//! The battery complements the golden locks in the conformance suite
//! (which pin the four canonical scenarios to committed literals at
//! `--shards 1, 2, 4`): here the topologies vary — flow counts, queue
//! disciplines, mice and flash-crowd ambient traffic, attacked and
//! benign — so a partitioning bug that only bites a shape the canonical
//! set misses still turns the suite red.
//!
//! Like the oracle and the detector-equivalence battery, a run is a pure
//! function of its [`ShardBatteryConfig`] — failures reproduce exactly.

use crate::golden::{digest_bins, TraceDigest};
use pdos_scenarios::runner::{AttackPoint, ExperimentSpec, RunOutcome, SeedPolicy, SweepRunner};
use pdos_scenarios::spec::{BottleneckQueue, ScenarioSpec};
use pdos_sim::time::SimDuration;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Configuration of one shard-equivalence battery run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBatteryConfig {
    /// Randomized scenarios to draw.
    pub random_scenarios: usize,
    /// Seed for scenario generation *and* the runner's per-run seeds.
    pub master_seed: u64,
    /// Requested shard count for the sharded legs.
    pub shards: usize,
    /// Worker threads (0 = one per CPU).
    pub jobs: usize,
}

impl Default for ShardBatteryConfig {
    /// CI defaults: 50 randomized topologies on seed 23, two shards.
    fn default() -> ShardBatteryConfig {
        ShardBatteryConfig {
            random_scenarios: 50,
            master_seed: 23,
            shards: 2,
            jobs: 0,
        }
    }
}

/// The pulse widths the battery samples (the paper's §4.1 values).
const TEXTENTS: [f64; 3] = [0.050, 0.075, 0.100];

/// The trace bin width every battery run records at.
const BIN: SimDuration = SimDuration::from_millis(100);

/// The *unsharded* scenario list for `cfg`: `cfg.random_scenarios`
/// randomized dumbbell topologies — flow count, bottleneck discipline,
/// mice and flash-crowd side traffic, attacked or benign — deterministic
/// in `cfg.master_seed`. Every spec records a 100 ms trace and runs with
/// the invariant checkers on. [`run_shard_battery`] derives the sharded
/// legs from this list with [`ExperimentSpec::sharded`], so both sides
/// of every comparison share one spec (same id, same derived seed).
pub fn shard_battery_specs(cfg: &ShardBatteryConfig) -> Vec<ExperimentSpec> {
    let mut rng = SmallRng::seed_from_u64(cfg.master_seed);
    (0..cfg.random_scenarios)
        .map(|i| {
            let n_flows = rng.random_range(2usize..=6);
            let mut scenario = ScenarioSpec::ns2_dumbbell(n_flows);
            scenario.queue = match rng.random_range(0u32..3) {
                0 => BottleneckQueue::Red,
                1 => BottleneckQueue::DropTail,
                _ => BottleneckQueue::AccRed,
            };
            scenario.mice_flows = rng.random_range(0usize..=2);
            // A quarter of the battery carries a flash crowd arriving at
            // the warm-up boundary — ambient senders that cross shard
            // cuts exactly when the measurement window opens.
            if rng.random_bool(0.25) {
                scenario.crowd_flows = rng.random_range(2usize..=4);
                scenario.crowd_at = SimDuration::from_secs(2);
            }
            let queue_tag = match scenario.queue {
                BottleneckQueue::Red => "red",
                BottleneckQueue::DropTail => "dt",
                BottleneckQueue::AccRed => "acc",
            };
            let id = format!(
                "shard/{i:03}/f{n_flows}/{queue_tag}/m{}/c{}",
                scenario.mice_flows, scenario.crowd_flows
            );
            let spec = if rng.random_bool(0.75) {
                let t_extent = TEXTENTS[rng.random_range(0usize..TEXTENTS.len())];
                let r_attack = rng.random_range(25.0f64..=40.0) * 1e6;
                let gamma = rng.random_range(0.10f64..=0.90);
                ExperimentSpec::attacked(
                    id,
                    scenario,
                    AttackPoint {
                        t_extent,
                        r_attack,
                        gamma,
                    },
                )
            } else {
                ExperimentSpec::benign(id, scenario)
            };
            spec.warmup(SimDuration::from_secs(2))
                .window(SimDuration::from_secs(3))
                .traced(BIN)
                .checked()
        })
        .collect()
}

/// What one battery run found.
#[derive(Debug, Clone, Default)]
pub struct ShardBatteryOutcome {
    /// Scenarios drawn.
    pub n_runs: usize,
    /// Requested shard count of the sharded legs.
    pub shards: usize,
    /// Traces compared against the unsharded baseline (cold + warm legs).
    pub n_compared: usize,
    /// Digest mismatches and failed runs, one message each.
    pub failures: Vec<String>,
}

impl ShardBatteryOutcome {
    /// Whether every sharded trace matched its unsharded baseline.
    pub fn pass(&self) -> bool {
        self.failures.is_empty() && self.n_compared == 2 * self.n_runs
    }

    /// A human-readable report of the battery.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "shard battery: {} topologies, shards={}, {} sharded traces \
             compared against the unsharded baseline",
            self.n_runs, self.shards, self.n_compared
        );
        if self.failures.is_empty() {
            let _ = writeln!(s, "  no mismatches");
        } else {
            let _ = writeln!(s, "  {} failure(s):", self.failures.len());
            for f in &self.failures {
                let _ = writeln!(s, "    {f}");
            }
        }
        let _ = writeln!(
            s,
            "  verdict: {}",
            if self.pass() { "PASS" } else { "FAIL" }
        );
        s
    }
}

/// Runs `specs` and fingerprints each recorded trace; failed runs land in
/// `failures` tagged with `leg`.
fn digests_of(
    specs: &[ExperimentSpec],
    master_seed: u64,
    jobs: usize,
    warm_start: bool,
    leg: &str,
    failures: &mut Vec<String>,
) -> Vec<Option<TraceDigest>> {
    let report = SweepRunner::new(master_seed)
        .seed_policy(SeedPolicy::FromScenario)
        .jobs(jobs)
        .warm_start(warm_start)
        .run(specs);
    report
        .records
        .iter()
        .map(|r| match &r.outcome {
            RunOutcome::Point { trace, .. } | RunOutcome::Benign { trace, .. } => {
                Some(TraceDigest {
                    name: r.id.clone(),
                    n_bins: trace.len(),
                    total_bytes: trace.iter().sum(),
                    digest: digest_bins(trace),
                })
            }
            RunOutcome::Infeasible { reason } | RunOutcome::Failed { reason } => {
                failures.push(format!("{} [{leg}]: {reason}", r.id));
                None
            }
        })
        .collect()
}

/// Runs the battery: every drawn topology executes three ways — unsharded
/// cold (the baseline), sharded cold, and sharded warm-started from a
/// forked checkpoint — and each sharded trace must fingerprint identically
/// to the baseline: same bin count, same byte total, same digest.
pub fn run_shard_battery(cfg: &ShardBatteryConfig) -> ShardBatteryOutcome {
    let specs = shard_battery_specs(cfg);
    let sharded_specs: Vec<ExperimentSpec> = specs
        .iter()
        .map(|s| s.clone().sharded(cfg.shards))
        .collect();
    let mut out = ShardBatteryOutcome {
        n_runs: specs.len(),
        shards: cfg.shards,
        ..ShardBatteryOutcome::default()
    };
    let baseline = digests_of(
        &specs,
        cfg.master_seed,
        cfg.jobs,
        false,
        "baseline",
        &mut out.failures,
    );
    for (leg, warm_start) in [("cold", false), ("warm-start", true)] {
        let sharded = digests_of(
            &sharded_specs,
            cfg.master_seed,
            cfg.jobs,
            warm_start,
            leg,
            &mut out.failures,
        );
        for (base, shard) in baseline.iter().zip(&sharded) {
            let (Some(base), Some(shard)) = (base, shard) else {
                continue; // the failed run is already reported
            };
            out.n_compared += 1;
            if base != shard {
                out.failures.push(format!(
                    "{} [{leg}]: sharded trace diverged from the unsharded \
                     baseline: baseline bins={} total={} digest={:016x}, \
                     shards={} bins={} total={} digest={:016x}",
                    base.name,
                    base.n_bins,
                    base.total_bytes,
                    base.digest,
                    cfg.shards,
                    shard.n_bins,
                    shard.total_bytes,
                    shard.digest
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_generation_is_deterministic_and_diverse() {
        let cfg = ShardBatteryConfig::default();
        let a = shard_battery_specs(&cfg);
        let b = shard_battery_specs(&cfg);
        assert_eq!(a.len(), 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.stable_hash(), y.stable_hash());
            assert!(
                x.trace_bin.is_some(),
                "{}: battery runs record traces",
                x.id
            );
            assert!(x.checks, "{}: battery runs are checked", x.id);
            assert_eq!(x.shards, 1, "{}: the base list is unsharded", x.id);
        }
        // Distinct ids -> distinct derived seeds.
        let mut ids: Vec<&str> = a.iter().map(|s| s.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50);
        // The draw really covers the shapes it advertises.
        assert!(a.iter().any(|s| s.attack.is_some()));
        assert!(a.iter().any(|s| s.attack.is_none()));
        assert!(a
            .iter()
            .any(|s| s.scenario.queue == BottleneckQueue::DropTail));
        assert!(a.iter().any(|s| s.scenario.queue == BottleneckQueue::Red));
        assert!(a.iter().any(|s| s.scenario.mice_flows > 0));
        assert!(a.iter().any(|s| s.scenario.crowd_flows > 0));
    }

    #[test]
    fn different_master_seeds_draw_different_topologies() {
        let a = shard_battery_specs(&ShardBatteryConfig {
            random_scenarios: 5,
            master_seed: 1,
            ..ShardBatteryConfig::default()
        });
        let b = shard_battery_specs(&ShardBatteryConfig {
            random_scenarios: 5,
            master_seed: 2,
            ..ShardBatteryConfig::default()
        });
        assert!(a.iter().zip(&b).any(|(x, y)| x.id != y.id));
    }

    #[test]
    fn outcome_pass_logic() {
        let mut o = ShardBatteryOutcome {
            n_runs: 3,
            shards: 2,
            n_compared: 6,
            failures: Vec::new(),
        };
        assert!(o.pass());
        assert!(o.summary().contains("PASS"));
        o.failures.push("boom".into());
        assert!(!o.pass());
        assert!(o.summary().contains("FAIL"));
        let short = ShardBatteryOutcome {
            n_runs: 3,
            shards: 2,
            n_compared: 5,
            failures: Vec::new(),
        };
        assert!(!short.pass(), "an uncompared sharded leg is a failure");
    }

    #[test]
    fn a_small_battery_passes_both_legs() {
        let outcome = run_shard_battery(&ShardBatteryConfig {
            random_scenarios: 3,
            master_seed: 5,
            shards: 2,
            jobs: 2,
        });
        assert_eq!(outcome.n_runs, 3);
        assert_eq!(outcome.n_compared, 6, "{}", outcome.summary());
        assert!(outcome.pass(), "{}", outcome.summary());
    }
}
