//! The conformance suite: golden traces, the differential oracle, the
//! seeded-fault drill, and a checked figure smoke sweep.
//!
//! `PDOS_BLESS=1 cargo test -p pdos-conformance` regenerates the golden
//! digests (equivalently: `pdos check --bless`).

use pdos_conformance::{
    compute_cc_digests, compute_cc_digests_with, compute_digests, compute_digests_metered,
    compute_digests_metered_with, compute_digests_sharded, compute_digests_sharded_full,
    compute_digests_tapped, golden, run_equivalence, run_oracle, run_shard_battery,
    EquivalenceConfig, OracleConfig, ShardBatteryConfig, GOLDEN_FILE,
};
use pdos_scenarios::experiment::GainExperiment;
use pdos_scenarios::figures::{gain_figure_specs, FigureGrid, GainFigure};
use pdos_scenarios::runner::{RunOutcome, SeedPolicy, SweepRunner};
use pdos_scenarios::spec::ScenarioSpec;
use pdos_sim::check::ViolationKind;
use pdos_sim::link::LinkId;
use pdos_sim::time::{SimDuration, SimTime};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(GOLDEN_FILE)
}

#[test]
fn golden_traces_match_the_stored_digests() {
    let current = compute_digests(2).expect("canonical runs must succeed");
    let path = golden_path();
    if std::env::var_os("PDOS_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, golden::format_digests(&current)).expect("write golden file");
        return;
    }
    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}; bless with PDOS_BLESS=1",
            path.display()
        )
    });
    let stored = golden::parse_digests(&stored).expect("golden file parses");
    let problems = golden::compare(&current, &stored);
    assert!(
        problems.is_empty(),
        "golden trace drift (intentional? bless with PDOS_BLESS=1):\n{}",
        problems.join("\n")
    );
}

/// Equivalence lock for the two-tier event queue + packet arena.
///
/// The hot-path rewrite (timer wheel over an indexed heap, `Deliver`
/// events carrying arena handles, real timer cancellation) claims
/// *exact* behavioural equivalence with the plain-heap engine. This test
/// pins all four canonical digests to the literal values the pre-rewrite
/// engine produced — unlike [`golden_traces_match_the_stored_digests`]
/// it ignores `PDOS_BLESS`, so the optimization cannot be "fixed" by
/// re-blessing: if one of these moves, the queue or arena broke ordering.
#[test]
fn event_queue_rewrite_is_digest_equivalent_no_rebless() {
    let expected: &[(&str, usize, u64, u64)] = &[
        ("golden/ns2-benign", 80, 13_238_160, 0xf3c7_3471_d0fa_6ff6),
        (
            "golden/ns2-red-attacked",
            80,
            7_114_880,
            0x46fa_6743_5da4_c0cd,
        ),
        (
            "golden/ns2-droptail-attacked",
            80,
            7_182_480,
            0x5ec8_7067_5582_2f4d,
        ),
        (
            "golden/testbed-attacked",
            80,
            7_127_000,
            0x8bb8_1cfe_ba7b_bae8,
        ),
    ];
    let current = compute_digests(2).expect("canonical runs must succeed");
    assert_eq!(current.len(), expected.len());
    for (got, &(name, n_bins, total, digest)) in current.iter().zip(expected) {
        assert_eq!(got.name, name);
        assert_eq!(got.n_bins, n_bins, "{name}: bin count moved");
        assert_eq!(got.total_bytes, total, "{name}: traffic total moved");
        assert_eq!(
            got.digest, digest,
            "{name}: trace digest moved — the event-queue/arena rewrite \
             is no longer behaviourally equivalent (re-blessing is not an \
             acceptable fix for this test)"
        );
    }
}

/// Determinism lock for the observability layer.
///
/// Metrics are contractually read-only: enabling the registry must not
/// move a single byte of any canonical trace. Like the event-queue lock
/// above, this pins the literal pre-metrics digests and ignores
/// `PDOS_BLESS` — an instrumentation hook that perturbs packet timing
/// cannot be "fixed" by re-blessing.
#[test]
fn metrics_enabled_runs_keep_all_golden_digests_no_rebless() {
    let expected: &[(&str, usize, u64, u64)] = &[
        ("golden/ns2-benign", 80, 13_238_160, 0xf3c7_3471_d0fa_6ff6),
        (
            "golden/ns2-red-attacked",
            80,
            7_114_880,
            0x46fa_6743_5da4_c0cd,
        ),
        (
            "golden/ns2-droptail-attacked",
            80,
            7_182_480,
            0x5ec8_7067_5582_2f4d,
        ),
        (
            "golden/testbed-attacked",
            80,
            7_127_000,
            0x8bb8_1cfe_ba7b_bae8,
        ),
    ];
    let (current, snapshot) = compute_digests_metered(2).expect("canonical runs must succeed");
    assert_eq!(current.len(), expected.len());
    for (got, &(name, n_bins, total, digest)) in current.iter().zip(expected) {
        assert_eq!(got.name, name);
        assert_eq!(got.n_bins, n_bins, "{name}: bin count moved");
        assert_eq!(got.total_bytes, total, "{name}: traffic total moved");
        assert_eq!(
            got.digest, digest,
            "{name}: trace digest moved with metrics enabled — an \
             instrumentation hook is perturbing the simulation \
             (re-blessing is not an acceptable fix for this test)"
        );
    }
    // The runs really were observed, not silently unmetered.
    assert!(snapshot.counter("engine", "pops_packet_tier").unwrap() > 0);
    assert!(snapshot.counter("link/0", "enqueued").unwrap() > 0);
}

/// Determinism lock for the detection layer's engine tap.
///
/// The per-link detector tap is contractually read-only: enabling it
/// must not move a single byte of any canonical trace. Like the other
/// locks, this pins the literal pre-tap digests and ignores
/// `PDOS_BLESS` — a tap hook that perturbs packet timing cannot be
/// "fixed" by re-blessing.
#[test]
fn tap_enabled_runs_keep_all_golden_digests_no_rebless() {
    let expected: &[(&str, usize, u64, u64)] = &[
        ("golden/ns2-benign", 80, 13_238_160, 0xf3c7_3471_d0fa_6ff6),
        (
            "golden/ns2-red-attacked",
            80,
            7_114_880,
            0x46fa_6743_5da4_c0cd,
        ),
        (
            "golden/ns2-droptail-attacked",
            80,
            7_182_480,
            0x5ec8_7067_5582_2f4d,
        ),
        (
            "golden/testbed-attacked",
            80,
            7_127_000,
            0x8bb8_1cfe_ba7b_bae8,
        ),
    ];
    let current = compute_digests_tapped(2).expect("canonical runs must succeed");
    assert_eq!(current.len(), expected.len());
    for (got, &(name, n_bins, total, digest)) in current.iter().zip(expected) {
        assert_eq!(got.name, name);
        assert_eq!(got.n_bins, n_bins, "{name}: bin count moved");
        assert_eq!(got.total_bytes, total, "{name}: traffic total moved");
        assert_eq!(
            got.digest, digest,
            "{name}: trace digest moved with the detector tap enabled — \
             the tap hook is perturbing the simulation (re-blessing is \
             not an acceptable fix for this test)"
        );
    }
}

/// Batch-vs-streaming detector equivalence over the canonical golden
/// scenarios plus fifty seeded-random ones: every recorded trace must
/// score bit-for-bit identically — verdict, alarm bin, onset, peak
/// statistic — whether handed to the batch detectors whole or pushed
/// through the streaming detectors bin by bin.
#[test]
fn streaming_detectors_match_batch_over_the_equivalence_battery() {
    let outcome = run_equivalence(&EquivalenceConfig::default());
    assert_eq!(outcome.n_runs, 54);
    assert!(outcome.pass(), "{}", outcome.summary());
}

/// Determinism lock for the sharded engine — the tentpole contract.
///
/// Conservative-lookahead sharding claims *exact* behavioural
/// equivalence with sequential execution: `--shards N` must reproduce
/// `--shards 1` digest for digest. This pins the sharded canonical runs
/// to the same literal values every other lock uses and ignores
/// `PDOS_BLESS` — a shard cut that reorders even one cross-shard
/// delivery cannot be "fixed" by re-blessing. It also cross-checks
/// against the committed golden file, so the sharded legs and the
/// stored digests can never drift apart silently.
#[test]
fn sharded_runs_keep_all_golden_digests_no_rebless() {
    let expected: &[(&str, usize, u64, u64)] = &[
        ("golden/ns2-benign", 80, 13_238_160, 0xf3c7_3471_d0fa_6ff6),
        (
            "golden/ns2-red-attacked",
            80,
            7_114_880,
            0x46fa_6743_5da4_c0cd,
        ),
        (
            "golden/ns2-droptail-attacked",
            80,
            7_182_480,
            0x5ec8_7067_5582_2f4d,
        ),
        (
            "golden/testbed-attacked",
            80,
            7_127_000,
            0x8bb8_1cfe_ba7b_bae8,
        ),
    ];
    let stored = std::fs::read_to_string(golden_path()).expect("golden file readable");
    let stored = golden::parse_digests(&stored).expect("golden file parses");
    for shards in [2usize, 4] {
        let current =
            compute_digests_sharded(2, shards).expect("sharded canonical runs must succeed");
        assert_eq!(current.len(), expected.len());
        for (got, &(name, n_bins, total, digest)) in current.iter().zip(expected) {
            assert_eq!(got.name, name);
            assert_eq!(
                got.n_bins, n_bins,
                "{name}: bin count moved at --shards {shards}"
            );
            assert_eq!(
                got.total_bytes, total,
                "{name}: traffic total moved at --shards {shards}"
            );
            assert_eq!(
                got.digest, digest,
                "{name}: trace digest moved at --shards {shards} — the \
                 sharded engine is no longer behaviourally equivalent to \
                 sequential execution (re-blessing is not an acceptable \
                 fix for this test)"
            );
        }
        let problems = golden::compare(&current, &stored);
        assert!(
            problems.is_empty(),
            "--shards {shards} drifted from the committed golden file:\n{}",
            problems.join("\n")
        );
    }
}

/// The strictest sharded leg: checkers, metrics registry and detector
/// tap all enabled at once on a sharded engine, warm-started from forked
/// checkpoints — and still every canonical digest must sit on the same
/// literals. Observability and checkpointing are shard-aware but
/// contractually read-only; `PDOS_BLESS` is ignored.
#[test]
fn sharded_instrumented_runs_keep_all_golden_digests_no_rebless() {
    let expected: &[(&str, u64)] = &[
        ("golden/ns2-benign", 0xf3c7_3471_d0fa_6ff6),
        ("golden/ns2-red-attacked", 0x46fa_6743_5da4_c0cd),
        ("golden/ns2-droptail-attacked", 0x5ec8_7067_5582_2f4d),
        ("golden/testbed-attacked", 0x8bb8_1cfe_ba7b_bae8),
    ];
    for shards in [2usize, 4] {
        let (current, snapshot) = compute_digests_sharded_full(2, shards, true)
            .expect("instrumented sharded canonical runs must succeed");
        assert_eq!(current.len(), expected.len());
        for (got, &(name, digest)) in current.iter().zip(expected) {
            assert_eq!(got.name, name);
            assert_eq!(
                got.digest, digest,
                "{name}: trace digest moved at --shards {shards} with \
                 checks+metrics+tap enabled — an observer or the \
                 checkpoint path is perturbing the sharded simulation \
                 (re-blessing is not an acceptable fix for this test)"
            );
        }
        // The runs really were observed, not silently unmetered.
        assert!(snapshot.counter("engine", "pops_packet_tier").unwrap() > 0);
        assert!(snapshot.counter("link/0", "enqueued").unwrap() > 0);
    }
}

/// Sharded-vs-unsharded equivalence over fifty seeded-random topologies:
/// every drawn scenario — varying flow counts, queue disciplines, mice
/// and flash-crowd side traffic, attacked and benign — runs unsharded,
/// sharded cold and sharded warm-started, and every sharded trace must
/// fingerprint identically to its unsharded baseline.
#[test]
fn shard_battery_holds_over_fifty_randomized_topologies() {
    let outcome = run_shard_battery(&ShardBatteryConfig::default());
    assert_eq!(outcome.n_runs, 50);
    assert_eq!(outcome.n_compared, 100, "{}", outcome.summary());
    assert!(outcome.pass(), "{}", outcome.summary());
}

#[test]
fn golden_digests_are_stable_across_worker_counts() {
    let serial = compute_digests(1).expect("serial run");
    let parallel = compute_digests(4).expect("parallel run");
    assert_eq!(serial, parallel);
}

#[test]
fn oracle_holds_over_fifty_randomized_scenarios() {
    let outcome = run_oracle(&OracleConfig::default());
    assert_eq!(outcome.n_runs, 50);
    assert!(outcome.pass(), "{}", outcome.summary());
    assert!(
        outcome.n_right >= 10,
        "need a meaningful right-side sample: {}",
        outcome.summary()
    );
}

#[test]
fn seeded_clock_fault_is_flagged() {
    let mut bench = ScenarioSpec::ns2_dumbbell(3).build().expect("build");
    bench.sim.enable_checks();
    bench.run_until(SimTime::from_secs(5));
    assert!(
        bench.audit_violations().is_empty(),
        "healthy run must be clean"
    );
    // Drag the clock ahead of every pending event: each subsequent pop
    // now looks like time running backwards.
    bench.sim.corrupt_clock_for_test(SimTime::from_secs(60));
    bench.run_until(SimTime::from_secs(61));
    let violations = bench.audit_violations();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == ViolationKind::ClockRegression),
        "expected a clock-regression flag, got: {violations:?}"
    );
}

#[test]
fn seeded_link_accounting_fault_is_flagged() {
    let mut bench = ScenarioSpec::ns2_dumbbell(3).build().expect("build");
    bench.sim.enable_checks();
    bench.run_until(SimTime::from_secs(2));
    bench
        .sim
        .link_mut_for_test(LinkId::from_u32(0))
        .corrupt_accounting_for_test();
    bench.run_until(SimTime::from_secs(3));
    let violations = bench.audit_violations();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == ViolationKind::PacketConservation),
        "expected a packet-conservation flag, got: {violations:?}"
    );
}

/// Fork-equivalence lock for warm-start checkpointing.
///
/// Forking a checkpointed warm-up claims *exact* behavioural equivalence
/// with re-simulating it. This runs every canonical scenario both ways —
/// cold and forked, with checkers and metrics on — and requires identical
/// trace digests (every bin byte) and identical merged metrics snapshots
/// (every counter, gauge and histogram bucket). Like the other locks, a
/// drift here cannot be "fixed" by re-blessing: the checkpoint lost or
/// perturbed simulator state.
#[test]
fn forked_runs_match_cold_runs_digests_and_metrics() {
    let (cold_digests, cold_metrics) =
        compute_digests_metered_with(2, false).expect("cold canonical runs must succeed");
    let (warm_digests, warm_metrics) =
        compute_digests_metered_with(2, true).expect("forked canonical runs must succeed");
    assert_eq!(
        cold_digests, warm_digests,
        "forked runs drifted from cold runs — SimCheckpoint is incomplete"
    );
    assert_eq!(
        cold_metrics, warm_metrics,
        "forked metrics drifted from cold metrics — observer state was \
         not checkpointed faithfully"
    );
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(12))]

    /// Property: a checkpoint forks any number of times without being
    /// consumed or mutated — two forks measured with identical parameters
    /// produce identical gain points, trace bins and metrics snapshots.
    #[test]
    fn prop_double_fork_is_identical(gamma_pct in 25u32..65, flows in 2usize..5) {
        let exp = GainExperiment::new(ScenarioSpec::ns2_dumbbell(flows))
            .warmup(SimDuration::from_secs(2))
            .window(SimDuration::from_secs(2))
            .metrics(true);
        let warm = exp
            .warm_start(Some(SimDuration::from_millis(100)))
            .expect("warm start");
        let gamma = f64::from(gamma_pct) / 100.0;
        let a = exp
            .run_point_observed_forked(exp.fork_run(&warm), 0.075, 25e6, gamma, 1_000_000)
            .expect("first fork");
        let b = exp
            .run_point_observed_forked(exp.fork_run(&warm), 0.075, 25e6, gamma, 1_000_000)
            .expect("second fork");
        proptest::prop_assert_eq!(a, b);
    }
}

/// Seeded-fault drill for the checkpoint layer: a checkpoint that silently
/// drops one piece of simulator state (the bottleneck link's accounting)
/// must not produce a quietly-wrong forked run — the always-on invariant
/// checkers have to flag it.
#[test]
fn omitted_checkpoint_state_is_flagged_by_checkers() {
    let exp = GainExperiment::new(ScenarioSpec::ns2_dumbbell(3))
        .warmup(SimDuration::from_secs(2))
        .window(SimDuration::from_secs(2))
        .checks(true);
    // A healthy checkpoint forks cleanly.
    let warm = exp.warm_start(None).expect("warm start");
    exp.baseline_observed_from(&warm)
        .expect("healthy forked run must pass the checkers");
    // The same checkpoint minus one state field must be caught.
    let mut corrupted = exp.warm_start(None).expect("warm start");
    corrupted.omit_link_stats_for_test();
    let err = exp
        .baseline_observed_from(&corrupted)
        .expect_err("a checkpoint missing link state must fail the checkers");
    assert!(
        err.to_string().contains("violation"),
        "expected an invariant violation, got: {err}"
    );
}

/// Differential congestion-control battery.
///
/// The same fig06 canonical attack point runs once per registered
/// algorithm with the invariant checkers on. Every algorithm must hold
/// the engine's audits (a failed run aborts `compute_cc_digests`), the
/// four traces must be pairwise distinct (the state machines really are
/// different physics, not aliases of one another), and each digest is
/// pinned to a literal. `aimd` doubles as a registry-dispatch lock: it is
/// the same sender the legacy golden set exercises, so its digest moving
/// here — while the legacy set stays green — means dispatch, not TCP,
/// broke. This test ignores `PDOS_BLESS`; a CC behaviour change must be
/// reviewed against these literals, not re-blessed away.
#[test]
fn cc_differential_battery_pins_per_algorithm_digests_no_rebless() {
    let expected: &[(&str, u64)] = &[
        ("golden/cc-aimd", 0x9fc1_7dc8_0062_9d39),
        ("golden/cc-cubic", 0xe354_5875_c18c_4f59),
        ("golden/cc-bbr-lite", 0x2f71_d07b_377b_11b2),
        ("golden/cc-dctcp", 0xe266_586c_5873_30cf),
    ];
    let current = compute_cc_digests(2).expect("every algorithm must pass the checkers");
    let listing: String = current
        .iter()
        .map(|d| {
            format!(
                "(\"{}\", {}, {}, {:#018x})\n",
                d.name, d.n_bins, d.total_bytes, d.digest
            )
        })
        .collect();
    assert_eq!(
        current.len(),
        expected.len(),
        "battery size moved:\n{listing}"
    );
    for (got, &(name, digest)) in current.iter().zip(expected) {
        assert_eq!(got.name, name);
        assert_eq!(
            got.digest, digest,
            "{name}: differential digest moved — a congestion-control \
             state machine changed behaviour (current battery:\n{listing})"
        );
    }
    // Pairwise distinct: no algorithm is silently falling back to another.
    for (i, a) in current.iter().enumerate() {
        for b in &current[i + 1..] {
            assert_ne!(
                a.digest, b.digest,
                "{} and {} produced identical traces — registry dispatch \
                 is aliasing algorithms",
                a.name, b.name
            );
        }
    }
}

/// Fork-equivalence matrix across congestion controls: checkpointing a
/// warm-up and forking it must be byte-identical to cold simulation for
/// *every* algorithm, not just the AIMD seed — CUBIC's epoch clock,
/// BBR-lite's bandwidth ring and DCTCP's alpha all live in cloned sender
/// state and must survive the checkpoint unperturbed.
#[test]
fn cc_forked_runs_match_cold_runs_for_every_algorithm() {
    let cold = compute_cc_digests_with(2, false).expect("cold CC runs must succeed");
    let warm = compute_cc_digests_with(2, true).expect("forked CC runs must succeed");
    assert_eq!(
        cold, warm,
        "forked CC runs drifted from cold runs — some congestion-control \
         state is not checkpointed faithfully"
    );
}

/// Seeded-fault drill for the CC layer: a planted CUBIC-style window bug
/// (cwnd gone non-finite, as a broken cubic epoch/cube-root computation
/// produces) must be caught by the TCP window audit at the end of a
/// checked run — it survives the sender's own clamp and a further second
/// of simulation, so it cannot silently skew a gain figure.
#[test]
fn seeded_cubic_window_fault_is_flagged() {
    use pdos_tcp::cc::CcSpec;
    let mut bench = ScenarioSpec::ns2_dumbbell(3)
        .with_cc(CcSpec::Cubic)
        .build()
        .expect("build");
    bench.sim.enable_checks();
    bench.run_until(SimTime::from_secs(2));
    assert!(
        bench.audit_violations().is_empty(),
        "healthy cubic run must be clean"
    );
    bench.corrupt_sender_cwnd_for_test(0, f64::NAN);
    bench.run_until(SimTime::from_secs(3));
    let violations = bench.audit_violations();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == ViolationKind::TcpWindow),
        "expected a TCP window flag, got: {violations:?}"
    );
}

#[test]
fn fig06_smoke_sweep_is_clean_under_checks() {
    let specs: Vec<_> = gain_figure_specs(GainFigure::Fig06, &FigureGrid::smoke())
        .into_iter()
        .map(|s| s.checked())
        .collect();
    let report = SweepRunner::new(0)
        .seed_policy(SeedPolicy::FromScenario)
        .jobs(2)
        .run(&specs);
    for r in &report.records {
        assert!(
            matches!(r.outcome, RunOutcome::Point { .. }),
            "{}: expected a clean point under checks, got {:?}",
            r.id,
            r.outcome
        );
    }
}
