//! The conformance suite: golden traces, the differential oracle, the
//! seeded-fault drill, and a checked figure smoke sweep.
//!
//! `PDOS_BLESS=1 cargo test -p pdos-conformance` regenerates the golden
//! digests (equivalently: `pdos check --bless`).

use pdos_conformance::{
    compute_digests, compute_digests_metered, compute_digests_metered_with, golden, run_oracle,
    OracleConfig, GOLDEN_FILE,
};
use pdos_scenarios::experiment::GainExperiment;
use pdos_scenarios::figures::{gain_figure_specs, FigureGrid, GainFigure};
use pdos_scenarios::runner::{RunOutcome, SeedPolicy, SweepRunner};
use pdos_scenarios::spec::ScenarioSpec;
use pdos_sim::check::ViolationKind;
use pdos_sim::link::LinkId;
use pdos_sim::time::{SimDuration, SimTime};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(GOLDEN_FILE)
}

#[test]
fn golden_traces_match_the_stored_digests() {
    let current = compute_digests(2).expect("canonical runs must succeed");
    let path = golden_path();
    if std::env::var_os("PDOS_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, golden::format_digests(&current)).expect("write golden file");
        return;
    }
    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}; bless with PDOS_BLESS=1",
            path.display()
        )
    });
    let stored = golden::parse_digests(&stored).expect("golden file parses");
    let problems = golden::compare(&current, &stored);
    assert!(
        problems.is_empty(),
        "golden trace drift (intentional? bless with PDOS_BLESS=1):\n{}",
        problems.join("\n")
    );
}

/// Equivalence lock for the two-tier event queue + packet arena.
///
/// The hot-path rewrite (timer wheel over an indexed heap, `Deliver`
/// events carrying arena handles, real timer cancellation) claims
/// *exact* behavioural equivalence with the plain-heap engine. This test
/// pins all four canonical digests to the literal values the pre-rewrite
/// engine produced — unlike [`golden_traces_match_the_stored_digests`]
/// it ignores `PDOS_BLESS`, so the optimization cannot be "fixed" by
/// re-blessing: if one of these moves, the queue or arena broke ordering.
#[test]
fn event_queue_rewrite_is_digest_equivalent_no_rebless() {
    let expected: &[(&str, usize, u64, u64)] = &[
        ("golden/ns2-benign", 80, 13_238_160, 0xf3c7_3471_d0fa_6ff6),
        (
            "golden/ns2-red-attacked",
            80,
            7_114_880,
            0x46fa_6743_5da4_c0cd,
        ),
        (
            "golden/ns2-droptail-attacked",
            80,
            7_182_480,
            0x5ec8_7067_5582_2f4d,
        ),
        (
            "golden/testbed-attacked",
            80,
            7_127_000,
            0x8bb8_1cfe_ba7b_bae8,
        ),
    ];
    let current = compute_digests(2).expect("canonical runs must succeed");
    assert_eq!(current.len(), expected.len());
    for (got, &(name, n_bins, total, digest)) in current.iter().zip(expected) {
        assert_eq!(got.name, name);
        assert_eq!(got.n_bins, n_bins, "{name}: bin count moved");
        assert_eq!(got.total_bytes, total, "{name}: traffic total moved");
        assert_eq!(
            got.digest, digest,
            "{name}: trace digest moved — the event-queue/arena rewrite \
             is no longer behaviourally equivalent (re-blessing is not an \
             acceptable fix for this test)"
        );
    }
}

/// Determinism lock for the observability layer.
///
/// Metrics are contractually read-only: enabling the registry must not
/// move a single byte of any canonical trace. Like the event-queue lock
/// above, this pins the literal pre-metrics digests and ignores
/// `PDOS_BLESS` — an instrumentation hook that perturbs packet timing
/// cannot be "fixed" by re-blessing.
#[test]
fn metrics_enabled_runs_keep_all_golden_digests_no_rebless() {
    let expected: &[(&str, usize, u64, u64)] = &[
        ("golden/ns2-benign", 80, 13_238_160, 0xf3c7_3471_d0fa_6ff6),
        (
            "golden/ns2-red-attacked",
            80,
            7_114_880,
            0x46fa_6743_5da4_c0cd,
        ),
        (
            "golden/ns2-droptail-attacked",
            80,
            7_182_480,
            0x5ec8_7067_5582_2f4d,
        ),
        (
            "golden/testbed-attacked",
            80,
            7_127_000,
            0x8bb8_1cfe_ba7b_bae8,
        ),
    ];
    let (current, snapshot) = compute_digests_metered(2).expect("canonical runs must succeed");
    assert_eq!(current.len(), expected.len());
    for (got, &(name, n_bins, total, digest)) in current.iter().zip(expected) {
        assert_eq!(got.name, name);
        assert_eq!(got.n_bins, n_bins, "{name}: bin count moved");
        assert_eq!(got.total_bytes, total, "{name}: traffic total moved");
        assert_eq!(
            got.digest, digest,
            "{name}: trace digest moved with metrics enabled — an \
             instrumentation hook is perturbing the simulation \
             (re-blessing is not an acceptable fix for this test)"
        );
    }
    // The runs really were observed, not silently unmetered.
    assert!(snapshot.counter("engine", "pops_packet_tier").unwrap() > 0);
    assert!(snapshot.counter("link/0", "enqueued").unwrap() > 0);
}

#[test]
fn golden_digests_are_stable_across_worker_counts() {
    let serial = compute_digests(1).expect("serial run");
    let parallel = compute_digests(4).expect("parallel run");
    assert_eq!(serial, parallel);
}

#[test]
fn oracle_holds_over_fifty_randomized_scenarios() {
    let outcome = run_oracle(&OracleConfig::default());
    assert_eq!(outcome.n_runs, 50);
    assert!(outcome.pass(), "{}", outcome.summary());
    assert!(
        outcome.n_right >= 10,
        "need a meaningful right-side sample: {}",
        outcome.summary()
    );
}

#[test]
fn seeded_clock_fault_is_flagged() {
    let mut bench = ScenarioSpec::ns2_dumbbell(3).build().expect("build");
    bench.sim.enable_checks();
    bench.run_until(SimTime::from_secs(5));
    assert!(
        bench.audit_violations().is_empty(),
        "healthy run must be clean"
    );
    // Drag the clock ahead of every pending event: each subsequent pop
    // now looks like time running backwards.
    bench.sim.corrupt_clock_for_test(SimTime::from_secs(60));
    bench.run_until(SimTime::from_secs(61));
    let violations = bench.audit_violations();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == ViolationKind::ClockRegression),
        "expected a clock-regression flag, got: {violations:?}"
    );
}

#[test]
fn seeded_link_accounting_fault_is_flagged() {
    let mut bench = ScenarioSpec::ns2_dumbbell(3).build().expect("build");
    bench.sim.enable_checks();
    bench.run_until(SimTime::from_secs(2));
    bench
        .sim
        .link_mut_for_test(LinkId::from_u32(0))
        .corrupt_accounting_for_test();
    bench.run_until(SimTime::from_secs(3));
    let violations = bench.audit_violations();
    assert!(
        violations
            .iter()
            .any(|v| v.kind == ViolationKind::PacketConservation),
        "expected a packet-conservation flag, got: {violations:?}"
    );
}

/// Fork-equivalence lock for warm-start checkpointing.
///
/// Forking a checkpointed warm-up claims *exact* behavioural equivalence
/// with re-simulating it. This runs every canonical scenario both ways —
/// cold and forked, with checkers and metrics on — and requires identical
/// trace digests (every bin byte) and identical merged metrics snapshots
/// (every counter, gauge and histogram bucket). Like the other locks, a
/// drift here cannot be "fixed" by re-blessing: the checkpoint lost or
/// perturbed simulator state.
#[test]
fn forked_runs_match_cold_runs_digests_and_metrics() {
    let (cold_digests, cold_metrics) =
        compute_digests_metered_with(2, false).expect("cold canonical runs must succeed");
    let (warm_digests, warm_metrics) =
        compute_digests_metered_with(2, true).expect("forked canonical runs must succeed");
    assert_eq!(
        cold_digests, warm_digests,
        "forked runs drifted from cold runs — SimCheckpoint is incomplete"
    );
    assert_eq!(
        cold_metrics, warm_metrics,
        "forked metrics drifted from cold metrics — observer state was \
         not checkpointed faithfully"
    );
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(12))]

    /// Property: a checkpoint forks any number of times without being
    /// consumed or mutated — two forks measured with identical parameters
    /// produce identical gain points, trace bins and metrics snapshots.
    #[test]
    fn prop_double_fork_is_identical(gamma_pct in 25u32..65, flows in 2usize..5) {
        let exp = GainExperiment::new(ScenarioSpec::ns2_dumbbell(flows))
            .warmup(SimDuration::from_secs(2))
            .window(SimDuration::from_secs(2))
            .metrics(true);
        let warm = exp
            .warm_start(Some(SimDuration::from_millis(100)))
            .expect("warm start");
        let gamma = f64::from(gamma_pct) / 100.0;
        let a = exp
            .run_point_observed_forked(exp.fork_run(&warm), 0.075, 25e6, gamma, 1_000_000)
            .expect("first fork");
        let b = exp
            .run_point_observed_forked(exp.fork_run(&warm), 0.075, 25e6, gamma, 1_000_000)
            .expect("second fork");
        proptest::prop_assert_eq!(a, b);
    }
}

/// Seeded-fault drill for the checkpoint layer: a checkpoint that silently
/// drops one piece of simulator state (the bottleneck link's accounting)
/// must not produce a quietly-wrong forked run — the always-on invariant
/// checkers have to flag it.
#[test]
fn omitted_checkpoint_state_is_flagged_by_checkers() {
    let exp = GainExperiment::new(ScenarioSpec::ns2_dumbbell(3))
        .warmup(SimDuration::from_secs(2))
        .window(SimDuration::from_secs(2))
        .checks(true);
    // A healthy checkpoint forks cleanly.
    let warm = exp.warm_start(None).expect("warm start");
    exp.baseline_observed_from(&warm)
        .expect("healthy forked run must pass the checkers");
    // The same checkpoint minus one state field must be caught.
    let mut corrupted = exp.warm_start(None).expect("warm start");
    corrupted.omit_link_stats_for_test();
    let err = exp
        .baseline_observed_from(&corrupted)
        .expect_err("a checkpoint missing link state must fail the checkers");
    assert!(
        err.to_string().contains("violation"),
        "expected an invariant violation, got: {err}"
    );
}

#[test]
fn fig06_smoke_sweep_is_clean_under_checks() {
    let specs: Vec<_> = gain_figure_specs(GainFigure::Fig06, &FigureGrid::smoke())
        .into_iter()
        .map(|s| s.checked())
        .collect();
    let report = SweepRunner::new(0)
        .seed_policy(SeedPolicy::FromScenario)
        .jobs(2)
        .run(&specs);
    for r in &report.records {
        assert!(
            matches!(r.outcome, RunOutcome::Point { .. }),
            "{}: expected a clean point under checks, got {:?}",
            r.id,
            r.outcome
        );
    }
}
