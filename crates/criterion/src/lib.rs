//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the API subset the workspace's micro-benchmarks use —
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`criterion_group!`], [`criterion_main!`] —
//! with plain wall-clock timing and median-of-samples reporting. No
//! statistics engine, no HTML reports, no external dependencies.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its median sample time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.samples.sort_unstable();
        let median = b
            .samples
            .get(b.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        println!(
            "bench {id:<40} median {:>12} /iter ({} samples)",
            format_ns(median),
            b.samples.len()
        );
        self
    }
}

fn format_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    warm_up: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly; each recorded sample is one call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
        }
        let start = Instant::now();
        while self.samples.len() < self.sample_size && start.elapsed() < self.budget {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
        if self.samples.is_empty() {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (setup time is
    /// excluded from the samples).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        let start = Instant::now();
        while self.samples.len() < self.sample_size && start.elapsed() < self.budget {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
        if self.samples.is_empty() {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut calls = 0u32;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls >= 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
