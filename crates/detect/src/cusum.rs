//! CUSUM change-point detection: when did the attack *start*?
//!
//! The rate and spectral detectors answer "is something wrong"; incident
//! response also needs "since when". The one-sided CUSUM statistic
//! `S_t = max(0, S_{t-1} + (x_t − μ₀ − k))` accumulates evidence that the
//! mean of a series has shifted upward from its baseline `μ₀` and crosses
//! a threshold `h` shortly after a sustained change — here applied to the
//! bottleneck's binned byte counts, whose mean rises when attack traffic
//! (or its retransmission fallout) joins the mix.

use pdos_analysis::timeseries::{mean, std_dev};

/// One-sided (upward) CUSUM detector with self-calibrated baseline.
#[derive(Debug, Clone)]
pub struct CusumDetector {
    /// Bins used to estimate the baseline mean and deviation.
    calibration_bins: usize,
    /// Slack in baseline standard deviations (the classic `k`).
    slack_sigmas: f64,
    /// Alarm threshold in baseline standard deviations (the classic `h`).
    threshold_sigmas: f64,
}

/// Outcome of [`CusumDetector::scan`].
///
/// A series shorter than the calibration window has no baseline yet, so
/// the detector cannot render a verdict at all — that is a different
/// situation from a calibrated scan that stayed quiet, and the streaming
/// scorer ([`crate::streaming::StreamingCusum`]) needs to tell them
/// apart. `TooFewBins` makes the distinction structural instead of a
/// silent empty report.
#[derive(Debug, Clone, PartialEq)]
pub enum CusumScan {
    /// The series covered the calibration window and was scanned.
    Report(CusumReport),
    /// The series ended inside the calibration window: no verdict yet.
    TooFewBins {
        /// Bins required before the first sample can be scanned
        /// (`calibration_bins + 1`).
        needed: usize,
        /// Bins actually supplied.
        got: usize,
    },
}

impl CusumScan {
    /// The report, when the series calibrated; `None` while uncalibrated.
    pub fn report(&self) -> Option<&CusumReport> {
        match self {
            CusumScan::Report(rep) => Some(rep),
            CusumScan::TooFewBins { .. } => None,
        }
    }

    /// Consumes the scan into its report, when the series calibrated.
    pub fn into_report(self) -> Option<CusumReport> {
        match self {
            CusumScan::Report(rep) => Some(rep),
            CusumScan::TooFewBins { .. } => None,
        }
    }

    /// Whether the scan alarmed (`false` while uncalibrated).
    pub fn detected(&self) -> bool {
        self.report().is_some_and(|rep| rep.detected)
    }
}

/// Result of a CUSUM scan.
#[derive(Debug, Clone, PartialEq)]
pub struct CusumReport {
    /// Whether the statistic ever crossed the threshold.
    pub detected: bool,
    /// Bin index where the alarm fired.
    pub alarm_bin: Option<usize>,
    /// Estimated change-point: the last bin before the alarm where the
    /// statistic was zero (the standard CUSUM onset estimate).
    pub onset_bin: Option<usize>,
    /// Peak value of the statistic, in baseline standard deviations.
    pub peak_sigmas: f64,
}

impl CusumDetector {
    /// Creates a detector.
    ///
    /// # Panics
    ///
    /// Panics if `calibration_bins < 2`, or if the slack/threshold are
    /// non-positive.
    pub fn new(calibration_bins: usize, slack_sigmas: f64, threshold_sigmas: f64) -> Self {
        assert!(calibration_bins >= 2, "need at least 2 calibration bins");
        assert!(slack_sigmas > 0.0, "slack must be positive");
        assert!(threshold_sigmas > 0.0, "threshold must be positive");
        CusumDetector {
            calibration_bins,
            slack_sigmas,
            threshold_sigmas,
        }
    }

    /// A conventional setting: calibrate on the first 50 bins, `k = 0.5σ`,
    /// `h = 8σ`.
    pub fn conventional() -> Self {
        Self::new(50, 0.5, 8.0)
    }

    /// Bins required before the first sample can be scanned.
    pub fn needed_bins(&self) -> usize {
        self.calibration_bins + 1
    }

    /// Scans a binned byte series. The first `calibration_bins` samples
    /// define the baseline; scanning starts after them. A series that
    /// ends inside the calibration window yields
    /// [`CusumScan::TooFewBins`], not a quiet report.
    pub fn scan(&self, series: &[u64]) -> CusumScan {
        if series.len() <= self.calibration_bins {
            return CusumScan::TooFewBins {
                needed: self.needed_bins(),
                got: series.len(),
            };
        }
        let calib: Vec<f64> = series[..self.calibration_bins]
            .iter()
            .map(|&b| b as f64)
            .collect();
        let mu = mean(&calib);
        let sigma = std_dev(&calib).max(mu.abs() * 1e-3).max(1.0);
        let k = self.slack_sigmas * sigma;
        let h = self.threshold_sigmas * sigma;

        let mut s = 0.0f64;
        let mut peak = 0.0f64;
        let mut last_zero = self.calibration_bins;
        for (i, &b) in series.iter().enumerate().skip(self.calibration_bins) {
            s = (s + (b as f64 - mu - k)).max(0.0);
            if s == 0.0 {
                last_zero = i;
            }
            if s > peak {
                peak = s;
            }
            if s > h {
                return CusumScan::Report(CusumReport {
                    detected: true,
                    alarm_bin: Some(i),
                    onset_bin: Some(last_zero + 1),
                    peak_sigmas: peak / sigma,
                });
            }
        }
        CusumScan::Report(CusumReport {
            detected: false,
            alarm_bin: None,
            onset_bin: None,
            peak_sigmas: peak / sigma,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with_step(n: usize, step_at: usize, base: u64, jump: u64) -> Vec<u64> {
        (0..n)
            .map(|i| {
                let noise = ((i * 2654435761) % 7) as u64;
                if i >= step_at {
                    base + jump + noise
                } else {
                    base + noise
                }
            })
            .collect()
    }

    #[test]
    fn detects_step_and_localizes_onset() {
        let s = series_with_step(300, 120, 1000, 200);
        let rep = CusumDetector::conventional()
            .scan(&s)
            .into_report()
            .expect("calibrated");
        assert!(rep.detected, "{rep:?}");
        let onset = rep.onset_bin.unwrap();
        assert!(
            (118..=125).contains(&onset),
            "onset {onset} should be near 120"
        );
        assert!(rep.alarm_bin.unwrap() >= onset);
    }

    #[test]
    fn stays_quiet_without_change() {
        let s = series_with_step(300, usize::MAX, 1000, 0);
        let rep = CusumDetector::conventional()
            .scan(&s)
            .into_report()
            .expect("calibrated");
        assert!(!rep.detected, "{rep:?}");
        assert_eq!(rep.onset_bin, None);
    }

    /// Pins the structured short-series outcome: an uncalibrated scan is
    /// `TooFewBins`, not a quiet report.
    #[test]
    fn short_series_reports_too_few_bins() {
        let scan = CusumDetector::conventional().scan(&[5; 10]);
        assert_eq!(
            scan,
            CusumScan::TooFewBins {
                needed: 51,
                got: 10
            }
        );
        assert!(!scan.detected());
        assert_eq!(scan.report(), None);
    }

    #[test]
    fn small_drift_below_slack_is_ignored() {
        // A +0.3 sigma drift stays under the k = 0.5 sigma slack.
        let s: Vec<u64> = (0..400)
            .map(|i| {
                let noise = ((i * 48271) % 100) as u64; // sd ~ 29
                if i >= 200 {
                    1008 + noise
                } else {
                    1000 + noise
                }
            })
            .collect();
        let rep = CusumDetector::conventional()
            .scan(&s)
            .into_report()
            .expect("calibrated");
        assert!(!rep.detected, "{rep:?}");
    }

    #[test]
    #[should_panic(expected = "calibration")]
    fn rejects_tiny_calibration() {
        CusumDetector::new(1, 0.5, 8.0);
    }

    proptest::proptest! {
        /// Peak statistic is non-negative and zero for constant series.
        #[test]
        fn prop_peak_nonnegative(base in 1u64..10_000, n in 60usize..300) {
            let s = vec![base; n];
            let rep = CusumDetector::conventional()
                .scan(&s)
                .into_report()
                .expect("n >= 60 always calibrates");
            proptest::prop_assert!(rep.peak_sigmas >= 0.0);
            proptest::prop_assert!(!rep.detected);
        }
    }
}
