//! Randomized-RTO defense analysis.
//!
//! §1.1 cites the randomized-timeout defense of Yang/Gerla/Sanadidi
//! (ISCC 2004) against timeout-based (shrew) attacks — and notes it cannot
//! protect against the AIMD-based attack, whose timing does not depend on
//! the RTO at all. This module provides the policy and a closed-form
//! effectiveness analysis, so the workspace can demonstrate both halves of
//! that claim.

/// A uniformly randomized minimum-RTO policy: each timeout draws
/// `min_rto ∈ [base, base + spread]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomizedRtoPolicy {
    base: f64,
    spread: f64,
}

impl RandomizedRtoPolicy {
    /// Creates a policy.
    ///
    /// # Errors
    ///
    /// Returns a message when `base` is non-positive or `spread` negative.
    pub fn new(base: f64, spread: f64) -> Result<Self, String> {
        if !(base > 0.0 && base.is_finite()) {
            return Err(format!("base RTO must be positive, got {base}"));
        }
        if !(spread >= 0.0 && spread.is_finite()) {
            return Err(format!("spread must be non-negative, got {spread}"));
        }
        Ok(RandomizedRtoPolicy { base, spread })
    }

    /// The deterministic policy (`spread = 0`) — what standard TCP does,
    /// and what the shrew attack exploits.
    ///
    /// # Panics
    ///
    /// Panics if `base` is non-positive.
    pub fn fixed(base: f64) -> Self {
        Self::new(base, 0.0).expect("fixed policy requires positive base")
    }

    /// Lower bound of the randomization interval.
    pub fn base(&self) -> f64 {
        self.base
    }

    /// Width of the randomization interval.
    pub fn spread(&self) -> f64 {
        self.spread
    }

    /// Maps a uniform draw `u ∈ [0, 1)` to a concrete minimum RTO.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1)`.
    pub fn sample(&self, u: f64) -> f64 {
        assert!((0.0..1.0).contains(&u), "u must be in [0,1), got {u}");
        self.base + self.spread * u
    }

    /// The probability that a retransmission scheduled after a randomized
    /// timeout still lands inside an attack pulse, for a pulsing attack of
    /// period `t_aimd` and pulse width `t_extent`.
    ///
    /// With a fixed RTO synchronized to the attack (`t_aimd = base/n`),
    /// this is 1 (every retransmission is clobbered). Randomizing over
    /// `spread` smears the retransmission instant over
    /// `spread/t_aimd` attack periods, so the hit probability falls toward
    /// the duty cycle `t_extent/t_aimd` — the defense's whole point.
    ///
    /// # Panics
    ///
    /// Panics if `t_aimd` or `t_extent` is non-positive, or
    /// `t_extent > t_aimd`.
    pub fn shrew_hit_probability(&self, t_aimd: f64, t_extent: f64) -> f64 {
        assert!(t_aimd > 0.0, "t_aimd must be positive");
        assert!(
            t_extent > 0.0 && t_extent <= t_aimd,
            "need 0 < t_extent <= t_aimd"
        );
        let duty = t_extent / t_aimd;
        if self.spread == 0.0 {
            // Deterministic: hit iff the timeout is phase-locked. We take
            // the worst case (locked), the shrew premise.
            let phase_locked = {
                let k = self.base / t_aimd;
                (k - k.round()).abs() < 1e-9
            };
            return if phase_locked { 1.0 } else { duty };
        }
        // The retransmission instant is uniform over an interval of width
        // `spread`. The fraction of that interval covered by pulses
        // approaches the duty cycle as spread grows; for spread below one
        // period, interpolate between locked (1.0) and smeared (duty).
        let periods_covered = self.spread / t_aimd;
        if periods_covered >= 1.0 {
            duty
        } else {
            // Worst-case phase: the pulse-overlap fraction of the interval.
            let overlap = (t_extent + (1.0 - periods_covered) * (t_aimd - t_extent)).min(t_aimd);
            (overlap / t_aimd).clamp(duty, 1.0)
        }
    }

    /// Whether this policy defends the **AIMD-based** attack. Always
    /// `false`: the AIMD attack's pulse timing does not reference the RTO
    /// (§1.1), which is exactly why the paper moves past the shrew attack.
    pub fn defends_aimd_attack(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(RandomizedRtoPolicy::new(0.0, 0.5).is_err());
        assert!(RandomizedRtoPolicy::new(1.0, -0.5).is_err());
        let p = RandomizedRtoPolicy::new(1.0, 0.5).unwrap();
        assert_eq!(p.base(), 1.0);
        assert_eq!(p.spread(), 0.5);
    }

    #[test]
    fn sample_spans_interval() {
        let p = RandomizedRtoPolicy::new(1.0, 0.5).unwrap();
        assert_eq!(p.sample(0.0), 1.0);
        assert!((p.sample(0.999) - 1.4995).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "u must be in [0,1)")]
    fn sample_rejects_out_of_range() {
        RandomizedRtoPolicy::fixed(1.0).sample(1.0);
    }

    #[test]
    fn fixed_policy_is_fully_exploitable_at_shrew_period() {
        let p = RandomizedRtoPolicy::fixed(1.0);
        // T_AIMD = 1 s (locked) with 100 ms pulses: every retransmission
        // lands in a pulse.
        assert_eq!(p.shrew_hit_probability(1.0, 0.1), 1.0);
        // Subharmonic lock (T = 0.5 s): also fully exploitable.
        assert_eq!(p.shrew_hit_probability(0.5, 0.1), 1.0);
        // Off-harmonic: only the duty cycle.
        assert!((p.shrew_hit_probability(0.7, 0.1) - 1.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn randomization_reduces_hit_probability_to_duty_cycle() {
        let locked = RandomizedRtoPolicy::fixed(1.0).shrew_hit_probability(1.0, 0.1);
        let smeared = RandomizedRtoPolicy::new(1.0, 2.0)
            .unwrap()
            .shrew_hit_probability(1.0, 0.1);
        assert_eq!(locked, 1.0);
        assert!((smeared - 0.1).abs() < 1e-9);
        // Partial randomization sits strictly in between.
        let partial = RandomizedRtoPolicy::new(1.0, 0.5)
            .unwrap()
            .shrew_hit_probability(1.0, 0.1);
        assert!(partial > smeared && partial < locked);
    }

    #[test]
    fn policy_admits_it_cannot_stop_aimd_attacks() {
        assert!(!RandomizedRtoPolicy::fixed(1.0).defends_aimd_attack());
        assert!(!RandomizedRtoPolicy::new(1.0, 3.0)
            .unwrap()
            .defends_aimd_attack());
    }

    proptest::proptest! {
        /// Hit probability is always within [duty, 1].
        #[test]
        fn prop_hit_probability_bounded(spread in 0.0f64..5.0,
                                        t_aimd in 0.1f64..3.0,
                                        duty in 0.01f64..1.0) {
            let t_extent = t_aimd * duty;
            let p = RandomizedRtoPolicy::new(1.0, spread).unwrap();
            let hit = p.shrew_hit_probability(t_aimd, t_extent);
            proptest::prop_assert!(hit <= 1.0 + 1e-12);
            proptest::prop_assert!(hit >= t_extent / t_aimd - 1e-12);
        }

        /// More randomization never increases the worst-case hit
        /// probability.
        #[test]
        fn prop_monotone_in_spread(s1 in 0.0f64..3.0, s2 in 0.0f64..3.0) {
            let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
            let a = RandomizedRtoPolicy::new(1.0, lo).unwrap().shrew_hit_probability(1.0, 0.1);
            let b = RandomizedRtoPolicy::new(1.0, hi).unwrap().shrew_hit_probability(1.0, 0.1);
            proptest::prop_assert!(b <= a + 1e-12);
        }
    }
}
