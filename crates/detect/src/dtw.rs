//! Dynamic-time-warping pulse detection.
//!
//! The paper's related work (§1.1, [8] Sun/Lui/Yau, ICNP 2004) detects
//! low-rate attacks by matching the incoming-traffic waveform against a
//! rectangular pulse template with dynamic time warping. This module
//! implements the DTW distance and the resulting windowed detector, so the
//! workspace can measure how detectable a given pulse train actually is —
//! including the paper's observation that the method fails once
//! `T_extent` drops below the sampling period.

use pdos_analysis::timeseries::standardize;

/// The dynamic-time-warping distance between two sequences, with an
/// optional Sakoe–Chiba band of half-width `band` (`None` = unconstrained).
/// Uses squared point distances and returns the square root of the
/// accumulated cost.
///
/// Returns `f64::INFINITY` when either sequence is empty or the band makes
/// alignment infeasible.
///
/// # Examples
///
/// ```
/// use pdos_detect::dtw::dtw_distance;
///
/// let a = [0.0, 1.0, 0.0, 0.0];
/// assert_eq!(dtw_distance(&a, &a, None), 0.0);
/// // A time-shifted copy is much closer under DTW than pointwise.
/// let shifted = [0.0, 0.0, 1.0, 0.0];
/// assert!(dtw_distance(&a, &shifted, None) < 1.0);
/// ```
pub fn dtw_distance(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    // Effective band must at least cover the diagonal slope.
    let w = band.map(|w| w.max(n.abs_diff(m))).unwrap_or(usize::MAX);
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut cur = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        cur.fill(f64::INFINITY);
        let lo = if w == usize::MAX {
            1
        } else {
            i.saturating_sub(w).max(1)
        };
        let hi = if w == usize::MAX { m } else { (i + w).min(m) };
        for j in lo..=hi {
            let d = a[i - 1] - b[j - 1];
            let cost = d * d;
            let best = prev[j].min(cur[j - 1]).min(prev[j - 1]);
            cur[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m].sqrt()
}

/// A rectangular pulse template of `len` samples with `on` leading
/// high samples, standardized to zero mean / unit variance (so amplitude
/// differences don't dominate the match).
///
/// # Panics
///
/// Panics when `on` is zero or not less than `len`.
pub fn pulse_template(len: usize, on: usize) -> Vec<f64> {
    assert!(on > 0 && on < len, "need 0 < on < len");
    let raw: Vec<f64> = (0..len).map(|i| if i < on { 1.0 } else { 0.0 }).collect();
    standardize(&raw)
}

/// A windowed DTW detector: slides a period-length window over the
/// (standardized) series and measures the DTW distance to a rectangular
/// pulse template.
#[derive(Debug, Clone)]
pub struct DtwPulseDetector {
    template: Vec<f64>,
    threshold: f64,
    band: Option<usize>,
}

/// The result of a DTW sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DtwReport {
    /// Whether any window matched below the threshold.
    pub detected: bool,
    /// Best (smallest) distance across windows.
    pub best_distance: f64,
    /// Number of windows below threshold.
    pub matching_windows: usize,
    /// Windows examined.
    pub total_windows: usize,
}

impl DtwPulseDetector {
    /// Creates a detector whose template is one attack period sampled into
    /// `period_samples` bins with `on_samples` of pulse.
    ///
    /// `threshold` is the per-sample normalized distance below which a
    /// window counts as a pulse match (0.5–0.9 are practical values for
    /// standardized series).
    ///
    /// # Panics
    ///
    /// Panics when the template shape is degenerate (see
    /// [`pulse_template`]) or `threshold` is not positive.
    pub fn new(
        period_samples: usize,
        on_samples: usize,
        threshold: f64,
        band: Option<usize>,
    ) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        DtwPulseDetector {
            template: pulse_template(period_samples, on_samples),
            threshold,
            band,
        }
    }

    /// The template length in samples.
    pub fn period_samples(&self) -> usize {
        self.template.len()
    }

    /// Sweeps the detector over `series` (raw bytes/rates; standardized
    /// per window internally), stepping one template length at a time.
    pub fn sweep(&self, series: &[f64]) -> DtwReport {
        let p = self.template.len();
        let mut best = f64::INFINITY;
        let mut matches = 0usize;
        let mut windows = 0usize;
        if series.len() >= p {
            let mut start = 0usize;
            while start + p <= series.len() {
                let win = standardize(&series[start..start + p]);
                let d = dtw_distance(&win, &self.template, self.band) / (p as f64).sqrt();
                if d < best {
                    best = d;
                }
                if d < self.threshold {
                    matches += 1;
                }
                windows += 1;
                start += p;
            }
        }
        DtwReport {
            detected: matches > 0,
            best_distance: best,
            matching_windows: matches,
            total_windows: windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_pulses(period: usize, on: usize, cycles: usize, noise: f64) -> Vec<f64> {
        (0..period * cycles)
            .map(|i| {
                let base = if i % period < on { 10.0 } else { 1.0 };
                // Deterministic pseudo-noise.
                base + noise * ((i * 2654435761) % 97) as f64 / 97.0
            })
            .collect()
    }

    #[test]
    fn dtw_identity_is_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(dtw_distance(&a, &a, None), 0.0);
    }

    #[test]
    fn dtw_handles_time_shift_better_than_euclidean() {
        let a = [0.0, 0.0, 5.0, 0.0, 0.0, 0.0];
        let b = [0.0, 0.0, 0.0, 5.0, 0.0, 0.0];
        let euclid: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(dtw_distance(&a, &b, None) < euclid / 2.0);
    }

    #[test]
    fn dtw_empty_is_infinite() {
        assert_eq!(dtw_distance(&[], &[1.0], None), f64::INFINITY);
        assert_eq!(dtw_distance(&[1.0], &[], None), f64::INFINITY);
    }

    #[test]
    fn dtw_band_still_aligns_diagonal() {
        let a: Vec<f64> = (0..50).map(|i| (i as f64 / 5.0).sin()).collect();
        let banded = dtw_distance(&a, &a, Some(2));
        assert_eq!(banded, 0.0);
    }

    #[test]
    fn template_is_standardized() {
        let t = pulse_template(20, 2);
        let mean: f64 = t.iter().sum::<f64>() / t.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!(t[0] > 0.0 && t[19] < 0.0);
    }

    #[test]
    #[should_panic(expected = "0 < on < len")]
    fn degenerate_template_panics() {
        pulse_template(10, 10);
    }

    #[test]
    fn detector_finds_clean_pulses() {
        let series = synthetic_pulses(40, 2, 10, 0.1);
        let det = DtwPulseDetector::new(40, 2, 0.8, Some(4));
        let rep = det.sweep(&series);
        assert!(rep.detected, "clean pulse train should match: {rep:?}");
        assert!(rep.matching_windows >= 8);
        assert_eq!(rep.total_windows, 10);
    }

    #[test]
    fn detector_rejects_flat_traffic() {
        let flat: Vec<f64> = (0..400).map(|i| 5.0 + 0.01 * ((i % 7) as f64)).collect();
        let det = DtwPulseDetector::new(40, 2, 0.5, Some(4));
        let rep = det.sweep(&flat);
        assert!(
            !rep.detected,
            "flat traffic must not look like pulses: {rep:?}"
        );
    }

    #[test]
    fn subsample_pulses_evade_as_paper_notes() {
        // §1.1: DTW detection fails when T_extent is below the sampling
        // period — a pulse narrower than one bin just raises that bin
        // slightly after aggregation. Simulate aggregation: pulses of
        // width 1 bin but tiny amplitude above floor noise.
        let series: Vec<f64> = (0..400)
            .map(|i| {
                let noisy = 5.0 + 0.8 * (((i * 7919) % 13) as f64 / 13.0 - 0.5);
                if i % 40 == 0 {
                    noisy + 0.3 // almost invisible after aggregation
                } else {
                    noisy
                }
            })
            .collect();
        let det = DtwPulseDetector::new(40, 2, 0.5, Some(4));
        let rep = det.sweep(&series);
        assert!(!rep.detected, "sub-sample pulses should evade: {rep:?}");
    }

    #[test]
    fn short_series_yields_no_windows() {
        let det = DtwPulseDetector::new(40, 2, 0.5, None);
        let rep = det.sweep(&[1.0; 10]);
        assert_eq!(rep.total_windows, 0);
        assert!(!rep.detected);
        assert_eq!(rep.best_distance, f64::INFINITY);
    }

    proptest::proptest! {
        /// DTW is symmetric and non-negative.
        #[test]
        fn prop_dtw_symmetric(a in proptest::collection::vec(-5.0f64..5.0, 1..30),
                              b in proptest::collection::vec(-5.0f64..5.0, 1..30)) {
            let ab = dtw_distance(&a, &b, None);
            let ba = dtw_distance(&b, &a, None);
            proptest::prop_assert!(ab >= 0.0);
            proptest::prop_assert!((ab - ba).abs() < 1e-9);
        }

        /// DTW never exceeds the pointwise (Euclidean) distance for
        /// equal-length sequences.
        #[test]
        fn prop_dtw_bounded_by_euclidean(a in proptest::collection::vec(-5.0f64..5.0, 2..30)) {
            let b: Vec<f64> = a.iter().map(|x| x + 1.0).collect();
            let euclid: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
            proptest::prop_assert!(dtw_distance(&a, &b, None) <= euclid + 1e-9);
        }
    }
}
