//! # pdos-detect — reference detectors and defenses for pulsing DoS
//!
//! The defender's side of the DSN 2005 study. The paper models the
//! attacker's exposure abstractly as `(1 − γ)^κ`; this crate supplies
//! concrete instruments so the trade-off can be *measured* instead of
//! assumed:
//!
//! * [`rate::RateDetector`] — the classic average-utilization (flooding)
//!   detector the PDoS attack is designed to slip under;
//! * [`dtw::DtwPulseDetector`] — waveform matching with dynamic time
//!   warping, after the related work the paper cites (Sun/Lui/Yau), with
//!   the documented blind spot for sub-sample pulses;
//! * [`spectral::SpectralDetector`] — a periodogram sweep that finds the
//!   attack's period from the traffic's frequency content, shape-agnostic;
//! * [`cusum::CusumDetector`] — change-point detection localizing the
//!   attack's *onset* in a binned trace;
//! * [`defense::RandomizedRtoPolicy`] — the randomized-timeout defense,
//!   including the analysis of why it stops shrew attacks but not
//!   AIMD-based ones.
//!
//! ## Example
//!
//! ```
//! use pdos_detect::rate::RateDetector;
//!
//! // 100 ms bins on a 15 Mbps link; a quiet series never alarms.
//! let det = RateDetector::conventional(15e6, 0.1);
//! let report = det.run(&[10_000; 50]);
//! assert!(!report.detected);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cusum;
pub mod defense;
pub mod dtw;
pub mod rate;
pub mod roc;
pub mod spectral;
pub mod streaming;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::cusum::{CusumDetector, CusumReport, CusumScan};
    pub use crate::defense::RandomizedRtoPolicy;
    pub use crate::dtw::{dtw_distance, pulse_template, DtwPulseDetector, DtwReport};
    pub use crate::rate::{DetectionReport, DetectorConfigError, RateDetector};
    pub use crate::roc::{auc, roc_curve, RocPoint};
    pub use crate::spectral::{power_at_period, SpectralDetector, SpectralReport};
    pub use crate::streaming::{
        alarm_stream_json, Alarm, CusumState, RateState, SpectralState, StreamingCusum,
        StreamingDetector, StreamingRate, StreamingSpectral,
    };
}
