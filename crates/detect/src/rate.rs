//! Average-rate (flooding) detection.
//!
//! The classic volume-based detector the paper argues PDoS evades (§1):
//! an exponentially weighted moving average of the link utilization, with
//! an alarm when the average crosses a threshold fraction of capacity for
//! a minimum hold time. A flooding attack (γ ≥ 1) trips it immediately; a
//! pulsing attack with small duty cycle keeps the average low — which is
//! precisely the `(1 − γ)^κ` risk trade-off the gain model captures.

use std::error::Error;
use std::fmt;

/// Configuration error for detectors.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfigError(String);

impl fmt::Display for DetectorConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid detector configuration: {}", self.0)
    }
}

impl Error for DetectorConfigError {}

/// An EWMA utilization detector over a binned byte series.
#[derive(Debug, Clone, PartialEq)]
pub struct RateDetector {
    capacity_bps: f64,
    bin_secs: f64,
    threshold: f64,
    alpha: f64,
    hold_bins: usize,

    ewma_util: f64,
    over_for: usize,
    bins_seen: usize,
    alarms: usize,
    first_alarm: Option<usize>,
}

/// Summary of a detector run over a full series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionReport {
    /// Whether the detector ever alarmed.
    pub detected: bool,
    /// Bin index of the first alarm.
    pub first_alarm_bin: Option<usize>,
    /// Number of alarm bins.
    pub alarm_bins: usize,
    /// Bins observed.
    pub total_bins: usize,
    /// Final EWMA utilization (fraction of capacity).
    pub final_utilization: f64,
}

impl RateDetector {
    /// Creates a detector.
    ///
    /// * `capacity_bps` — link capacity the utilization is normalized by.
    /// * `bin_secs` — width of each observation bin.
    /// * `threshold` — alarm when the EWMA utilization exceeds this
    ///   fraction (e.g. 0.9).
    /// * `alpha` — EWMA weight in `(0, 1]`.
    /// * `hold_bins` — consecutive over-threshold bins required before the
    ///   alarm fires (suppresses single-bin blips).
    ///
    /// # Errors
    ///
    /// Returns [`DetectorConfigError`] for out-of-domain parameters.
    pub fn new(
        capacity_bps: f64,
        bin_secs: f64,
        threshold: f64,
        alpha: f64,
        hold_bins: usize,
    ) -> Result<Self, DetectorConfigError> {
        if !(capacity_bps > 0.0 && capacity_bps.is_finite()) {
            return Err(DetectorConfigError("capacity must be positive".into()));
        }
        if !(bin_secs > 0.0 && bin_secs.is_finite()) {
            return Err(DetectorConfigError("bin width must be positive".into()));
        }
        if !(threshold > 0.0 && threshold.is_finite()) {
            return Err(DetectorConfigError("threshold must be positive".into()));
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(DetectorConfigError("alpha must be in (0,1]".into()));
        }
        Ok(RateDetector {
            capacity_bps,
            bin_secs,
            threshold,
            alpha,
            hold_bins,
            ewma_util: 0.0,
            over_for: 0,
            bins_seen: 0,
            alarms: 0,
            first_alarm: None,
        })
    }

    /// A conventional flooding-detector setting: 90% utilization
    /// threshold, a slow average (`alpha = 0.05`, i.e. a multi-second
    /// horizon at sub-second bins — volume detectors look at sustained
    /// rates, not instantaneous spikes), 5-bin hold.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bps` or `bin_secs` is out of domain (both come
    /// from topology constants in practice).
    pub fn conventional(capacity_bps: f64, bin_secs: f64) -> Self {
        Self::new(capacity_bps, bin_secs, 0.9, 0.05, 5).expect("conventional parameters are valid")
    }

    /// Current EWMA utilization.
    pub fn utilization(&self) -> f64 {
        self.ewma_util
    }

    /// Feeds one bin of observed bytes; returns whether this bin alarms.
    pub fn observe(&mut self, bytes: u64) -> bool {
        let util = bytes as f64 * 8.0 / (self.capacity_bps * self.bin_secs);
        self.ewma_util += self.alpha * (util - self.ewma_util);
        self.bins_seen += 1;
        if self.ewma_util > self.threshold {
            self.over_for += 1;
        } else {
            self.over_for = 0;
        }
        let alarm = self.over_for > self.hold_bins;
        if alarm {
            self.alarms += 1;
            if self.first_alarm.is_none() {
                self.first_alarm = Some(self.bins_seen - 1);
            }
        }
        alarm
    }

    /// The report for everything observed so far, without consuming the
    /// detector — the streaming scorer snapshots this after each bin.
    pub fn report(&self) -> DetectionReport {
        DetectionReport {
            detected: self.first_alarm.is_some(),
            first_alarm_bin: self.first_alarm,
            alarm_bins: self.alarms,
            total_bins: self.bins_seen,
            final_utilization: self.ewma_util,
        }
    }

    /// Runs the detector over a whole series and reports.
    pub fn run(mut self, series_bytes: &[u64]) -> DetectionReport {
        for &b in series_bytes {
            self.observe(b);
        }
        self.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bytes per 100 ms bin at a given fraction of a 15 Mbps link.
    fn bin_bytes(frac: f64) -> u64 {
        (15e6 * 0.1 * frac / 8.0) as u64
    }

    fn detector() -> RateDetector {
        RateDetector::conventional(15e6, 0.1)
    }

    #[test]
    fn flooding_is_detected_quickly() {
        let flood: Vec<u64> = vec![bin_bytes(1.0); 100];
        let report = detector().run(&flood);
        assert!(report.detected);
        assert!(report.first_alarm_bin.unwrap() < 80);
        assert!(report.final_utilization > 0.9);
    }

    #[test]
    fn idle_link_never_alarms() {
        let idle: Vec<u64> = vec![bin_bytes(0.2); 100];
        let report = detector().run(&idle);
        assert!(!report.detected);
        assert_eq!(report.alarm_bins, 0);
        assert_eq!(report.total_bins, 100);
    }

    #[test]
    fn low_duty_cycle_pulses_evade() {
        // Full-rate bin every 20 bins (duty cycle 5%) — the PDoS regime.
        let series: Vec<u64> = (0..200)
            .map(|i| {
                if i % 20 == 0 {
                    bin_bytes(3.0)
                } else {
                    bin_bytes(0.3)
                }
            })
            .collect();
        let report = detector().run(&series);
        assert!(
            !report.detected,
            "5% duty-cycle pulses must slip under the EWMA: {report:?}"
        );
    }

    #[test]
    fn high_duty_cycle_pulses_are_caught() {
        // Attack bins 4 out of every 5 (duty cycle 80% at full overload).
        let series: Vec<u64> = (0..200)
            .map(|i| {
                if i % 5 != 0 {
                    bin_bytes(2.0)
                } else {
                    bin_bytes(0.5)
                }
            })
            .collect();
        let report = detector().run(&series);
        assert!(report.detected);
    }

    #[test]
    fn hold_time_suppresses_blips() {
        let mut d = detector();
        // One huge bin after a quiet spell: no alarm (hold = 3).
        for _ in 0..50 {
            assert!(!d.observe(bin_bytes(0.1)));
        }
        assert!(!d.observe(bin_bytes(10.0)));
    }

    #[test]
    fn utilization_tracks_input() {
        let mut d = detector();
        for _ in 0..100 {
            d.observe(bin_bytes(0.5));
        }
        assert!((d.utilization() - 0.5).abs() < 0.01);
    }

    #[test]
    fn config_validation() {
        assert!(RateDetector::new(0.0, 0.1, 0.9, 0.3, 3).is_err());
        assert!(RateDetector::new(15e6, 0.0, 0.9, 0.3, 3).is_err());
        assert!(RateDetector::new(15e6, 0.1, 0.0, 0.3, 3).is_err());
        assert!(RateDetector::new(15e6, 0.1, 0.9, 0.0, 3).is_err());
        assert!(RateDetector::new(15e6, 0.1, 0.9, 1.5, 3).is_err());
        let e = RateDetector::new(0.0, 0.1, 0.9, 0.3, 3).unwrap_err();
        assert!(e.to_string().contains("capacity"));
    }

    proptest::proptest! {
        /// The EWMA utilization of a constant series converges to it.
        #[test]
        fn prop_constant_series_converges(frac in 0.0f64..2.0) {
            let mut d = detector();
            for _ in 0..300 {
                d.observe(bin_bytes(frac));
            }
            // Integer truncation in bin_bytes costs < 1e-5 utilization.
            proptest::prop_assert!((d.utilization() - frac).abs() < 1e-3);
        }
    }
}
