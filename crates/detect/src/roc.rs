//! ROC analysis: quantify a detector's operating curve over labeled
//! traces.
//!
//! The paper models the attacker's exposure as the smooth `(1 − γ)^κ`;
//! a real detector has a threshold and a true/false-positive trade-off.
//! These helpers sweep any thresholded detector over benign and attacked
//! trace sets and summarize the separation as an ROC curve and its AUC —
//! the defender-side ground truth the risk factor abstracts.

/// One operating point of a detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// The threshold used.
    pub threshold: f64,
    /// True-positive rate: fraction of attacked traces flagged.
    pub tpr: f64,
    /// False-positive rate: fraction of benign traces flagged.
    pub fpr: f64,
}

/// Sweeps `detect(threshold, trace)` over the labeled traces at each
/// threshold.
///
/// # Panics
///
/// Panics when either trace set or the threshold list is empty.
pub fn roc_curve<F>(
    benign: &[Vec<u64>],
    attacked: &[Vec<u64>],
    thresholds: &[f64],
    mut detect: F,
) -> Vec<RocPoint>
where
    F: FnMut(f64, &[u64]) -> bool,
{
    assert!(!benign.is_empty(), "need at least one benign trace");
    assert!(!attacked.is_empty(), "need at least one attacked trace");
    assert!(!thresholds.is_empty(), "need at least one threshold");
    thresholds
        .iter()
        .map(|&th| {
            let tp = attacked.iter().filter(|t| detect(th, t)).count();
            let fp = benign.iter().filter(|t| detect(th, t)).count();
            RocPoint {
                threshold: th,
                tpr: tp as f64 / attacked.len() as f64,
                fpr: fp as f64 / benign.len() as f64,
            }
        })
        .collect()
}

/// Area under the ROC curve by trapezoid rule, with the implicit (0,0)
/// and (1,1) endpoints added. 1.0 = perfect separation, 0.5 = chance.
pub fn auc(points: &[RocPoint]) -> f64 {
    let mut pts: Vec<(f64, f64)> = points.iter().map(|p| (p.fpr, p.tpr)).collect();
    pts.push((0.0, 0.0));
    pts.push((1.0, 1.0));
    pts.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    pts.dedup();
    pts.windows(2)
        .map(|w| (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectral::SpectralDetector;

    fn mix(i: u64, salt: u64) -> u64 {
        let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(salt);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }

    fn benign_trace(salt: u64) -> Vec<u64> {
        (0..400u64).map(|i| 10_000 + mix(i, salt) % 2_000).collect()
    }

    fn attacked_trace(salt: u64, period: u64) -> Vec<u64> {
        (0..400u64)
            .map(|i| {
                let base = 10_000 + mix(i, salt) % 2_000;
                if i % period == 0 {
                    base + 40_000
                } else {
                    base
                }
            })
            .collect()
    }

    fn traces() -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
        let benign: Vec<Vec<u64>> = (0..8).map(benign_trace).collect();
        let attacked: Vec<Vec<u64>> = (0..8).map(|s| attacked_trace(s, 20 + s % 3)).collect();
        (benign, attacked)
    }

    fn spectral_at(threshold: f64, trace: &[u64]) -> bool {
        let series: Vec<f64> = trace.iter().map(|&b| b as f64).collect();
        SpectralDetector::new(5, 80, threshold)
            .sweep(&series)
            .detected
    }

    #[test]
    fn spectral_detector_separates_cleanly() {
        let (benign, attacked) = traces();
        let points = roc_curve(
            &benign,
            &attacked,
            &[5.0, 10.0, 20.0, 40.0, 80.0],
            spectral_at,
        );
        let a = auc(&points);
        assert!(a > 0.9, "clean pulse trains should separate: AUC {a:.2}");
        // At some threshold the detector is simultaneously sensitive and
        // specific.
        assert!(
            points.iter().any(|p| p.tpr > 0.9 && p.fpr < 0.2),
            "{points:?}"
        );
    }

    #[test]
    fn identical_distributions_give_chance_auc() {
        let benign: Vec<Vec<u64>> = (0..6).map(benign_trace).collect();
        let also_benign: Vec<Vec<u64>> = (100..106).map(benign_trace).collect();
        let points = roc_curve(&benign, &also_benign, &[5.0, 10.0, 20.0, 40.0], spectral_at);
        let a = auc(&points);
        assert!(
            (0.3..=0.7).contains(&a),
            "indistinguishable classes should sit near chance: AUC {a:.2}"
        );
    }

    #[test]
    fn tpr_and_fpr_move_monotonically_with_threshold() {
        let (benign, attacked) = traces();
        let points = roc_curve(&benign, &attacked, &[5.0, 20.0, 80.0], spectral_at);
        // Raising the threshold can only lower both rates.
        for w in points.windows(2) {
            assert!(w[1].tpr <= w[0].tpr + 1e-12);
            assert!(w[1].fpr <= w[0].fpr + 1e-12);
        }
    }

    #[test]
    fn auc_endpoints_are_implicit() {
        // A single mid point (0.2 fpr, 0.9 tpr) with trapezoids to the
        // corners: 0.2·0.45 + 0.8·0.95 = 0.85.
        let pts = vec![RocPoint {
            threshold: 1.0,
            tpr: 0.9,
            fpr: 0.2,
        }];
        assert!((auc(&pts) - 0.85).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "benign")]
    fn empty_sets_rejected() {
        roc_curve(&[], &[vec![1]], &[1.0], |_, _| true);
    }
}
