//! Spectral (periodogram) pulse detection.
//!
//! The natural counter to a *periodic* attack is a frequency-domain look
//! at the traffic: a pulsing attack concentrates power at `1/T_AIMD` and
//! its harmonics, however small its duty cycle. This detector evaluates
//! the Goertzel single-bin DFT over a band of candidate periods and
//! alarms when one period's power stands far above the band average —
//! complementing the time-domain DTW matcher with a detector that does
//! not need to know the pulse shape.

use pdos_analysis::timeseries::standardize;

/// The power of `series` at a single oscillation `period` (in samples),
/// computed with the Goertzel algorithm on the standardized series and
/// normalized by the series length.
///
/// Returns 0 for degenerate inputs (`period < 2` or longer than the
/// series).
pub fn power_at_period(series: &[f64], period: f64) -> f64 {
    let n = series.len();
    if n < 4 || period < 2.0 || period > n as f64 {
        return 0.0;
    }
    let x = standardize(series);
    let omega = 2.0 * std::f64::consts::PI / period;
    let coeff = 2.0 * omega.cos();
    let (mut s_prev, mut s_prev2) = (0.0f64, 0.0f64);
    for &v in &x {
        let s = v + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let power = s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
    (power / n as f64).max(0.0)
}

/// A periodogram sweep over integer candidate periods.
#[derive(Debug, Clone)]
pub struct SpectralDetector {
    min_period: usize,
    max_period: usize,
    /// Alarm when the peak power exceeds `threshold x` the band's median
    /// power. Under pure noise the single-bin powers are roughly
    /// exponentially distributed, so the max-to-median ratio over a band
    /// of `k` candidates concentrates near `log2(k)` (≈ 6–10 for typical
    /// bands); thresholds of 12–20 separate genuine periodicity from that
    /// noise floor.
    threshold: f64,
}

/// Result of a spectral sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralReport {
    /// Whether a period stood out above threshold.
    pub detected: bool,
    /// The candidate period (samples) with the highest power.
    pub dominant_period: Option<usize>,
    /// Peak power.
    pub peak_power: f64,
    /// Median power across the candidate band.
    pub median_power: f64,
}

impl SpectralDetector {
    /// Creates a detector sweeping periods `min_period..=max_period`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics when the band is empty (`min_period < 2` or inverted) or
    /// `threshold <= 1`.
    pub fn new(min_period: usize, max_period: usize, threshold: f64) -> Self {
        assert!(
            min_period >= 2 && min_period <= max_period,
            "need 2 <= min_period <= max_period"
        );
        assert!(threshold > 1.0, "threshold must exceed 1 (a ratio)");
        SpectralDetector {
            min_period,
            max_period,
            threshold,
        }
    }

    /// Sweeps the candidate band over `series`.
    pub fn sweep(&self, series: &[f64]) -> SpectralReport {
        let hi = self.max_period.min(series.len().saturating_sub(1));
        let mut powers: Vec<(usize, f64)> = (self.min_period..=hi.max(self.min_period))
            .filter(|&p| p <= series.len())
            .map(|p| (p, power_at_period(series, p as f64)))
            .collect();
        if powers.is_empty() {
            return SpectralReport {
                detected: false,
                dominant_period: None,
                peak_power: 0.0,
                median_power: 0.0,
            };
        }
        let peak = powers
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite powers"))
            .expect("non-empty");
        // A narrow pulse train spreads nearly equal power across its
        // harmonics, so the raw argmax may land on `T/2` or `T/3`. Prefer
        // the *fundamental*: the longest candidate period whose power is
        // within 70% of the peak.
        let fundamental = powers
            .iter()
            .filter(|(_, pw)| *pw >= 0.7 * peak.1)
            .map(|&(p, _)| p)
            .max()
            .unwrap_or(peak.0);
        powers.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite powers"));
        let median = powers[powers.len() / 2].1;
        let detected = median > 0.0 && peak.1 > self.threshold * median;
        SpectralReport {
            detected,
            dominant_period: detected.then_some(fundamental),
            peak_power: peak.1,
            median_power: median,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulses(period: usize, width: usize, cycles: usize, noise: f64) -> Vec<f64> {
        (0..period * cycles)
            .map(|i| {
                let base = if i % period < width { 8.0 } else { 1.0 };
                base + noise * (((i * 48271) % 101) as f64 / 101.0 - 0.5)
            })
            .collect()
    }

    #[test]
    fn power_peaks_at_true_period() {
        let s = pulses(25, 2, 20, 0.0);
        let at_true = power_at_period(&s, 25.0);
        let off = power_at_period(&s, 17.0);
        assert!(
            at_true > 5.0 * off,
            "true-period power {at_true} vs off-period {off}"
        );
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(power_at_period(&[], 10.0), 0.0);
        assert_eq!(power_at_period(&[1.0, 2.0], 10.0), 0.0);
        let s = pulses(25, 2, 4, 0.0);
        assert_eq!(power_at_period(&s, 1.0), 0.0);
        assert_eq!(power_at_period(&s, 1e9), 0.0);
    }

    #[test]
    fn detector_finds_noisy_pulses_and_their_period() {
        let s = pulses(40, 2, 15, 1.0);
        let det = SpectralDetector::new(10, 80, 15.0);
        let rep = det.sweep(&s);
        assert!(rep.detected, "{rep:?}");
        let p = rep.dominant_period.expect("dominant period");
        assert!(
            (38..=42).contains(&p),
            "dominant period {p} should be near 40"
        );
    }

    #[test]
    fn detector_stays_quiet_on_aperiodic_traffic() {
        // Deterministic pseudo-noise with no injected period (splitmix64
        // finalizer — multiplicative-modulus sequences are secretly
        // periodic and light up the periodogram).
        let mix = |i: u64| {
            let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s: Vec<f64> = (0..600u64)
            .map(|i| 5.0 + (mix(i) % 1000) as f64 / 1000.0 - 0.5)
            .collect();
        let det = SpectralDetector::new(10, 80, 15.0);
        let rep = det.sweep(&s);
        assert!(!rep.detected, "{rep:?}");
    }

    #[test]
    fn short_series_yields_empty_report() {
        let det = SpectralDetector::new(10, 80, 4.0);
        let rep = det.sweep(&[1.0; 5]);
        assert!(!rep.detected);
        assert_eq!(rep.dominant_period, None);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_must_be_ratio_above_one() {
        SpectralDetector::new(10, 80, 0.5);
    }

    #[test]
    #[should_panic(expected = "min_period")]
    fn band_must_be_ordered() {
        SpectralDetector::new(80, 10, 4.0);
    }

    proptest::proptest! {
        /// Power is non-negative for arbitrary series and periods.
        #[test]
        fn prop_power_non_negative(s in proptest::collection::vec(-10.0f64..10.0, 4..200),
                                   period in 2.0f64..100.0) {
            proptest::prop_assert!(power_at_period(&s, period) >= 0.0);
        }
    }
}
