//! Online (streaming) versions of the reference detectors.
//!
//! The batch detectors in [`crate::cusum`], [`crate::rate`], and
//! [`crate::spectral`] score a complete recorded trace after the run.
//! A defender service sees the trace one bin at a time, and a
//! checkpoint-forked sweep needs detector state that forks with the
//! simulation. Each streaming detector here is a small state machine:
//!
//! * [`StreamingCusum::push`] / [`StreamingRate::push`] /
//!   [`StreamingSpectral::push`] consume one closed bin of bytes and
//!   return [`Some(Alarm)`](Alarm) exactly once, on the bin where the
//!   detector first fires;
//! * `snapshot()` / `restore()` expose the full detector state so a
//!   detector survives a checkpoint fork byte-identically;
//! * `fork()` clones the state machine mid-stream; two forks fed the
//!   same suffix stay bit-identical;
//! * `merge()` combines two same-lineage states (one a
//!   prefix-continuation of the other — the shape produced by
//!   checkpoint forking), adopting the further-advanced one.
//!
//! ## Equivalence contract
//!
//! `StreamingCusum` and `StreamingRate` are *exact* re-expressions of
//! the batch math: feeding a series bin-by-bin and then calling
//! [`StreamingCusum::scan`] (or [`StreamingRate::report`]) reproduces
//! the batch verdict, onset bin, and peak statistic bit-for-bit. The
//! conformance crate pins this on the canonical golden scenarios plus
//! 50 seeded-random ones. `StreamingSpectral` evaluates a *sliding
//! window* rather than the whole series, so it intentionally differs
//! from a whole-series [`SpectralDetector::sweep`]; its contract is
//! that each windowed evaluation equals a batch sweep of exactly that
//! window (see `docs/DETECTION.md`).

use std::collections::VecDeque;

use pdos_analysis::timeseries::{mean, std_dev};

use crate::cusum::{CusumReport, CusumScan};
use crate::rate::{DetectionReport, RateDetector};
use crate::spectral::{SpectralDetector, SpectralReport};

/// A detector firing: emitted by `push` exactly once per stream, on the
/// first bin where the detector's alarm condition holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alarm {
    /// Which detector fired (`"cusum"`, `"rate"`, or `"spectral"`).
    pub detector: &'static str,
    /// Zero-based bin index where the alarm fired.
    pub bin: usize,
    /// The detector's statistic at the alarm: CUSUM sigmas, EWMA
    /// utilization, or spectral peak-to-median ratio.
    pub statistic: f64,
}

/// Common interface over the three streaming detectors, for callers
/// that fan a bin stream across a heterogeneous detector bank.
pub trait StreamingDetector {
    /// Stable label used in alarm streams.
    fn label(&self) -> &'static str;
    /// Consumes one closed bin of observed bytes.
    fn push(&mut self, bytes: u64) -> Option<Alarm>;
    /// Bins consumed so far.
    fn bins_seen(&self) -> usize;
}

// ---------------------------------------------------------------------------
// CUSUM
// ---------------------------------------------------------------------------

/// Baseline statistics fixed once the calibration window closes.
#[derive(Debug, Clone, PartialEq)]
struct ArmedCusum {
    mu: f64,
    sigma: f64,
    k: f64,
    h: f64,
    s: f64,
    peak: f64,
    last_zero: usize,
}

/// The alarm record frozen at the first threshold crossing (mirrors the
/// batch scan's early return).
#[derive(Debug, Clone, Copy, PartialEq)]
struct CusumAlarmMark {
    alarm_bin: usize,
    onset_bin: usize,
    peak_sigmas: f64,
}

/// Complete state of a [`StreamingCusum`], snapshot/restorable so the
/// detector survives a checkpoint fork.
#[derive(Debug, Clone, PartialEq)]
pub struct CusumState {
    calib: Vec<u64>,
    armed: Option<ArmedCusum>,
    bins_seen: usize,
    alarm: Option<CusumAlarmMark>,
}

/// Online one-sided CUSUM: bit-for-bit equivalent to
/// [`crate::cusum::CusumDetector::scan`] over the pushed prefix.
///
/// The first `calibration_bins` pushes only accumulate the baseline;
/// the detector arms on the next push (computing `mu`/`sigma` with the
/// same [`mean`]/[`std_dev`] calls as the batch scan, on the same `f64`
/// conversion, so the floating-point results are identical) and then
/// runs the identical recurrence. Once the alarm fires the statistic
/// freezes, exactly like the batch scan's early return.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingCusum {
    calibration_bins: usize,
    slack_sigmas: f64,
    threshold_sigmas: f64,
    state: CusumState,
}

impl StreamingCusum {
    /// Creates a streaming detector with the same parameters (and the
    /// same panics) as [`crate::cusum::CusumDetector::new`].
    ///
    /// # Panics
    ///
    /// Panics if `calibration_bins < 2`, or if the slack/threshold are
    /// non-positive.
    pub fn new(calibration_bins: usize, slack_sigmas: f64, threshold_sigmas: f64) -> Self {
        assert!(calibration_bins >= 2, "need at least 2 calibration bins");
        assert!(slack_sigmas > 0.0, "slack must be positive");
        assert!(threshold_sigmas > 0.0, "threshold must be positive");
        StreamingCusum {
            calibration_bins,
            slack_sigmas,
            threshold_sigmas,
            state: CusumState {
                calib: Vec::new(),
                armed: None,
                bins_seen: 0,
                alarm: None,
            },
        }
    }

    /// The conventional setting, mirroring
    /// [`crate::cusum::CusumDetector::conventional`].
    pub fn conventional() -> Self {
        Self::new(50, 0.5, 8.0)
    }

    /// Bins required before the first sample can be scanned.
    pub fn needed_bins(&self) -> usize {
        self.calibration_bins + 1
    }

    /// Snapshot of the full detector state.
    pub fn snapshot(&self) -> CusumState {
        self.state.clone()
    }

    /// Restores a previously snapshot state.
    pub fn restore(&mut self, state: CusumState) {
        self.state = state;
    }

    /// Forks the detector mid-stream; the fork and the original evolve
    /// identically when fed the same suffix.
    pub fn fork(&self) -> Self {
        self.clone()
    }

    /// Merges a same-lineage peer (one of the two states must be a
    /// prefix-continuation of the other, the shape checkpoint forking
    /// produces): adopts whichever has consumed more bins, which also
    /// carries the earliest alarm on that lineage.
    pub fn merge(&mut self, other: &Self) {
        if other.state.bins_seen > self.state.bins_seen {
            self.state = other.state.clone();
        }
    }

    /// Batch scan of everything pushed so far: equals
    /// `CusumDetector::scan` on the same prefix, bit for bit.
    pub fn scan(&self) -> CusumScan {
        if self.state.bins_seen <= self.calibration_bins {
            return CusumScan::TooFewBins {
                needed: self.needed_bins(),
                got: self.state.bins_seen,
            };
        }
        if let Some(mark) = &self.state.alarm {
            return CusumScan::Report(CusumReport {
                detected: true,
                alarm_bin: Some(mark.alarm_bin),
                onset_bin: Some(mark.onset_bin),
                peak_sigmas: mark.peak_sigmas,
            });
        }
        let armed = self
            .state
            .armed
            .as_ref()
            .expect("armed once past calibration");
        CusumScan::Report(CusumReport {
            detected: false,
            alarm_bin: None,
            onset_bin: None,
            peak_sigmas: armed.peak / armed.sigma,
        })
    }
}

impl StreamingDetector for StreamingCusum {
    fn label(&self) -> &'static str {
        "cusum"
    }

    fn push(&mut self, bytes: u64) -> Option<Alarm> {
        let i = self.state.bins_seen;
        self.state.bins_seen += 1;
        if self.state.alarm.is_some() {
            // Frozen: the batch scan early-returns at the alarm bin, so
            // later bins cannot change the verdict.
            return None;
        }
        if i < self.calibration_bins {
            self.state.calib.push(bytes);
            return None;
        }
        if self.state.armed.is_none() {
            // Arm with the exact batch-scan arithmetic: same f64
            // conversion, same mean/std_dev calls, same clamps.
            let calib: Vec<f64> = self.state.calib.iter().map(|&b| b as f64).collect();
            let mu = mean(&calib);
            let sigma = std_dev(&calib).max(mu.abs() * 1e-3).max(1.0);
            self.state.armed = Some(ArmedCusum {
                mu,
                sigma,
                k: self.slack_sigmas * sigma,
                h: self.threshold_sigmas * sigma,
                s: 0.0,
                peak: 0.0,
                last_zero: self.calibration_bins,
            });
        }
        let armed = self.state.armed.as_mut().expect("just armed");
        armed.s = (armed.s + (bytes as f64 - armed.mu - armed.k)).max(0.0);
        if armed.s == 0.0 {
            armed.last_zero = i;
        }
        if armed.s > armed.peak {
            armed.peak = armed.s;
        }
        if armed.s > armed.h {
            let mark = CusumAlarmMark {
                alarm_bin: i,
                onset_bin: armed.last_zero + 1,
                peak_sigmas: armed.peak / armed.sigma,
            };
            self.state.alarm = Some(mark);
            return Some(Alarm {
                detector: "cusum",
                bin: i,
                statistic: mark.peak_sigmas,
            });
        }
        None
    }

    fn bins_seen(&self) -> usize {
        self.state.bins_seen
    }
}

// ---------------------------------------------------------------------------
// Rate
// ---------------------------------------------------------------------------

/// Complete state of a [`StreamingRate`]: the EWMA detector itself is
/// already an incremental state machine, so the state wraps it whole.
#[derive(Debug, Clone, PartialEq)]
pub struct RateState(RateDetector);

/// Online EWMA-utilization detector: a thin alarm-edge wrapper around
/// [`RateDetector::observe`], so equivalence with the batch
/// [`RateDetector::run`] is exact by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingRate {
    det: RateDetector,
}

impl StreamingRate {
    /// Wraps a configured [`RateDetector`].
    pub fn new(det: RateDetector) -> Self {
        StreamingRate { det }
    }

    /// The conventional flooding-detector setting, mirroring
    /// [`RateDetector::conventional`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bps` or `bin_secs` is out of domain.
    pub fn conventional(capacity_bps: f64, bin_secs: f64) -> Self {
        Self::new(RateDetector::conventional(capacity_bps, bin_secs))
    }

    /// Current EWMA utilization.
    pub fn utilization(&self) -> f64 {
        self.det.utilization()
    }

    /// The report for everything pushed so far: equals
    /// `RateDetector::run` on the same prefix, bit for bit.
    pub fn report(&self) -> DetectionReport {
        self.det.report()
    }

    /// Snapshot of the full detector state.
    pub fn snapshot(&self) -> RateState {
        RateState(self.det.clone())
    }

    /// Restores a previously snapshot state.
    pub fn restore(&mut self, state: RateState) {
        self.det = state.0;
    }

    /// Forks the detector mid-stream.
    pub fn fork(&self) -> Self {
        self.clone()
    }

    /// Merges a same-lineage peer: adopts whichever has consumed more
    /// bins (see [`StreamingCusum::merge`]).
    pub fn merge(&mut self, other: &Self) {
        if other.report().total_bins > self.report().total_bins {
            self.det = other.det.clone();
        }
    }
}

impl StreamingDetector for StreamingRate {
    fn label(&self) -> &'static str {
        "rate"
    }

    fn push(&mut self, bytes: u64) -> Option<Alarm> {
        let had_alarm = self.det.report().first_alarm_bin.is_some();
        let alarm_now = self.det.observe(bytes);
        if alarm_now && !had_alarm {
            let rep = self.det.report();
            return Some(Alarm {
                detector: "rate",
                bin: rep.first_alarm_bin.expect("alarm just fired"),
                statistic: self.det.utilization(),
            });
        }
        None
    }

    fn bins_seen(&self) -> usize {
        self.det.report().total_bins
    }
}

// ---------------------------------------------------------------------------
// Spectral
// ---------------------------------------------------------------------------

/// Complete state of a [`StreamingSpectral`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpectralState {
    buf: VecDeque<u64>,
    bins_seen: usize,
    since_eval: usize,
    alarm: Option<(usize, f64)>,
    last: Option<SpectralReport>,
}

/// Windowed online periodogram: keeps the last `window` bins and runs a
/// full [`SpectralDetector::sweep`] over them every `stride` pushes
/// once the window is full.
///
/// Unlike the CUSUM/rate scorers this is *not* bit-equal to a batch
/// sweep of the whole series — the sliding window is the point (an
/// online defender cannot hold the whole run, and the attack's period
/// is stationary within a window). The documented contract is that
/// each evaluation equals a batch sweep of exactly the buffered window.
#[derive(Debug, Clone)]
pub struct StreamingSpectral {
    det: SpectralDetector,
    window: usize,
    stride: usize,
    state: SpectralState,
}

impl StreamingSpectral {
    /// Creates a windowed scorer around a configured
    /// [`SpectralDetector`].
    ///
    /// # Panics
    ///
    /// Panics if `window < 4` (the Goertzel floor) or `stride == 0`.
    pub fn new(det: SpectralDetector, window: usize, stride: usize) -> Self {
        assert!(window >= 4, "window must cover at least 4 bins");
        assert!(stride >= 1, "stride must be at least 1");
        StreamingSpectral {
            det,
            window,
            stride,
            state: SpectralState {
                buf: VecDeque::with_capacity(window),
                bins_seen: 0,
                since_eval: 0,
                alarm: None,
                last: None,
            },
        }
    }

    /// A conventional setting for 100 ms bins: a 128-bin (12.8 s)
    /// window swept every 16 bins over periods 10–80 samples with the
    /// noise-floor threshold from [`SpectralDetector`].
    pub fn conventional() -> Self {
        Self::new(SpectralDetector::new(10, 80, 15.0), 128, 16)
    }

    /// The most recent windowed sweep, if the window has filled.
    pub fn last_report(&self) -> Option<&SpectralReport> {
        self.state.last.as_ref()
    }

    /// Snapshot of the full detector state.
    pub fn snapshot(&self) -> SpectralState {
        self.state.clone()
    }

    /// Restores a previously snapshot state.
    pub fn restore(&mut self, state: SpectralState) {
        self.state = state;
    }

    /// Forks the detector mid-stream.
    pub fn fork(&self) -> Self {
        self.clone()
    }

    /// Merges a same-lineage peer: adopts whichever has consumed more
    /// bins (see [`StreamingCusum::merge`]).
    pub fn merge(&mut self, other: &Self) {
        if other.state.bins_seen > self.state.bins_seen {
            self.state = other.state.clone();
        }
    }
}

impl StreamingDetector for StreamingSpectral {
    fn label(&self) -> &'static str {
        "spectral"
    }

    fn push(&mut self, bytes: u64) -> Option<Alarm> {
        let i = self.state.bins_seen;
        self.state.bins_seen += 1;
        self.state.buf.push_back(bytes);
        if self.state.buf.len() > self.window {
            self.state.buf.pop_front();
        }
        self.state.since_eval += 1;
        if self.state.buf.len() < self.window || self.state.since_eval < self.stride {
            return None;
        }
        self.state.since_eval = 0;
        let series: Vec<f64> = self.state.buf.iter().map(|&b| b as f64).collect();
        let rep = self.det.sweep(&series);
        let fire = rep.detected && self.state.alarm.is_none();
        let ratio = if rep.median_power > 0.0 {
            rep.peak_power / rep.median_power
        } else {
            0.0
        };
        self.state.last = Some(rep);
        if fire {
            self.state.alarm = Some((i, ratio));
            return Some(Alarm {
                detector: "spectral",
                bin: i,
                statistic: ratio,
            });
        }
        None
    }

    fn bins_seen(&self) -> usize {
        self.state.bins_seen
    }
}

// ---------------------------------------------------------------------------
// Alarm stream serialization
// ---------------------------------------------------------------------------

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes per-run alarm lists into the deterministic `pdos-detect/1`
/// JSON schema emitted by `pdos serve`:
///
/// ```json
/// {"schema":"pdos-detect/1","bin_secs":0.1,"runs":[
///   {"id":"golden/ns2-benign","alarms":[
///     {"detector":"cusum","bin":63,"statistic":9.25}]}]}
/// ```
///
/// Runs appear in the order given; floats use Rust's shortest-roundtrip
/// formatting, so the byte stream is a pure function of the inputs.
pub fn alarm_stream_json(runs: &[(String, Vec<Alarm>)], bin_secs: f64) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"pdos-detect/1\",\"bin_secs\":");
    out.push_str(&format!("{bin_secs}"));
    out.push_str(",\"runs\":[");
    for (ri, (id, alarms)) in runs.iter().enumerate() {
        if ri > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"id\":\"{}\",\"alarms\":[", escape_json(id)));
        for (ai, a) in alarms.iter().enumerate() {
            if ai > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"detector\":\"{}\",\"bin\":{},\"statistic\":{}}}",
                a.detector, a.bin, a.statistic
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cusum::CusumDetector;

    fn step_series(n: usize, step_at: usize, base: u64, jump: u64) -> Vec<u64> {
        (0..n)
            .map(|i| {
                let noise = ((i * 2654435761) % 7) as u64;
                if i >= step_at {
                    base + jump + noise
                } else {
                    base + noise
                }
            })
            .collect()
    }

    /// Bytes per 100 ms bin at a given fraction of a 15 Mbps link.
    fn bin_bytes(frac: f64) -> u64 {
        (15e6 * 0.1 * frac / 8.0) as u64
    }

    #[test]
    fn cusum_streaming_matches_batch_bit_for_bit() {
        for series in [
            step_series(300, 120, 1000, 200),
            step_series(300, usize::MAX, 1000, 0),
            step_series(40, 10, 1000, 500), // too few bins
            step_series(51, 0, 1000, 0),    // exactly one scanned bin
        ] {
            let batch = CusumDetector::conventional().scan(&series);
            let mut s = StreamingCusum::conventional();
            for &b in &series {
                s.push(b);
            }
            assert_eq!(s.scan(), batch, "series len {}", series.len());
        }
    }

    #[test]
    fn cusum_emits_alarm_once_at_the_batch_alarm_bin() {
        let series = step_series(300, 120, 1000, 200);
        let batch = CusumDetector::conventional()
            .scan(&series)
            .into_report()
            .expect("calibrated");
        let mut s = StreamingCusum::conventional();
        let alarms: Vec<Alarm> = series.iter().filter_map(|&b| s.push(b)).collect();
        assert_eq!(alarms.len(), 1);
        assert_eq!(Some(alarms[0].bin), batch.alarm_bin);
        assert_eq!(alarms[0].statistic.to_bits(), batch.peak_sigmas.to_bits());
    }

    #[test]
    fn cusum_scan_reports_too_few_bins_through_calibration() {
        let mut s = StreamingCusum::conventional();
        for i in 0..50 {
            s.push(1000);
            assert_eq!(
                s.scan(),
                CusumScan::TooFewBins {
                    needed: 51,
                    got: i + 1
                }
            );
        }
        s.push(1000);
        assert!(s.scan().report().is_some());
    }

    #[test]
    fn rate_streaming_matches_batch_bit_for_bit() {
        let series: Vec<u64> = (0..200)
            .map(|i| {
                if i % 5 != 0 {
                    bin_bytes(2.0)
                } else {
                    bin_bytes(0.5)
                }
            })
            .collect();
        let batch = RateDetector::conventional(15e6, 0.1).run(&series);
        let mut s = StreamingRate::conventional(15e6, 0.1);
        let alarms: Vec<Alarm> = series.iter().filter_map(|&b| s.push(b)).collect();
        assert_eq!(s.report(), batch);
        assert!(batch.detected);
        assert_eq!(alarms.len(), 1, "alarm edge fires exactly once");
        assert_eq!(Some(alarms[0].bin), batch.first_alarm_bin);
    }

    #[test]
    fn spectral_windowed_evaluation_matches_batch_sweep_of_the_window() {
        // 25-bin pulses fill a 100-bin window: the streaming alarm must
        // agree with a batch sweep over exactly the buffered window.
        let series: Vec<u64> = (0..300)
            .map(|i| if i % 25 < 2 { 80_000 } else { 10_000 })
            .collect();
        let det = SpectralDetector::new(10, 80, 15.0);
        let mut s = StreamingSpectral::new(det.clone(), 100, 10);
        let mut first_alarm = None;
        for (i, &b) in series.iter().enumerate() {
            if let Some(a) = s.push(b) {
                first_alarm = Some(a);
                // Cross-check against a batch sweep of the window that
                // ends at this bin.
                let window: Vec<f64> = series[i + 1 - 100..=i].iter().map(|&v| v as f64).collect();
                let batch = det.sweep(&window);
                assert!(batch.detected, "windowed batch sweep agrees");
                break;
            }
        }
        let alarm = first_alarm.expect("periodic pulses must alarm");
        assert_eq!(alarm.detector, "spectral");
        assert!(alarm.statistic > 15.0);
        assert!(s.last_report().is_some());
    }

    #[test]
    fn spectral_stays_quiet_on_flat_traffic() {
        let mut s = StreamingSpectral::conventional();
        for _ in 0..400 {
            assert_eq!(s.push(10_000), None);
        }
        assert_eq!(s.bins_seen(), 400);
    }

    #[test]
    fn merge_adopts_the_further_advanced_lineage() {
        let series = step_series(300, 120, 1000, 200);
        let mut a = StreamingCusum::conventional();
        for &b in &series[..80] {
            a.push(b);
        }
        let mut b = a.fork();
        for &v in &series[80..] {
            b.push(v);
        }
        a.merge(&b);
        assert_eq!(a, b);
        // Merging the shorter side back is a no-op.
        let snap = b.snapshot();
        let short = StreamingCusum::conventional();
        b.merge(&short);
        assert_eq!(b.snapshot(), snap);
    }

    #[test]
    fn alarm_stream_json_is_deterministic_and_escaped() {
        let runs = vec![
            (
                "golden/ns2-benign".to_string(),
                vec![Alarm {
                    detector: "cusum",
                    bin: 63,
                    statistic: 9.25,
                }],
            ),
            ("odd\"id\\".to_string(), vec![]),
        ];
        let json = alarm_stream_json(&runs, 0.1);
        assert_eq!(
            json,
            "{\"schema\":\"pdos-detect/1\",\"bin_secs\":0.1,\"runs\":[\
             {\"id\":\"golden/ns2-benign\",\"alarms\":[\
             {\"detector\":\"cusum\",\"bin\":63,\"statistic\":9.25}]},\
             {\"id\":\"odd\\\"id\\\\\",\"alarms\":[]}]}"
        );
    }

    proptest::proptest! {
        /// Snapshot/restore at an arbitrary point, with garbage pushed
        /// in between, equals the straight-line push sequence.
        #[test]
        fn prop_snapshot_restore_equals_straight_line(
            series in proptest::collection::vec(0u64..200_000, 10..200),
            cut in 0usize..200,
            garbage in proptest::collection::vec(0u64..200_000, 0..30),
        ) {
            let cut = cut % series.len();
            let mut straight = StreamingCusum::new(8, 0.5, 6.0);
            for &b in &series {
                straight.push(b);
            }
            let mut machine = StreamingCusum::new(8, 0.5, 6.0);
            for &b in &series[..cut] {
                machine.push(b);
            }
            let snap = machine.snapshot();
            for &g in &garbage {
                machine.push(g);
            }
            machine.restore(snap);
            for &b in &series[cut..] {
                machine.push(b);
            }
            proptest::prop_assert_eq!(&machine, &straight);
            proptest::prop_assert_eq!(machine.scan(), straight.scan());
        }

        /// Two forks fed the same suffix stay bit-identical to each
        /// other and to the unforked straight-line detector (mirrors
        /// the simulator's double-fork identity).
        #[test]
        fn prop_double_fork_is_identical(
            series in proptest::collection::vec(0u64..200_000, 10..200),
            cut in 0usize..200,
        ) {
            let cut = cut % series.len();
            let mut base = StreamingRate::conventional(15e6, 0.1);
            for &b in &series[..cut] {
                base.push(b);
            }
            let mut f1 = base.fork();
            let mut f2 = base.fork();
            for &b in &series[cut..] {
                base.push(b);
                f1.push(b);
                f2.push(b);
            }
            proptest::prop_assert_eq!(&f1, &f2);
            proptest::prop_assert_eq!(&f1, &base);
            proptest::prop_assert_eq!(f1.report(), base.report());
        }

        /// Merging a fork's continuation back into the fork point
        /// yields the straight-line state; interleaved merges of the
        /// spectral scorer agree too.
        #[test]
        fn prop_merge_interleavings_equal_straight_line(
            series in proptest::collection::vec(0u64..200_000, 20..200),
            cut in 1usize..200,
        ) {
            let cut = cut % series.len();
            let mut straight = StreamingSpectral::new(
                SpectralDetector::new(3, 12, 2.0), 16, 4);
            for &b in &series {
                straight.push(b);
            }
            let mut a = StreamingSpectral::new(
                SpectralDetector::new(3, 12, 2.0), 16, 4);
            for &b in &series[..cut] {
                a.push(b);
            }
            let mut b = a.fork();
            for &v in &series[cut..] {
                b.push(v);
            }
            a.merge(&b);
            proptest::prop_assert_eq!(a.snapshot(), straight.snapshot());
        }

        /// Streaming CUSUM equals batch scan on arbitrary series,
        /// bit for bit (compares the full scan enum, f64s included).
        #[test]
        fn prop_streaming_cusum_equals_batch(
            series in proptest::collection::vec(0u64..1_000_000, 0..300),
        ) {
            let batch = CusumDetector::new(8, 0.5, 6.0).scan(&series);
            let mut s = StreamingCusum::new(8, 0.5, 6.0);
            for &b in &series {
                s.push(b);
            }
            proptest::prop_assert_eq!(s.scan(), batch);
        }

        /// Streaming rate equals batch run on arbitrary series.
        #[test]
        fn prop_streaming_rate_equals_batch(
            series in proptest::collection::vec(0u64..2_000_000, 0..300),
        ) {
            let batch = RateDetector::conventional(15e6, 0.1).run(&series);
            let mut s = StreamingRate::conventional(15e6, 0.1);
            for &b in &series {
                s.push(b);
            }
            proptest::prop_assert_eq!(s.report(), batch);
        }
    }
}
