//! The campaign runner: generated families through the sweep runner and
//! the topology harness, every outcome audited, everything reported in
//! the stable `pdos-fuzz/1` JSON schema.
//!
//! ## Determinism contract
//!
//! A campaign report is a pure function of its [`CampaignConfig`] fields
//! `(scenarios, master_seed, budget_sim_secs, fault, bands)` — **not**
//! of `jobs` or wall-clock. Dumbbell families run through
//! [`SweepRunner`] under [`SeedPolicy::FromScenario`] in chunks of at
//! most [`CampaignConfig::checkpoint_capacity`] families, so every
//! family's warm-up prefix stays resident (no LRU evictions) and the
//! cold-start counters are scheduling-independent. Topology cases run
//! single-threaded. The report JSON therefore compares byte-identical
//! across `--jobs` settings — CI pins exactly that.

use crate::case::{format_case, CaseParams, DumbbellCase, FuzzCase, TopologyCase};
use crate::gen::{self, Family};
use crate::topo::run_topology;
use pdos_conformance::{check_cusum_equivalence, check_point, digest_bins, ToleranceBands};
use pdos_detect::cusum::CusumDetector;
use pdos_detect::streaming::{StreamingCusum, StreamingDetector};
use pdos_scenarios::experiment::SeededFault;
use pdos_scenarios::runner::{
    ExperimentSpec, RunOutcome, RunRecord, SeedPolicy, SweepRunner, DEFAULT_CHECKPOINT_CAPACITY,
};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Configuration of one fuzz campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Cases to generate (whole families, so a few more may run).
    pub scenarios: usize,
    /// Master seed: shapes generation and the runner's derived seeds.
    pub master_seed: u64,
    /// Budget in *simulated* seconds (`0` = uncapped); see
    /// [`gen::truncate_to_budget`] for the semantics.
    pub budget_sim_secs: u64,
    /// Worker threads for the sweep chunks (`0` = one per CPU). Does not
    /// affect the report bytes.
    pub jobs: usize,
    /// Families per sweep chunk — must not exceed the runner's
    /// checkpoint LRU capacity, or eviction makes the cold-start
    /// counters scheduling-dependent.
    pub checkpoint_capacity: usize,
    /// Deliberately inject this physics bug into every dumbbell case
    /// (self-test drills; topology cases are not faulted).
    pub fault: Option<SeededFault>,
    /// Replay budget per shrink (see `shrink`).
    pub shrink_budget: usize,
    /// Bands enforced on oracle-envelope cases.
    pub bands: ToleranceBands,
}

impl Default for CampaignConfig {
    /// PR-smoke defaults: 200 cases, uncapped budget, CI bands.
    fn default() -> CampaignConfig {
        CampaignConfig {
            scenarios: 200,
            master_seed: 7,
            budget_sim_secs: 0,
            jobs: 0,
            checkpoint_capacity: DEFAULT_CHECKPOINT_CAPACITY,
            fault: None,
            shrink_budget: 64,
            bands: ToleranceBands::ci_default(),
        }
    }
}

/// The campaign's violation taxonomy. Stable string forms (see
/// [`ViolationClass::as_str`]) appear in reports and repro files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationClass {
    /// The run failed hard: worker panic, build error, or a runtime
    /// invariant-checker violation.
    RunFailed,
    /// The drawn pulse parameters were infeasible — the generator is
    /// supposed to never draw these, so reaching it is a generator bug.
    Infeasible,
    /// A recorded analytic value disagreed with an independent
    /// recomputation through `pdos-analysis`.
    OracleIdentity,
    /// The measured gain left `[0, 1]` or went non-finite.
    GainRange,
    /// A right-side point breached the oracle's hard error ceiling.
    OracleBand,
    /// A topology run recorded checker violations or routeless packets.
    TopologyInvariant,
    /// Link-level packet conservation failed on a topology run.
    Conservation,
    /// A run that should carry traffic delivered zero goodput.
    NoTraffic,
    /// The streaming detector disagreed with its batch counterpart on
    /// the case's recorded trace (the equivalence contract of
    /// `pdos_conformance::equivalence`).
    DetectorMismatch,
}

impl ViolationClass {
    /// The stable kebab-case form used in reports and repro files.
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationClass::RunFailed => "run-failed",
            ViolationClass::Infeasible => "infeasible",
            ViolationClass::OracleIdentity => "oracle-identity",
            ViolationClass::GainRange => "gain-range",
            ViolationClass::OracleBand => "oracle-band",
            ViolationClass::TopologyInvariant => "topology-invariant",
            ViolationClass::Conservation => "conservation",
            ViolationClass::NoTraffic => "no-traffic",
            ViolationClass::DetectorMismatch => "detector-mismatch",
        }
    }
}

/// Parses [`ViolationClass::as_str`] output.
impl std::str::FromStr for ViolationClass {
    type Err = String;

    fn from_str(s: &str) -> Result<ViolationClass, String> {
        Ok(match s {
            "run-failed" => ViolationClass::RunFailed,
            "infeasible" => ViolationClass::Infeasible,
            "oracle-identity" => ViolationClass::OracleIdentity,
            "gain-range" => ViolationClass::GainRange,
            "oracle-band" => ViolationClass::OracleBand,
            "topology-invariant" => ViolationClass::TopologyInvariant,
            "conservation" => ViolationClass::Conservation,
            "no-traffic" => ViolationClass::NoTraffic,
            "detector-mismatch" => ViolationClass::DetectorMismatch,
            other => return Err(format!("unknown violation class {other:?}")),
        })
    }
}

/// The stable text form of a campaign fault setting.
pub fn fault_to_str(fault: Option<SeededFault>) -> &'static str {
    match fault {
        None => "none",
        Some(SeededFault::LinkAccounting) => "link-accounting",
        Some(SeededFault::OmitLinkStats) => "omit-link-stats",
        Some(SeededFault::CubicWindow) => "cubic-window",
        Some(SeededFault::CusumDrift) => "cusum-drift",
        Some(SeededFault::ShardSkew) => "shard-skew",
    }
}

/// Parses [`fault_to_str`] output.
///
/// # Errors
///
/// Returns a message naming the unknown fault.
pub fn fault_from_str(s: &str) -> Result<Option<SeededFault>, String> {
    Ok(match s {
        "none" => None,
        "link-accounting" => Some(SeededFault::LinkAccounting),
        "omit-link-stats" => Some(SeededFault::OmitLinkStats),
        "cubic-window" => Some(SeededFault::CubicWindow),
        "cusum-drift" => Some(SeededFault::CusumDrift),
        "shard-skew" => Some(SeededFault::ShardSkew),
        other => return Err(format!("unknown fault {other:?}")),
    })
}

/// One case's verdict in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// The case id.
    pub id: String,
    /// The case class tag (`oracle`, `diverse`, `flash-crowd`,
    /// `parking-lot`, `fat-tree`).
    pub kind: &'static str,
    /// `None` when the case passed, the violation class otherwise.
    pub violation: Option<ViolationClass>,
    /// Bins in the case's bottleneck ingress trace.
    pub n_bins: usize,
    /// The trace fingerprint (the golden file's `digest_bins` scheme);
    /// `None` when the run produced no trace.
    pub digest: Option<u64>,
    /// The measured gain of an attacked dumbbell case.
    pub g_sim: Option<f64>,
}

/// A minimized reproduction attached to a violation by the shrinker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrunkRepro {
    /// The minimized parameters (still reproducing the same class).
    pub params: CaseParams,
    /// The violation detail observed at the minimized parameters.
    pub detail: String,
    /// Replays the shrink consumed.
    pub replays: usize,
}

/// One violation the campaign caught.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignViolation {
    /// The offending case.
    pub case: FuzzCase,
    /// Its violation class.
    pub class: ViolationClass,
    /// The full failure detail.
    pub detail: String,
    /// Filled by the shrinker; `None` until (or unless) shrunk.
    pub shrunk: Option<ShrunkRepro>,
}

/// The full campaign outcome, serializable as `pdos-fuzz/1`.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The master seed the campaign ran under.
    pub master_seed: u64,
    /// Cases requested (`--scenarios`).
    pub scenarios_requested: usize,
    /// The injected fault, if any.
    pub fault: Option<SeededFault>,
    /// Families the generator produced before the budget pass.
    pub families_generated: usize,
    /// Families that ran after the budget pass.
    pub families_run: usize,
    /// Cases generated before the budget pass.
    pub cases_generated: usize,
    /// Cases that ran.
    pub cases_run: usize,
    /// The configured budget (`0` = uncapped).
    pub budget_sim_secs: u64,
    /// Simulated seconds the full generated set would have cost.
    pub planned_sim_secs: u64,
    /// Simulated seconds actually run.
    pub sim_secs_run: u64,
    /// Whether the budget dropped any family.
    pub truncated: bool,
    /// Cold warm-up simulations across all sweep chunks — with family
    /// batching this counts *prefixes*, not cases, so it stays well
    /// under `cases_run` (the amortization evidence).
    pub warmups: usize,
    /// Runs that resumed from a forked checkpoint.
    pub forked_runs: usize,
    /// Oracle-envelope points measured.
    pub oracle_points: usize,
    /// Oracle points right of the gain maximum.
    pub oracle_right: usize,
    /// Right-side points inside the effective band.
    pub oracle_within: usize,
    /// Largest right-side error observed.
    pub oracle_max_abs_err: f64,
    /// Per-case verdicts, in generation order.
    pub results: Vec<CaseResult>,
    /// Violations, in generation order.
    pub violations: Vec<CampaignViolation>,
}

/// What evaluating one dumbbell record concluded.
struct DumbbellEval {
    g_sim: Option<f64>,
    trace: Vec<u64>,
    violation: Option<(ViolationClass, String)>,
    right_err: Option<f64>,
    within: bool,
}

/// Classifies an oracle failure string into the campaign taxonomy. The
/// strings are produced by `check_point` and stable.
fn classify_failure(detail: &str) -> ViolationClass {
    if detail.contains("out of range") {
        ViolationClass::GainRange
    } else if detail.contains("hard ceiling") {
        ViolationClass::OracleBand
    } else {
        ViolationClass::OracleIdentity
    }
}

fn evaluate_dumbbell(
    id: &str,
    c: &DumbbellCase,
    record: &RunRecord,
    bands: &ToleranceBands,
    fault: Option<SeededFault>,
) -> DumbbellEval {
    let mut eval = DumbbellEval {
        g_sim: None,
        trace: Vec::new(),
        violation: None,
        right_err: None,
        within: false,
    };
    match &record.outcome {
        RunOutcome::Failed { reason } => {
            eval.violation = Some((ViolationClass::RunFailed, reason.clone()));
        }
        RunOutcome::Infeasible { reason } => {
            eval.violation = Some((ViolationClass::Infeasible, reason.clone()));
        }
        RunOutcome::Benign {
            goodput_bytes,
            trace,
        } => {
            eval.trace = trace.clone();
            if *goodput_bytes == 0 {
                eval.violation = Some((
                    ViolationClass::NoTraffic,
                    "benign run delivered zero goodput".to_string(),
                ));
            }
        }
        RunOutcome::Point { point, trace } => {
            eval.trace = trace.clone();
            eval.g_sim = Some(point.g_sim);
            let attack = c.attack.expect("point outcome implies an attack").point();
            // Oracle-envelope cases are held to the CI bands; diverse
            // cases only to the identity and range checks (the bands were
            // tuned on the oracle distribution), so their band gate is
            // pushed out of reach.
            let effective = if c.oracle {
                *bands
            } else {
                ToleranceBands {
                    gamma_right: 2.0,
                    ..*bands
                }
            };
            let verdict = check_point(id, &c.scenario(), attack, point, &effective);
            if c.oracle {
                eval.right_err = verdict.right_err;
                eval.within = verdict.within;
            }
            if !verdict.failures.is_empty() {
                let class = classify_failure(&verdict.failures[0]);
                eval.violation = Some((class, verdict.failures.join("; ")));
            }
        }
    }
    // The detector-equivalence stage: cases drawn with detect=on — and
    // every dumbbell case under the cusum-drift drill — hold their
    // recorded trace to the batch-vs-streaming contract. The drill
    // desynchronizes the streaming state by one bin before the check,
    // which the equivalence comparison must flag.
    let drill = fault == Some(SeededFault::CusumDrift);
    if eval.violation.is_none() && !eval.trace.is_empty() && (c.detect || drill) {
        let calib = (eval.trace.len() / 2).max(2);
        let mut streaming = StreamingCusum::new(calib, 0.5, 8.0);
        if drill {
            streaming.push(eval.trace[0]);
        }
        let failures = check_cusum_equivalence(
            id,
            &CusumDetector::new(calib, 0.5, 8.0),
            &mut streaming,
            &eval.trace,
        );
        if !failures.is_empty() {
            eval.violation = Some((ViolationClass::DetectorMismatch, failures.join("; ")));
        }
    }
    eval
}

fn evaluate_topology(c: &TopologyCase) -> (Vec<u64>, Option<(ViolationClass, String)>) {
    let out = run_topology(c);
    let violation = if out.violations > 0 {
        Some((
            ViolationClass::TopologyInvariant,
            format!(
                "{} checker violation(s); first: {}",
                out.violations,
                out.first_violation.as_deref().unwrap_or("<none recorded>")
            ),
        ))
    } else if out.routeless > 0 {
        Some((
            ViolationClass::TopologyInvariant,
            format!("{} packet(s) dropped for lack of a route", out.routeless),
        ))
    } else if !out.conserved {
        Some((
            ViolationClass::Conservation,
            "link-level packet conservation failed".to_string(),
        ))
    } else if out.goodput_bytes == 0 {
        Some((
            ViolationClass::NoTraffic,
            "topology run delivered zero goodput".to_string(),
        ))
    } else {
        None
    };
    (out.bins, violation)
}

/// Builds the runner spec for a dumbbell case under `cfg` (applying the
/// campaign fault, if set). The shard-skew drill additionally forces
/// every case onto the sharded engine: the fault is a no-op unsharded
/// (there are no cross-shard channels to skew), so a drill that left the
/// cases at `shards = 1` would catch nothing.
fn dumbbell_spec(id: &str, c: &DumbbellCase, cfg: &CampaignConfig) -> ExperimentSpec {
    let spec = c.spec(id);
    match cfg.fault {
        Some(f @ SeededFault::ShardSkew) => spec.sharded(c.shards.max(2) as usize).faulted(f),
        Some(f) => spec.faulted(f),
        None => spec,
    }
}

/// Re-evaluates a single case exactly as the campaign would — the
/// shrinker's replay primitive. Under [`SeedPolicy::FromScenario`] the
/// case's physics seed is its own, so a solo replay reproduces the
/// campaign run bit-for-bit regardless of ids or worker counts.
pub fn evaluate_params(
    params: &CaseParams,
    cfg: &CampaignConfig,
) -> Option<(ViolationClass, String)> {
    match params {
        CaseParams::Dumbbell(c) => {
            let spec = dumbbell_spec("replay", c, cfg);
            let record = SweepRunner::new(cfg.master_seed)
                .seed_policy(SeedPolicy::FromScenario)
                .jobs(1)
                .execute_one(&spec);
            evaluate_dumbbell("replay", c, &record, &cfg.bands, cfg.fault).violation
        }
        CaseParams::Topology(c) => evaluate_topology(c).1,
    }
}

/// Runs the campaign (generation → budget → sweeps → audit). Does not
/// shrink — see `shrink::shrink_report` for that pass.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut families = gen::generate(cfg.master_seed, cfg.scenarios);
    let families_generated = families.len();
    let cases_generated: usize = families.iter().map(|f| f.cases.len()).sum();
    let plan = gen::truncate_to_budget(&mut families, cfg.budget_sim_secs);

    // Dumbbell families run through the sweep runner in chunks of at
    // most `checkpoint_capacity` families (one warm-up prefix each), so
    // the checkpoint LRU never evicts and the cold-start counters are
    // deterministic. Caches are per-`run` call, so chunking is also what
    // bounds peak memory to `capacity` simulator images.
    let cap = cfg.checkpoint_capacity.max(1);
    let dumbbell: Vec<&Family> = families.iter().filter(|f| f.is_dumbbell()).collect();
    let mut records: HashMap<String, RunRecord> = HashMap::new();
    let mut warmups = 0;
    let mut forked_runs = 0;
    for chunk in dumbbell.chunks(cap) {
        let specs: Vec<ExperimentSpec> = chunk
            .iter()
            .flat_map(|f| &f.cases)
            .map(|case| {
                let CaseParams::Dumbbell(c) = &case.params else {
                    unreachable!("dumbbell family holds dumbbell cases")
                };
                dumbbell_spec(&case.id, c, cfg)
            })
            .collect();
        let report = SweepRunner::new(cfg.master_seed)
            .seed_policy(SeedPolicy::FromScenario)
            .jobs(cfg.jobs)
            .checkpoint_capacity(cap)
            .run(&specs);
        warmups += report.warmups;
        forked_runs += report.forked_runs;
        for r in report.records {
            records.insert(r.id.clone(), r);
        }
    }

    // Audit every case in generation order (topology cases run here,
    // single-threaded — they are few and must not depend on `jobs`).
    let mut results = Vec::new();
    let mut violations = Vec::new();
    let mut oracle_points = 0;
    let mut oracle_right = 0;
    let mut oracle_within = 0;
    let mut oracle_max_abs_err = 0.0f64;
    for family in &families {
        for case in &family.cases {
            let (violation, trace, g_sim) = match &case.params {
                CaseParams::Dumbbell(c) => {
                    let record = records
                        .get(&case.id)
                        .expect("every dumbbell case was swept");
                    let eval = evaluate_dumbbell(&case.id, c, record, &cfg.bands, cfg.fault);
                    if eval.g_sim.is_some() && c.oracle {
                        oracle_points += 1;
                        if let Some(err) = eval.right_err {
                            oracle_right += 1;
                            oracle_max_abs_err = oracle_max_abs_err.max(err);
                            if eval.within {
                                oracle_within += 1;
                            }
                        }
                    }
                    (eval.violation, eval.trace, eval.g_sim)
                }
                CaseParams::Topology(c) => {
                    let (bins, violation) = evaluate_topology(c);
                    (violation, bins, None)
                }
            };
            results.push(CaseResult {
                id: case.id.clone(),
                kind: case.params.kind_tag(),
                violation: violation.as_ref().map(|(class, _)| *class),
                n_bins: trace.len(),
                digest: (!trace.is_empty()).then(|| digest_bins(&trace)),
                g_sim,
            });
            if let Some((class, detail)) = violation {
                violations.push(CampaignViolation {
                    case: case.clone(),
                    class,
                    detail,
                    shrunk: None,
                });
            }
        }
    }

    CampaignReport {
        master_seed: cfg.master_seed,
        scenarios_requested: cfg.scenarios,
        fault: cfg.fault,
        families_generated,
        families_run: families.len(),
        cases_generated,
        cases_run: results.len(),
        budget_sim_secs: cfg.budget_sim_secs,
        planned_sim_secs: plan.planned_sim_secs,
        sim_secs_run: plan.kept_sim_secs,
        truncated: plan.truncated,
        warmups,
        forked_runs,
        oracle_points,
        oracle_right,
        oracle_within,
        oracle_max_abs_err,
        results,
        violations,
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl CampaignReport {
    /// Whether the campaign found no violations.
    pub fn pass(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serializes the report in the stable `pdos-fuzz/1` schema. No
    /// wall-clock, worker-count or host field enters the output — the
    /// bytes are a pure function of the campaign's deterministic inputs.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        let _ = write!(
            s,
            "{{\"schema\":\"pdos-fuzz/1\",\"master_seed\":{},\
             \"scenarios_requested\":{},\"fault\":{},\
             \"families_generated\":{},\"families_run\":{},\
             \"cases_generated\":{},\"cases_run\":{},\
             \"budget_sim_secs\":{},\"planned_sim_secs\":{},\
             \"sim_secs_run\":{},\"budget_truncated\":{},\
             \"warmups\":{},\"forked_runs\":{},\
             \"oracle\":{{\"points\":{},\"right\":{},\"within\":{},\
             \"max_abs_err\":{}}},\"cases\":[",
            self.master_seed,
            self.scenarios_requested,
            json_str(fault_to_str(self.fault)),
            self.families_generated,
            self.families_run,
            self.cases_generated,
            self.cases_run,
            self.budget_sim_secs,
            self.planned_sim_secs,
            self.sim_secs_run,
            self.truncated,
            self.warmups,
            self.forked_runs,
            self.oracle_points,
            self.oracle_right,
            self.oracle_within,
            self.oracle_max_abs_err,
        );
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"id\":{},\"kind\":{},\"status\":{},\"n_bins\":{},\"digest\":{},\"g_sim\":{}}}",
                json_str(&r.id),
                json_str(r.kind),
                json_str(r.violation.map_or("pass", ViolationClass::as_str)),
                r.n_bins,
                r.digest
                    .map_or_else(|| "null".to_string(), |d| json_str(&format!("{d:#018x}"))),
                r.g_sim
                    .map_or_else(|| "null".to_string(), |g| g.to_string()),
            );
        }
        s.push_str("],\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let shrunk = match &v.shrunk {
                None => "null".to_string(),
                Some(sh) => format!(
                    "{{\"case\":{},\"detail\":{},\"replays\":{}}}",
                    json_str(&format_case(&sh.params)),
                    json_str(&sh.detail),
                    sh.replays
                ),
            };
            let _ = write!(
                s,
                "{{\"id\":{},\"class\":{},\"detail\":{},\"case\":{},\"shrunk\":{}}}",
                json_str(&v.case.id),
                json_str(v.class.as_str()),
                json_str(&v.detail),
                json_str(&format_case(&v.case.params)),
                shrunk,
            );
        }
        s.push_str("]}");
        s
    }

    /// A short human-readable summary for CLI output.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fuzz: {} case(s) in {} family(ies), {} sim-sec ({})",
            self.cases_run,
            self.families_run,
            self.sim_secs_run,
            if self.truncated {
                format!(
                    "budget-truncated from {} case(s) / {} sim-sec",
                    self.cases_generated, self.planned_sim_secs
                )
            } else {
                "within budget".to_string()
            }
        );
        let _ = writeln!(
            s,
            "  warm starts: {} cold warm-up(s), {} forked run(s) \
             (family batching amortizes {} case(s))",
            self.warmups, self.forked_runs, self.cases_run
        );
        if self.oracle_points > 0 {
            let _ = writeln!(
                s,
                "  oracle: {} point(s), {} right-side, {} within band, max |err| {:.4}",
                self.oracle_points, self.oracle_right, self.oracle_within, self.oracle_max_abs_err
            );
        }
        if self.pass() {
            let _ = writeln!(s, "  no violations");
        } else {
            let _ = writeln!(s, "  {} violation(s):", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(s, "    {} [{}]: {}", v.case.id, v.class.as_str(), v.detail);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small config that still exercises dumbbell sweeps: the smallest
    /// master seed whose generated set contains a multi-case dumbbell
    /// family (found by deterministic scan, so the test never flakes).
    fn small_cfg() -> CampaignConfig {
        let seed = (0u64..64)
            .find(|&s| {
                gen::generate(s, 5)
                    .iter()
                    .any(|f| f.is_dumbbell() && f.cases.len() >= 2)
            })
            .expect("some small seed draws a multi-case dumbbell family");
        CampaignConfig {
            scenarios: 5,
            master_seed: seed,
            jobs: 1,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_is_byte_identical_across_worker_counts() {
        let cfg = small_cfg();
        let one = run_campaign(&CampaignConfig { jobs: 1, ..cfg });
        let two = run_campaign(&CampaignConfig { jobs: 2, ..cfg });
        assert_eq!(one.to_json(), two.to_json());
        assert!(one.pass(), "clean physics must pass: {}", one.summary());
    }

    #[test]
    fn family_batching_amortizes_warmups() {
        let cfg = small_cfg();
        let report = run_campaign(&cfg);
        let dumbbell_cases = report
            .results
            .iter()
            .filter(|r| matches!(r.kind, "oracle" | "diverse" | "flash-crowd"))
            .count();
        assert!(dumbbell_cases >= 2, "seed scan guarantees a family");
        assert!(
            report.warmups < dumbbell_cases,
            "prefix sharing must beat one-cold-start-per-case: {} warmups for {} cases",
            report.warmups,
            dumbbell_cases
        );
        assert!(report.forked_runs > 0);
        // Every successful case carries a trace digest.
        for r in &report.results {
            assert!(r.violation.is_some() || r.digest.is_some(), "{}", r.id);
        }
    }

    #[test]
    fn budget_cap_shrinks_the_run_and_is_reported() {
        let base = small_cfg();
        let full = run_campaign(&base);
        let capped = run_campaign(&CampaignConfig {
            budget_sim_secs: full.planned_sim_secs / 2,
            ..base
        });
        assert!(capped.truncated);
        assert!(capped.cases_run < full.cases_run || capped.families_run < full.families_run);
        assert!(capped.sim_secs_run <= full.planned_sim_secs / 2);
        // The capped run is a prefix of the full run, case for case.
        for (c, f) in capped.results.iter().zip(&full.results) {
            assert_eq!(c, f);
        }
        assert!(capped.to_json().contains("\"budget_truncated\":true"));
    }

    #[test]
    fn report_json_is_wellformed_enough() {
        let report = run_campaign(&small_cfg());
        let json = report.to_json();
        assert!(json.starts_with("{\"schema\":\"pdos-fuzz/1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"warmups\":"));
        assert!(!json.contains("wall"), "no wall-clock may enter the report");
    }

    #[test]
    fn class_and_fault_strings_round_trip() {
        use ViolationClass as V;
        for class in [
            V::RunFailed,
            V::Infeasible,
            V::OracleIdentity,
            V::GainRange,
            V::OracleBand,
            V::TopologyInvariant,
            V::Conservation,
            V::NoTraffic,
            V::DetectorMismatch,
        ] {
            assert_eq!(class.as_str().parse::<V>().unwrap(), class);
        }
        assert!("nope".parse::<V>().is_err());
        for fault in [
            None,
            Some(SeededFault::LinkAccounting),
            Some(SeededFault::OmitLinkStats),
            Some(SeededFault::CubicWindow),
            Some(SeededFault::CusumDrift),
            Some(SeededFault::ShardSkew),
        ] {
            assert_eq!(fault_from_str(fault_to_str(fault)).unwrap(), fault);
        }
        assert!(fault_from_str("nope").is_err());
    }
}
