//! The fuzz campaign's case model: the compact drawn parameters of one
//! generated scenario, with an exact text serialization.
//!
//! A case stores the *dimensions the generator drew* — base topology,
//! flow counts, queue discipline, traffic mix, windows, attack point —
//! not the expanded `ScenarioSpec`. That keeps repro files small and
//! diffable, makes the shrinker's transformations trivial (decrement a
//! field, re-expand), and, because every field is an integer, makes the
//! `format_case`/`parse_case` round trip exact with no float-printing
//! subtleties.

use pdos_scenarios::runner::{AttackPoint, ExperimentSpec};
use pdos_scenarios::spec::{BottleneckQueue, ScenarioSpec};
use pdos_sim::time::SimDuration;
use pdos_tcp::cc::CcSpec;

/// The dumbbell preset a case starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseScenario {
    /// The ns-2 dumbbell (§4.1): 15 Mbps RED bottleneck, heterogeneous
    /// 20–460 ms RTTs.
    Ns2,
    /// The testbed dumbbell (§4.2): 10 Mbps bottleneck, 300 ms base RTT.
    Testbed,
}

/// The bottleneck queue discipline a case runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Random Early Detection (the paper's default).
    Red,
    /// Plain tail-drop.
    DropTail,
    /// RED with the accumulation-based refinement.
    AccRed,
}

/// The victim RTT spread of a case (only meaningful on the ns-2 base;
/// the testbed pins its own RTT).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RttProfile {
    /// The paper's heterogeneous 20–460 ms spread.
    Paper,
    /// A tight 40–120 ms cluster (homogeneous victims).
    Narrow,
    /// A 20–800 ms spread (satellite-grade stragglers).
    Wide,
}

/// One drawn attack point, in exact integer units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackParams {
    /// Pulse width, milliseconds.
    pub extent_ms: u32,
    /// Pulse rate, Mbps.
    pub rate_mbps: u32,
    /// Normalized average attack rate γ, thousandths.
    pub gamma_milli: u32,
}

impl AttackParams {
    /// The equivalent floating-point [`AttackPoint`].
    pub fn point(&self) -> AttackPoint {
        AttackPoint {
            t_extent: f64::from(self.extent_ms) / 1000.0,
            r_attack: f64::from(self.rate_mbps) * 1e6,
            gamma: f64::from(self.gamma_milli) / 1000.0,
        }
    }
}

/// A generated dumbbell case: a [`ScenarioSpec`] variation plus at most
/// one attack point (families with several points expand to several
/// cases sharing one scenario, and therefore one warm-start prefix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumbbellCase {
    /// Whether the case sits inside the differential oracle's envelope
    /// (ns-2 base, RED, pure elephants, 3–8 flows, oracle attack ranges,
    /// 4 s/8 s windows) and is therefore held to the tolerance bands,
    /// not just the identity/range/invariant checks.
    pub oracle: bool,
    /// The preset the scenario starts from.
    pub base: BaseScenario,
    /// Long-lived (elephant) victim flows.
    pub n_flows: u32,
    /// Bottleneck queue discipline.
    pub queue: QueueKind,
    /// Short request/response (mice) flows riding along.
    pub mice_flows: u32,
    /// Ambient bottleneck loss, in 1e-4 units (0 = lossless).
    pub loss_e4: u32,
    /// Victim RTT spread.
    pub rtt: RttProfile,
    /// The scenario's physics seed (kept verbatim by the campaign's
    /// `SeedPolicy::FromScenario`, so a case replays bit-identically).
    pub seed: u64,
    /// Warm-up, whole seconds.
    pub warmup_s: u32,
    /// Measurement window, whole seconds.
    pub window_s: u32,
    /// The attack point; `None` measures a benign baseline.
    pub attack: Option<AttackParams>,
    /// The victims' congestion-control algorithm. Oracle-envelope cases
    /// always run [`CcSpec::Aimd`] — the tolerance bands were derived
    /// from the paper's AIMD model — while diverse families draw from
    /// the whole registry.
    pub cc: CcSpec,
    /// Whether the case runs with the engine's per-link detector tap
    /// enabled and holds its recorded trace to the batch-vs-streaming
    /// detector-equivalence contract. Drawn on diverse families only;
    /// oracle cases pin `false` (the tap is physics-neutral, but the
    /// envelope stays exactly the distribution the bands were tuned on).
    pub detect: bool,
    /// Engine shards the case runs on (`1` = the classic sequential
    /// engine). The sharded engine is bit-identical to the unsharded
    /// one by contract, so this dimension exists to fuzz exactly that
    /// claim over drawn scenarios. Oracle cases pin `1`.
    pub shards: u32,
    /// Flash-crowd mice riding along (the `tests/flash_crowd.rs`
    /// shapes: 30-segment bursts, 400 ms think time, 29 ms arrival
    /// stagger), all arriving at the warm-up boundary — benign traffic
    /// whose onset is as sharp as an attack's. `0` = no crowd; drawn on
    /// its own family class.
    pub crowd: u32,
}

impl DumbbellCase {
    /// Expands the drawn dimensions into a concrete [`ScenarioSpec`].
    pub fn scenario(&self) -> ScenarioSpec {
        let mut s = match self.base {
            BaseScenario::Ns2 => ScenarioSpec::ns2_dumbbell(self.n_flows as usize),
            BaseScenario::Testbed => ScenarioSpec::testbed(),
        };
        s.n_flows = self.n_flows as usize;
        s.queue = match self.queue {
            QueueKind::Red => BottleneckQueue::Red,
            QueueKind::DropTail => BottleneckQueue::DropTail,
            QueueKind::AccRed => BottleneckQueue::AccRed,
        };
        s.mice_flows = self.mice_flows as usize;
        s.bottleneck_loss = f64::from(self.loss_e4) * 1e-4;
        if self.base == BaseScenario::Ns2 {
            // The testbed pins its own RTT; profiles apply to ns-2 only.
            // All three lower bounds respect the builder's requirement
            // that rtt/2 exceed the bottleneck delay plus 1 ms.
            let (lo, hi) = match self.rtt {
                RttProfile::Paper => (s.rtt_lo, s.rtt_hi),
                RttProfile::Narrow => (0.040, 0.120),
                RttProfile::Wide => (0.020, 0.800),
            };
            s.rtt_lo = lo;
            s.rtt_hi = hi;
        }
        s.seed = self.seed;
        s.tcp.cc = self.cc;
        s.crowd_flows = self.crowd as usize;
        if self.crowd > 0 {
            // The crowd arrives exactly when the attack would: at the
            // warm-up boundary, so it plays out inside the window.
            s.crowd_at = SimDuration::from_secs(u64::from(self.warmup_s));
        }
        s
    }

    /// Expands the case into the runner's [`ExperimentSpec`] (traced at
    /// the golden 100 ms bins, invariant checkers on).
    pub fn spec(&self, id: &str) -> ExperimentSpec {
        let scenario = self.scenario();
        let spec = match self.attack {
            Some(a) => ExperimentSpec::attacked(id, scenario, a.point()),
            None => ExperimentSpec::benign(id, scenario),
        };
        let spec = spec
            .warmup(SimDuration::from_secs(u64::from(self.warmup_s)))
            .window(SimDuration::from_secs(u64::from(self.window_s)))
            .traced(SimDuration::from_millis(100))
            .checked()
            .sharded(self.shards as usize);
        if self.detect {
            spec.tapped()
        } else {
            spec
        }
    }

    /// Simulated seconds this case costs (the budget unit).
    pub fn sim_secs(&self) -> u64 {
        u64::from(self.warmup_s) + u64::from(self.window_s)
    }
}

/// The non-dumbbell topology shapes the campaign exercises directly on
/// the simulator substrate (no `ScenarioSpec`, no gain protocol — these
/// cases check routing, conservation and invariants under attack on
/// shapes the dumbbell cannot express).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// Three routers in a chain, two bottleneck hops, three flow groups
    /// (long/right/left); the attack targets the middle hop.
    ParkingLot,
    /// A small two-level fat-tree: two aggregation cores joined by the
    /// bottleneck, leaf switches on each side, cross-core flows.
    FatTree,
    /// A struct-of-arrays flow-bank dumbbell: `flows` dense
    /// [`pdos_tcp::bank::SenderBank`] flows per host pair, bound through
    /// flow-range bindings — the high-flow-count hot path the bench
    /// tiers gate, fuzzed so bank regressions shrink to minimal repros.
    FlowBank,
}

/// A generated non-dumbbell topology case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyCase {
    /// Which shape to build.
    pub kind: TopoKind,
    /// Host pairs per flow group (parking lot), leaf switches per core
    /// side (fat tree), or bank host pairs (flow bank).
    pub groups: u32,
    /// Dense bank flows per host pair — the flow-bank kind's
    /// high-flow-count dimension. Always `0` on the classic kinds, whose
    /// flow count is implied by `groups`, so legacy repro lines (which
    /// carry no `flows=` token) re-serialize byte-identically.
    pub flows: u32,
    /// The topology/physics seed.
    pub seed: u64,
    /// Total simulated run length, whole seconds (the attack starts a
    /// third of the way in).
    pub run_s: u32,
    /// Pulse width, milliseconds.
    pub extent_ms: u32,
    /// Pulse rate, Mbps.
    pub rate_mbps: u32,
    /// Pulse spacing, milliseconds.
    pub space_ms: u32,
}

impl TopologyCase {
    /// Simulated seconds this case costs (the budget unit).
    pub fn sim_secs(&self) -> u64 {
        u64::from(self.run_s)
    }
}

/// The drawn parameters of one case, either shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseParams {
    /// A dumbbell case running the full gain protocol.
    Dumbbell(DumbbellCase),
    /// A direct-substrate topology case.
    Topology(TopologyCase),
}

impl CaseParams {
    /// Simulated seconds this case costs (the budget unit).
    pub fn sim_secs(&self) -> u64 {
        match self {
            CaseParams::Dumbbell(c) => c.sim_secs(),
            CaseParams::Topology(c) => c.sim_secs(),
        }
    }

    /// A short display tag for reports (`oracle`, `diverse`,
    /// `flash-crowd`, `parking-lot`, `fat-tree`).
    pub fn kind_tag(&self) -> &'static str {
        match self {
            CaseParams::Dumbbell(c) if c.oracle => "oracle",
            CaseParams::Dumbbell(c) if c.crowd > 0 => "flash-crowd",
            CaseParams::Dumbbell(_) => "diverse",
            CaseParams::Topology(c) => match c.kind {
                TopoKind::ParkingLot => "parking-lot",
                TopoKind::FatTree => "fat-tree",
                TopoKind::FlowBank => "flow-bank",
            },
        }
    }
}

/// One generated case: a stable id plus its drawn parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// Stable id, `fuzz/<family>/<case>` — also the run id inside sweep
    /// records and reports.
    pub id: String,
    /// The drawn parameters.
    pub params: CaseParams,
}

/// Serializes a case to its exact single-line text form (the `case =`
/// payload of repro files). Inverse of [`parse_case`].
pub fn format_case(params: &CaseParams) -> String {
    match params {
        CaseParams::Dumbbell(c) => {
            let class = if c.oracle { "oracle" } else { "diverse" };
            let base = match c.base {
                BaseScenario::Ns2 => "ns2",
                BaseScenario::Testbed => "testbed",
            };
            let queue = match c.queue {
                QueueKind::Red => "red",
                QueueKind::DropTail => "droptail",
                QueueKind::AccRed => "accred",
            };
            let rtt = match c.rtt {
                RttProfile::Paper => "paper",
                RttProfile::Narrow => "narrow",
                RttProfile::Wide => "wide",
            };
            let attack = match c.attack {
                None => "none".to_string(),
                Some(a) => format!("{}/{}/{}", a.extent_ms, a.rate_mbps, a.gamma_milli),
            };
            let mut line = format!(
                "topo=dumbbell class={class} base={base} flows={} queue={queue} mice={} \
                 loss_e4={} rtt={rtt} seed={} warmup_s={} window_s={} attack={attack}",
                c.n_flows, c.mice_flows, c.loss_e4, c.seed, c.warmup_s, c.window_s
            );
            // Emitted only for non-default algorithms, so every repro
            // line written before the CC registry existed still
            // re-serializes byte-identically (absent ≡ aimd).
            if c.cc != CcSpec::Aimd {
                line.push_str(" cc=");
                line.push_str(c.cc.key());
            }
            // Same legacy rule as cc=: only the non-default value emits
            // a token, so pre-detector repro lines stay byte-stable.
            if c.detect {
                line.push_str(" detect=on");
            }
            // And again for the sharding and flash-crowd dimensions:
            // shards=1 (the sequential engine) and crowd=0 (no crowd)
            // stay implicit, so pre-sharding repro lines re-serialize
            // byte-identically.
            if c.shards != 1 {
                line.push_str(&format!(" shards={}", c.shards));
            }
            if c.crowd != 0 {
                line.push_str(&format!(" crowd={}", c.crowd));
            }
            line
        }
        CaseParams::Topology(c) => {
            let kind = match c.kind {
                TopoKind::ParkingLot => "parking-lot",
                TopoKind::FatTree => "fat-tree",
                TopoKind::FlowBank => "flow-bank",
            };
            let mut line = format!(
                "topo={kind} groups={} seed={} run_s={} extent_ms={} rate_mbps={} space_ms={}",
                c.groups, c.seed, c.run_s, c.extent_ms, c.rate_mbps, c.space_ms
            );
            // Same legacy rule as the dumbbell's cc=/detect= tokens:
            // only a non-zero bank flow count emits a token, so every
            // parking-lot/fat-tree repro line written before the
            // flow-bank kind existed re-serializes byte-identically.
            if c.flows != 0 {
                line.push_str(&format!(" flows={}", c.flows));
            }
            line
        }
    }
}

/// Parses the output of [`format_case`] back into parameters.
///
/// # Errors
///
/// Returns a message naming the missing or malformed token.
pub fn parse_case(line: &str) -> Result<CaseParams, String> {
    let mut kv = std::collections::HashMap::new();
    for token in line.split_whitespace() {
        let (k, v) = token
            .split_once('=')
            .ok_or_else(|| format!("malformed token {token:?} (expected key=value)"))?;
        kv.insert(k, v);
    }
    let fetch = |k: &str| -> Result<&str, String> {
        kv.get(k).copied().ok_or_else(|| format!("missing {k}="))
    };
    let int = |k: &str| -> Result<u32, String> {
        fetch(k)?
            .parse::<u32>()
            .map_err(|e| format!("bad {k}: {e}"))
    };
    let long = |k: &str| -> Result<u64, String> {
        fetch(k)?
            .parse::<u64>()
            .map_err(|e| format!("bad {k}: {e}"))
    };

    match fetch("topo")? {
        "dumbbell" => {
            let oracle = match fetch("class")? {
                "oracle" => true,
                "diverse" => false,
                other => return Err(format!("bad class: {other:?}")),
            };
            let base = match fetch("base")? {
                "ns2" => BaseScenario::Ns2,
                "testbed" => BaseScenario::Testbed,
                other => return Err(format!("bad base: {other:?}")),
            };
            let queue = match fetch("queue")? {
                "red" => QueueKind::Red,
                "droptail" => QueueKind::DropTail,
                "accred" => QueueKind::AccRed,
                other => return Err(format!("bad queue: {other:?}")),
            };
            let rtt = match fetch("rtt")? {
                "paper" => RttProfile::Paper,
                "narrow" => RttProfile::Narrow,
                "wide" => RttProfile::Wide,
                other => return Err(format!("bad rtt: {other:?}")),
            };
            let attack = match fetch("attack")? {
                "none" => None,
                spec => {
                    let parts: Vec<&str> = spec.split('/').collect();
                    let [e, r, g] = parts.as_slice() else {
                        return Err(format!("bad attack: {spec:?} (want e/r/g)"));
                    };
                    Some(AttackParams {
                        extent_ms: e.parse().map_err(|x| format!("bad extent: {x}"))?,
                        rate_mbps: r.parse().map_err(|x| format!("bad rate: {x}"))?,
                        gamma_milli: g.parse().map_err(|x| format!("bad gamma: {x}"))?,
                    })
                }
            };
            let cc = match kv.get("cc") {
                None => CcSpec::Aimd,
                Some(v) => CcSpec::from_key(v).ok_or_else(|| format!("bad cc: {v:?}"))?,
            };
            let detect = match kv.get("detect") {
                None => false,
                Some(&"on") => true,
                Some(v) => return Err(format!("bad detect: {v:?} (want on)")),
            };
            let shards = match kv.get("shards") {
                None => 1,
                Some(v) => match v.parse::<u32>() {
                    Ok(n) if n >= 1 => n,
                    Ok(n) => return Err(format!("bad shards: {n} (want >= 1)")),
                    Err(e) => return Err(format!("bad shards: {e}")),
                },
            };
            let crowd = match kv.get("crowd") {
                None => 0,
                Some(v) => v.parse::<u32>().map_err(|e| format!("bad crowd: {e}"))?,
            };
            Ok(CaseParams::Dumbbell(DumbbellCase {
                oracle,
                base,
                n_flows: int("flows")?,
                queue,
                mice_flows: int("mice")?,
                loss_e4: int("loss_e4")?,
                rtt,
                seed: long("seed")?,
                warmup_s: int("warmup_s")?,
                window_s: int("window_s")?,
                attack,
                cc,
                detect,
                shards,
                crowd,
            }))
        }
        kind @ ("parking-lot" | "fat-tree" | "flow-bank") => {
            let kind = match kind {
                "parking-lot" => TopoKind::ParkingLot,
                "fat-tree" => TopoKind::FatTree,
                _ => TopoKind::FlowBank,
            };
            // Absent ≡ 0 keeps pre-flow-bank repro lines parsing; the
            // flow-bank kind itself requires a positive count.
            let flows = match kv.get("flows") {
                None => 0,
                Some(v) => v.parse::<u32>().map_err(|e| format!("bad flows: {e}"))?,
            };
            if kind == TopoKind::FlowBank && flows == 0 {
                return Err("flow-bank needs flows= >= 1".to_string());
            }
            Ok(CaseParams::Topology(TopologyCase {
                kind,
                groups: int("groups")?,
                flows,
                seed: long("seed")?,
                run_s: int("run_s")?,
                extent_ms: int("extent_ms")?,
                rate_mbps: int("rate_mbps")?,
                space_ms: int("space_ms")?,
            }))
        }
        other => Err(format!("bad topo: {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dumbbell() -> CaseParams {
        CaseParams::Dumbbell(DumbbellCase {
            oracle: false,
            base: BaseScenario::Ns2,
            n_flows: 5,
            queue: QueueKind::DropTail,
            mice_flows: 2,
            loss_e4: 20,
            rtt: RttProfile::Wide,
            seed: 0xDEAD_BEEF,
            warmup_s: 3,
            window_s: 6,
            attack: Some(AttackParams {
                extent_ms: 75,
                rate_mbps: 32,
                gamma_milli: 413,
            }),
            cc: CcSpec::Aimd,
            detect: false,
            shards: 1,
            crowd: 0,
        })
    }

    #[test]
    fn case_text_round_trips_exactly() {
        let cases = [
            sample_dumbbell(),
            CaseParams::Dumbbell(DumbbellCase {
                oracle: true,
                base: BaseScenario::Ns2,
                n_flows: 4,
                queue: QueueKind::Red,
                mice_flows: 0,
                loss_e4: 0,
                rtt: RttProfile::Paper,
                seed: 1,
                warmup_s: 4,
                window_s: 8,
                attack: None,
                cc: CcSpec::Aimd,
                detect: false,
                shards: 1,
                crowd: 0,
            }),
            CaseParams::Dumbbell(DumbbellCase {
                oracle: false,
                base: BaseScenario::Ns2,
                n_flows: 6,
                queue: QueueKind::Red,
                mice_flows: 1,
                loss_e4: 0,
                rtt: RttProfile::Narrow,
                seed: 42,
                warmup_s: 2,
                window_s: 4,
                attack: Some(AttackParams {
                    extent_ms: 50,
                    rate_mbps: 25,
                    gamma_milli: 300,
                }),
                cc: CcSpec::BbrLite,
                detect: true,
                shards: 4,
                crowd: 12,
            }),
            CaseParams::Topology(TopologyCase {
                kind: TopoKind::FatTree,
                groups: 2,
                flows: 0,
                seed: 99,
                run_s: 16,
                extent_ms: 50,
                rate_mbps: 25,
                space_ms: 450,
            }),
            CaseParams::Topology(TopologyCase {
                kind: TopoKind::FlowBank,
                groups: 2,
                flows: 2500,
                seed: 4242,
                run_s: 8,
                extent_ms: 75,
                rate_mbps: 30,
                space_ms: 400,
            }),
        ];
        for c in &cases {
            let line = format_case(c);
            let back = parse_case(&line).expect("round trip parses");
            assert_eq!(&back, c, "line: {line}");
            assert_eq!(format_case(&back), line, "stable re-serialization");
        }
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_case("topo=dumbbell").is_err(), "missing fields");
        assert!(parse_case("topo=moebius groups=1").is_err(), "bad shape");
        assert!(parse_case("garbage").is_err(), "no key=value");
        let line = format_case(&sample_dumbbell()).replace("flows=5", "flows=x");
        assert!(parse_case(&line).is_err(), "non-integer field");
        let line = format!("{} cc=tahoe99", format_case(&sample_dumbbell()));
        assert!(parse_case(&line).is_err(), "unknown cc key");
    }

    #[test]
    fn cc_token_defaults_to_aimd_and_stays_off_legacy_lines() {
        // Pre-registry repro lines carry no cc= token; they must parse
        // to the aimd default and re-serialize without gaining one.
        let legacy = format_case(&sample_dumbbell());
        assert!(!legacy.contains("cc="), "aimd stays implicit: {legacy}");
        let CaseParams::Dumbbell(parsed) = parse_case(&legacy).expect("legacy line parses") else {
            unreachable!()
        };
        assert_eq!(parsed.cc, CcSpec::Aimd);
        // Every registered algorithm round-trips through its key.
        for cc in CcSpec::ALL {
            let CaseParams::Dumbbell(mut c) = sample_dumbbell() else {
                unreachable!()
            };
            c.cc = cc;
            let line = format_case(&CaseParams::Dumbbell(c.clone()));
            assert_eq!(line.contains("cc="), cc != CcSpec::Aimd, "{line}");
            let back = parse_case(&line).expect("cc line parses");
            assert_eq!(back, CaseParams::Dumbbell(c));
        }
    }

    #[test]
    fn detect_token_defaults_off_and_stays_off_legacy_lines() {
        // Repro lines written before the detector dimension existed
        // carry no detect= token; they must parse to `false` and
        // re-serialize byte-identically (absent ≡ off).
        let legacy = format_case(&sample_dumbbell());
        assert!(!legacy.contains("detect="), "off stays implicit: {legacy}");
        let CaseParams::Dumbbell(parsed) = parse_case(&legacy).expect("legacy line parses") else {
            unreachable!()
        };
        assert!(!parsed.detect);
        assert_eq!(format_case(&CaseParams::Dumbbell(parsed)), legacy);
        // detect=on round-trips and flips the spec's tap on.
        let CaseParams::Dumbbell(mut c) = sample_dumbbell() else {
            unreachable!()
        };
        c.detect = true;
        let line = format_case(&CaseParams::Dumbbell(c.clone()));
        assert!(line.ends_with(" detect=on"), "{line}");
        assert_eq!(parse_case(&line).unwrap(), CaseParams::Dumbbell(c.clone()));
        assert!(c.spec("fuzz/test/c0").detect, "detect=on enables the tap");
        c.detect = false;
        assert!(!c.spec("fuzz/test/c0").detect);
        // A malformed value is rejected, not silently ignored.
        let bad = format!("{legacy} detect=off");
        assert!(parse_case(&bad).is_err(), "only 'on' is a valid value");
    }

    #[test]
    fn shards_and_crowd_tokens_default_and_stay_off_legacy_lines() {
        // Repro lines written before the sharded engine and the
        // flash-crowd class existed carry neither token; they must
        // parse to the defaults and re-serialize byte-identically.
        let legacy = format_case(&sample_dumbbell());
        assert!(!legacy.contains("shards="), "1 stays implicit: {legacy}");
        assert!(!legacy.contains("crowd="), "0 stays implicit: {legacy}");
        let CaseParams::Dumbbell(parsed) = parse_case(&legacy).expect("legacy line parses") else {
            unreachable!()
        };
        assert_eq!((parsed.shards, parsed.crowd), (1, 0));
        assert_eq!(format_case(&CaseParams::Dumbbell(parsed)), legacy);
        // Non-default values round-trip and reach the expanded spec.
        let CaseParams::Dumbbell(mut c) = sample_dumbbell() else {
            unreachable!()
        };
        c.shards = 2;
        c.crowd = 9;
        let line = format_case(&CaseParams::Dumbbell(c.clone()));
        assert!(line.ends_with(" shards=2 crowd=9"), "{line}");
        assert_eq!(parse_case(&line).unwrap(), CaseParams::Dumbbell(c.clone()));
        assert_eq!(c.spec("fuzz/test/c0").shards, 2);
        let scenario = c.scenario();
        assert_eq!(scenario.crowd_flows, 9);
        assert_eq!(
            scenario.crowd_at,
            SimDuration::from_secs(u64::from(c.warmup_s)),
            "the crowd arrives at the warm-up boundary"
        );
        // Malformed values are rejected, not silently defaulted.
        assert!(parse_case(&format!("{legacy} shards=0")).is_err());
        assert!(parse_case(&format!("{legacy} shards=x")).is_err());
        assert!(parse_case(&format!("{legacy} crowd=-3")).is_err());
    }

    #[test]
    fn flows_token_stays_off_legacy_topology_lines() {
        // Parking-lot/fat-tree repro lines written before the flow-bank
        // kind carried no flows= token; they must parse to 0 and
        // re-serialize byte-identically.
        let legacy = "topo=parking-lot groups=2 seed=11 run_s=15 extent_ms=75 \
                      rate_mbps=30 space_ms=400";
        let CaseParams::Topology(parsed) = parse_case(legacy).expect("legacy line parses") else {
            unreachable!()
        };
        assert_eq!(parsed.flows, 0);
        assert_eq!(format_case(&CaseParams::Topology(parsed)), legacy);

        // The flow-bank kind always emits its count and rejects zero.
        let bank = CaseParams::Topology(TopologyCase {
            kind: TopoKind::FlowBank,
            groups: 1,
            flows: 1000,
            seed: 3,
            run_s: 6,
            extent_ms: 50,
            rate_mbps: 25,
            space_ms: 300,
        });
        let line = format_case(&bank);
        assert!(line.ends_with(" flows=1000"), "{line}");
        assert_eq!(parse_case(&line).unwrap(), bank);
        let zeroed = line.replace(" flows=1000", "");
        assert!(parse_case(&zeroed).is_err(), "flow-bank requires flows=");
        let bad = line.replace("flows=1000", "flows=x");
        assert!(parse_case(&bad).is_err(), "non-integer flows rejected");
    }

    #[test]
    fn dumbbell_case_expands_to_a_buildable_scenario() {
        let CaseParams::Dumbbell(c) = sample_dumbbell() else {
            unreachable!()
        };
        let scenario = c.scenario();
        assert_eq!(scenario.n_flows, 5);
        assert_eq!(scenario.mice_flows, 2);
        assert_eq!(scenario.seed, 0xDEAD_BEEF);
        assert!((scenario.bottleneck_loss - 0.002).abs() < 1e-12);
        // The expansion must satisfy the topology builder's constraints.
        let bench = scenario.build().expect("case expands to a valid topology");
        assert_eq!(bench.flows.len(), 5);
        let spec = c.spec("fuzz/test/c0");
        assert!(spec.checks, "fuzz cases always audit invariants");
        assert!(spec.trace_bin.is_some(), "fuzz cases always trace");
        assert_eq!(c.sim_secs(), 9);
    }

    #[test]
    fn rtt_profiles_respect_builder_bounds() {
        // Every profile × base must expand to a buildable scenario even
        // at the extremes the generator can draw.
        for rtt in [RttProfile::Paper, RttProfile::Narrow, RttProfile::Wide] {
            for base in [BaseScenario::Ns2, BaseScenario::Testbed] {
                let c = DumbbellCase {
                    oracle: false,
                    base,
                    n_flows: 2,
                    queue: QueueKind::Red,
                    mice_flows: 0,
                    loss_e4: 0,
                    rtt,
                    seed: 7,
                    warmup_s: 2,
                    window_s: 4,
                    attack: None,
                    cc: CcSpec::Aimd,
                    detect: false,
                    shards: 1,
                    crowd: 0,
                };
                c.scenario().build().expect("profile builds");
            }
        }
    }
}
