//! The deterministic scenario generator: a seeded stream of case
//! *families*, each a group of cases sharing one warm-up prefix.
//!
//! Generation is a pure function of `(master_seed, n_cases)` — the RNG
//! is consumed in one fixed order, so the same inputs always produce the
//! same families, ids and parameters, on any machine and worker count.
//! The budget pass ([`truncate_to_budget`]) runs *after* generation and
//! drops whole families from the end, so a budgeted campaign is always a
//! prefix of the unbudgeted one — a nightly run strictly extends the PR
//! smoke slice for the same seed.

use crate::case::{
    AttackParams, BaseScenario, CaseParams, DumbbellCase, FuzzCase, QueueKind, RttProfile,
    TopoKind, TopologyCase,
};
use pdos_tcp::cc::CcSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A group of cases sharing one scenario (dumbbell families) or a single
/// direct-substrate topology case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Family {
    /// The family's cases, in draw order.
    pub cases: Vec<FuzzCase>,
}

impl Family {
    /// Whether this family runs through the sweep runner (dumbbell) as
    /// opposed to the direct topology harness.
    pub fn is_dumbbell(&self) -> bool {
        matches!(
            self.cases.first().map(|c| &c.params),
            Some(CaseParams::Dumbbell(_))
        )
    }

    /// Simulated seconds this family costs (the budget unit): the sum of
    /// its cases' warm-up + window (or run) lengths.
    pub fn sim_secs(&self) -> u64 {
        self.cases.iter().map(|c| c.params.sim_secs()).sum()
    }
}

/// The pulse widths the generator samples (the paper's §4.1 values).
const EXTENTS_MS: [u32; 3] = [50, 75, 100];

fn draw_attack(rng: &mut SmallRng, rate_lo: u32, rate_hi: u32) -> AttackParams {
    AttackParams {
        extent_ms: EXTENTS_MS[rng.random_range(0usize..EXTENTS_MS.len())],
        rate_mbps: rng.random_range(rate_lo..=rate_hi),
        gamma_milli: rng.random_range(100u32..=900),
    }
}

fn draw_seed(rng: &mut SmallRng) -> u64 {
    rng.random_range(1u64..(1 << 62))
}

/// An oracle-envelope family: the exact scenario/attack distribution the
/// differential oracle validates (ns-2 base, RED, pure elephants, 4 s /
/// 8 s windows, ≥ 25 Mbps pulses so no draw is infeasible), so every
/// case is held to the tolerance bands.
fn draw_oracle_family(rng: &mut SmallRng, fam: usize) -> Family {
    let template = DumbbellCase {
        oracle: true,
        base: BaseScenario::Ns2,
        n_flows: rng.random_range(3u32..=8),
        queue: QueueKind::Red,
        mice_flows: 0,
        loss_e4: 0,
        rtt: RttProfile::Paper,
        seed: draw_seed(rng),
        warmup_s: 4,
        window_s: 8,
        attack: None,
        // Oracle cases stay on the AIMD model the bands were tuned on,
        // with no detector tap, no sharding and no flash crowd: exactly
        // the envelope distribution.
        cc: CcSpec::Aimd,
        detect: false,
        shards: 1,
        crowd: 0,
    };
    let n_points = rng.random_range(2u32..=3);
    let cases = (0..n_points)
        .map(|i| {
            let mut c = template.clone();
            c.attack = Some(draw_attack(rng, 25, 40));
            FuzzCase {
                id: format!("fuzz/{fam:04}/c{i}"),
                params: CaseParams::Dumbbell(c),
            }
        })
        .collect();
    Family { cases }
}

/// A diverse dumbbell family: both bases, all three queue disciplines,
/// mice, ambient loss, off-distribution RTT spreads and the full
/// congestion-control registry (oracle families pin AIMD; only diverse
/// families draw CUBIC/BBR-lite/DCTCP victims, which the bands were
/// never tuned on). Held to the identity/range/invariant checks but not
/// the oracle bands. Pulse rates stay ≥ 20 Mbps — above both bases'
/// bottlenecks — so γ ≤ 0.9 is never infeasible.
fn draw_diverse_family(rng: &mut SmallRng, fam: usize) -> Family {
    let base = if rng.random_range(0u32..4) == 0 {
        BaseScenario::Testbed
    } else {
        BaseScenario::Ns2
    };
    let n_flows = rng.random_range(2u32..=10);
    let template = DumbbellCase {
        oracle: false,
        base,
        n_flows,
        queue: match rng.random_range(0u32..3) {
            0 => QueueKind::Red,
            1 => QueueKind::DropTail,
            _ => QueueKind::AccRed,
        },
        mice_flows: rng.random_range(0..=n_flows.min(4)),
        loss_e4: if rng.random_range(0u32..4) == 0 {
            rng.random_range(10u32..=50)
        } else {
            0
        },
        rtt: match rng.random_range(0u32..3) {
            0 => RttProfile::Paper,
            1 => RttProfile::Narrow,
            _ => RttProfile::Wide,
        },
        seed: draw_seed(rng),
        warmup_s: rng.random_range(2u32..=4),
        window_s: rng.random_range(4u32..=8),
        attack: None,
        cc: CcSpec::ALL[rng.random_range(0usize..CcSpec::ALL.len())],
        // A third of diverse families run with the detector tap on and
        // hold their traces to the batch-vs-streaming contract.
        detect: rng.random_range(0u32..3) == 0,
        // A quarter run on the sharded engine, fuzzing its bit-identity
        // contract across the whole diverse scenario distribution.
        shards: if rng.random_range(0u32..4) == 0 { 2 } else { 1 },
        crowd: 0,
    };
    let n_attacked = rng.random_range(1u32..=2);
    let benign = rng.random_range(0u32..3) == 0;
    let mut cases = Vec::new();
    for i in 0..n_attacked {
        let mut c = template.clone();
        c.attack = Some(draw_attack(rng, 20, 40));
        cases.push(FuzzCase {
            id: format!("fuzz/{fam:04}/c{i}"),
            params: CaseParams::Dumbbell(c),
        });
    }
    if benign {
        cases.push(FuzzCase {
            id: format!("fuzz/{fam:04}/c{n_attacked}"),
            params: CaseParams::Dumbbell(template),
        });
    }
    Family { cases }
}

/// A flash-crowd family (the `tests/flash_crowd.rs` traffic class): a
/// few standing elephants, then 8–16 request/response mice all arriving
/// at the warm-up boundary — exactly when an attack would start. The
/// detector tap is always on (the crowd exists to stress the
/// batch-vs-streaming contract with a benign event as sharp as an
/// attack), and half the families also run on the sharded engine. Each
/// family draws one attacked case and one benign one, so both "crowd
/// plus attack" and "crowd alone" traces are covered.
fn draw_flash_crowd_family(rng: &mut SmallRng, fam: usize) -> Family {
    let template = DumbbellCase {
        oracle: false,
        base: BaseScenario::Ns2,
        n_flows: rng.random_range(3u32..=5),
        queue: QueueKind::Red,
        mice_flows: 0,
        loss_e4: 0,
        rtt: RttProfile::Paper,
        seed: draw_seed(rng),
        warmup_s: rng.random_range(2u32..=4),
        window_s: rng.random_range(6u32..=8),
        attack: None,
        cc: CcSpec::Aimd,
        detect: true,
        shards: if rng.random_range(0u32..2) == 0 { 2 } else { 1 },
        crowd: rng.random_range(8u32..=16),
    };
    let mut attacked = template.clone();
    attacked.attack = Some(draw_attack(rng, 20, 40));
    Family {
        cases: vec![
            FuzzCase {
                id: format!("fuzz/{fam:04}/c0"),
                params: CaseParams::Dumbbell(attacked),
            },
            FuzzCase {
                id: format!("fuzz/{fam:04}/c1"),
                params: CaseParams::Dumbbell(template),
            },
        ],
    }
}

fn draw_topology_family(rng: &mut SmallRng, fam: usize, kind: TopoKind) -> Family {
    let case = TopologyCase {
        kind,
        groups: rng.random_range(1u32..=3),
        flows: 0,
        seed: draw_seed(rng),
        run_s: rng.random_range(14u32..=20),
        extent_ms: EXTENTS_MS[rng.random_range(0usize..EXTENTS_MS.len())],
        rate_mbps: rng.random_range(20u32..=40),
        space_ms: rng.random_range(250u32..=550),
    };
    Family {
        cases: vec![FuzzCase {
            id: format!("fuzz/{fam:04}/c0"),
            params: CaseParams::Topology(case),
        }],
    }
}

/// A flow-bank family: the high-flow-count dimension. One or two SoA
/// bank pairs of 1,000–4,000 dense flows each share a RED bottleneck
/// under a pulse train — two to three orders of magnitude more flows
/// than any dumbbell family draws, so regressions on the bank hot path
/// (range bindings, the RTO wheel, bucketed expiry) surface here and
/// shrink toward a minimal flow count. Runs stay short: the budget unit
/// is simulated seconds, and a bank second costs far more wall than a
/// dumbbell one.
fn draw_flow_bank_family(rng: &mut SmallRng, fam: usize) -> Family {
    let case = TopologyCase {
        kind: TopoKind::FlowBank,
        groups: rng.random_range(1u32..=2),
        flows: rng.random_range(1_000u32..=4_000),
        seed: draw_seed(rng),
        run_s: rng.random_range(6u32..=10),
        extent_ms: EXTENTS_MS[rng.random_range(0usize..EXTENTS_MS.len())],
        rate_mbps: rng.random_range(20u32..=40),
        space_ms: rng.random_range(250u32..=550),
    };
    Family {
        cases: vec![FuzzCase {
            id: format!("fuzz/{fam:04}/c0"),
            params: CaseParams::Topology(case),
        }],
    }
}

/// Generates families until at least `n_cases` cases exist (whole
/// families only, so the count can slightly exceed the request). The
/// class mix is drawn per family: five elevenths oracle-envelope
/// dumbbells, two elevenths diverse dumbbells, one eleventh each
/// flash-crowd, parking-lot, fat-tree and flow-bank.
pub fn generate(master_seed: u64, n_cases: usize) -> Vec<Family> {
    let mut rng = SmallRng::seed_from_u64(master_seed);
    let mut families = Vec::new();
    let mut total = 0usize;
    while total < n_cases.max(1) {
        let fam = families.len();
        let family = match rng.random_range(0u32..11) {
            0..=4 => draw_oracle_family(&mut rng, fam),
            5..=6 => draw_diverse_family(&mut rng, fam),
            7 => draw_flash_crowd_family(&mut rng, fam),
            8 => draw_topology_family(&mut rng, fam, TopoKind::ParkingLot),
            9 => draw_topology_family(&mut rng, fam, TopoKind::FatTree),
            _ => draw_flow_bank_family(&mut rng, fam),
        };
        total += family.cases.len();
        families.push(family);
    }
    families
}

/// What the budget pass decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetPlan {
    /// Simulated seconds the full generated set would cost.
    pub planned_sim_secs: u64,
    /// Simulated seconds of the kept prefix.
    pub kept_sim_secs: u64,
    /// Whether any family was dropped.
    pub truncated: bool,
}

/// Truncates `families` to `budget_sim_secs` *simulated* seconds by
/// dropping whole families from the end (never the first — a campaign
/// always runs at least one family). `0` means uncapped. The unit is
/// simulated time, not wall-clock: it is machine-independent, so the
/// same seed and budget keep the same cases everywhere.
pub fn truncate_to_budget(families: &mut Vec<Family>, budget_sim_secs: u64) -> BudgetPlan {
    let planned: u64 = families.iter().map(Family::sim_secs).sum();
    let mut kept = planned;
    let mut truncated = false;
    if budget_sim_secs > 0 {
        while kept > budget_sim_secs && families.len() > 1 {
            let dropped = families.pop().expect("len > 1").sim_secs();
            kept -= dropped;
            truncated = true;
        }
    }
    BudgetPlan {
        planned_sim_secs: planned,
        kept_sim_secs: kept,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, 30);
        let b = generate(42, 30);
        assert_eq!(a, b);
        let c = generate(43, 30);
        assert_ne!(a, c, "master seed shapes the draw");
    }

    #[test]
    fn generation_covers_the_request_with_unique_ids() {
        let families = generate(7, 25);
        let cases: Vec<&FuzzCase> = families.iter().flat_map(|f| &f.cases).collect();
        assert!(cases.len() >= 25);
        let mut ids: Vec<&str> = cases.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cases.len(), "ids are unique");
        assert!(!generate(7, 0).is_empty(), "at least one family always");
    }

    #[test]
    fn families_share_one_scenario() {
        // Every dumbbell family's cases differ only in the attack point —
        // that is what lets the runner warm up the family's prefix once.
        for family in generate(3, 60) {
            if !family.is_dumbbell() {
                continue;
            }
            let strip = |p: &CaseParams| match p {
                CaseParams::Dumbbell(c) => {
                    let mut c = c.clone();
                    c.attack = None;
                    c
                }
                CaseParams::Topology(_) => unreachable!(),
            };
            let first = strip(&family.cases[0].params);
            for case in &family.cases[1..] {
                assert_eq!(strip(&case.params), first, "family shares a scenario");
            }
        }
    }

    #[test]
    fn generated_classes_all_appear_and_expand() {
        let families = generate(11, 120);
        let mut seen = std::collections::HashSet::new();
        for f in &families {
            for case in &f.cases {
                seen.insert(case.params.kind_tag());
                // Every generated dumbbell must expand to a buildable
                // scenario (profile bounds, mice counts, loss ranges).
                if let CaseParams::Dumbbell(c) = &case.params {
                    c.scenario().build().expect("generated case builds");
                    if c.oracle {
                        assert_eq!((c.warmup_s, c.window_s), (4, 8));
                        assert!(c.mice_flows == 0 && c.loss_e4 == 0);
                    }
                }
            }
        }
        for tag in [
            "oracle",
            "diverse",
            "flash-crowd",
            "parking-lot",
            "fat-tree",
            "flow-bank",
        ] {
            assert!(seen.contains(tag), "missing class {tag} in {seen:?}");
        }
        // The high-flow-count dimension draws in its range, only on the
        // flow-bank kind.
        for f in &families {
            for case in &f.cases {
                if let CaseParams::Topology(c) = &case.params {
                    match c.kind {
                        TopoKind::FlowBank => {
                            assert!((1_000..=4_000).contains(&c.flows), "flows in range");
                        }
                        _ => assert_eq!(c.flows, 0, "classic kinds stay bank-free"),
                    }
                }
            }
        }
    }

    #[test]
    fn shards_and_crowd_dimensions_stay_off_oracle_families() {
        let families = generate(11, 240);
        let mut sharded = 0usize;
        let mut crowds = 0usize;
        for f in &families {
            for case in &f.cases {
                if let CaseParams::Dumbbell(c) = &case.params {
                    if c.oracle {
                        assert_eq!(
                            (c.shards, c.crowd),
                            (1, 0),
                            "oracle cases stay sequential and crowd-free"
                        );
                    } else {
                        if c.shards > 1 {
                            sharded += 1;
                        }
                        if c.crowd > 0 {
                            crowds += 1;
                            assert!((8..=16).contains(&c.crowd), "crowd size drawn in range");
                            assert!(c.detect, "flash-crowd cases hold the detector contract");
                        }
                    }
                }
            }
        }
        assert!(sharded > 0, "a 240-case draw should include sharded cases");
        assert!(crowds > 0, "a 240-case draw should include flash crowds");
    }

    #[test]
    fn cc_dimension_stays_on_diverse_families_and_covers_the_registry() {
        let families = generate(11, 240);
        let mut diverse_ccs = std::collections::HashSet::new();
        for f in &families {
            for case in &f.cases {
                if let CaseParams::Dumbbell(c) = &case.params {
                    if c.oracle {
                        assert_eq!(
                            c.cc,
                            CcSpec::Aimd,
                            "oracle cases must stay on the AIMD envelope"
                        );
                    } else {
                        diverse_ccs.insert(c.cc);
                    }
                }
            }
        }
        assert!(
            diverse_ccs.len() >= 3,
            "a 240-case draw should cover most of the registry: {diverse_ccs:?}"
        );
    }

    #[test]
    fn detect_dimension_stays_on_diverse_families_and_appears() {
        let families = generate(11, 240);
        let mut detect_on = 0usize;
        for f in &families {
            for case in &f.cases {
                if let CaseParams::Dumbbell(c) = &case.params {
                    if c.oracle {
                        assert!(!c.detect, "oracle cases never run the tap");
                    } else if c.detect {
                        detect_on += 1;
                    }
                }
            }
        }
        assert!(
            detect_on > 0,
            "a 240-case draw should include tapped diverse cases"
        );
    }

    #[test]
    fn budget_drops_whole_families_from_the_end() {
        let full = generate(9, 40);
        let planned: u64 = full.iter().map(Family::sim_secs).sum();
        let mut capped = full.clone();
        let plan = truncate_to_budget(&mut capped, planned / 2);
        assert!(plan.truncated);
        assert_eq!(plan.planned_sim_secs, planned);
        assert!(plan.kept_sim_secs <= planned / 2);
        assert_eq!(capped[..], full[..capped.len()], "kept set is a prefix");

        // Uncapped: nothing dropped.
        let mut free = full.clone();
        let plan = truncate_to_budget(&mut free, 0);
        assert!(!plan.truncated);
        assert_eq!(free, full);

        // A budget below the first family still keeps one family.
        let mut floor = full.clone();
        let plan = truncate_to_budget(&mut floor, 1);
        assert_eq!(floor.len(), 1);
        assert!(plan.truncated);
    }
}
