//! Scenario fuzzing for the pulsing-DoS testbench: a deterministic
//! campaign runner with shrink-on-violation.
//!
//! The crate draws random-but-seeded scenario *families* — dumbbell
//! sweeps on the paper's ns-2 and testbed presets with varied traffic
//! mixes, queue disciplines and attack schedules, plus parking-lot and
//! fat-tree topologies built directly on the simulator — and pushes
//! every case through the same oracle, invariant-checker and golden
//! digest machinery the conformance suite uses. Violations are
//! minimized by a deterministic shrinker and emitted as self-contained
//! repro files that replay to the same failure.
//!
//! The pipeline, one module each:
//!
//! * [`case`] — the case parameter space and its stable text form.
//! * [`gen`] — seeded family generation and the sim-seconds budget.
//! * [`topo`] — the direct-substrate parking-lot / fat-tree harness.
//! * [`campaign`] — the runner, audit, and `pdos-fuzz/1` report.
//! * [`shrink`] — shrink-on-violation and `pdos-fuzz-repro/1` files.
//!
//! ## Determinism
//!
//! The report is a pure function of `(scenarios, master_seed,
//! budget_sim_secs, fault, bands)`. Worker count and wall-clock never
//! enter the output — CI runs the same campaign under `--jobs 1` and
//! `--jobs 2` and compares the report files byte for byte.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod campaign;
pub mod case;
pub mod gen;
pub mod shrink;
pub mod topo;

pub use campaign::{
    fault_from_str, fault_to_str, run_campaign, CampaignConfig, CampaignReport, CampaignViolation,
    CaseResult, ShrunkRepro, ViolationClass,
};
pub use case::{format_case, parse_case, CaseParams, DumbbellCase, FuzzCase, TopologyCase};
pub use shrink::{
    format_repro, parse_repro, replay_repro, shrink, shrink_report, ReproFile,
    MAX_SHRINKS_PER_REPORT,
};
