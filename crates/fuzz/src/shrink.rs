//! Shrink-on-violation: deterministic minimization of a failing case
//! and self-contained `pdos-fuzz-repro/1` files.
//!
//! The shrinker replays transformed copies of the failing case through
//! the exact campaign evaluation path ([`evaluate_params`]) and accepts
//! a candidate only when it reproduces the **same violation class**.
//! Transformations are tried in a fixed order and the loop runs to a
//! fixpoint, bounded by [`CampaignConfig::shrink_budget`] replays — so
//! shrinking is as deterministic as the campaign itself.

use crate::campaign::{
    evaluate_params, fault_from_str, fault_to_str, CampaignConfig, CampaignReport,
    CampaignViolation, ShrunkRepro, ViolationClass,
};
use crate::case::{format_case, parse_case, BaseScenario, CaseParams, QueueKind, RttProfile};
use pdos_scenarios::experiment::SeededFault;
use std::fmt::Write as _;

/// Violations shrunk per report: shrinking replays simulations, so a
/// campaign drowning in violations (a deep physics regression) shrinks
/// only the first few — enough to debug, bounded in cost.
pub const MAX_SHRINKS_PER_REPORT: usize = 8;

/// The ordered simplification candidates for `params`, given the
/// violation class being preserved. Oracle-verdict classes restrict to
/// flow reduction — any other transformation would move the case off
/// the oracle envelope the bands were tuned on, making the "violation"
/// meaningless at the shrunk parameters.
fn candidates(params: &CaseParams, class: ViolationClass) -> Vec<CaseParams> {
    let mut out = Vec::new();
    match params {
        CaseParams::Dumbbell(c) => {
            let oracle_verdict = matches!(
                class,
                ViolationClass::OracleIdentity
                    | ViolationClass::GainRange
                    | ViolationClass::OracleBand
            );
            let min_flows = if oracle_verdict { 3 } else { 2 };
            let mut push = |c| out.push(CaseParams::Dumbbell(c));
            if c.n_flows / 2 >= min_flows {
                let mut n = c.clone();
                n.n_flows /= 2;
                push(n);
            }
            if c.n_flows > min_flows {
                let mut n = c.clone();
                n.n_flows -= 1;
                push(n);
            }
            if oracle_verdict {
                return out;
            }
            if c.mice_flows > 0 {
                let mut n = c.clone();
                n.mice_flows = 0;
                push(n);
            }
            if c.crowd > 0 {
                let mut n = c.clone();
                n.crowd = 0;
                push(n);
            }
            if c.shards > 1 {
                // Simplify toward the sequential engine. A shard-skew
                // drill still reproduces: the campaign forces faulted
                // cases onto the sharded engine regardless of the case's
                // own shard count.
                let mut n = c.clone();
                n.shards = 1;
                push(n);
            }
            if c.loss_e4 > 0 {
                let mut n = c.clone();
                n.loss_e4 = 0;
                push(n);
            }
            if c.window_s > 4 {
                let mut n = c.clone();
                n.window_s = (c.window_s / 2).max(4);
                push(n);
            }
            if c.warmup_s > 2 {
                let mut n = c.clone();
                n.warmup_s = (c.warmup_s / 2).max(2);
                push(n);
            }
            if c.base == BaseScenario::Testbed {
                let mut n = c.clone();
                n.base = BaseScenario::Ns2;
                push(n);
            }
            if c.queue != QueueKind::Red {
                let mut n = c.clone();
                n.queue = QueueKind::Red;
                push(n);
            }
            if c.rtt != RttProfile::Paper {
                let mut n = c.clone();
                n.rtt = RttProfile::Paper;
                push(n);
            }
            if c.cc != pdos_tcp::cc::CcSpec::Aimd {
                // Simplify toward the paper's sender: a bug that still
                // reproduces under AIMD is not algorithm-specific.
                let mut n = c.clone();
                n.cc = pdos_tcp::cc::CcSpec::Aimd;
                push(n);
            }
            if let Some(a) = c.attack {
                if a.extent_ms > 50 {
                    let mut n = c.clone();
                    n.attack = Some(crate::case::AttackParams { extent_ms: 50, ..a });
                    push(n);
                }
            }
        }
        CaseParams::Topology(c) => {
            let mut push = |c| out.push(CaseParams::Topology(c));
            if c.groups > 1 {
                let mut n = *c;
                n.groups = 1;
                push(n);
                let mut n = *c;
                n.groups -= 1;
                push(n);
            }
            if c.run_s > 8 {
                let mut n = *c;
                n.run_s = (c.run_s / 2).max(8);
                push(n);
            }
            // The flow-bank dimension shrinks toward the smallest bank
            // that still reproduces — a violation that survives at 64
            // flows is not a scale bug.
            if c.flows > 64 {
                let mut n = *c;
                n.flows = (c.flows / 2).max(64);
                push(n);
                let mut n = *c;
                n.flows = 64;
                push(n);
            }
        }
    }
    out
}

/// Minimizes `params` while preserving `class`, starting from the
/// campaign-observed `detail`. Every accepted candidate replayed with
/// [`evaluate_params`] under the campaign's own config, so the shrunk
/// case fails for the same reason the original did.
pub fn shrink(
    params: &CaseParams,
    class: ViolationClass,
    detail: &str,
    cfg: &CampaignConfig,
) -> ShrunkRepro {
    let mut best = params.clone();
    let mut best_detail = detail.to_string();
    let mut replays = 0;
    'fixpoint: loop {
        for cand in candidates(&best, class) {
            if replays >= cfg.shrink_budget {
                break 'fixpoint;
            }
            replays += 1;
            if let Some((hit, hit_detail)) = evaluate_params(&cand, cfg) {
                if hit == class {
                    best = cand;
                    best_detail = hit_detail;
                    continue 'fixpoint;
                }
            }
        }
        break;
    }
    ShrunkRepro {
        params: best,
        detail: best_detail,
        replays,
    }
}

/// Shrinks the first [`MAX_SHRINKS_PER_REPORT`] violations of `report`
/// in place.
pub fn shrink_report(report: &mut CampaignReport, cfg: &CampaignConfig) {
    for v in report.violations.iter_mut().take(MAX_SHRINKS_PER_REPORT) {
        v.shrunk = Some(shrink(&v.case.params, v.class, &v.detail, cfg));
    }
}

/// A parsed self-contained reproduction file.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproFile {
    /// The originating case id.
    pub id: String,
    /// The violation class the case must reproduce.
    pub class: ViolationClass,
    /// The violation detail observed when the repro was written.
    pub detail: String,
    /// The campaign master seed (drives derived run seeds).
    pub master_seed: u64,
    /// The campaign fault injection, if any.
    pub fault: Option<SeededFault>,
    /// The (shrunk) case parameters.
    pub params: CaseParams,
}

/// Flattens newlines out of a detail string so it fits one repro line.
fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], "; ")
}

/// Renders a violation as a self-contained `pdos-fuzz-repro/1` file.
/// Uses the shrunk parameters when the violation carries them, the
/// original case otherwise; the original line rides along as a comment
/// field either way.
pub fn format_repro(v: &CampaignViolation, cfg: &CampaignConfig) -> String {
    let (params, detail) = match &v.shrunk {
        Some(sh) => (&sh.params, sh.detail.as_str()),
        None => (&v.case.params, v.detail.as_str()),
    };
    let mut s = String::with_capacity(512);
    let _ = writeln!(s, "pdos-fuzz-repro/1");
    let _ = writeln!(s, "id = {}", v.case.id);
    let _ = writeln!(s, "class = {}", v.class.as_str());
    let _ = writeln!(s, "detail = {}", one_line(detail));
    let _ = writeln!(s, "master_seed = {}", cfg.master_seed);
    let _ = writeln!(s, "fault = {}", fault_to_str(cfg.fault));
    let _ = writeln!(s, "case = {}", format_case(params));
    let _ = writeln!(s, "original = {}", format_case(&v.case.params));
    s
}

/// Parses a `pdos-fuzz-repro/1` file. Unknown keys are ignored (the
/// `original =` line is informational).
///
/// # Errors
///
/// Returns a message naming the malformed or missing field.
pub fn parse_repro(text: &str) -> Result<ReproFile, String> {
    let mut lines = text.lines();
    let header = lines.next().map(str::trim).unwrap_or_default();
    if header != "pdos-fuzz-repro/1" {
        return Err(format!("not a pdos-fuzz-repro/1 file (header {header:?})"));
    }
    let mut id = None;
    let mut class = None;
    let mut detail = None;
    let mut master_seed = None;
    let mut fault = None;
    let mut params = None;
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("malformed line {line:?} (expected key = value)"))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "id" => id = Some(value.to_string()),
            "class" => class = Some(value.parse::<ViolationClass>()?),
            "detail" => detail = Some(value.to_string()),
            "master_seed" => {
                master_seed = Some(
                    value
                        .parse::<u64>()
                        .map_err(|e| format!("bad master_seed: {e}"))?,
                );
            }
            "fault" => fault = Some(fault_from_str(value)?),
            "case" => params = Some(parse_case(value)?),
            _ => {}
        }
    }
    Ok(ReproFile {
        id: id.ok_or("missing id =")?,
        class: class.ok_or("missing class =")?,
        detail: detail.unwrap_or_default(),
        master_seed: master_seed.ok_or("missing master_seed =")?,
        fault: fault.ok_or("missing fault =")?,
        params: params.ok_or("missing case =")?,
    })
}

/// Replays a repro file through the campaign evaluation path. Returns
/// the violation observed at the recorded parameters (which reproduction
/// requires to match [`ReproFile::class`]), or `None` when the case now
/// passes — i.e. the bug is fixed.
pub fn replay_repro(repro: &ReproFile) -> Option<(ViolationClass, String)> {
    let cfg = CampaignConfig {
        master_seed: repro.master_seed,
        fault: repro.fault,
        jobs: 1,
        ..CampaignConfig::default()
    };
    evaluate_params(&repro.params, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::case::{DumbbellCase, TopoKind, TopologyCase};
    use crate::gen;

    /// The seeded-fault drill the issue pins: inject a known physics bug,
    /// assert the campaign catches it, the shrinker minimizes it below a
    /// pinned size, and the emitted repro file replays to the same
    /// violation class.
    #[test]
    fn seeded_fault_drill_catches_shrinks_and_replays() {
        // Deterministic seed scan: the smallest master seed whose first
        // generated set (2 cases) contains a multi-case dumbbell family.
        let seed = (0u64..64)
            .find(|&s| {
                gen::generate(s, 2)
                    .iter()
                    .any(|f| f.is_dumbbell() && f.cases.len() >= 2)
            })
            .expect("some small seed draws a dumbbell family");
        let cfg = CampaignConfig {
            scenarios: 2,
            master_seed: seed,
            jobs: 1,
            fault: Some(SeededFault::LinkAccounting),
            shrink_budget: 12,
            ..CampaignConfig::default()
        };
        let mut report = run_campaign(&cfg);

        // 1. The campaign catches the injected bug on every faulted
        //    (dumbbell) case, as an invariant-checker failure.
        assert!(!report.pass(), "the drill must catch the seeded fault");
        let dumbbell_violations = report
            .violations
            .iter()
            .filter(|v| matches!(v.case.params, CaseParams::Dumbbell(_)))
            .count();
        assert!(dumbbell_violations >= 2, "every faulted case must fail");
        for v in &report.violations {
            assert_eq!(v.class, ViolationClass::RunFailed, "{}", v.detail);
            assert!(v.detail.contains("violation"), "got: {}", v.detail);
        }

        // 2. The shrinker minimizes below the pinned size while still
        //    reproducing the same class.
        shrink_report(&mut report, &cfg);
        let v = &report.violations[0];
        let sh = v.shrunk.as_ref().expect("first violation was shrunk");
        let CaseParams::Dumbbell(c) = &sh.params else {
            panic!("faulted violations are dumbbell cases")
        };
        assert!(c.n_flows <= 3, "flows shrunk: {}", c.n_flows);
        assert!(c.window_s <= 4, "window shrunk: {}", c.window_s);
        assert_eq!((c.mice_flows, c.loss_e4), (0, 0), "traffic mix shrunk");
        assert!(sh.replays <= cfg.shrink_budget);

        // 3. The emitted repro file round-trips and replays to the same
        //    violation class.
        let text = format_repro(v, &cfg);
        let repro = parse_repro(&text).expect("repro file parses");
        assert_eq!(repro.class, v.class);
        assert_eq!(repro.params, sh.params);
        let (hit, detail) = replay_repro(&repro).expect("the shrunk case still fails");
        assert_eq!(hit, v.class, "replay reproduces the class: {detail}");
    }

    /// The CC-layer drill: `--fault cubic-window` plants a non-finite
    /// window (the broken-CUBIC failure shape) in every dumbbell case;
    /// the campaign must catch it as an invariant failure, the shrinker
    /// must minimize it, and the repro must replay to the same class.
    #[test]
    fn cubic_window_fault_drill_catches_shrinks_and_replays() {
        // Deterministic seed scan for an affected multi-case dumbbell
        // family. BBR-lite recomputes cwnd from its bandwidth filter on
        // every ACK — repairing the planted NaN — so the scan requires a
        // family on one of the other three algorithms.
        let affected = |f: &gen::Family| {
            f.cases.len() >= 2
                && f.cases.iter().all(|case| match &case.params {
                    CaseParams::Dumbbell(c) => c.cc != pdos_tcp::cc::CcSpec::BbrLite,
                    CaseParams::Topology(_) => false,
                })
        };
        let seed = (0u64..64)
            .find(|&s| gen::generate(s, 2).iter().any(affected))
            .expect("some small seed draws an affected dumbbell family");
        let cfg = CampaignConfig {
            scenarios: 2,
            master_seed: seed,
            jobs: 1,
            fault: Some(SeededFault::CubicWindow),
            shrink_budget: 24,
            ..CampaignConfig::default()
        };
        let mut report = run_campaign(&cfg);

        // 1. The TCP window audit catches the planted CC bug.
        assert!(!report.pass(), "the drill must catch the seeded CC fault");
        let idx = report
            .violations
            .iter()
            .position(|v| v.class == ViolationClass::RunFailed && v.detail.contains("cwnd"))
            .expect("a cwnd window violation is reported");

        // 2. The shrinker minimizes while preserving the class.
        shrink_report(&mut report, &cfg);
        let v = &report.violations[idx];
        let sh = v.shrunk.as_ref().expect("violation within shrink quota");
        let CaseParams::Dumbbell(c) = &sh.params else {
            panic!("faulted violations are dumbbell cases")
        };
        assert!(c.n_flows <= 3, "flows shrunk: {}", c.n_flows);
        assert!(sh.replays <= cfg.shrink_budget);

        // 3. The repro file round-trips and replays to the same class.
        let text = format_repro(v, &cfg);
        assert!(text.contains("fault = cubic-window"));
        let repro = parse_repro(&text).expect("repro file parses");
        assert_eq!(repro.fault, Some(SeededFault::CubicWindow));
        assert_eq!(repro.params, sh.params);
        let (hit, detail) = replay_repro(&repro).expect("the shrunk case still fails");
        assert_eq!(hit, v.class, "replay reproduces the class: {detail}");
    }

    /// The detector-layer drill: `--fault cusum-drift` desynchronizes
    /// the streaming CUSUM by one bin at evaluation time (the engine
    /// physics is untouched — the fault is a no-op there); the
    /// campaign's equivalence stage must catch it as a
    /// detector-mismatch, the shrinker must minimize it, and the repro
    /// must replay to the same class.
    #[test]
    fn cusum_drift_fault_drill_catches_shrinks_and_replays() {
        // Deterministic seed scan: the smallest master seed whose first
        // generated set contains a multi-case dumbbell family.
        let seed = (0u64..64)
            .find(|&s| {
                gen::generate(s, 2)
                    .iter()
                    .any(|f| f.is_dumbbell() && f.cases.len() >= 2)
            })
            .expect("some small seed draws a dumbbell family");
        let cfg = CampaignConfig {
            scenarios: 2,
            master_seed: seed,
            jobs: 1,
            fault: Some(SeededFault::CusumDrift),
            shrink_budget: 12,
            ..CampaignConfig::default()
        };
        let mut report = run_campaign(&cfg);

        // 1. The equivalence stage flags the drifted streaming state.
        assert!(!report.pass(), "the drill must catch the drifted detector");
        let idx = report
            .violations
            .iter()
            .position(|v| v.class == ViolationClass::DetectorMismatch)
            .expect("a detector-mismatch violation is reported");

        // 2. The shrinker minimizes while preserving the class.
        shrink_report(&mut report, &cfg);
        let v = &report.violations[idx];
        let sh = v.shrunk.as_ref().expect("violation within shrink quota");
        let CaseParams::Dumbbell(c) = &sh.params else {
            panic!("drifted violations are dumbbell cases")
        };
        assert!(c.n_flows <= 3, "flows shrunk: {}", c.n_flows);
        assert!(sh.replays <= cfg.shrink_budget);

        // 3. The repro file round-trips and replays to the same class.
        let text = format_repro(v, &cfg);
        assert!(text.contains("fault = cusum-drift"));
        assert!(text.contains("class = detector-mismatch"));
        let repro = parse_repro(&text).expect("repro file parses");
        assert_eq!(repro.fault, Some(SeededFault::CusumDrift));
        assert_eq!(repro.params, sh.params);
        let (hit, detail) = replay_repro(&repro).expect("the shrunk case still fails");
        assert_eq!(hit, v.class, "replay reproduces the class: {detail}");
    }

    /// The sharding drill: `--fault shard-skew` delivers one cross-shard
    /// packet *before* the conservative-lookahead window on every
    /// dumbbell case (the campaign forces faulted cases onto the sharded
    /// engine, since the fault is a no-op unsharded); the engine's
    /// clock-monotonicity checker must flag the run, the shrinker must
    /// minimize it, and the emitted `.repro` must replay red.
    #[test]
    fn shard_skew_fault_drill_catches_shrinks_and_replays() {
        // Deterministic seed scan: the smallest master seed whose first
        // generated set (2 cases) contains a multi-case dumbbell family.
        let seed = (0u64..64)
            .find(|&s| {
                gen::generate(s, 2)
                    .iter()
                    .any(|f| f.is_dumbbell() && f.cases.len() >= 2)
            })
            .expect("some small seed draws a dumbbell family");
        let cfg = CampaignConfig {
            scenarios: 2,
            master_seed: seed,
            jobs: 1,
            fault: Some(SeededFault::ShardSkew),
            shrink_budget: 12,
            ..CampaignConfig::default()
        };
        let mut report = run_campaign(&cfg);

        // 1. The invariant checkers catch the skewed delivery.
        assert!(!report.pass(), "the drill must catch the skewed shard");
        let idx = report
            .violations
            .iter()
            .position(|v| v.class == ViolationClass::RunFailed && v.detail.contains("violation"))
            .expect("an invariant violation is reported");

        // 2. The shrinker minimizes while preserving the class.
        shrink_report(&mut report, &cfg);
        let v = &report.violations[idx];
        let sh = v.shrunk.as_ref().expect("violation within shrink quota");
        let CaseParams::Dumbbell(c) = &sh.params else {
            panic!("faulted violations are dumbbell cases")
        };
        assert!(c.n_flows <= 3, "flows shrunk: {}", c.n_flows);
        assert!(sh.replays <= cfg.shrink_budget);

        // 3. The repro file round-trips and replays to the same class —
        // the forced sharding travels through `fault = shard-skew`, not
        // the case line, so the replay re-arms it identically.
        let text = format_repro(v, &cfg);
        assert!(text.contains("fault = shard-skew"));
        let repro = parse_repro(&text).expect("repro file parses");
        assert_eq!(repro.fault, Some(SeededFault::ShardSkew));
        assert_eq!(repro.params, sh.params);
        let (hit, detail) = replay_repro(&repro).expect("the shrunk case still fails");
        assert_eq!(hit, v.class, "replay reproduces the class: {detail}");
    }

    #[test]
    fn repro_files_round_trip_without_a_campaign() {
        let v = CampaignViolation {
            case: crate::case::FuzzCase {
                id: "fuzz/0003/c0".into(),
                params: CaseParams::Topology(TopologyCase {
                    kind: TopoKind::FatTree,
                    groups: 3,
                    flows: 0,
                    seed: 1234,
                    run_s: 18,
                    extent_ms: 75,
                    rate_mbps: 33,
                    space_ms: 300,
                }),
            },
            class: ViolationClass::Conservation,
            detail: "link-level packet conservation failed\nover two lines".into(),
            shrunk: None,
        };
        let cfg = CampaignConfig {
            master_seed: 99,
            fault: None,
            ..CampaignConfig::default()
        };
        let text = format_repro(&v, &cfg);
        assert!(text.starts_with("pdos-fuzz-repro/1\n"));
        let r = parse_repro(&text).expect("parses");
        assert_eq!(r.id, "fuzz/0003/c0");
        assert_eq!(r.class, ViolationClass::Conservation);
        assert_eq!(r.master_seed, 99);
        assert_eq!(r.fault, None);
        assert_eq!(r.params, v.case.params);
        assert!(!r.detail.contains('\n'), "detail flattened to one line");

        assert!(parse_repro("not-a-repro\nid = x").is_err());
        assert!(
            parse_repro("pdos-fuzz-repro/1\nid = x").is_err(),
            "missing fields"
        );
    }

    #[test]
    fn oracle_verdict_classes_shrink_flows_only() {
        let c = DumbbellCase {
            oracle: true,
            base: BaseScenario::Ns2,
            n_flows: 8,
            queue: QueueKind::Red,
            mice_flows: 0,
            loss_e4: 0,
            rtt: RttProfile::Paper,
            seed: 5,
            warmup_s: 4,
            window_s: 8,
            attack: Some(crate::case::AttackParams {
                extent_ms: 100,
                rate_mbps: 30,
                gamma_milli: 700,
            }),
            cc: pdos_tcp::cc::CcSpec::Aimd,
            detect: false,
            shards: 1,
            crowd: 0,
        };
        let cands = candidates(&CaseParams::Dumbbell(c.clone()), ViolationClass::OracleBand);
        assert!(!cands.is_empty());
        for cand in &cands {
            let CaseParams::Dumbbell(n) = cand else {
                panic!()
            };
            assert!(n.n_flows >= 3, "stays on the oracle envelope");
            assert_eq!((n.window_s, n.warmup_s), (8, 4), "windows untouched");
            assert_eq!(n.attack, c.attack, "attack untouched");
        }
        // RunFailed on the same case may touch everything.
        let full = candidates(&CaseParams::Dumbbell(c), ViolationClass::RunFailed);
        assert!(full.len() > cands.len());
    }
}
