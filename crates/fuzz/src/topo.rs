//! Direct-substrate topology cases: parking-lot chains, small fat-trees
//! and high-flow-count SoA flow banks built straight on `pdos-sim`,
//! attacked with a pulse train, and audited for the invariants the gain
//! protocol never checks on these shapes — routing totality, link-level
//! packet conservation, and the runtime checkers.
//!
//! Everything here is single-threaded and seeded, so a
//! [`TopologyCase`] replays bit-identically from its drawn parameters.

use crate::case::{TopoKind, TopologyCase};
use pdos_attack::pulse::PulseTrain;
use pdos_attack::source::PulseSource;
use pdos_sim::engine::Simulator;
use pdos_sim::link::LinkId;
use pdos_sim::node::NodeId;
use pdos_sim::packet::FlowId;
use pdos_sim::queue::{QueueSpec, RedConfig};
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::topology::TopologyBuilder;
use pdos_sim::trace::TraceFilter;
use pdos_sim::units::{BitsPerSec, Bytes};
use pdos_tcp::bank::{SenderBank, SinkBank};
use pdos_tcp::config::TcpConfig;
use pdos_tcp::sender::TcpSender;
use pdos_tcp::sink::TcpSink;

/// What one topology run observed.
#[derive(Debug, Clone)]
pub struct TopoOutcome {
    /// Aggregate sink goodput over the whole run, bytes.
    pub goodput_bytes: u64,
    /// Bottleneck ingress bytes in 100 ms bins (the digest input).
    pub bins: Vec<u64>,
    /// Runtime-checker violations recorded by the engine.
    pub violations: usize,
    /// The first violation, rendered, when any fired.
    pub first_violation: Option<String>,
    /// Packets dropped for lack of a route (must be 0 on these shapes).
    pub routeless: u64,
    /// Whether link-level packet conservation held across every link.
    pub conserved: bool,
}

/// The wired simulator for one topology case, before running.
struct Wired {
    sim: Simulator,
    bottleneck: LinkId,
    /// Per-flow [`TcpSink`] agents (classic kinds; empty on flow banks).
    sinks: Vec<pdos_sim::agent::AgentId>,
    /// [`SinkBank`] agents (flow-bank kind; empty on classic kinds).
    bank_sinks: Vec<pdos_sim::agent::AgentId>,
    attacker: NodeId,
    attack_sink: NodeId,
}

const BOTTLENECK_MBPS: f64 = 15.0;

fn red_queue() -> QueueSpec {
    let mut cfg = RedConfig::paper_testbed(60);
    cfg.mean_packet_size = Bytes::from_u64(1040);
    QueueSpec::Red(cfg)
}

fn ample() -> QueueSpec {
    QueueSpec::DropTail { capacity: 10_000 }
}

/// Wires a host pair onto `(src_router, dst_router)` and returns it.
fn add_pair(
    t: &mut TopologyBuilder,
    src_router: NodeId,
    dst_router: NodeId,
    tag: &str,
    i: usize,
) -> (NodeId, NodeId) {
    let access = BitsPerSec::from_mbps(50.0);
    let src = t.add_host(format!("{tag}-src{i}"));
    let dst = t.add_host(format!("{tag}-dst{i}"));
    t.add_duplex_link(
        src,
        src_router,
        access,
        SimDuration::from_millis(2),
        ample(),
    );
    t.add_duplex_link(
        dst,
        dst_router,
        access,
        SimDuration::from_millis(2),
        ample(),
    );
    (src, dst)
}

/// Three routers in a chain, two RED bottleneck hops; flow groups long
/// (r1→r3), right (r2→r3) and left (r1→r2), `groups` pairs each. The
/// attack targets the middle hop r2→r3.
fn build_parking_lot(case: &TopologyCase) -> Wired {
    let mut t = TopologyBuilder::with_seed(case.seed);
    let r1 = t.add_router("r1");
    let r2 = t.add_router("r2");
    let r3 = t.add_router("r3");
    let bottleneck = BitsPerSec::from_mbps(BOTTLENECK_MBPS);
    let d = SimDuration::from_millis(5);

    t.add_link(r1, r2, bottleneck, d, red_queue());
    t.add_link(r2, r1, bottleneck, d, ample());
    let middle = t.add_link(r2, r3, bottleneck, d, red_queue());
    t.add_link(r3, r2, bottleneck, d, ample());

    let mut pairs = Vec::new();
    for i in 0..case.groups as usize {
        pairs.push(add_pair(&mut t, r1, r3, "long", i));
        pairs.push(add_pair(&mut t, r2, r3, "right", i));
        pairs.push(add_pair(&mut t, r1, r2, "left", i));
    }
    let (attacker, attack_sink) = attach_attack_hosts(&mut t, r2, r3);

    let mut sim = t.build().expect("parking lot builds");
    let sinks = wire_flows(&mut sim, &pairs);
    Wired {
        sim,
        bottleneck: middle,
        sinks,
        bank_sinks: Vec::new(),
        attacker,
        attack_sink,
    }
}

/// Two aggregation cores joined by one RED bottleneck, `groups` leaf
/// switches per side, two hosts per leaf; every flow crosses the core
/// link left→right. The attack targets the core bottleneck.
fn build_fat_tree(case: &TopologyCase) -> Wired {
    let mut t = TopologyBuilder::with_seed(case.seed);
    let c0 = t.add_router("c0");
    let c1 = t.add_router("c1");
    let core = BitsPerSec::from_mbps(BOTTLENECK_MBPS);
    let uplink = BitsPerSec::from_mbps(50.0);
    let d = SimDuration::from_millis(5);

    let bottleneck = t.add_link(c0, c1, core, d, red_queue());
    t.add_link(c1, c0, core, d, ample());

    let mut pairs = Vec::new();
    for l in 0..case.groups as usize {
        let left = t.add_router(format!("leaf-l{l}"));
        let right = t.add_router(format!("leaf-r{l}"));
        t.add_duplex_link(left, c0, uplink, SimDuration::from_millis(2), ample());
        t.add_duplex_link(right, c1, uplink, SimDuration::from_millis(2), ample());
        for h in 0..2 {
            pairs.push(add_pair(&mut t, left, right, &format!("pod{l}"), h));
        }
    }
    let (attacker, attack_sink) = attach_attack_hosts(&mut t, c0, c1);

    let mut sim = t.build().expect("fat tree builds");
    let sinks = wire_flows(&mut sim, &pairs);
    Wired {
        sim,
        bottleneck,
        sinks,
        bank_sinks: Vec::new(),
        attacker,
        attack_sink,
    }
}

/// One dumbbell carrying `groups` struct-of-arrays bank pairs: each pair
/// is a [`SenderBank`] host serving `flows` dense flows toward its own
/// [`SinkBank`] host, all funneled through one RED bottleneck and bound
/// via flow-range bindings — exactly the hot path the `flow-bank-smoke`
/// bench tier gates, here under a pulsing attack and the runtime
/// checkers. `flows` is the campaign's high-flow-count dimension, drawn
/// orders of magnitude above what the dumbbell families reach.
fn build_flow_bank(case: &TopologyCase) -> Wired {
    let mut t = TopologyBuilder::with_seed(case.seed);
    let r1 = t.add_router("r1");
    let r2 = t.add_router("r2");
    let d = SimDuration::from_millis(5);
    let bottleneck = t.add_link(
        r1,
        r2,
        BitsPerSec::from_mbps(BOTTLENECK_MBPS),
        d,
        red_queue(),
    );
    t.add_link(r2, r1, BitsPerSec::from_mbps(BOTTLENECK_MBPS), d, ample());

    let access = BitsPerSec::from_mbps(1000.0);
    let mut pairs = Vec::new();
    for i in 0..case.groups as usize {
        let src = t.add_host(format!("bank-src{i}"));
        let dst = t.add_host(format!("bank-dst{i}"));
        t.add_duplex_link(src, r1, access, SimDuration::from_millis(2), ample());
        t.add_duplex_link(dst, r2, access, SimDuration::from_millis(2), ample());
        pairs.push((src, dst));
    }
    let (attacker, attack_sink) = attach_attack_hosts(&mut t, r1, r2);

    let mut sim = t.build().expect("flow-bank dumbbell builds");
    let segment = Bytes::from_u64(1000);
    let rto = SimDuration::from_millis(500);
    let flows = case.flows.max(1);
    let mut bank_sinks = Vec::with_capacity(pairs.len());
    for (i, &(src, dst)) in pairs.iter().enumerate() {
        let first = i as u32 * flows;
        let range = first..first + flows;
        let tx = sim.attach_agent(
            src,
            Box::new(SenderBank::new(
                FlowId::from_u32(first),
                flows as usize,
                dst,
                segment,
                rto,
            )),
        );
        let rx = sim.attach_agent(
            dst,
            Box::new(SinkBank::new(
                FlowId::from_u32(first),
                flows as usize,
                segment,
            )),
        );
        sim.bind_flow_range(src, range.clone(), tx);
        sim.bind_flow_range(dst, range, rx);
        bank_sinks.push(rx);
    }
    Wired {
        sim,
        bottleneck,
        sinks: Vec::new(),
        bank_sinks,
        attacker,
        attack_sink,
    }
}

fn attach_attack_hosts(t: &mut TopologyBuilder, near: NodeId, far: NodeId) -> (NodeId, NodeId) {
    let fast = BitsPerSec::from_mbps(1000.0);
    let attacker = t.add_host("attacker");
    let attack_sink = t.add_host("attack-sink");
    t.add_duplex_link(attacker, near, fast, SimDuration::from_millis(1), ample());
    t.add_duplex_link(attack_sink, far, fast, SimDuration::from_millis(1), ample());
    (attacker, attack_sink)
}

fn wire_flows(sim: &mut Simulator, pairs: &[(NodeId, NodeId)]) -> Vec<pdos_sim::agent::AgentId> {
    let cfg = TcpConfig::ns2_newreno();
    let mut sinks = Vec::with_capacity(pairs.len());
    for (i, &(src, dst)) in pairs.iter().enumerate() {
        let flow = FlowId::from_u32(i as u32);
        let start = SimTime::from_millis(53 * i as u64);
        let tx = sim.attach_agent_at(src, Box::new(TcpSender::new(cfg.clone(), flow, dst)), start);
        let rx = sim.attach_agent(dst, Box::new(TcpSink::new(cfg.clone(), flow, src)));
        sim.bind_flow(src, flow, tx);
        sim.bind_flow(dst, flow, rx);
        sinks.push(rx);
    }
    sinks
}

/// Builds, attacks and runs one topology case with the runtime checkers
/// and a 100 ms bottleneck ingress trace, then audits the outcome.
pub fn run_topology(case: &TopologyCase) -> TopoOutcome {
    let mut w = match case.kind {
        TopoKind::ParkingLot => build_parking_lot(case),
        TopoKind::FatTree => build_fat_tree(case),
        TopoKind::FlowBank => build_flow_bank(case),
    };
    w.sim.enable_checks();
    let trace = w.sim.trace_link_ingress(
        w.bottleneck,
        TraceFilter::All,
        SimDuration::from_millis(100),
    );

    // The attack starts a third of the way in, after TCP has converged.
    let train = PulseTrain::new(
        SimDuration::from_millis(u64::from(case.extent_ms)),
        BitsPerSec::from_mbps(f64::from(case.rate_mbps)),
        SimDuration::from_millis(u64::from(case.space_ms)),
    )
    .expect("generator draws positive pulse parameters");
    // The attack flow id must stay clear of victim ids: the classic
    // kinds keep their historical 9999, while flow banks can own tens of
    // thousands of dense ids, so their attack rides far above the range.
    let attack_flow = match case.kind {
        TopoKind::ParkingLot | TopoKind::FatTree => 9999,
        TopoKind::FlowBank => 1 << 20,
    };
    let src = Box::new(PulseSource::new(
        train,
        FlowId::from_u32(attack_flow),
        w.attack_sink,
        Bytes::from_u64(1000),
        None,
    ));
    let attack_start = SimTime::from_secs(u64::from(case.run_s) / 3);
    w.sim.attach_agent_at(w.attacker, src, attack_start);

    w.sim.run_until(SimTime::from_secs(u64::from(case.run_s)));

    let mut goodput_bytes: u64 = w
        .sinks
        .iter()
        .map(|&rx| {
            w.sim
                .agent_as::<TcpSink>(rx)
                .expect("sink agent")
                .goodput_bytes()
        })
        .sum();
    goodput_bytes += w
        .bank_sinks
        .iter()
        .map(|&rx| {
            w.sim
                .agent_as::<SinkBank>(rx)
                .expect("sink bank agent")
                .goodput_bytes()
        })
        .sum::<u64>();

    // Link-level conservation: offered = tx + dropped + backlog, give or
    // take one in-flight packet per link (the random-topology suite's
    // bound).
    let mut offered = 0u64;
    let mut accounted = 0u64;
    for link in w.sim.links() {
        offered += link.stats().offered_packets;
        accounted += link.stats().tx_packets + link.drops() + link.backlog_packets() as u64;
    }
    let slack = w.sim.links().len() as u64;
    let conserved = offered >= accounted && offered <= accounted + slack;

    TopoOutcome {
        goodput_bytes,
        bins: w.sim.trace(trace).bytes_per_bin().to_vec(),
        violations: w.sim.violations().len(),
        first_violation: w.sim.violations().first().map(ToString::to_string),
        routeless: w.sim.stats().routeless,
        conserved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_case(kind: TopoKind) -> TopologyCase {
        TopologyCase {
            kind,
            groups: 1,
            flows: if kind == TopoKind::FlowBank { 1000 } else { 0 },
            seed: 5,
            run_s: 9,
            extent_ms: 75,
            rate_mbps: 30,
            space_ms: 425,
        }
    }

    #[test]
    fn parking_lot_runs_clean_and_carries_traffic() {
        let out = run_topology(&quick_case(TopoKind::ParkingLot));
        assert_eq!(out.violations, 0, "{:?}", out.first_violation);
        assert_eq!(out.routeless, 0);
        assert!(out.conserved);
        assert!(out.goodput_bytes > 100_000, "got {}", out.goodput_bytes);
        assert!(!out.bins.is_empty());
        // The attack is visible in the trace: post-start bins carry more
        // bytes than the bottleneck alone would (pulse ingress spikes).
        let peak = out.bins.iter().copied().max().unwrap_or(0);
        assert!(peak > 0);
    }

    #[test]
    fn fat_tree_runs_clean_and_carries_traffic() {
        let out = run_topology(&quick_case(TopoKind::FatTree));
        assert_eq!(out.violations, 0, "{:?}", out.first_violation);
        assert_eq!(out.routeless, 0);
        assert!(out.conserved);
        assert!(out.goodput_bytes > 100_000, "got {}", out.goodput_bytes);
    }

    #[test]
    fn flow_bank_runs_clean_at_a_thousand_flows() {
        let out = run_topology(&quick_case(TopoKind::FlowBank));
        assert_eq!(out.violations, 0, "{:?}", out.first_violation);
        assert_eq!(out.routeless, 0);
        assert!(out.conserved);
        assert!(out.goodput_bytes > 100_000, "got {}", out.goodput_bytes);
        assert!(!out.bins.is_empty());
    }

    #[test]
    fn flow_bank_runs_are_deterministic() {
        let case = quick_case(TopoKind::FlowBank);
        let a = run_topology(&case);
        let b = run_topology(&case);
        assert_eq!(a.goodput_bytes, b.goodput_bytes);
        assert_eq!(a.bins, b.bins);
    }

    #[test]
    fn topology_runs_are_deterministic() {
        let case = quick_case(TopoKind::ParkingLot);
        let a = run_topology(&case);
        let b = run_topology(&case);
        assert_eq!(a.goodput_bytes, b.goodput_bytes);
        assert_eq!(a.bins, b.bins);
    }
}
