//! # pdos-metrics — deterministic observability primitives
//!
//! A zero-overhead-when-disabled metrics layer for the PDoS lab. Three
//! metric kinds — [`Counter`](Metric::Counter), a time-weighted [`Gauge`],
//! and a fixed-boundary mergeable [`Histogram`] — live behind a
//! [`MetricsRegistry`] that interns `(scope, name)` pairs into dense
//! [`MetricId`]s, so the hot path pays one bounds-checked index per update
//! and never hashes a string.
//!
//! ## Determinism contract
//!
//! Everything in this crate is a pure function of the values fed to it:
//! no wall clocks, no global state, no map-iteration-order dependence.
//! Time-weighted gauges take their timestamps from the *caller* (the
//! simulator's virtual clock, or a [`Clock`] the caller supplies), so a
//! metered simulation run produces a byte-identical snapshot on every
//! execution. Snapshots sort entries by `(scope, name)`, which makes the
//! JSON/CSV output independent of registration order and of how many
//! workers' registries were merged, and in which order.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::HashMap;
use std::fmt::Write as _;

/// Dense handle to one metric inside a [`MetricsRegistry`].
///
/// Obtained once from [`MetricsRegistry::counter`] / [`gauge`] /
/// [`histogram`] (string interning, cold path), then used for updates
/// (array index, hot path).
///
/// [`gauge`]: MetricsRegistry::gauge
/// [`histogram`]: MetricsRegistry::histogram
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId(u32);

impl MetricId {
    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A last-value gauge with a time-weighted integral.
///
/// [`set`](Gauge::set) records a new value at a caller-supplied timestamp
/// and accumulates `previous_value * dt` into the integral, so
/// [`time_weighted_mean`](Gauge::time_weighted_mean) is the exact
/// time-average of the piecewise-constant signal between the first and
/// last observation (after [`finalize`](Gauge::finalize) extends it to
/// the end of the run).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Gauge {
    last: f64,
    last_at_nanos: u64,
    integral: f64,
    elapsed_nanos: u64,
    seen: bool,
}

impl Gauge {
    /// Advances the integral up to `now_nanos` without changing the value.
    fn accumulate(&mut self, now_nanos: u64) {
        if self.seen && now_nanos > self.last_at_nanos {
            let dt = now_nanos - self.last_at_nanos;
            self.integral += self.last * dt as f64;
            self.elapsed_nanos += dt;
        }
        self.last_at_nanos = now_nanos;
    }

    /// Records `value` at `now_nanos`. Timestamps must be non-decreasing;
    /// an out-of-order timestamp is clamped (no time is un-accumulated).
    pub fn set(&mut self, value: f64, now_nanos: u64) {
        self.accumulate(now_nanos.max(self.last_at_nanos));
        self.last = value;
        self.seen = true;
    }

    /// Extends the integral to `now_nanos` (end of run) so the mean covers
    /// the full observation span.
    pub fn finalize(&mut self, now_nanos: u64) {
        self.accumulate(now_nanos.max(self.last_at_nanos));
    }

    /// The most recently set value (0 before any [`set`](Gauge::set)).
    pub fn last(&self) -> f64 {
        self.last
    }

    /// Total nanoseconds covered by the integral.
    pub fn elapsed_nanos(&self) -> u64 {
        self.elapsed_nanos
    }

    /// Time-weighted mean of the signal (0 if no time has elapsed).
    pub fn time_weighted_mean(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            0.0
        } else {
            self.integral / self.elapsed_nanos as f64
        }
    }

    /// Merges another gauge's observation span into this one: integrals
    /// and elapsed times add; `last` takes the other gauge's value (merge
    /// order is deterministic, so the result is too).
    pub fn merge(&mut self, other: &Gauge) {
        self.integral += other.integral;
        self.elapsed_nanos += other.elapsed_nanos;
        if other.seen {
            self.last = other.last;
            self.seen = true;
        }
    }
}

/// A fixed-boundary histogram with exact quantile-bound semantics.
///
/// `bounds` are strictly increasing upper bucket edges; bucket `i` covers
/// `(bounds[i-1], bounds[i]]`, with an implicit final bucket up to `+inf`.
/// Because boundaries are fixed at construction, histograms with equal
/// boundaries merge losslessly (bucket-wise addition), and
/// [`quantile_bounds`](Histogram::quantile_bounds) returns an interval
/// that *provably* contains the true quantile of the recorded values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing upper
    /// bucket edges (an empty slice yields a single `(-inf, +inf]`
    /// bucket).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly increasing or contains a
    /// non-finite edge.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        debug_assert!(value.is_finite(), "histogram values must be finite");
        let idx = self.bounds.partition_point(|b| value > *b);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// The upper bucket edges.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `(lower, upper]` range of bucket `idx` (`-inf`/`+inf` at the
    /// extremes).
    pub fn bucket_range(&self, idx: usize) -> (f64, f64) {
        let lo = if idx == 0 {
            f64::NEG_INFINITY
        } else {
            self.bounds[idx - 1]
        };
        let hi = self.bounds.get(idx).copied().unwrap_or(f64::INFINITY);
        (lo, hi)
    }

    /// Whether another histogram has identical boundaries (mergeable).
    pub fn same_bounds(&self, other: &Histogram) -> bool {
        self.bounds == other.bounds
    }

    /// Merges another histogram bucket-wise.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries differ — merging is only defined for
    /// histograms of the same metric.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.same_bounds(other),
            "cannot merge histograms with different boundaries"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The `(lower, upper]` bucket range containing the `q`-quantile of
    /// the recorded values (`q` clamped to `[0, 1]`), or `None` if the
    /// histogram is empty. The true quantile always satisfies
    /// `lower < x <= upper`.
    pub fn quantile_bounds(&self, q: f64) -> Option<(f64, f64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(self.bucket_range(idx));
            }
        }
        Some(self.bucket_range(self.counts.len() - 1))
    }
}

/// One metric value: the payload of a registry entry or snapshot entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// A time-weighted last-value gauge.
    Gauge(Gauge),
    /// A fixed-boundary histogram.
    Histogram(Histogram),
}

impl Metric {
    /// The kind name used in snapshots ("counter" / "gauge" /
    /// "histogram").
    pub fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }

    /// Merges another metric of the same kind into this one (counters
    /// add, gauges combine spans, histograms add bucket-wise).
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch or histogram boundary mismatch.
    pub fn merge(&mut self, other: &Metric) {
        match (self, other) {
            (Metric::Counter(a), Metric::Counter(b)) => *a += b,
            (Metric::Gauge(a), Metric::Gauge(b)) => a.merge(b),
            (Metric::Histogram(a), Metric::Histogram(b)) => a.merge(b),
            (a, b) => panic!("cannot merge {} into {}", b.kind(), a.kind()),
        }
    }
}

#[derive(Clone)]
struct Entry {
    scope: String,
    name: String,
    value: Metric,
}

/// The registry: interns `(scope, name)` pairs into dense [`MetricId`]s
/// and stores the metric values in one flat vector.
///
/// Registration (the `counter`/`gauge`/`histogram` methods) is the cold
/// path; updates (`inc`/`gauge_set`/`observe`) are a single indexed
/// access. Registering an existing `(scope, name)` returns the existing
/// id (and panics on a kind mismatch — one name, one kind).
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    index: HashMap<(String, String), MetricId>,
    entries: Vec<Entry>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn intern(&mut self, scope: &str, name: &str, make: impl FnOnce() -> Metric) -> MetricId {
        if let Some(&id) = self.index.get(&(scope.to_string(), name.to_string())) {
            let existing = &self.entries[id.index()].value;
            let wanted = make();
            assert_eq!(
                existing.kind(),
                wanted.kind(),
                "{scope}/{name} already registered as a {}",
                existing.kind()
            );
            return id;
        }
        let id = MetricId(u32::try_from(self.entries.len()).expect("metric count fits in u32"));
        self.entries.push(Entry {
            scope: scope.to_string(),
            name: name.to_string(),
            value: make(),
        });
        self.index.insert((scope.to_string(), name.to_string()), id);
        id
    }

    /// Registers (or looks up) a counter.
    pub fn counter(&mut self, scope: &str, name: &str) -> MetricId {
        self.intern(scope, name, || Metric::Counter(0))
    }

    /// Registers (or looks up) a gauge.
    pub fn gauge(&mut self, scope: &str, name: &str) -> MetricId {
        self.intern(scope, name, || Metric::Gauge(Gauge::default()))
    }

    /// Registers (or looks up) a histogram with the given upper bucket
    /// edges (see [`Histogram::new`]).
    pub fn histogram(&mut self, scope: &str, name: &str, bounds: &[f64]) -> MetricId {
        self.intern(scope, name, || Metric::Histogram(Histogram::new(bounds)))
    }

    /// Adds `n` to a counter (hot path).
    #[inline]
    pub fn inc(&mut self, id: MetricId, n: u64) {
        match &mut self.entries[id.index()].value {
            Metric::Counter(c) => *c += n,
            other => debug_assert!(false, "inc on a {}", other.kind()),
        }
    }

    /// Sets a gauge to `value` at `now_nanos` (hot path).
    #[inline]
    pub fn gauge_set(&mut self, id: MetricId, value: f64, now_nanos: u64) {
        match &mut self.entries[id.index()].value {
            Metric::Gauge(g) => g.set(value, now_nanos),
            other => debug_assert!(false, "gauge_set on a {}", other.kind()),
        }
    }

    /// Records one histogram observation (hot path).
    #[inline]
    pub fn observe(&mut self, id: MetricId, value: f64) {
        match &mut self.entries[id.index()].value {
            Metric::Histogram(h) => h.record(value),
            other => debug_assert!(false, "observe on a {}", other.kind()),
        }
    }

    /// Cold-path convenience: intern and add to a counter in one call
    /// (post-run exports, phase timers).
    pub fn add_counter(&mut self, scope: &str, name: &str, n: u64) {
        let id = self.counter(scope, name);
        self.inc(id, n);
    }

    /// Cold-path convenience: intern and set a gauge in one call.
    pub fn set_gauge(&mut self, scope: &str, name: &str, value: f64, now_nanos: u64) {
        let id = self.gauge(scope, name);
        self.gauge_set(id, value, now_nanos);
    }

    /// Extends every gauge's integral to `now_nanos` (call once at end of
    /// run, before snapshotting).
    pub fn finalize_gauges(&mut self, now_nanos: u64) {
        for e in &mut self.entries {
            if let Metric::Gauge(g) = &mut e.value {
                g.finalize(now_nanos);
            }
        }
    }

    /// A point-in-time copy of every metric, sorted by `(scope, name)`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries: Vec<SnapshotEntry> = self
            .entries
            .iter()
            .map(|e| SnapshotEntry {
                scope: e.scope.clone(),
                name: e.name.clone(),
                value: e.value.clone(),
            })
            .collect();
        entries.sort_by(|a, b| (&a.scope, &a.name).cmp(&(&b.scope, &b.name)));
        MetricsSnapshot { entries }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.entries.len())
            .finish()
    }
}

/// One `(scope, name, value)` triple inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// The interned scope (e.g. `link/0`, `flow/3`, `engine`).
    pub scope: String,
    /// The metric name within the scope.
    pub name: String,
    /// The metric value.
    pub value: Metric,
}

/// A serialisable, mergeable copy of a registry's state.
///
/// Entries are kept sorted by `(scope, name)`, so two snapshots of the
/// same run are structurally equal and serialise byte-identically no
/// matter how they were assembled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// The metrics, sorted by `(scope, name)`.
    pub entries: Vec<SnapshotEntry>,
}

impl MetricsSnapshot {
    /// Looks up a metric by scope and name.
    pub fn get(&self, scope: &str, name: &str) -> Option<&Metric> {
        self.entries
            .binary_search_by(|e| (e.scope.as_str(), e.name.as_str()).cmp(&(scope, name)))
            .ok()
            .map(|i| &self.entries[i].value)
    }

    /// The value of a counter, or `None` if absent / not a counter.
    pub fn counter(&self, scope: &str, name: &str) -> Option<u64> {
        match self.get(scope, name)? {
            Metric::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// Merges another snapshot into this one: matching `(scope, name)`
    /// entries merge metric-wise, new entries are inserted in order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for e in &other.entries {
            match self
                .entries
                .binary_search_by(|x| (x.scope.as_str(), x.name.as_str()).cmp(&(&e.scope, &e.name)))
            {
                Ok(i) => self.entries[i].value.merge(&e.value),
                Err(i) => self.entries.insert(i, e.clone()),
            }
        }
    }

    /// Serialises the snapshot as JSON (schema `pdos-metrics/1`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"schema\": \"pdos-metrics/1\",\n  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"scope\": {}, \"name\": {}, \"kind\": \"{}\"",
                json_str(&e.scope),
                json_str(&e.name),
                e.value.kind()
            );
            match &e.value {
                Metric::Counter(c) => {
                    let _ = write!(s, ", \"value\": {c}}}");
                }
                Metric::Gauge(g) => {
                    let _ = write!(
                        s,
                        ", \"last\": {}, \"mean\": {}, \"elapsed_nanos\": {}}}",
                        json_f64(g.last()),
                        json_f64(g.time_weighted_mean()),
                        g.elapsed_nanos()
                    );
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        s,
                        ", \"count\": {}, \"sum\": {}, \"bounds\": [{}], \"counts\": [{}]}}",
                        h.count(),
                        json_f64(h.sum()),
                        h.bounds()
                            .iter()
                            .map(|b| json_f64(*b))
                            .collect::<Vec<_>>()
                            .join(", "),
                        h.counts()
                            .iter()
                            .map(u64::to_string)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                }
            }
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Serialises the snapshot as CSV (`scope,name,kind,field,value`; one
    /// row per scalar, histogram buckets as `le_<bound>` / `le_inf`).
    pub fn to_csv(&self) -> String {
        let mut s = String::from("scope,name,kind,field,value\n");
        for e in &self.entries {
            let head = format!("{},{},{}", e.scope, e.name, e.value.kind());
            match &e.value {
                Metric::Counter(c) => {
                    let _ = writeln!(s, "{head},value,{c}");
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(s, "{head},last,{}", g.last());
                    let _ = writeln!(s, "{head},mean,{}", g.time_weighted_mean());
                    let _ = writeln!(s, "{head},elapsed_nanos,{}", g.elapsed_nanos());
                }
                Metric::Histogram(h) => {
                    let _ = writeln!(s, "{head},count,{}", h.count());
                    let _ = writeln!(s, "{head},sum,{}", h.sum());
                    for (i, c) in h.counts().iter().enumerate() {
                        match h.bounds().get(i) {
                            Some(b) => {
                                let _ = writeln!(s, "{head},le_{b},{c}");
                            }
                            None => {
                                let _ = writeln!(s, "{head},le_inf,{c}");
                            }
                        }
                    }
                }
            }
        }
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A source of wall-clock timestamps for phase profiling.
///
/// Simulation results never depend on a `Clock`: the engine's own metrics
/// use virtual time, and phase timers only *add* profiling counters. Tests
/// pass a [`ManualClock`] so even those counters are reproducible.
pub trait Clock {
    /// Nanoseconds since an arbitrary fixed origin; must be monotone.
    fn now_nanos(&mut self) -> u64;
}

/// A [`Clock`] backed by [`std::time::Instant`] (real wall time).
#[derive(Debug)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// Creates a wall clock with its origin at "now".
    pub fn new() -> WallClock {
        WallClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_nanos(&mut self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-advanced [`Clock`] for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    /// The time the clock currently reports.
    pub now_nanos: u64,
}

impl ManualClock {
    /// Advances the clock by `nanos`.
    pub fn advance(&mut self, nanos: u64) {
        self.now_nanos += nanos;
    }
}

impl Clock for ManualClock {
    fn now_nanos(&mut self) -> u64 {
        self.now_nanos
    }
}

/// Runs `f`, recording its duration (per the caller-supplied clock) into
/// the counter `scope/name`, in nanoseconds. Returns `f`'s result.
pub fn time_phase<T>(
    registry: &mut MetricsRegistry,
    clock: &mut dyn Clock,
    scope: &str,
    name: &str,
    f: impl FnOnce() -> T,
) -> T {
    let start = clock.now_nanos();
    let out = f();
    let elapsed = clock.now_nanos().saturating_sub(start);
    registry.add_counter(scope, name, elapsed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let mut reg = MetricsRegistry::new();
        let id = reg.counter("link/0", "enqueued");
        reg.inc(id, 3);
        reg.inc(id, 4);
        assert_eq!(reg.counter("link/0", "enqueued"), id);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("link/0", "enqueued"), Some(7));
        assert_eq!(snap.counter("link/0", "missing"), None);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("a", "x");
        reg.gauge("a", "x");
    }

    #[test]
    fn gauge_time_weighted_mean_is_exact() {
        let mut g = Gauge::default();
        g.set(2.0, 0);
        g.set(4.0, 10); // 2.0 held for 10 ns
        g.finalize(30); // 4.0 held for 20 ns
        assert_eq!(g.elapsed_nanos(), 30);
        assert!((g.time_weighted_mean() - (2.0 * 10.0 + 4.0 * 20.0) / 30.0).abs() < 1e-12);
        assert_eq!(g.last(), 4.0);
    }

    #[test]
    fn gauge_before_first_set_contributes_nothing() {
        let mut g = Gauge::default();
        g.finalize(100);
        assert_eq!(g.elapsed_nanos(), 0);
        g.set(1.0, 100);
        g.finalize(150);
        assert_eq!(g.elapsed_nanos(), 50);
        assert_eq!(g.time_weighted_mean(), 1.0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 9.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]); // (..1], (1..2], (2..4], (4..]
        assert_eq!(h.count(), 5);
        // Median of {0.5, 1.0, 1.5, 3.0, 9.0} is 1.5, in (1, 2].
        assert_eq!(h.quantile_bounds(0.5), Some((1.0, 2.0)));
        assert_eq!(h.quantile_bounds(1.0), Some((4.0, f64::INFINITY)));
        assert_eq!(h.quantile_bounds(0.0), Some((f64::NEG_INFINITY, 1.0)));
        assert_eq!(Histogram::new(&[1.0]).quantile_bounds(0.5), None);
    }

    #[test]
    fn histogram_merge_adds_bucketwise() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        a.record(0.5);
        b.record(1.5);
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
        assert!((a.sum() - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different boundaries")]
    fn histogram_merge_rejects_different_bounds() {
        let mut a = Histogram::new(&[1.0]);
        a.merge(&Histogram::new(&[2.0]));
    }

    #[test]
    fn snapshot_is_sorted_and_order_independent() {
        let mut a = MetricsRegistry::new();
        a.add_counter("z", "late", 1);
        a.add_counter("a", "early", 2);
        let mut b = MetricsRegistry::new();
        b.add_counter("a", "early", 2);
        b.add_counter("z", "late", 1);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.snapshot().to_json(), b.snapshot().to_json());
    }

    #[test]
    fn snapshot_merge_combines_and_inserts() {
        let mut a = MetricsRegistry::new();
        a.add_counter("s", "x", 1);
        let mut b = MetricsRegistry::new();
        b.add_counter("s", "x", 2);
        b.add_counter("s", "y", 5);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counter("s", "x"), Some(3));
        assert_eq!(snap.counter("s", "y"), Some(5));
        // Merge result is itself sorted.
        let again = snap.clone();
        snap.merge(&MetricsSnapshot::default());
        assert_eq!(snap, again);
    }

    #[test]
    fn json_and_csv_are_wellformed_enough() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("engine", "pops", 9);
        reg.set_gauge("link/0", "occupancy_pkts", 3.0, 0);
        let h = reg.histogram("link/0", "red_drop_prob", &[0.1, 0.5]);
        reg.observe(h, 0.3);
        reg.finalize_gauges(10);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"pdos-metrics/1\""));
        assert!(json.contains("\"kind\": \"histogram\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let csv = snap.to_csv();
        assert!(csv.starts_with("scope,name,kind,field,value\n"));
        assert!(csv.contains("link/0,red_drop_prob,histogram,le_0.1,0"));
        assert!(csv.contains("link/0,red_drop_prob,histogram,le_0.5,1"));
        assert!(csv.contains("link/0,red_drop_prob,histogram,le_inf,0"));
    }

    #[test]
    fn stepped_clock_times_phases_deterministically() {
        // A clock that advances 250 ns per reading: the phase spans one
        // reading-to-reading gap, so the counter lands on exactly 250.
        struct Stepping(u64);
        impl Clock for Stepping {
            fn now_nanos(&mut self) -> u64 {
                self.0 += 250;
                self.0
            }
        }
        let mut reg = MetricsRegistry::new();
        let mut clock = Stepping(0);
        let out = time_phase(&mut reg, &mut clock, "profile", "warmup", || 42);
        assert_eq!(out, 42);
        assert_eq!(reg.snapshot().counter("profile", "warmup"), Some(250));
        let mut manual = ManualClock::default();
        manual.advance(7);
        assert_eq!(manual.now_nanos, 7);
        let _wall = WallClock::default().now_nanos();
    }
}
