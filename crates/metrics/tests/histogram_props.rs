//! Property battery for [`pdos_metrics::Histogram`] (vendored proptest).
//!
//! The histogram is the one metric with non-trivial algebra: merge must
//! be associative and commutative, counts must be conserved under
//! arbitrary merge trees, every recorded value must land in the bucket
//! whose bounds contain it, and quantile estimates must be bounded by
//! bucket edges. Each law is checked over randomized value streams and
//! randomized (strictly-increasing) boundary sets.

use pdos_metrics::Histogram;
use proptest::prop_assert;
use proptest::prop_assert_eq;
use proptest::proptest;

/// Builds strictly increasing bounds from raw positive step sizes.
fn bounds_from_steps(steps: &[u64]) -> Vec<f64> {
    let mut acc = 0.0;
    steps
        .iter()
        .map(|s| {
            acc += (*s % 97 + 1) as f64 * 0.25;
            acc
        })
        .collect()
}

fn values_from_raw(raw: &[u64]) -> Vec<f64> {
    raw.iter().map(|v| (*v % 4096) as f64 * 0.0625).collect()
}

fn filled(bounds: &[f64], values: &[f64]) -> Histogram {
    let mut h = Histogram::new(bounds);
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_commutative(
        steps in proptest::collection::vec(0u64..1000, 1..8),
        raw_a in proptest::collection::vec(0u64..100_000, 0..64),
        raw_b in proptest::collection::vec(0u64..100_000, 0..64),
    ) {
        let bounds = bounds_from_steps(&steps);
        let a = filled(&bounds, &values_from_raw(&raw_a));
        let b = filled(&bounds, &values_from_raw(&raw_b));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.counts(), ba.counts());
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.sum() - ba.sum()).abs() <= 1e-6 * (1.0 + ab.sum().abs()));
    }

    #[test]
    fn merge_is_associative(
        steps in proptest::collection::vec(0u64..1000, 1..8),
        raw_a in proptest::collection::vec(0u64..100_000, 0..48),
        raw_b in proptest::collection::vec(0u64..100_000, 0..48),
        raw_c in proptest::collection::vec(0u64..100_000, 0..48),
    ) {
        let bounds = bounds_from_steps(&steps);
        let a = filled(&bounds, &values_from_raw(&raw_a));
        let b = filled(&bounds, &values_from_raw(&raw_b));
        let c = filled(&bounds, &values_from_raw(&raw_c));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left.counts(), right.counts());
        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.sum() - right.sum()).abs() <= 1e-6 * (1.0 + left.sum().abs()));
    }

    #[test]
    fn count_is_conserved_under_arbitrary_merge_trees(
        steps in proptest::collection::vec(0u64..1000, 1..6),
        raws in proptest::collection::vec(
            proptest::collection::vec(0u64..100_000, 0..32), 1..8),
        fold_left in proptest::collection::vec(0u8..2, 0..8),
    ) {
        let bounds = bounds_from_steps(&steps);
        let total: u64 = raws.iter().map(|r| r.len() as u64).sum();
        // Fold the histograms into one via a randomized tree shape: at
        // each step merge either into the accumulator (left-deep) or into
        // the incoming histogram (right-deep), as directed by `fold_left`.
        let mut parts: Vec<Histogram> = raws
            .iter()
            .map(|r| filled(&bounds, &values_from_raw(r)))
            .collect();
        let mut acc = parts.remove(0);
        for (i, part) in parts.into_iter().enumerate() {
            let left_deep = fold_left.get(i).copied().unwrap_or(0) == 0;
            if left_deep {
                acc.merge(&part);
            } else {
                let mut p = part;
                p.merge(&acc);
                acc = p;
            }
        }
        prop_assert_eq!(acc.count(), total);
        prop_assert_eq!(acc.counts().iter().sum::<u64>(), total);
    }

    #[test]
    fn recorded_values_land_in_their_containing_bucket(
        steps in proptest::collection::vec(0u64..1000, 1..8),
        raw in proptest::collection::vec(0u64..100_000, 1..64),
    ) {
        let bounds = bounds_from_steps(&steps);
        for v in values_from_raw(&raw) {
            let mut h = Histogram::new(&bounds);
            h.record(v);
            let idx = h.counts().iter().position(|&c| c == 1).unwrap();
            let (lo, hi) = h.bucket_range(idx);
            prop_assert!(lo < v || (idx == 0 && v == lo), "{v} below bucket ({lo}, {hi}]");
            prop_assert!(v <= hi, "{v} above bucket ({lo}, {hi}]");
        }
    }

    #[test]
    fn quantile_estimates_are_bounded_by_bucket_edges(
        steps in proptest::collection::vec(0u64..1000, 1..8),
        raw in proptest::collection::vec(0u64..100_000, 1..64),
        q_raw in 0u64..=100,
    ) {
        let bounds = bounds_from_steps(&steps);
        let values = values_from_raw(&raw);
        let h = filled(&bounds, &values);
        let q = q_raw as f64 / 100.0;
        let (lo, hi) = h.quantile_bounds(q).unwrap();
        // The true q-quantile (nearest-rank) of the recorded values.
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        let true_q = sorted[rank - 1];
        prop_assert!(lo <= true_q, "true quantile {true_q} below bucket ({lo}, {hi}]");
        prop_assert!(true_q <= hi, "true quantile {true_q} above bucket ({lo}, {hi}]");
    }
}
