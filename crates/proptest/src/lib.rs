//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! implements the property-testing subset the workspace uses:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header);
//! * integer and float range strategies (`0u64..100`, `-5.0f64..5.0`);
//! * [`collection::vec`], tuple strategies, [`arbitrary::any`], and
//!   [`bool::ANY`];
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: inputs are drawn from a deterministic per-case stream, so a
//! failing case reproduces identically on every run and platform.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

/// Deterministic input generation for test cases.
pub mod test_runner {
    /// The per-case random stream (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream for case number `case` of a test.
        pub fn for_case(case: u32) -> TestRng {
            TestRng {
                state: 0xD1B5_4A32_D192_ED03 ^ (u64::from(case) << 32 | u64::from(case)),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
        }
    }

    /// Runner configuration; only the case count is honoured.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Real proptest defaults to 256; 64 keeps the offline suite
            // fast while still exercising plenty of inputs.
            ProptestConfig { cases: 64 }
        }
    }
}

/// The strategy abstraction: a recipe for generating values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

    /// The strategy behind [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A constant strategy (proptest's `Just`).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()`: the whole-domain strategy for simple types.
pub mod arbitrary {
    use crate::strategy::AnyStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_lossless)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, magnitude up to ~1e3: a practical
            // domain for numeric properties (the real crate's full-domain
            // floats are dominated by huge exponents).
            (rng.unit_f64() - 0.5) * 2e3
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The fair-coin strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Generates `true`/`false` with equal probability.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a property-test condition (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))] // optional
///
///     /// Doc comments and attributes pass through.
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0f64..1.0, 1..30)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!{
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -1.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u8..4, 2..7)) {
            prop_assert!((2..7).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuples_compose(pair in (crate::bool::ANY, 1u64..100)) {
            let (_, n) = pair;
            prop_assert!((1..100).contains(&n));
        }

        #[test]
        fn any_generates(b in any::<u8>(), trailing_comma in 0u32..4,) {
            let _ = (b, trailing_comma);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_case(3);
        let mut b = crate::test_runner::TestRng::for_case(3);
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
