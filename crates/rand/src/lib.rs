//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this in-tree crate provides the (small) API subset the simulator uses:
//!
//! * [`rngs::SmallRng`] — a xoshiro256++ generator (the same algorithm the
//!   real `rand 0.9` uses for `SmallRng` on 64-bit targets);
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion;
//! * [`Rng::random`] for `f64`/`f32`/integers/`bool`;
//! * [`Rng::random_range`] over half-open and inclusive integer and float
//!   ranges;
//! * [`Rng::random_bool`].
//!
//! Streams are fully deterministic: a given seed yields the same sequence
//! on every platform, which is what the simulator's reproducibility tests
//! rely on.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Expands `state` into a full generator state (SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T` (unit interval for floats,
    /// full range for integers, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their natural domain.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_lossless)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform integer in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; the bias is
/// below 2^-64 for the spans a simulator uses).
fn below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: f64 = Standard::sample(rng);
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: f64 = Standard::sample(rng);
                lo + (unit as $t) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's small, fast generator: xoshiro256++.
    ///
    /// Matches the algorithm `rand 0.9` uses for `SmallRng` on 64-bit
    /// platforms. Not cryptographically secure; intended for simulation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 4, "streams should diverge: {same} collisions");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..10_000).map(|_| r.random::<f64>()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.random_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.random_range(0u64..=5);
            assert!(y <= 5);
            let z = r.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[r.random_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn random_bool_probability() {
        let mut r = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}/10000 at p=0.25");
    }
}
