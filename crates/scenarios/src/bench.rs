//! The built test bench: a simulator wired with victim TCP flows, an
//! attacker host, and measurement hooks.

use pdos_analysis::params::VictimSet;
use pdos_attack::pulse::PulseSchedule;
use pdos_attack::pulse::{PulseError, PulseTrain};
use pdos_attack::source::{CbrSource, PulseSource, SchedulePulseSource};
use pdos_sim::agent::AgentId;
use pdos_sim::engine::{CheckpointError, SimCheckpoint, Simulator};
use pdos_sim::link::LinkId;
use pdos_sim::node::NodeId;
use pdos_sim::packet::{FlowId, PacketKind};
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::trace::{TraceFilter, TraceId};
use pdos_sim::units::{BitsPerSec, Bytes};
use pdos_tcp::config::TcpConfig;
use pdos_tcp::sender::TcpSender;
use pdos_tcp::sink::TcpSink;

/// The flow id space reserved for attack streams (victim flows use
/// `0..n_flows`; distributed sources use consecutive ids from here).
pub const ATTACK_FLOW: FlowId = FlowId::from_u32(1_000_000);

/// Pulse alignment across the sources of a distributed attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackPhasing {
    /// All sources pulse at the same instants; the aggregate equals the
    /// single-attacker pulse train.
    Synchronized,
    /// Source `i` is offset by `i·T_AIMD/n`: same average rate, but the
    /// instantaneous amplitude drops by `n` while the pulse frequency
    /// rises by `n`.
    Staggered,
}

/// One victim TCP connection's handles.
#[derive(Debug, Clone, Copy)]
pub struct FlowHandle {
    /// The flow id.
    pub flow: FlowId,
    /// Sender agent.
    pub sender: AgentId,
    /// Receiver agent.
    pub sink: AgentId,
    /// The configured two-way propagation RTT, seconds.
    pub base_rtt: f64,
}

/// A wired-up experiment: simulator + victim flows + attacker attachment
/// points + the analytical victim description that corresponds to it.
pub struct Testbench {
    /// The simulator (topology built, agents attached).
    pub sim: Simulator,
    /// Victim flow handles, in RTT order.
    pub flows: Vec<FlowHandle>,
    /// Flash-crowd flow handles (empty unless the scenario configured
    /// `crowd_flows`). Deliberately separate from
    /// [`Testbench::flows`]: the crowd is ambient traffic, so goodput
    /// and gain accounting stay victim-only.
    pub crowd: Vec<FlowHandle>,
    /// The host the attacker sends from.
    pub attacker_node: NodeId,
    /// The host attack packets are addressed to (behind the bottleneck).
    pub attack_target: NodeId,
    /// The forward bottleneck link (the paper's S→R).
    pub bottleneck: LinkId,
    /// Bottleneck capacity.
    pub r_bottle: BitsPerSec,
    /// The analytical victim population matching this bench.
    pub victims: VictimSet,
    /// The TCP configuration in force.
    pub tcp: TcpConfig,
    /// Attack packet size on the wire.
    pub attack_packet: Bytes,
}

impl std::fmt::Debug for Testbench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Testbench")
            .field("flows", &self.flows.len())
            .field("r_bottle", &self.r_bottle)
            .field("bottleneck", &self.bottleneck)
            .finish()
    }
}

/// A frozen [`Testbench`]: the simulator checkpoint plus the bench's own
/// wiring metadata, so [`Testbench::fork`] rebuilds a fully usable bench.
pub struct BenchCheckpoint {
    sim: SimCheckpoint,
    flows: Vec<FlowHandle>,
    crowd: Vec<FlowHandle>,
    attacker_node: NodeId,
    attack_target: NodeId,
    bottleneck: LinkId,
    r_bottle: BitsPerSec,
    victims: VictimSet,
    tcp: TcpConfig,
    attack_packet: Bytes,
}

impl BenchCheckpoint {
    /// The simulation instant the checkpoint was taken at.
    pub fn taken_at(&self) -> SimTime {
        self.sim.taken_at()
    }

    /// Rough heap footprint of the captured simulator state, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.sim.approx_bytes()
    }

    /// Test hook: forward to the simulator checkpoint's seeded-fault
    /// helper (drops one link's stats so checkers must notice).
    #[doc(hidden)]
    pub fn omit_link_stats_for_test(&mut self) {
        self.sim.omit_link_stats_for_test(self.bottleneck);
    }
}

impl std::fmt::Debug for BenchCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchCheckpoint")
            .field("taken_at", &self.taken_at())
            .field("flows", &self.flows.len())
            .field("approx_bytes", &self.approx_bytes())
            .finish()
    }
}

impl Testbench {
    /// Freezes the bench — simulator state plus wiring metadata — into a
    /// [`BenchCheckpoint`] that [`Testbench::fork`] can resume from any
    /// number of times.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when the simulator holds an agent or
    /// queue discipline that does not support checkpointing.
    pub fn checkpoint(&self) -> Result<BenchCheckpoint, CheckpointError> {
        Ok(BenchCheckpoint {
            sim: self.sim.checkpoint()?,
            flows: self.flows.clone(),
            crowd: self.crowd.clone(),
            attacker_node: self.attacker_node,
            attack_target: self.attack_target,
            bottleneck: self.bottleneck,
            r_bottle: self.r_bottle,
            victims: self.victims.clone(),
            tcp: self.tcp.clone(),
            attack_packet: self.attack_packet,
        })
    }

    /// Resumes a fresh, independent bench from `checkpoint`. The forked
    /// bench continues byte-identically to the bench the checkpoint was
    /// taken from; forking does not consume the checkpoint.
    pub fn fork(checkpoint: &BenchCheckpoint) -> Testbench {
        Testbench {
            sim: Simulator::fork(&checkpoint.sim),
            flows: checkpoint.flows.clone(),
            crowd: checkpoint.crowd.clone(),
            attacker_node: checkpoint.attacker_node,
            attack_target: checkpoint.attack_target,
            bottleneck: checkpoint.bottleneck,
            r_bottle: checkpoint.r_bottle,
            victims: checkpoint.victims.clone(),
            tcp: checkpoint.tcp.clone(),
            attack_packet: checkpoint.attack_packet,
        }
    }

    /// Attaches a pulsing attack that starts at `start` and runs for at
    /// most `max_pulses` pulses (`None` = until the end of the run).
    pub fn attach_pulse_attack(
        &mut self,
        train: PulseTrain,
        start: SimTime,
        max_pulses: Option<u64>,
    ) -> AgentId {
        let src = Box::new(PulseSource::new(
            train,
            ATTACK_FLOW,
            self.attack_target,
            self.attack_packet,
            max_pulses,
        ));
        self.sim.attach_agent_at(self.attacker_node, src, start)
    }

    /// Attaches a general varying-pulse attack schedule (§2.1's full
    /// `A(T_extent(n), R_attack(n), T_space(n), N)`), starting at `start`.
    pub fn attach_pulse_schedule(&mut self, schedule: PulseSchedule, start: SimTime) -> AgentId {
        let src = Box::new(SchedulePulseSource::new(
            schedule,
            ATTACK_FLOW,
            self.attack_target,
            self.attack_packet,
        ));
        self.sim.attach_agent_at(self.attacker_node, src, start)
    }

    /// Attaches a **distributed** pulsing attack: `n_sources` simulated
    /// bots, each sending the same pulse shape at `1/n` of the rate, so
    /// the aggregate average rate matches the single-source `train`.
    ///
    /// With [`AttackPhasing::Synchronized`], pulses pile up into the same
    /// instants (the aggregate looks like the original attack). With
    /// [`AttackPhasing::Staggered`], source `i` starts `i·T_AIMD/n` later,
    /// spreading the volume into `n` smaller pulses per period.
    ///
    /// # Errors
    ///
    /// Returns [`PulseError`] when the per-source rate degenerates.
    ///
    /// # Panics
    ///
    /// Panics if `n_sources` is zero.
    pub fn attach_distributed_pulse_attack(
        &mut self,
        train: PulseTrain,
        start: SimTime,
        n_sources: u32,
        phasing: AttackPhasing,
    ) -> Result<Vec<AgentId>, PulseError> {
        assert!(n_sources > 0, "need at least one source");
        let per_source = PulseTrain::new(
            train.extent(),
            BitsPerSec::from_bps(train.rate().as_bps() / f64::from(n_sources)),
            train.space(),
        )?;
        let period = train.period();
        let mut ids = Vec::with_capacity(n_sources as usize);
        for i in 0..n_sources {
            let offset = match phasing {
                AttackPhasing::Synchronized => SimDuration::ZERO,
                AttackPhasing::Staggered => {
                    SimDuration::from_nanos(period.as_nanos() * u64::from(i) / u64::from(n_sources))
                }
            };
            let flow = FlowId::from_u32(ATTACK_FLOW.as_u32() + i);
            let src = Box::new(PulseSource::new(
                per_source.clone(),
                flow,
                self.attack_target,
                self.attack_packet,
                None,
            ));
            ids.push(
                self.sim
                    .attach_agent_at(self.attacker_node, src, start + offset),
            );
        }
        Ok(ids)
    }

    /// Attaches a constant-rate flooding attack of `rate`, starting at
    /// `start` and stopping at `stop` (`None` = never).
    pub fn attach_flood_attack(
        &mut self,
        rate: BitsPerSec,
        start: SimTime,
        stop: Option<SimTime>,
    ) -> AgentId {
        let src = Box::new(CbrSource::new(
            rate,
            ATTACK_FLOW,
            self.attack_target,
            self.attack_packet,
            PacketKind::Attack,
            stop,
        ));
        self.sim.attach_agent_at(self.attacker_node, src, start)
    }

    /// Registers an ingress trace on the bottleneck (the paper's
    /// "incoming traffic" instrument).
    pub fn trace_bottleneck(&mut self, filter: TraceFilter, bin: SimDuration) -> TraceId {
        self.sim.trace_link_ingress(self.bottleneck, filter, bin)
    }

    /// Total in-order payload bytes delivered across all victim flows so
    /// far (the experiment's goodput snapshot).
    pub fn goodput_bytes(&self) -> u64 {
        self.flows
            .iter()
            .map(|h| {
                self.sim
                    .agent_as::<TcpSink>(h.sink)
                    .expect("sink agent type")
                    .goodput_bytes()
            })
            .sum()
    }

    /// Per-flow goodput bytes, in the same order as [`Testbench::flows`].
    pub fn goodput_per_flow(&self) -> Vec<u64> {
        self.flows
            .iter()
            .map(|h| {
                self.sim
                    .agent_as::<TcpSink>(h.sink)
                    .expect("sink agent type")
                    .goodput_bytes()
            })
            .collect()
    }

    /// Total retransmission timeouts taken across all victim senders.
    pub fn total_timeouts(&self) -> u64 {
        self.flows
            .iter()
            .map(|h| {
                self.sim
                    .agent_as::<TcpSender>(h.sender)
                    .expect("sender agent type")
                    .stats()
                    .timeouts
            })
            .sum()
    }

    /// Total fast-recovery episodes across all victim senders.
    pub fn total_fast_recoveries(&self) -> u64 {
        self.flows
            .iter()
            .map(|h| {
                self.sim
                    .agent_as::<TcpSender>(h.sender)
                    .expect("sender agent type")
                    .stats()
                    .fast_recoveries
            })
            .sum()
    }

    /// Test hook: plants a window fault in the `idx`-th victim's TCP
    /// sender, bypassing the sender's own clamp, so the TCP window audit
    /// has something to catch (the `cubic-window` seeded-fault drill).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the agent is not a
    /// [`TcpSender`].
    #[doc(hidden)]
    pub fn corrupt_sender_cwnd_for_test(&mut self, idx: usize, value: f64) {
        let h = self.flows[idx];
        let mut sender = self
            .sim
            .agent_as::<TcpSender>(h.sender)
            .expect("sender agent type")
            .clone();
        sender.corrupt_cwnd_for_test(value);
        self.sim.replace_agent_for_test(h.sender, Box::new(sender));
    }

    /// Collects runtime-invariant violations: everything the engine's
    /// checkers recorded (empty unless `sim.enable_checks()` was called)
    /// plus each victim TCP sender's invariant audit at the current time.
    pub fn audit_violations(&self) -> Vec<pdos_sim::check::Violation> {
        let now = self.sim.now();
        let mut out: Vec<_> = self.sim.violations().to_vec();
        for h in &self.flows {
            if let Some(s) = self.sim.agent_as::<TcpSender>(h.sender) {
                out.extend(s.check_invariants(now));
            }
        }
        out
    }

    /// Exports per-flow TCP metrics into `registry`: one `flow/<id>`
    /// scope per victim connection, holding the sender's loss/recovery
    /// counters, a congestion-window histogram (populated when
    /// `record_cwnd` is on), final cwnd/ssthresh gauges and the sink's
    /// delivery counters. Runs post-hoc over agent state — it cannot
    /// perturb the simulation.
    pub fn export_flow_metrics(&self, registry: &mut pdos_metrics::MetricsRegistry) {
        /// Congestion-window histogram edges, in segments (powers of two
        /// spanning every window the scenarios produce).
        const CWND_BOUNDS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        let now = self.sim.now().as_nanos();
        for h in &self.flows {
            let scope = format!("flow/{}", h.flow.as_u32());
            if let Some(s) = self.sim.agent_as::<TcpSender>(h.sender) {
                let st = s.stats();
                registry.add_counter(&scope, "segments_sent", st.segments_sent);
                registry.add_counter(&scope, "retransmissions", st.retransmissions);
                registry.add_counter(&scope, "rto_expirations", st.timeouts);
                registry.add_counter(&scope, "fast_retransmits", st.fast_recoveries);
                registry.add_counter(&scope, "rtt_samples", st.rtt_samples);
                registry.set_gauge(&scope, "cwnd_segments", s.cwnd(), now);
                registry.set_gauge(&scope, "ssthresh_segments", s.ssthresh(), now);
                let hist = registry.histogram(&scope, "cwnd_samples", &CWND_BOUNDS);
                for sample in s.cwnd_trace() {
                    registry.observe(hist, sample.cwnd);
                }
            }
            if let Some(k) = self.sim.agent_as::<TcpSink>(h.sink) {
                let st = k.stats();
                registry.add_counter(&scope, "segments_received", st.segments_received);
                registry.add_counter(&scope, "acks_sent", st.acks_sent);
                registry.add_counter(&scope, "delayed_ack_fires", st.delayed_ack_fires);
                registry.add_counter(&scope, "goodput_bytes", k.goodput_bytes());
            }
        }
    }

    /// The run's full metrics snapshot: the engine's per-link/per-tier
    /// metrics plus the per-flow TCP export. `None` unless
    /// `sim.enable_metrics()` was called before the run.
    pub fn metrics_snapshot(&mut self) -> Option<pdos_metrics::MetricsSnapshot> {
        let mut snapshot = self.sim.metrics_snapshot()?;
        let mut flows = pdos_metrics::MetricsRegistry::new();
        self.export_flow_metrics(&mut flows);
        snapshot.merge(&flows.snapshot());
        Some(snapshot)
    }

    /// Advances the simulation to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.sim.run_until(until);
    }

    /// Advances to `until` while sampling the bottleneck backlog (in
    /// packets) every `bin` — the queue-dynamics view of the attack
    /// (pulses fill the buffer, TCP drains it).
    pub fn run_sampling_depth(&mut self, until: SimTime, bin: SimDuration) -> Vec<usize> {
        assert!(!bin.is_zero(), "sampling bin must be positive");
        let mut samples = Vec::new();
        let mut t = self.sim.now();
        while t < until {
            t = std::cmp::min(t + bin, until);
            self.sim.run_until(t);
            samples.push(self.sim.link(self.bottleneck).backlog_packets());
        }
        samples
    }
}
