//! The normal-/under-/over-gain taxonomy of §4.1.1.

use std::fmt;

/// How a simulated gain relates to the analytical prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GainClass {
    /// Simulation and analysis agree within the margin.
    Normal,
    /// The analysis **over-estimates** the measured gain (pulses too weak
    /// to hurt every flow — the paper's `T_extent = 50 ms` cases).
    Under,
    /// The analysis **under-estimates** the measured gain (pulses push
    /// flows into timeout instead of fast recovery — high `R_attack`).
    Over,
}

impl GainClass {
    /// Classifies one point by the absolute gain discrepancy
    /// `g_sim − g_analytic` against `margin`.
    pub fn classify(g_analytic: f64, g_sim: f64, margin: f64) -> GainClass {
        let diff = g_sim - g_analytic;
        if diff > margin {
            GainClass::Over
        } else if diff < -margin {
            GainClass::Under
        } else {
            GainClass::Normal
        }
    }

    /// Classifies a whole sweep by the *mean* signed discrepancy, the way
    /// the paper labels entire parameter settings (e.g. "the cases when
    /// `T_extent = 50 ms`" are under-gain).
    pub fn classify_sweep(points: &[(f64, f64)], margin: f64) -> GainClass {
        if points.is_empty() {
            return GainClass::Normal;
        }
        let mean_diff: f64 = points
            .iter()
            .map(|(analytic, sim)| sim - analytic)
            .sum::<f64>()
            / points.len() as f64;
        if mean_diff > margin {
            GainClass::Over
        } else if mean_diff < -margin {
            GainClass::Under
        } else {
            GainClass::Normal
        }
    }
}

impl fmt::Display for GainClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GainClass::Normal => "normal-gain",
            GainClass::Under => "under-gain",
            GainClass::Over => "over-gain",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_classification() {
        assert_eq!(GainClass::classify(0.5, 0.52, 0.1), GainClass::Normal);
        assert_eq!(GainClass::classify(0.5, 0.75, 0.1), GainClass::Over);
        assert_eq!(GainClass::classify(0.5, 0.2, 0.1), GainClass::Under);
        // Boundary is inclusive-normal.
        assert_eq!(GainClass::classify(0.5, 0.6, 0.1), GainClass::Normal);
    }

    #[test]
    fn sweep_classification_uses_mean() {
        let balanced = vec![(0.5, 0.6), (0.5, 0.4), (0.5, 0.5)];
        assert_eq!(
            GainClass::classify_sweep(&balanced, 0.05),
            GainClass::Normal
        );
        let under = vec![(0.5, 0.3), (0.6, 0.35), (0.4, 0.3)];
        assert_eq!(GainClass::classify_sweep(&under, 0.05), GainClass::Under);
        let over = vec![(0.3, 0.55), (0.4, 0.6)];
        assert_eq!(GainClass::classify_sweep(&over, 0.05), GainClass::Over);
        assert_eq!(GainClass::classify_sweep(&[], 0.05), GainClass::Normal);
    }

    #[test]
    fn display_labels() {
        assert_eq!(GainClass::Normal.to_string(), "normal-gain");
        assert_eq!(GainClass::Under.to_string(), "under-gain");
        assert_eq!(GainClass::Over.to_string(), "over-gain");
    }
}
