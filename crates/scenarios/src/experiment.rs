//! The gain-measurement protocol behind Figs. 6–10 and 12.
//!
//! For each parameter point `(T_extent, R_attack, γ)`:
//!
//! 1. run the scenario with **no attack** for the measurement window and
//!    record the aggregate goodput `Ψ_normal` (done once per sweep);
//! 2. run a fresh, identically seeded copy with the pulse train
//!    `T_AIMD = R_attack·T_extent/(R_bottle·γ)` starting after warm-up and
//!    record `Ψ_attack`;
//! 3. report `Γ_sim = 1 − Ψ_attack/Ψ_normal`, the measured gain
//!    `G_sim = Γ_sim·(1−γ)^κ`, and the analytical curve value at the same
//!    γ.

use crate::classify::GainClass;
use crate::spec::ScenarioSpec;
use pdos_analysis::gain::{attack_gain, attack_gain_measured, RiskPreference};
use pdos_analysis::model::{c_psi, degradation};
use pdos_analysis::params::ParamError;
use pdos_attack::pulse::{PulseError, PulseTrain};
use pdos_attack::shrew::classify_shrew;
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::units::BitsPerSec;
use std::error::Error;
use std::fmt;

/// A failure while running a gain experiment.
#[derive(Debug)]
pub enum ExperimentError {
    /// The requested pulse train is infeasible.
    Pulse(PulseError),
    /// The analytical model rejected the parameters.
    Model(ParamError),
    /// The scenario topology failed to build.
    Build(pdos_sim::topology::BuildError),
    /// Runtime invariant checkers flagged the run (only produced when the
    /// experiment was configured with [`GainExperiment::checks`]).
    Invariant(String),
    /// The simulator state could not be checkpointed for warm-starting
    /// (an agent or queue discipline does not support cloning).
    Checkpoint(pdos_sim::engine::CheckpointError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Pulse(e) => write!(f, "pulse parameters: {e}"),
            ExperimentError::Model(e) => write!(f, "model parameters: {e}"),
            ExperimentError::Build(e) => write!(f, "topology: {e}"),
            ExperimentError::Invariant(s) => write!(f, "invariant violations: {s}"),
            ExperimentError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Pulse(e) => Some(e),
            ExperimentError::Model(e) => Some(e),
            ExperimentError::Build(e) => Some(e),
            ExperimentError::Invariant(_) => None,
            ExperimentError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<PulseError> for ExperimentError {
    fn from(e: PulseError) -> Self {
        ExperimentError::Pulse(e)
    }
}
impl From<pdos_sim::engine::CheckpointError> for ExperimentError {
    fn from(e: pdos_sim::engine::CheckpointError) -> Self {
        ExperimentError::Checkpoint(e)
    }
}
impl From<ParamError> for ExperimentError {
    fn from(e: ParamError) -> Self {
        ExperimentError::Model(e)
    }
}
impl From<pdos_sim::topology::BuildError> for ExperimentError {
    fn from(e: pdos_sim::topology::BuildError) -> Self {
        ExperimentError::Build(e)
    }
}

/// A deliberately injected bug used to drill the verification pipeline
/// end to end (fuzz-campaign self-tests, CI canaries). A checked run
/// must fail with [`ExperimentError::Invariant`]; the link variants are
/// *physics-neutral* — they corrupt only the bottleneck link's counters,
/// never the packet flow, so an unchecked run still measures the true
/// physics — while [`SeededFault::CubicWindow`] plants a window-state
/// bug inside the first victim's TCP sender.
///
/// The fault is applied at the start of the measurement phase, *after*
/// any warm-start fork, so shared checkpoints stay uncorrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeededFault {
    /// Inflates the bottleneck's offered-packet counter by one, so the
    /// conservation audit sees a packet that was offered but never
    /// transmitted, dropped, or queued.
    LinkAccounting,
    /// Zeroes the bottleneck's counters mid-flight (the "checkpoint that
    /// forgot the stats" bug from the warm-start drills): transmitted
    /// packets then outnumber offered ones.
    OmitLinkStats,
    /// Plants a congestion-control bug: the first victim sender's window
    /// turns non-finite, as a broken CUBIC epoch/cube-root computation
    /// (divide-by-zero cwnd or RTT) produces. NaN survives the sender's
    /// own `clamp` and every CC growth rule — each propagates it — so
    /// the TCP window audit at the end of a checked run must flag it.
    /// Unlike the link faults this perturbs physics, so it only appears
    /// in drills, never in baselines shared with clean runs.
    CubicWindow,
    /// Drifts a streaming CUSUM detector's accumulated statistic away
    /// from the batch scan of the same series. Physics-neutral and a
    /// no-op at the engine level: the fuzz campaign's detector stage
    /// applies the drift to the streaming-detector state itself, so the
    /// batch-vs-streaming equivalence check must flag the mismatch.
    CusumDrift,
    /// Delivers one cross-shard packet *before* the sharded engine's
    /// conservative-lookahead window instead of inside it — the classic
    /// synchronization-horizon bug. The destination shard's clock has
    /// already advanced past the rewound timestamp, so the engine's
    /// clock-monotonicity checker must flag the run. A no-op on an
    /// unsharded run (there are no cross-shard channels to skew), and —
    /// like [`SeededFault::CubicWindow`] — *not* physics-neutral: the
    /// skewed packet really is delivered early, so this fault only
    /// appears in drills, never in baselines shared with clean runs.
    ShardSkew,
}

/// One measured point of a gain figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainPoint {
    /// The normalized average attack rate.
    pub gamma: f64,
    /// The attack period implied by γ, seconds.
    pub t_aimd: f64,
    /// The analytical gain (Eq. 5 with Eq. 10).
    pub g_analytic: f64,
    /// The measured gain `Γ_sim·(1−γ)^κ`.
    pub g_sim: f64,
    /// The analytical degradation Γ.
    pub degradation_analytic: f64,
    /// The measured degradation.
    pub degradation_sim: f64,
    /// Victim timeouts during the measurement window.
    pub timeouts: u64,
    /// Victim fast-recovery episodes during the measurement window.
    pub fast_recoveries: u64,
    /// `Some(n)` when the period sits on the `n`-th shrew subharmonic of
    /// the victims' minimum RTO.
    pub shrew: Option<u32>,
    /// Point-wise classification against the analytical value.
    pub class: GainClass,
}

/// A full sweep (one curve of one figure panel).
#[derive(Debug, Clone)]
pub struct GainSweep {
    /// Pulse width used, seconds.
    pub t_extent: f64,
    /// Pulse rate used, bps.
    pub r_attack: f64,
    /// The damage constant C_Ψ of Eq. (11) for this setting.
    pub c_psi: f64,
    /// Baseline (no-attack) goodput over the window, bytes.
    pub baseline_bytes: u64,
    /// The measured points.
    pub points: Vec<GainPoint>,
    /// Sweep-level classification (§4.1.1).
    pub class: GainClass,
}

/// A warm-started experiment prefix: the bench checkpointed right at the
/// end of warm-up (the attack start), plus the trace registration that was
/// made before warm-up so forked runs keep recording into the same bins.
///
/// Produced by [`GainExperiment::warm_start`]; consumed (any number of
/// times, without being moved) by [`GainExperiment::baseline_observed_from`]
/// and [`GainExperiment::run_point_observed_from`]. Because every sweep
/// point of a figure shares the same scenario/seed/warm-up, one `WarmStart`
/// replaces one full warm-up simulation per point.
#[derive(Debug)]
pub struct WarmStart {
    checkpoint: crate::bench::BenchCheckpoint,
    trace: Option<(pdos_sim::trace::TraceId, SimDuration)>,
}

impl WarmStart {
    /// Rough heap footprint of the captured simulator state, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.checkpoint.approx_bytes()
    }

    /// The trace bin width this warm start was prepared with (`None` when
    /// untraced). Forked measurements must be asked for the same width.
    pub fn trace_bin(&self) -> Option<SimDuration> {
        self.trace.map(|(_, bin)| bin)
    }

    /// Test hook: corrupt the checkpoint by dropping the bottleneck link's
    /// stats, so invariant checkers must flag every forked run.
    #[doc(hidden)]
    pub fn omit_link_stats_for_test(&mut self) {
        self.checkpoint.omit_link_stats_for_test();
    }
}

/// A bench forked from a [`WarmStart`] and not yet measured.
///
/// Forking is the only operation that needs the warm start itself, so
/// callers sharing a `WarmStart` behind a lock can fork inside a short
/// critical section and run the (much longer) measurement outside it.
#[derive(Debug)]
pub struct ForkedRun {
    bench: crate::bench::Testbench,
    trace: Option<(pdos_sim::trace::TraceId, SimDuration)>,
}

/// The experiment driver: a scenario plus measurement windows.
#[derive(Debug, Clone)]
pub struct GainExperiment {
    spec: ScenarioSpec,
    warmup: SimDuration,
    window: SimDuration,
    risk: RiskPreference,
    class_margin: f64,
    checks: bool,
    metrics: bool,
    detect: bool,
    fault: Option<SeededFault>,
    shards: usize,
}

impl GainExperiment {
    /// Creates a driver with the paper's defaults: 10 s warm-up, 60 s
    /// measurement window, risk-neutral gain (the figures' κ = 1).
    pub fn new(spec: ScenarioSpec) -> Self {
        GainExperiment {
            spec,
            warmup: SimDuration::from_secs(10),
            window: SimDuration::from_secs(60),
            risk: RiskPreference::NEUTRAL,
            class_margin: 0.12,
            checks: false,
            metrics: false,
            detect: false,
            fault: None,
            shards: 1,
        }
    }

    /// Overrides the warm-up length.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Overrides the measurement window.
    pub fn window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    /// Overrides the risk preference used to fold degradation into gain.
    pub fn risk(mut self, risk: RiskPreference) -> Self {
        self.risk = risk;
        self
    }

    /// Overrides the normal/under/over classification margin.
    pub fn class_margin(mut self, margin: f64) -> Self {
        self.class_margin = margin;
        self
    }

    /// Enables the simulator's runtime invariant checkers for every run
    /// this experiment performs. A run that trips any checker — or whose
    /// victim TCP senders end in an inconsistent state — fails with
    /// [`ExperimentError::Invariant`] instead of returning data.
    pub fn checks(mut self, enabled: bool) -> Self {
        self.checks = enabled;
        self
    }

    /// Enables the metrics registry for every run this experiment
    /// performs: the `*_observed` variants then return a merged
    /// per-link/per-flow [`pdos_metrics::MetricsSnapshot`]. Metrics are
    /// read-only observers — enabling them never changes measured
    /// goodput, traces, or gains.
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Enables the engine's per-link detector tap for every run this
    /// experiment performs (the streaming-detector feed; see
    /// [`pdos_sim::tap::DetectorTap`]). The tap bins at the run's trace
    /// width when one is requested, else at the detectors' 100 ms
    /// default. Taps are read-only observers — enabling them never
    /// changes measured goodput, traces, or gains.
    pub fn detect(mut self, enabled: bool) -> Self {
        self.detect = enabled;
        self
    }

    /// Injects `fault` into the measurement phase of every run this
    /// experiment performs (see [`SeededFault`]). `None` clears it.
    pub fn fault(mut self, fault: Option<SeededFault>) -> Self {
        self.fault = fault;
        self
    }

    /// Runs every simulation of this experiment on a sharded engine:
    /// the bench asks [`pdos_sim::engine::Simulator::enable_sharding`]
    /// for `shards` conservative-lookahead shards right after the
    /// observers are wired (the engine may effect fewer, or fall back
    /// to one, when the topology resists cutting). Sharding is
    /// bit-identical to the legacy engine by contract, so — like
    /// checks/metrics/detect — this is a pure wall-clock knob that
    /// never changes measured goodput, traces, or gains.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Applies the configured fault to a bench about to be measured. Runs
    /// after forking, so a shared [`WarmStart`] is never corrupted.
    fn inject_fault(&self, bench: &mut crate::bench::Testbench) {
        let Some(fault) = self.fault else { return };
        match fault {
            SeededFault::LinkAccounting => {
                let link = bench.bottleneck;
                bench
                    .sim
                    .link_mut_for_test(link)
                    .corrupt_accounting_for_test();
            }
            SeededFault::OmitLinkStats => {
                let link = bench.bottleneck;
                bench.sim.link_mut_for_test(link).reset_stats_for_test();
            }
            SeededFault::CubicWindow => {
                // A finite overshoot would be repaired by the sender's
                // own clamp at the next ACK; NaN persists through the
                // clamp and every growth rule, so the end-of-run audit
                // is guaranteed to see it.
                bench.corrupt_sender_cwnd_for_test(0, f64::NAN);
            }
            // Detector-layer fault: nothing to corrupt in the bench.
            SeededFault::CusumDrift => {}
            SeededFault::ShardSkew => {
                // Refused (returns false) on an unsharded engine; the
                // drill is then a no-op, exactly like CusumDrift.
                let _ = bench.sim.arm_shard_skew_for_test();
            }
        }
    }

    fn audit(&self, bench: &crate::bench::Testbench) -> Result<(), ExperimentError> {
        if !self.checks {
            return Ok(());
        }
        let violations = bench.audit_violations();
        if violations.is_empty() {
            return Ok(());
        }
        let shown: Vec<String> = violations.iter().take(4).map(|v| v.to_string()).collect();
        let mut msg = format!("{} violation(s): {}", violations.len(), shown.join("; "));
        if violations.len() > shown.len() {
            msg.push_str("; ...");
        }
        Err(ExperimentError::Invariant(msg))
    }

    /// The scenario under test.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    fn end(&self) -> SimTime {
        SimTime::ZERO + self.warmup + self.window
    }

    /// Measures the no-attack aggregate goodput over the window.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Build`] when the topology fails to build.
    pub fn baseline_bytes(&self) -> Result<u64, ExperimentError> {
        Ok(self.baseline_traced(None)?.0)
    }

    /// Like [`GainExperiment::baseline_bytes`], but optionally records the
    /// bottleneck's incoming-traffic bins over the measurement window —
    /// the benign-trace source for detector ROC studies.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Build`] when the topology fails to build.
    pub fn baseline_traced(
        &self,
        trace_bin: Option<SimDuration>,
    ) -> Result<(u64, Vec<u64>), ExperimentError> {
        let (bytes, bins, _) = self.baseline_observed(trace_bin)?;
        Ok((bytes, bins))
    }

    /// Like [`GainExperiment::baseline_traced`], additionally returning
    /// the run's metrics snapshot when [`GainExperiment::metrics`] is
    /// enabled (`None` otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Build`] when the topology fails to build.
    pub fn baseline_observed(
        &self,
        trace_bin: Option<SimDuration>,
    ) -> Result<(u64, Vec<u64>, Option<pdos_metrics::MetricsSnapshot>), ExperimentError> {
        let (mut bench, trace) = self.prepare(trace_bin)?;
        bench.run_until(SimTime::ZERO + self.warmup);
        self.measure_baseline(bench, trace)
    }

    /// Like [`GainExperiment::baseline_observed`], but resuming from a
    /// [`WarmStart`] instead of simulating the warm-up again. Produces
    /// byte-identical results to the cold variant called with
    /// [`WarmStart::trace_bin`].
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Invariant`] when checks are enabled and
    /// the forked run trips a checker.
    pub fn baseline_observed_from(
        &self,
        warm: &WarmStart,
    ) -> Result<(u64, Vec<u64>, Option<pdos_metrics::MetricsSnapshot>), ExperimentError> {
        self.baseline_observed_forked(self.fork_run(warm))
    }

    /// Forks `warm` into a fresh, independent bench ready to measure.
    /// This is the only warm-start operation that touches the shared
    /// checkpoint, so it is cheap to serialize behind a lock.
    pub fn fork_run(&self, warm: &WarmStart) -> ForkedRun {
        ForkedRun {
            bench: crate::bench::Testbench::fork(&warm.checkpoint),
            trace: warm.trace,
        }
    }

    /// Measures the no-attack window on a previously forked bench.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Invariant`] when checks are enabled and
    /// the forked run trips a checker.
    pub fn baseline_observed_forked(
        &self,
        run: ForkedRun,
    ) -> Result<(u64, Vec<u64>, Option<pdos_metrics::MetricsSnapshot>), ExperimentError> {
        self.measure_baseline(run.bench, run.trace)
    }

    /// Simulates the shared prefix of every run of this experiment — build,
    /// observer wiring, trace registration, warm-up — and checkpoints the
    /// bench right at the attack start.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Build`] when the topology fails to build
    /// and [`ExperimentError::Checkpoint`] when the simulator holds state
    /// that cannot be captured (callers should fall back to cold runs).
    pub fn warm_start(&self, trace_bin: Option<SimDuration>) -> Result<WarmStart, ExperimentError> {
        let (mut bench, trace) = self.prepare(trace_bin)?;
        bench.run_until(SimTime::ZERO + self.warmup);
        let checkpoint = bench.checkpoint()?;
        Ok(WarmStart { checkpoint, trace })
    }

    /// Builds the bench and wires up everything that must exist before
    /// warm-up: checkers, metrics, and the bottleneck trace.
    fn prepare(
        &self,
        trace_bin: Option<SimDuration>,
    ) -> Result<
        (
            crate::bench::Testbench,
            Option<(pdos_sim::trace::TraceId, SimDuration)>,
        ),
        ExperimentError,
    > {
        let mut bench = self.spec.build()?;
        if self.checks {
            bench.sim.enable_checks();
        }
        if self.metrics {
            bench.sim.enable_metrics();
        }
        if self.detect {
            bench
                .sim
                .enable_tap(trace_bin.unwrap_or(SimDuration::from_millis(100)));
        }
        let trace = trace_bin.map(|bin| {
            (
                bench.trace_bottleneck(pdos_sim::trace::TraceFilter::All, bin),
                bin,
            )
        });
        if self.shards > 1 {
            bench.sim.enable_sharding(self.shards);
        }
        Ok((bench, trace))
    }

    /// The recorded trace bins restricted to the measurement window (the
    /// warm-up prefix is sliced off).
    fn window_bins(
        &self,
        bench: &crate::bench::Testbench,
        trace: Option<(pdos_sim::trace::TraceId, SimDuration)>,
    ) -> Vec<u64> {
        trace
            .map(|(id, bin)| {
                let first = (self.warmup.as_nanos() / bin.as_nanos()) as usize;
                bench.sim.trace(id).bytes_per_bin()[first.min(bench.sim.trace(id).n_bins())..]
                    .to_vec()
            })
            .unwrap_or_default()
    }

    /// Measures the no-attack window on a bench that has already reached
    /// the end of warm-up (cold or forked).
    fn measure_baseline(
        &self,
        mut bench: crate::bench::Testbench,
        trace: Option<(pdos_sim::trace::TraceId, SimDuration)>,
    ) -> Result<(u64, Vec<u64>, Option<pdos_metrics::MetricsSnapshot>), ExperimentError> {
        self.inject_fault(&mut bench);
        let before = bench.goodput_bytes();
        bench.run_until(self.end());
        self.audit(&bench)?;
        let bytes = bench.goodput_bytes() - before;
        let bins = self.window_bins(&bench, trace);
        let snapshot = bench.metrics_snapshot();
        Ok((bytes, bins, snapshot))
    }

    /// Runs one attacked point given a precomputed baseline.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] for infeasible pulse/model parameters or
    /// build failures.
    pub fn run_point(
        &self,
        t_extent: f64,
        r_attack: f64,
        gamma: f64,
        baseline_bytes: u64,
    ) -> Result<GainPoint, ExperimentError> {
        Ok(self
            .run_point_traced(t_extent, r_attack, gamma, baseline_bytes, None)?
            .0)
    }

    /// Like [`GainExperiment::run_point`], but optionally records the
    /// bottleneck's incoming-traffic bins (width `trace_bin`) over the
    /// measurement window and returns them alongside the point — the raw
    /// series detector tooling consumes.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] for infeasible pulse/model parameters
    /// or build failures.
    pub fn run_point_traced(
        &self,
        t_extent: f64,
        r_attack: f64,
        gamma: f64,
        baseline_bytes: u64,
        trace_bin: Option<SimDuration>,
    ) -> Result<(GainPoint, Vec<u64>), ExperimentError> {
        let (point, bins, _) =
            self.run_point_observed(t_extent, r_attack, gamma, baseline_bytes, trace_bin)?;
        Ok((point, bins))
    }

    /// Like [`GainExperiment::run_point_traced`], additionally returning
    /// the run's metrics snapshot when [`GainExperiment::metrics`] is
    /// enabled (`None` otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] for infeasible pulse/model parameters
    /// or build failures.
    pub fn run_point_observed(
        &self,
        t_extent: f64,
        r_attack: f64,
        gamma: f64,
        baseline_bytes: u64,
        trace_bin: Option<SimDuration>,
    ) -> Result<(GainPoint, Vec<u64>, Option<pdos_metrics::MetricsSnapshot>), ExperimentError> {
        let (train, t_aimd, c) = self.plan_train(t_extent, r_attack, gamma)?;
        let (mut bench, trace) = self.prepare(trace_bin)?;
        bench.run_until(SimTime::ZERO + self.warmup);
        self.measure_point(bench, trace, train, t_aimd, c, gamma, baseline_bytes)
    }

    /// Like [`GainExperiment::run_point_observed`], but resuming from a
    /// [`WarmStart`] instead of simulating the warm-up again. Produces
    /// byte-identical results to the cold variant called with
    /// [`WarmStart::trace_bin`].
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] for infeasible pulse/model parameters
    /// or invariant violations in the forked run.
    pub fn run_point_observed_from(
        &self,
        warm: &WarmStart,
        t_extent: f64,
        r_attack: f64,
        gamma: f64,
        baseline_bytes: u64,
    ) -> Result<(GainPoint, Vec<u64>, Option<pdos_metrics::MetricsSnapshot>), ExperimentError> {
        self.run_point_observed_forked(
            self.fork_run(warm),
            t_extent,
            r_attack,
            gamma,
            baseline_bytes,
        )
    }

    /// Like [`GainExperiment::run_point_observed_from`], but consuming a
    /// previously forked bench.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError`] for infeasible pulse/model parameters
    /// or invariant violations in the forked run.
    pub fn run_point_observed_forked(
        &self,
        run: ForkedRun,
        t_extent: f64,
        r_attack: f64,
        gamma: f64,
        baseline_bytes: u64,
    ) -> Result<(GainPoint, Vec<u64>, Option<pdos_metrics::MetricsSnapshot>), ExperimentError> {
        let (train, t_aimd, c) = self.plan_train(t_extent, r_attack, gamma)?;
        self.measure_point(
            run.bench,
            run.trace,
            train,
            t_aimd,
            c,
            gamma,
            baseline_bytes,
        )
    }

    /// Derives the pulse train and the analytic damage constant for one
    /// sweep point — pure math, shared by cold and forked runs.
    fn plan_train(
        &self,
        t_extent: f64,
        r_attack: f64,
        gamma: f64,
    ) -> Result<(PulseTrain, f64, f64), ExperimentError> {
        let train = PulseTrain::from_gamma(
            SimDuration::from_secs_f64(t_extent),
            BitsPerSec::from_bps(r_attack),
            self.spec.bottleneck,
            gamma,
        )?;
        let t_aimd = train.period().as_secs_f64();
        let c = c_psi(&self.spec.victims(), t_extent, r_attack)?;
        Ok((train, t_aimd, c))
    }

    /// Attaches the attack and measures the window on a bench that has
    /// already reached the end of warm-up (cold or forked). The attack is
    /// attached *after* warm-up so cold and forked runs execute the exact
    /// same event sequence.
    #[allow(clippy::too_many_arguments)]
    fn measure_point(
        &self,
        mut bench: crate::bench::Testbench,
        trace: Option<(pdos_sim::trace::TraceId, SimDuration)>,
        train: PulseTrain,
        t_aimd: f64,
        c: f64,
        gamma: f64,
        baseline_bytes: u64,
    ) -> Result<(GainPoint, Vec<u64>, Option<pdos_metrics::MetricsSnapshot>), ExperimentError> {
        self.inject_fault(&mut bench);
        bench.attach_pulse_attack(train, SimTime::ZERO + self.warmup, None);
        let before = bench.goodput_bytes();
        let fr_before = bench.total_fast_recoveries();
        let to_before = bench.total_timeouts();
        bench.run_until(self.end());
        self.audit(&bench)?;
        let attacked = bench.goodput_bytes() - before;

        let degradation_sim = if baseline_bytes == 0 {
            0.0
        } else {
            (1.0 - attacked as f64 / baseline_bytes as f64).clamp(0.0, 1.0)
        };
        let g_analytic = attack_gain(gamma, c, self.risk);
        let g_sim = attack_gain_measured(gamma, degradation_sim, self.risk);
        let bins = self.window_bins(&bench, trace);
        let point = GainPoint {
            gamma,
            t_aimd,
            g_analytic,
            g_sim,
            degradation_analytic: degradation(gamma, c),
            degradation_sim,
            timeouts: bench.total_timeouts() - to_before,
            fast_recoveries: bench.total_fast_recoveries() - fr_before,
            shrew: classify_shrew(
                SimDuration::from_secs_f64(t_aimd),
                self.spec.tcp.min_rto,
                5,
                0.05,
            ),
            class: GainClass::classify(g_analytic, g_sim, self.class_margin),
        };
        let snapshot = bench.metrics_snapshot();
        Ok((point, bins, snapshot))
    }

    /// Runs a full γ sweep (one figure curve): baseline once, then one
    /// attacked run per γ. Infeasible γ values (beyond `C_attack`) are
    /// skipped.
    ///
    /// # Errors
    ///
    /// Returns the first hard error (build/model); pulse-infeasibility is
    /// tolerated per point.
    pub fn sweep(
        &self,
        t_extent: f64,
        r_attack: f64,
        gammas: &[f64],
    ) -> Result<GainSweep, ExperimentError> {
        let baseline = self.baseline_bytes()?;
        self.sweep_with_baseline(t_extent, r_attack, gammas, baseline)
    }

    /// Like [`GainExperiment::sweep`] but reuses a baseline measured
    /// earlier — the baseline depends only on the scenario, so one figure
    /// panel's curves (different `T_extent` at the same topology) can
    /// share it.
    ///
    /// # Errors
    ///
    /// Returns the first hard error (build/model); pulse-infeasibility is
    /// tolerated per point.
    pub fn sweep_with_baseline(
        &self,
        t_extent: f64,
        r_attack: f64,
        gammas: &[f64],
        baseline: u64,
    ) -> Result<GainSweep, ExperimentError> {
        let c = c_psi(&self.spec.victims(), t_extent, r_attack)?;
        let mut points = Vec::with_capacity(gammas.len());
        for &gamma in gammas {
            match self.run_point(t_extent, r_attack, gamma, baseline) {
                Ok(p) => points.push(p),
                Err(ExperimentError::Pulse(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        let pairs: Vec<(f64, f64)> = points.iter().map(|p| (p.g_analytic, p.g_sim)).collect();
        Ok(GainSweep {
            t_extent,
            r_attack,
            c_psi: c,
            baseline_bytes: baseline,
            class: GainClass::classify_sweep(&pairs, self.class_margin),
            points,
        })
    }
}

/// Mean and sample standard deviation of a measured quantity across
/// seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedStats {
    /// Mean across seeds.
    pub mean: f64,
    /// Sample standard deviation (0 for a single seed).
    pub sd: f64,
    /// Number of seeds.
    pub n: usize,
}

impl SeedStats {
    fn from_samples(xs: &[f64]) -> SeedStats {
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n.max(1) as f64;
        let sd = if n > 1 {
            (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        SeedStats { mean, sd, n }
    }
}

impl GainExperiment {
    /// Runs one parameter point across several RNG seeds (each with its
    /// own baseline) and reports the mean ± sd of the measured gain and
    /// degradation — the error bars missing from single-seed sweeps.
    ///
    /// # Errors
    ///
    /// Returns the first hard error from any seed's run.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty.
    pub fn run_point_seeds(
        &self,
        t_extent: f64,
        r_attack: f64,
        gamma: f64,
        seeds: &[u64],
    ) -> Result<(SeedStats, SeedStats), ExperimentError> {
        assert!(!seeds.is_empty(), "need at least one seed");
        let results: Vec<Result<GainPoint, ExperimentError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = seeds
                .iter()
                .map(|&seed| {
                    scope.spawn(move || {
                        let mut spec = self.spec.clone();
                        spec.seed = seed;
                        let exp = GainExperiment {
                            spec,
                            ..self.clone()
                        };
                        let baseline = exp.baseline_bytes()?;
                        exp.run_point(t_extent, r_attack, gamma, baseline)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("seed worker panicked"))
                .collect()
        });
        let mut gains = Vec::with_capacity(seeds.len());
        let mut degs = Vec::with_capacity(seeds.len());
        for r in results {
            let p = r?;
            gains.push(p.g_sim);
            degs.push(p.degradation_sim);
        }
        Ok((
            SeedStats::from_samples(&gains),
            SeedStats::from_samples(&degs),
        ))
    }

    /// Like [`GainExperiment::sweep_with_baseline`] but runs the attacked
    /// points on worker threads (one fresh simulator per point, so the
    /// runs stay deterministic and independent).
    ///
    /// # Errors
    ///
    /// Returns the first hard error; pulse-infeasible γ values are
    /// skipped, like the serial version.
    pub fn sweep_parallel(
        &self,
        t_extent: f64,
        r_attack: f64,
        gammas: &[f64],
        baseline: u64,
    ) -> Result<GainSweep, ExperimentError> {
        let c = c_psi(&self.spec.victims(), t_extent, r_attack)?;
        let results: Vec<Result<GainPoint, ExperimentError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = gammas
                .iter()
                .map(|&gamma| {
                    scope.spawn(move || self.run_point(t_extent, r_attack, gamma, baseline))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sweep worker panicked"))
                .collect()
        });
        let mut points = Vec::with_capacity(gammas.len());
        for r in results {
            match r {
                Ok(p) => points.push(p),
                Err(ExperimentError::Pulse(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        let pairs: Vec<(f64, f64)> = points.iter().map(|p| (p.g_analytic, p.g_sim)).collect();
        Ok(GainSweep {
            t_extent,
            r_attack,
            c_psi: c,
            baseline_bytes: baseline,
            class: GainClass::classify_sweep(&pairs, self.class_margin),
            points,
        })
    }
}

/// Builds the pulse train an *optimizing* attacker would use against
/// `spec` (Props. 3–4): solves for γ*, then shapes the train with
/// `T_AIMD = (1 + μ*)·T_extent`.
///
/// # Errors
///
/// Returns [`ExperimentError`] when the model rejects the parameters or
/// the optimum is infeasible for this pulse height.
pub fn optimal_pulse_train(
    spec: &ScenarioSpec,
    t_extent: f64,
    r_attack: f64,
    risk: RiskPreference,
) -> Result<PulseTrain, ExperimentError> {
    let sol = pdos_analysis::optimize::solve(&spec.victims(), t_extent, r_attack, risk)?;
    Ok(PulseTrain::from_gamma(
        SimDuration::from_secs_f64(t_extent),
        BitsPerSec::from_bps(r_attack),
        spec.bottleneck,
        sol.gamma_star,
    )?)
}

/// Evenly spaced γ values in `(lo, hi)` inclusive, the sampling the
/// figures use along their x axes.
pub fn gamma_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "need at least two grid points");
    assert!(0.0 < lo && lo < hi && hi <= 1.0, "need 0 < lo < hi <= 1");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_experiment(n_flows: usize) -> GainExperiment {
        GainExperiment::new(ScenarioSpec::ns2_dumbbell(n_flows))
            .warmup(SimDuration::from_secs(5))
            .window(SimDuration::from_secs(15))
    }

    #[test]
    fn gamma_grid_shape() {
        let g = gamma_grid(0.1, 0.9, 5);
        assert_eq!(g.len(), 5);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[4] - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn gamma_grid_validates() {
        gamma_grid(0.5, 0.2, 3);
    }

    #[test]
    fn baseline_is_reproducible() {
        let exp = quick_experiment(5);
        let a = exp.baseline_bytes().unwrap();
        let b = exp.baseline_bytes().unwrap();
        assert_eq!(a, b, "identical seeds must give identical baselines");
        assert!(a > 0);
    }

    #[test]
    fn attack_degrades_goodput() {
        let exp = quick_experiment(5);
        let baseline = exp.baseline_bytes().unwrap();
        // A strong attack: 30 Mbps pulses of 100 ms at γ = 0.4.
        let p = exp.run_point(0.1, 30e6, 0.4, baseline).unwrap();
        assert!(
            p.degradation_sim > 0.2,
            "a γ=0.4 pulsing attack must visibly degrade TCP: {p:?}"
        );
        assert!(p.g_sim > 0.0);
        assert!(p.fast_recoveries + p.timeouts > 0, "losses must occur");
    }

    #[test]
    fn stronger_gamma_degrades_more() {
        let exp = quick_experiment(5);
        let baseline = exp.baseline_bytes().unwrap();
        let weak = exp.run_point(0.1, 30e6, 0.15, baseline).unwrap();
        let strong = exp.run_point(0.1, 30e6, 0.7, baseline).unwrap();
        assert!(
            strong.degradation_sim > weak.degradation_sim,
            "weak {weak:?} vs strong {strong:?}"
        );
    }

    #[test]
    fn sweep_skips_infeasible_gammas() {
        let exp = quick_experiment(3).window(SimDuration::from_secs(8));
        // C_attack = 20/15: γ = 0.9 feasible, γ = 1.5 not (not in grid
        // anyway); include a γ above C_attack to check skipping: use
        // R_attack = 10 Mbps -> C_attack = 2/3, so γ = 0.8 is infeasible.
        let sweep = exp.sweep(0.1, 10e6, &[0.3, 0.8]).unwrap();
        assert_eq!(sweep.points.len(), 1);
        assert!((sweep.points[0].gamma - 0.3).abs() < 1e-12);
    }

    #[test]
    fn traced_point_returns_window_bins() {
        let exp = quick_experiment(3).window(SimDuration::from_secs(8));
        let baseline = exp.baseline_bytes().unwrap();
        let (point, bins) = exp
            .run_point_traced(
                0.1,
                30e6,
                0.4,
                baseline,
                Some(SimDuration::from_millis(100)),
            )
            .unwrap();
        assert!(point.degradation_sim > 0.0);
        // 8 s window at 100 ms bins = ~80 bins of the measurement window.
        assert!((70..=85).contains(&bins.len()), "got {} bins", bins.len());
        assert!(bins.iter().sum::<u64>() > 0);
        // The untraced variant returns the same point.
        let plain = exp.run_point(0.1, 30e6, 0.4, baseline).unwrap();
        assert_eq!(plain, point);
    }

    #[test]
    fn optimal_train_matches_the_solved_period() {
        let spec = ScenarioSpec::ns2_dumbbell(25);
        let train = optimal_pulse_train(&spec, 0.075, 30e6, RiskPreference::NEUTRAL).unwrap();
        let sol =
            pdos_analysis::optimize::solve(&spec.victims(), 0.075, 30e6, RiskPreference::NEUTRAL)
                .unwrap();
        assert!((train.period().as_secs_f64() - sol.period).abs() < 1e-6);
        assert!((train.gamma(spec.bottleneck) - sol.gamma_star).abs() < 1e-6);
    }

    #[test]
    fn multi_seed_point_reports_spread() {
        let exp = quick_experiment(3).window(SimDuration::from_secs(8));
        let (gain, deg) = exp.run_point_seeds(0.1, 30e6, 0.4, &[1, 2, 3]).unwrap();
        assert_eq!(gain.n, 3);
        assert!(gain.mean > 0.0 && gain.mean <= 1.0);
        assert!(gain.sd >= 0.0);
        assert!(deg.mean > 0.1, "attack must bite on every seed: {deg:?}");
        // Single seed: sd is zero by definition.
        let (single, _) = exp.run_point_seeds(0.1, 30e6, 0.4, &[1]).unwrap();
        assert_eq!(single.sd, 0.0);
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let exp = quick_experiment(3).window(SimDuration::from_secs(8));
        let baseline = exp.baseline_bytes().unwrap();
        let gammas = [0.3, 0.6];
        let serial = exp
            .sweep_with_baseline(0.1, 30e6, &gammas, baseline)
            .unwrap();
        let parallel = exp.sweep_parallel(0.1, 30e6, &gammas, baseline).unwrap();
        assert_eq!(serial.points.len(), parallel.points.len());
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a, b, "parallel execution must not change results");
        }
    }

    #[test]
    fn checked_run_is_clean_on_a_healthy_scenario() {
        let exp = quick_experiment(3)
            .window(SimDuration::from_secs(8))
            .checks(true);
        let baseline = exp.baseline_bytes().unwrap();
        let p = exp.run_point(0.1, 30e6, 0.4, baseline).unwrap();
        assert!(p.degradation_sim > 0.0);
    }

    #[test]
    fn metrics_are_read_only_observers() {
        let plain_exp = quick_experiment(3).window(SimDuration::from_secs(8));
        let baseline = plain_exp.baseline_bytes().unwrap();
        let plain = plain_exp.run_point(0.1, 30e6, 0.4, baseline).unwrap();
        // Without the flag, observed variants return no snapshot.
        let (_, _, none) = plain_exp.baseline_observed(None).unwrap();
        assert!(none.is_none());
        let metered_exp = plain_exp.metrics(true);
        let (point, _, snap) = metered_exp
            .run_point_observed(0.1, 30e6, 0.4, baseline, None)
            .unwrap();
        assert_eq!(plain, point, "metrics must not perturb the run");
        let snap = snap.expect("metrics enabled");
        assert!(snap.counter("engine", "pops_packet_tier").unwrap() > 0);
        assert!(snap.counter("link/0", "enqueued").unwrap() > 0);
        assert!(snap.counter("flow/0", "segments_sent").unwrap() > 0);
        assert!(snap.counter("flow/0", "goodput_bytes").unwrap() > 0);
    }

    /// Satellite check: the per-flow metrics export is a faithful copy of
    /// the agents' own `SenderStats`/`SinkStats`, flow by flow.
    #[test]
    fn per_flow_metrics_agree_with_agent_stats() {
        let spec = ScenarioSpec::ns2_dumbbell(3);
        let mut bench = spec.build().unwrap();
        bench.sim.enable_metrics();
        bench.run_until(SimTime::from_secs(10));
        let snap = bench.metrics_snapshot().expect("metrics enabled");
        let mut timeouts = 0;
        let mut fast = 0;
        let mut goodput = 0;
        for h in &bench.flows {
            let scope = format!("flow/{}", h.flow.as_u32());
            let sender = bench
                .sim
                .agent_as::<pdos_tcp::sender::TcpSender>(h.sender)
                .unwrap();
            let s = sender.stats();
            assert_eq!(snap.counter(&scope, "segments_sent"), Some(s.segments_sent));
            assert_eq!(
                snap.counter(&scope, "retransmissions"),
                Some(s.retransmissions)
            );
            assert_eq!(snap.counter(&scope, "rto_expirations"), Some(s.timeouts));
            assert_eq!(
                snap.counter(&scope, "fast_retransmits"),
                Some(s.fast_recoveries)
            );
            assert_eq!(snap.counter(&scope, "rtt_samples"), Some(s.rtt_samples));
            let sink = bench
                .sim
                .agent_as::<pdos_tcp::sink::TcpSink>(h.sink)
                .unwrap();
            let k = sink.stats();
            assert_eq!(
                snap.counter(&scope, "segments_received"),
                Some(k.segments_received)
            );
            assert_eq!(snap.counter(&scope, "acks_sent"), Some(k.acks_sent));
            assert_eq!(
                snap.counter(&scope, "delayed_ack_fires"),
                Some(k.delayed_ack_fires)
            );
            assert_eq!(
                snap.counter(&scope, "goodput_bytes"),
                Some(sink.goodput_bytes())
            );
            timeouts += s.timeouts;
            fast += s.fast_recoveries;
            goodput += sink.goodput_bytes();
        }
        assert_eq!(timeouts, bench.total_timeouts());
        assert_eq!(fast, bench.total_fast_recoveries());
        assert_eq!(goodput, bench.goodput_bytes());
        assert!(goodput > 0, "flows must have delivered data");
    }

    #[test]
    fn detector_taps_are_read_only_observers() {
        let plain_exp = quick_experiment(3).window(SimDuration::from_secs(8));
        let baseline = plain_exp.baseline_bytes().unwrap();
        let plain = plain_exp
            .run_point_traced(
                0.1,
                30e6,
                0.4,
                baseline,
                Some(SimDuration::from_millis(100)),
            )
            .unwrap();
        let tapped = plain_exp
            .clone()
            .detect(true)
            .run_point_traced(
                0.1,
                30e6,
                0.4,
                baseline,
                Some(SimDuration::from_millis(100)),
            )
            .unwrap();
        assert_eq!(plain, tapped, "the tap must not perturb the run");
    }

    #[test]
    fn cusum_drift_fault_is_an_engine_level_no_op() {
        let exp = quick_experiment(3).window(SimDuration::from_secs(8));
        let baseline = exp.baseline_bytes().unwrap();
        let clean = exp.run_point(0.1, 30e6, 0.4, baseline).unwrap();
        // Detector-layer fault: physics-neutral AND invisible even to a
        // checked run — the fuzz campaign's detector stage is what trips.
        let drilled = exp
            .clone()
            .fault(Some(SeededFault::CusumDrift))
            .checks(true)
            .run_point(0.1, 30e6, 0.4, baseline)
            .unwrap();
        assert_eq!(clean, drilled, "CusumDrift must not perturb the bench");
    }

    #[test]
    fn seeded_faults_are_physics_neutral_and_caught_by_checks() {
        let exp = quick_experiment(3).window(SimDuration::from_secs(8));
        let baseline = exp.baseline_bytes().unwrap();
        let clean = exp.run_point(0.1, 30e6, 0.4, baseline).unwrap();
        for fault in [SeededFault::LinkAccounting, SeededFault::OmitLinkStats] {
            // Counters-only corruption: the unchecked measurement is
            // bit-identical to a clean run...
            let faulted = exp.clone().fault(Some(fault));
            let p = faulted.run_point(0.1, 30e6, 0.4, baseline).unwrap();
            assert_eq!(p, clean, "{fault:?} must not perturb physics");
            // ...and the checked one must fail the conservation audit.
            let checked = faulted.checks(true);
            let err = checked.run_point(0.1, 30e6, 0.4, baseline).unwrap_err();
            assert!(
                matches!(err, ExperimentError::Invariant(_)),
                "{fault:?}: expected Invariant, got {err:?}"
            );
        }
    }

    /// Tentpole contract at the experiment layer: a fully observed
    /// (checks + metrics + tap) sharded run measures the exact same
    /// physics as the legacy single-loop engine.
    #[test]
    fn sharded_experiment_matches_unsharded_bit_for_bit() {
        let exp = quick_experiment(3).window(SimDuration::from_secs(8));
        let baseline = exp.baseline_bytes().unwrap();
        let plain = exp.run_point(0.1, 30e6, 0.4, baseline).unwrap();
        let sharded_exp = exp
            .clone()
            .shards(4)
            .checks(true)
            .metrics(true)
            .detect(true);
        assert_eq!(
            sharded_exp.baseline_bytes().unwrap(),
            baseline,
            "sharding must not perturb the baseline"
        );
        let (point, _, snap) = sharded_exp
            .run_point_observed(0.1, 30e6, 0.4, baseline, None)
            .unwrap();
        assert_eq!(plain, point, "sharding must not perturb the physics");
        assert!(
            snap.expect("metered")
                .counter("link/0", "enqueued")
                .unwrap()
                > 0
        );
    }

    /// Warm-starting a sharded experiment forks the sharded state and
    /// still reproduces the cold run byte for byte.
    #[test]
    fn sharded_warm_start_forks_identically() {
        let exp = quick_experiment(3)
            .window(SimDuration::from_secs(8))
            .shards(2);
        let baseline = exp.baseline_bytes().unwrap();
        let cold = exp.run_point(0.1, 30e6, 0.4, baseline).unwrap();
        let warm = exp.warm_start(None).unwrap();
        let forked = exp
            .run_point_observed_from(&warm, 0.1, 30e6, 0.4, baseline)
            .unwrap()
            .0;
        assert_eq!(cold, forked, "forked sharded run must equal cold");
    }

    /// Satellite drill: the shard-skew fault rewinds one cross-shard
    /// packet past the lookahead horizon, and the clock-monotonicity
    /// checker must turn the run red.
    #[test]
    fn shard_skew_fault_is_caught_by_a_checked_sharded_run() {
        let clean = quick_experiment(3).window(SimDuration::from_secs(8));
        let baseline = clean.baseline_bytes().unwrap();
        let drilled = clean
            .clone()
            .shards(2)
            .checks(true)
            .fault(Some(SeededFault::ShardSkew));
        let err = drilled.run_point(0.1, 30e6, 0.4, baseline).unwrap_err();
        match err {
            ExperimentError::Invariant(msg) => {
                assert!(msg.contains("clock"), "expected a clock violation: {msg}");
            }
            other => panic!("expected Invariant, got {other:?}"),
        }
        // On the legacy engine there is no channel to skew: the drill is
        // refused and a checked run stays clean.
        let unsharded = clean.checks(true).fault(Some(SeededFault::ShardSkew));
        let p = unsharded.run_point(0.1, 30e6, 0.4, baseline).unwrap();
        assert!(p.degradation_sim > 0.0);
    }

    #[test]
    fn shrew_points_flagged() {
        let exp = quick_experiment(3);
        let baseline = 1; // dummy; we only check the flag
                          // γ chosen so T_AIMD = 1 s: γ = R·T/(B·1) = 30e6·0.1/15e6 = 0.2.
        let p = exp.run_point(0.1, 30e6, 0.2, baseline).unwrap();
        assert_eq!(p.t_aimd, 1.0);
        assert_eq!(p.shrew, Some(1));
    }
}
