//! Paper-figure parameter grids as [`ExperimentSpec`] enumerations.
//!
//! Figs. 6–9 are gain surfaces: four panels (15/25/35/45 TCP flows),
//! three pulse widths (50/75/100 ms), eight γ samples each, at one
//! `R_attack` per figure (25/30/35/40 Mbps). The ROC ablation pits the
//! spectral detector against benign and attacked traces across γ.
//! Enumerating these grids as flat spec lists — instead of nested loops —
//! is what lets [`crate::runner::SweepRunner`] execute a whole figure in
//! parallel.

use crate::experiment::gamma_grid;
use crate::runner::{AttackPoint, ExperimentSpec};
use crate::spec::ScenarioSpec;
use pdos_sim::time::SimDuration;

/// The pulse widths the figure panels sweep (§4.1): 50, 75, 100 ms.
pub const TEXTENTS: [f64; 3] = [0.050, 0.075, 0.100];

/// The flow counts of the four panels of each of Figs. 6–9.
pub const PANEL_FLOWS: [usize; 4] = [15, 25, 35, 45];

/// The γ values the ROC ablation samples.
pub const ROC_GAMMAS: [f64; 4] = [0.1, 0.2, 0.4, 0.7];

/// One of the paper's gain-surface figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GainFigure {
    /// Fig. 6: `R_attack` = 25 Mbps.
    Fig06,
    /// Fig. 7: `R_attack` = 30 Mbps.
    Fig07,
    /// Fig. 8: `R_attack` = 35 Mbps.
    Fig08,
    /// Fig. 9: `R_attack` = 40 Mbps.
    Fig09,
}

impl GainFigure {
    /// The figure's pulse rate, Mbps.
    pub fn r_attack_mbps(self) -> f64 {
        match self {
            GainFigure::Fig06 => 25.0,
            GainFigure::Fig07 => 30.0,
            GainFigure::Fig08 => 35.0,
            GainFigure::Fig09 => 40.0,
        }
    }

    /// The figure's canonical name (`fig06` …).
    pub fn name(self) -> &'static str {
        match self {
            GainFigure::Fig06 => "fig06",
            GainFigure::Fig07 => "fig07",
            GainFigure::Fig08 => "fig08",
            GainFigure::Fig09 => "fig09",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(name: &str) -> Option<GainFigure> {
        match name {
            "fig06" => Some(GainFigure::Fig06),
            "fig07" => Some(GainFigure::Fig07),
            "fig08" => Some(GainFigure::Fig08),
            "fig09" => Some(GainFigure::Fig09),
            _ => None,
        }
    }
}

/// The sampling resolution of a figure sweep.
#[derive(Debug, Clone)]
pub struct FigureGrid {
    /// Panel flow counts.
    pub flows: Vec<usize>,
    /// Pulse widths, seconds.
    pub textents: Vec<f64>,
    /// γ samples.
    pub gammas: Vec<f64>,
    /// Warm-up per run.
    pub warmup: SimDuration,
    /// Measurement window per run.
    pub window: SimDuration,
}

impl FigureGrid {
    /// The full published resolution: 4 panels × 3 widths × 8 γ = 96 runs,
    /// 10 s warm-up, 40 s window.
    pub fn full() -> FigureGrid {
        FigureGrid {
            flows: PANEL_FLOWS.to_vec(),
            textents: TEXTENTS.to_vec(),
            gammas: gamma_grid(0.08, 0.92, 8),
            warmup: SimDuration::from_secs(10),
            window: SimDuration::from_secs(40),
        }
    }

    /// A CI-sized smoke grid: one small panel, one width, 4 γ, short
    /// windows — enough to exercise every code path per PR.
    pub fn smoke() -> FigureGrid {
        FigureGrid {
            flows: vec![8],
            textents: vec![0.075],
            gammas: gamma_grid(0.2, 0.8, 4),
            warmup: SimDuration::from_secs(4),
            window: SimDuration::from_secs(8),
        }
    }
}

/// Enumerates one gain figure as a flat spec list, panel-major then
/// width-major then γ — the same order the serial tables print in.
pub fn gain_figure_specs(fig: GainFigure, grid: &FigureGrid) -> Vec<ExperimentSpec> {
    gain_figure_specs_cc(fig, grid, pdos_tcp::cc::CcSpec::Aimd)
}

/// The same grid as [`gain_figure_specs`], with the victims running the
/// given congestion-control algorithm — the per-algorithm re-run of the
/// paper's Fig. 6–9 question (`pdos sweep --fig figNN --cc <alg>`).
///
/// `aimd` yields identical ids, hashes and seeds to the legacy grid; any
/// other algorithm tags every id with a `/cc-<key>` suffix so reports
/// and golden files never collide across algorithms.
pub fn gain_figure_specs_cc(
    fig: GainFigure,
    grid: &FigureGrid,
    cc: pdos_tcp::cc::CcSpec,
) -> Vec<ExperimentSpec> {
    let r_attack = fig.r_attack_mbps() * 1e6;
    let mut specs = Vec::with_capacity(grid.flows.len() * grid.textents.len() * grid.gammas.len());
    for &flows in &grid.flows {
        for &t_extent in &grid.textents {
            for &gamma in &grid.gammas {
                let mut id = format!(
                    "{}/flows{flows}/te{}ms/g{gamma:.3}",
                    fig.name(),
                    (t_extent * 1000.0).round() as u64
                );
                if cc != pdos_tcp::cc::CcSpec::Aimd {
                    id.push_str("/cc-");
                    id.push_str(cc.key());
                }
                specs.push(
                    ExperimentSpec::attacked(
                        id,
                        ScenarioSpec::ns2_dumbbell(flows).with_cc(cc),
                        AttackPoint {
                            t_extent,
                            r_attack,
                            gamma,
                        },
                    )
                    .warmup(grid.warmup)
                    .window(grid.window),
                );
            }
        }
    }
    specs
}

/// The ROC ablation's trace-generation grid: `n_traces` benign replicas
/// plus `n_traces` attacked replicas per γ in [`ROC_GAMMAS`], each run
/// recording 100 ms bottleneck ingress bins. Replica ids differ, so the
/// runner's derived-seed policy gives every trace independent randomness;
/// start phases are also spread per replica, as the serial bench did.
pub fn roc_specs(n_traces: u64, window: SimDuration) -> Vec<ExperimentSpec> {
    let bin = SimDuration::from_millis(100);
    let warmup = SimDuration::from_secs(5);
    let mut specs = Vec::new();
    let scenario_for = |replica: u64| {
        let mut s = ScenarioSpec::ns2_dumbbell(8);
        s.start_stagger = SimDuration::from_millis(89 + (replica * 7) % 37);
        s
    };
    for replica in 0..n_traces {
        specs.push(
            ExperimentSpec::benign(format!("roc/benign/r{replica}"), scenario_for(replica))
                .warmup(warmup)
                .window(window)
                .traced(bin),
        );
    }
    for &gamma in &ROC_GAMMAS {
        for replica in 0..n_traces {
            specs.push(
                ExperimentSpec::attacked(
                    format!("roc/g{gamma:.2}/r{replica}"),
                    scenario_for(replica),
                    AttackPoint {
                        t_extent: 0.075,
                        r_attack: 30e6,
                        gamma,
                    },
                )
                .warmup(warmup)
                .window(window)
                .traced(bin),
            );
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_enumerates_the_published_resolution() {
        let specs = gain_figure_specs(GainFigure::Fig06, &FigureGrid::full());
        assert_eq!(specs.len(), 4 * 3 * 8);
        // Panel-major order: the first 24 specs are the 15-flow panel.
        assert!(specs[..24].iter().all(|s| s.scenario.n_flows == 15));
        assert!(specs.iter().all(|s| {
            let a = s.attack.expect("attacked");
            (a.r_attack - 25e6).abs() < 1.0
        }));
    }

    #[test]
    fn smoke_grid_is_small() {
        let specs = gain_figure_specs(GainFigure::Fig09, &FigureGrid::smoke());
        assert_eq!(specs.len(), 4);
        assert!(specs.iter().all(|s| s.id.starts_with("fig09/")));
    }

    #[test]
    fn cc_grid_tags_ids_and_scenarios_without_touching_aimd() {
        use pdos_tcp::cc::CcSpec;
        let grid = FigureGrid::smoke();
        let legacy = gain_figure_specs(GainFigure::Fig06, &grid);
        let aimd = gain_figure_specs_cc(GainFigure::Fig06, &grid, CcSpec::Aimd);
        for (l, a) in legacy.iter().zip(&aimd) {
            assert_eq!(l.id, a.id);
            // Same stable hash => same derived seeds and warm-start keys.
            assert_eq!(l.stable_hash(), a.stable_hash());
        }
        let cubic = gain_figure_specs_cc(GainFigure::Fig06, &grid, CcSpec::Cubic);
        for (l, c) in legacy.iter().zip(&cubic) {
            assert_eq!(c.id, format!("{}/cc-cubic", l.id));
            assert_eq!(c.scenario.tcp.cc, CcSpec::Cubic);
            assert_ne!(l.stable_hash(), c.stable_hash(), "cc must re-seed");
        }
    }

    #[test]
    fn figure_names_roundtrip() {
        for fig in [
            GainFigure::Fig06,
            GainFigure::Fig07,
            GainFigure::Fig08,
            GainFigure::Fig09,
        ] {
            assert_eq!(GainFigure::from_name(fig.name()), Some(fig));
        }
        assert_eq!(GainFigure::from_name("fig11"), None);
    }

    #[test]
    fn roc_grid_shapes_benign_and_attacked() {
        let specs = roc_specs(4, SimDuration::from_secs(10));
        assert_eq!(specs.len(), 4 + 4 * ROC_GAMMAS.len());
        assert_eq!(specs.iter().filter(|s| s.attack.is_none()).count(), 4);
        assert!(specs.iter().all(|s| s.trace_bin.is_some()));
        // Replica ids make seeds distinct even at equal physics.
        let a = crate::runner::derive_seed(1, &specs[0]);
        let b = crate::runner::derive_seed(1, &specs[1]);
        assert_ne!(a, b);
    }
}
