//! # pdos-scenarios — the DSN 2005 evaluation, reproducible
//!
//! Prebuilt experiment scenarios matching the paper's two environments —
//! the ns-2 dumbbell of Fig. 5 (§4.1) and the Dummynet test-bed of Fig. 11
//! (§4.2) — plus the measurement protocols behind every results figure:
//!
//! * [`spec::ScenarioSpec`] — topology/parameter presets as plain data;
//! * [`bench::Testbench`] — a wired simulator with victim flows, attacker
//!   host and goodput/loss instrumentation;
//! * [`experiment::GainExperiment`] — the Γ and gain measurement driving
//!   Figs. 6–10 and 12;
//! * [`classify::GainClass`] — the normal/under/over-gain taxonomy of
//!   §4.1.1;
//! * [`sync::SyncExperiment`] — the quasi-global synchronization
//!   measurement of Fig. 3;
//! * [`runner::SweepRunner`] — the parallel, deterministic experiment
//!   runner (per-run seeds derived from a master seed + spec hash);
//! * [`figures::gain_figure_specs`] — Figs. 6–9 and the ROC ablation as
//!   flat spec enumerations the runner fans out.
//!
//! ## Example: measure one attacked point
//!
//! ```no_run
//! use pdos_scenarios::prelude::*;
//!
//! let exp = GainExperiment::new(ScenarioSpec::ns2_dumbbell(15));
//! let baseline = exp.baseline_bytes()?;
//! let point = exp.run_point(0.075, 30e6, 0.3, baseline)?;
//! println!("Γ = {:.2}, gain = {:.2} ({})",
//!          point.degradation_sim, point.g_sim, point.class);
//! # Ok::<(), pdos_scenarios::experiment::ExperimentError>(())
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bench;
pub mod classify;
pub mod experiment;
pub mod figures;
pub mod runner;
pub mod spec;
pub mod sync;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::bench::{AttackPhasing, FlowHandle, Testbench, ATTACK_FLOW};
    pub use crate::classify::GainClass;
    pub use crate::experiment::{
        gamma_grid, optimal_pulse_train, ExperimentError, GainExperiment, GainPoint, GainSweep,
        SeedStats, SeededFault,
    };
    pub use crate::figures::{
        gain_figure_specs, gain_figure_specs_cc, roc_specs, FigureGrid, GainFigure,
    };
    pub use crate::runner::{
        derive_seed, AttackPoint, ExperimentSpec, RunOutcome, RunRecord, SeedPolicy, SweepReport,
        SweepRunner,
    };
    pub use crate::spec::{BottleneckQueue, ScenarioSpec};
    pub use crate::sync::{SyncExperiment, SyncResult};
}
