//! The parallel, deterministic experiment runner.
//!
//! The paper's results are sweeps over hundreds of `(T_extent, R_attack,
//! γ)` points, each an independent simulation. [`SweepRunner`] fans a grid
//! of [`ExperimentSpec`]s out over a pool of worker threads and collects
//! per-run results plus wall-clock/throughput metrics into a single
//! [`SweepReport`] (serializable to JSON with no external dependencies).
//!
//! ## Determinism
//!
//! Every run's RNG seed is a pure function of the runner's **master seed**
//! and the spec itself:
//!
//! ```text
//! run_seed = fnv1a64( master_seed ‖ fnv1a64(spec identity) )
//! ```
//!
//! so results are bitwise-identical regardless of worker count or
//! scheduling order, and distinct specs get distinct seeds. Two seed
//! policies cover the two kinds of study:
//!
//! * [`SeedPolicy::FromScenario`] keeps each spec's `scenario.seed`
//!   untouched — runs reproduce the serial figure sweeps exactly;
//! * [`SeedPolicy::Derived`] overwrites `scenario.seed` with the derived
//!   seed — independent replications (ROC studies, error bars) fall out
//!   of simply enumerating specs with distinct ids.
//!
//! Baselines (the no-attack goodput a gain measurement normalizes by) are
//! memoized across runs keyed by the effective scenario, so a figure panel
//! sharing one scenario measures its baseline once, exactly like the
//! serial protocol — and because a baseline is a pure function of the
//! scenario, memoization cannot perturb determinism.

use crate::experiment::{ExperimentError, GainExperiment, GainPoint, SeededFault, WarmStart};
use crate::spec::ScenarioSpec;
use pdos_analysis::gain::RiskPreference;
use pdos_sim::time::SimDuration;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One attacked parameter point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackPoint {
    /// Pulse width, seconds.
    pub t_extent: f64,
    /// Pulse rate, bits per second.
    pub r_attack: f64,
    /// Normalized average attack rate.
    pub gamma: f64,
}

/// A self-contained description of one simulation run.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Stable identifier, e.g. `fig06/flows15/te50ms/g0.320`. Part of the
    /// seed-derivation input, so replications can share physics but not
    /// seeds by differing only in id.
    pub id: String,
    /// The scenario to build.
    pub scenario: ScenarioSpec,
    /// Warm-up before the measurement window.
    pub warmup: SimDuration,
    /// Measurement window length.
    pub window: SimDuration,
    /// The attack to apply; `None` measures a benign baseline run.
    pub attack: Option<AttackPoint>,
    /// When set, record the bottleneck's ingress byte bins at this width
    /// over the measurement window (detector studies).
    pub trace_bin: Option<SimDuration>,
    /// Risk preference κ folded into gain (1.0 = the figures' neutral).
    pub kappa: f64,
    /// Run with the simulator's runtime invariant checkers enabled; a
    /// violation turns the run into [`RunOutcome::Failed`]. Deliberately
    /// **not** part of [`ExperimentSpec::stable_hash`] — auditing a run
    /// must not change its seed or its physics.
    pub checks: bool,
    /// Run with the metrics registry enabled: the record then carries a
    /// per-link/per-flow [`pdos_metrics::MetricsSnapshot`]. Like `checks`,
    /// deliberately **not** part of [`ExperimentSpec::stable_hash`] —
    /// observing a run must not change its seed or its physics.
    pub metrics: bool,
    /// Run with the engine's per-link detector tap enabled (streaming
    /// detector feed; see `pdos_sim::tap`). The tap bins at the spec's
    /// `trace_bin` width when set, else at the 100 ms detector default.
    /// Like `checks`/`metrics`, deliberately **not** part of
    /// [`ExperimentSpec::stable_hash`] — tapping a run must not change
    /// its seed or its physics — but it *is* part of
    /// [`ExperimentSpec::prefix_hash`], because a checkpoint physically
    /// carries the tap's bins.
    pub detect: bool,
    /// Deliberately inject a known physics bug into the measurement phase
    /// (fuzz-campaign self-test drills; see [`SeededFault`]). Applied
    /// *after* the warm-up fork, so checkpoints stay uncorrupted and
    /// shareable. Excluded from [`ExperimentSpec::stable_hash`] and
    /// [`ExperimentSpec::prefix_hash`] (it must not re-seed or re-warm
    /// anything), but folded into the baseline memo key so a faulted
    /// baseline can never be served to an unfaulted run.
    pub fault: Option<SeededFault>,
    /// Run on a sharded engine with this many requested shards (`1` =
    /// the legacy single event loop; the engine may effect fewer when
    /// the topology resists cutting). Sharded output is bit-identical
    /// to unsharded by contract, so — like `checks` — this is
    /// deliberately **not** part of [`ExperimentSpec::stable_hash`]:
    /// sharding a run must not change its seed or its physics. It *is*
    /// part of [`ExperimentSpec::prefix_hash`], because a checkpoint
    /// physically carries the shard structure.
    pub shards: usize,
}

impl ExperimentSpec {
    /// A spec with the paper's defaults (10 s warm-up, 60 s window,
    /// risk-neutral) for an attacked point.
    pub fn attacked(
        id: impl Into<String>,
        scenario: ScenarioSpec,
        attack: AttackPoint,
    ) -> ExperimentSpec {
        ExperimentSpec {
            id: id.into(),
            scenario,
            warmup: SimDuration::from_secs(10),
            window: SimDuration::from_secs(60),
            attack: Some(attack),
            trace_bin: None,
            kappa: 1.0,
            checks: false,
            metrics: false,
            detect: false,
            fault: None,
            shards: 1,
        }
    }

    /// A benign (no-attack) spec with the paper's default windows.
    pub fn benign(id: impl Into<String>, scenario: ScenarioSpec) -> ExperimentSpec {
        ExperimentSpec {
            id: id.into(),
            scenario,
            warmup: SimDuration::from_secs(10),
            window: SimDuration::from_secs(60),
            attack: None,
            trace_bin: None,
            kappa: 1.0,
            checks: false,
            metrics: false,
            detect: false,
            fault: None,
            shards: 1,
        }
    }

    /// Overrides the warm-up length.
    #[must_use]
    pub fn warmup(mut self, warmup: SimDuration) -> ExperimentSpec {
        self.warmup = warmup;
        self
    }

    /// Overrides the measurement window.
    #[must_use]
    pub fn window(mut self, window: SimDuration) -> ExperimentSpec {
        self.window = window;
        self
    }

    /// Requests a bottleneck ingress trace at `bin` width.
    #[must_use]
    pub fn traced(mut self, bin: SimDuration) -> ExperimentSpec {
        self.trace_bin = Some(bin);
        self
    }

    /// Enables the runtime invariant checkers for this run. Hash-neutral:
    /// a checked run uses the same seed and produces the same physics as
    /// an unchecked one.
    #[must_use]
    pub fn checked(mut self) -> ExperimentSpec {
        self.checks = true;
        self
    }

    /// Enables the metrics registry for this run. Hash-neutral: a metered
    /// run uses the same seed and produces the same physics as an
    /// unmetered one.
    #[must_use]
    pub fn metered(mut self) -> ExperimentSpec {
        self.metrics = true;
        self
    }

    /// Enables the engine's per-link detector tap for this run.
    /// Hash-neutral: a tapped run uses the same seed and produces the
    /// same physics as an untapped one.
    #[must_use]
    pub fn tapped(mut self) -> ExperimentSpec {
        self.detect = true;
        self
    }

    /// Injects `fault` into the measurement phase of this run (fuzz-drill
    /// seam). Hash-neutral: a faulted spec keeps its seed and warm-up
    /// prefix; only the measured physics are (deliberately) corrupted.
    #[must_use]
    pub fn faulted(mut self, fault: SeededFault) -> ExperimentSpec {
        self.fault = Some(fault);
        self
    }

    /// Runs this spec on a sharded engine (`1` = legacy). Seed-neutral:
    /// a sharded run uses the same seed and produces the same physics
    /// as an unsharded one — but prefix-relevant, so sharded and
    /// unsharded runs never share a warm-start checkpoint.
    #[must_use]
    pub fn sharded(mut self, shards: usize) -> ExperimentSpec {
        self.shards = shards.max(1);
        self
    }

    /// A stable 64-bit digest of the spec's identity: id, scenario,
    /// windows, attack point and κ. Used as the spec half of the seed
    /// derivation.
    pub fn stable_hash(&self) -> u64 {
        let mut ident = String::with_capacity(256);
        let _ = write!(
            ident,
            "{}|{:?}|{:?}|{:?}|{:?}|{}",
            self.id, self.scenario, self.warmup, self.window, self.attack, self.kappa
        );
        fnv1a64(ident.as_bytes())
    }

    /// A stable 64-bit digest of everything that shapes the simulation up
    /// to the attack start: the scenario (seed included), the warm-up
    /// length, the trace registration, and the checks/metrics observer
    /// wiring (a checkpoint physically carries checker and registry state,
    /// so forks must match the spec's wiring). The id, measurement window,
    /// attack point and κ are deliberately excluded — sweep points that
    /// differ only in those share one warm-up prefix, which is what lets
    /// the warm-start cache simulate each prefix once and fork per point.
    pub fn prefix_hash(&self) -> u64 {
        Self::prefix_hash_of(
            &self.scenario,
            self.warmup,
            self.trace_bin,
            self.checks,
            self.metrics,
            self.detect,
            self.shards,
        )
    }

    /// [`ExperimentSpec::prefix_hash`] for an explicit effective
    /// `scenario` — the runner hashes the scenario *after* applying its
    /// [`SeedPolicy`], so only runs with equal physics share a prefix.
    #[allow(clippy::too_many_arguments)]
    pub fn prefix_hash_of(
        scenario: &ScenarioSpec,
        warmup: SimDuration,
        trace_bin: Option<SimDuration>,
        checks: bool,
        metrics: bool,
        detect: bool,
        shards: usize,
    ) -> u64 {
        let mut ident = String::with_capacity(256);
        let _ = write!(
            ident,
            "{scenario:?}|{warmup:?}|{trace_bin:?}|{checks}|{metrics}|{detect}"
        );
        // Appended conditionally so legacy (unsharded) specs keep the
        // prefix digests they had before sharding existed.
        if shards > 1 {
            let _ = write!(ident, "|shards={shards}");
        }
        fnv1a64(ident.as_bytes())
    }
}

/// FNV-1a, 64-bit: tiny, portable, and stable across platforms — unlike
/// `std::hash::DefaultHasher`, whose output may change between releases.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives the run seed for `spec` under `master_seed`.
pub fn derive_seed(master_seed: u64, spec: &ExperimentSpec) -> u64 {
    let mut input = [0u8; 16];
    input[..8].copy_from_slice(&master_seed.to_le_bytes());
    input[8..].copy_from_slice(&spec.stable_hash().to_le_bytes());
    fnv1a64(&input)
}

/// How the derived seed enters the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedPolicy {
    /// Keep each spec's `scenario.seed`: reproduces the serial figure
    /// sweeps exactly (the figure definition pins the seed).
    FromScenario,
    /// Overwrite `scenario.seed` with the derived seed: independent
    /// deterministic replications.
    #[default]
    Derived,
}

/// What one run produced.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// An attacked run's measured point (plus its trace when requested).
    Point {
        /// The measured gain point.
        point: GainPoint,
        /// Bottleneck ingress bins over the window (empty unless traced).
        trace: Vec<u64>,
    },
    /// A benign run's goodput (plus its trace when requested).
    Benign {
        /// Aggregate goodput over the window, bytes.
        goodput_bytes: u64,
        /// Bottleneck ingress bins over the window (empty unless traced).
        trace: Vec<u64>,
    },
    /// The requested pulse train is infeasible at this point (skipped, as
    /// in the serial sweeps).
    Infeasible {
        /// Why the pulse parameters are infeasible.
        reason: String,
    },
    /// The run failed hard (bad model parameters, topology error).
    Failed {
        /// The error message.
        reason: String,
    },
}

/// One run's record in the report.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The spec's id.
    pub id: String,
    /// The derived seed (equals `scenario.seed` under
    /// [`SeedPolicy::Derived`]).
    pub run_seed: u64,
    /// The effective scenario seed the simulation used.
    pub scenario_seed: u64,
    /// The baseline goodput this run's gain was normalized by (0 for
    /// benign/failed runs).
    pub baseline_bytes: u64,
    /// The run's outcome.
    pub outcome: RunOutcome,
    /// The run's metrics snapshot (`Some` only for successful runs of a
    /// metered spec). Not part of [`RunRecord::result_json`] — the sweep
    /// aggregates snapshots via [`SweepReport::merged_metrics`] instead.
    pub metrics: Option<pdos_metrics::MetricsSnapshot>,
    /// Wall-clock time of this run on its worker.
    pub wall: Duration,
}

impl RunRecord {
    /// Serializes everything *except* timing — the byte-identical part of
    /// the record across worker counts and scheduling orders.
    pub fn result_json(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"id\":{},\"run_seed\":{},\"scenario_seed\":{},\"baseline_bytes\":{}",
            json_str(&self.id),
            self.run_seed,
            self.scenario_seed,
            self.baseline_bytes
        );
        match &self.outcome {
            RunOutcome::Point { point, trace } => {
                let _ = write!(s, ",\"status\":\"ok\",\"point\":{}", point_json(point));
                if !trace.is_empty() {
                    let _ = write!(s, ",\"trace\":{}", json_u64_array(trace));
                }
            }
            RunOutcome::Benign {
                goodput_bytes,
                trace,
            } => {
                let _ = write!(
                    s,
                    ",\"status\":\"benign\",\"goodput_bytes\":{goodput_bytes}"
                );
                if !trace.is_empty() {
                    let _ = write!(s, ",\"trace\":{}", json_u64_array(trace));
                }
            }
            RunOutcome::Infeasible { reason } => {
                let _ = write!(
                    s,
                    ",\"status\":\"infeasible\",\"reason\":{}",
                    json_str(reason)
                );
            }
            RunOutcome::Failed { reason } => {
                let _ = write!(s, ",\"status\":\"failed\",\"reason\":{}", json_str(reason));
            }
        }
        s.push('}');
        s
    }
}

fn point_json(p: &GainPoint) -> String {
    let mut s = String::with_capacity(256);
    let _ = write!(
        s,
        "{{\"gamma\":{},\"t_aimd\":{},\"g_analytic\":{},\"g_sim\":{},\
         \"degradation_analytic\":{},\"degradation_sim\":{},\
         \"timeouts\":{},\"fast_recoveries\":{},\"shrew\":{},\"class\":\"{}\"}}",
        p.gamma,
        p.t_aimd,
        p.g_analytic,
        p.g_sim,
        p.degradation_analytic,
        p.degradation_sim,
        p.timeouts,
        p.fast_recoveries,
        p.shrew.map_or_else(|| "null".into(), |n| n.to_string()),
        p.class,
    );
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_u64_array(xs: &[u64]) -> String {
    let mut s = String::with_capacity(xs.len() * 8 + 2);
    s.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{x}");
    }
    s.push(']');
    s
}

/// The full report of one sweep: per-run records in spec order plus
/// wall-clock/throughput metrics.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The master seed the runner used.
    pub master_seed: u64,
    /// Worker threads used.
    pub jobs: usize,
    /// The seed policy in force.
    pub seed_policy: SeedPolicy,
    /// Per-run records, in the order the specs were given.
    pub records: Vec<RunRecord>,
    /// Warm-up prefixes actually simulated (cold starts): how many times a
    /// shared prefix had to be simulated from `t = 0`. With warm-starting
    /// on and no LRU evictions this equals the number of distinct
    /// [`ExperimentSpec::prefix_hash`] values; without it this is `0`
    /// (every run pays its own cold warm-up instead). Not part of
    /// [`SweepReport::results_json`] — it is a cache statistic, not a
    /// physics result.
    pub warmups: usize,
    /// Runs that resumed from a forked checkpoint instead of cold-starting
    /// (attacked measurements, memoized baseline measurements and benign
    /// runs each count once). Not part of [`SweepReport::results_json`].
    pub forked_runs: usize,
    /// End-to-end wall-clock time of the sweep.
    pub wall: Duration,
}

impl SweepReport {
    /// Total per-run compute time (the serial-equivalent cost).
    pub fn cpu_time(&self) -> Duration {
        self.records.iter().map(|r| r.wall).sum()
    }

    /// Completed runs per wall-clock second.
    pub fn runs_per_sec(&self) -> f64 {
        self.records.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// The measured points of successful attacked runs, in spec order.
    pub fn points(&self) -> Vec<&GainPoint> {
        self.records
            .iter()
            .filter_map(|r| match &r.outcome {
                RunOutcome::Point { point, .. } => Some(point),
                _ => None,
            })
            .collect()
    }

    /// Merges the metrics snapshots of every successful metered run into
    /// one aggregate, or `None` when no record carries metrics. Records
    /// whose outcome is [`RunOutcome::Failed`] are skipped explicitly: a
    /// failed worker (panic caught at the run boundary, invariant
    /// violation, build error) may have died mid-run, so any counters it
    /// accumulated are partial and must not contaminate the aggregate.
    pub fn merged_metrics(&self) -> Option<pdos_metrics::MetricsSnapshot> {
        let mut merged: Option<pdos_metrics::MetricsSnapshot> = None;
        for r in &self.records {
            if matches!(r.outcome, RunOutcome::Failed { .. }) {
                continue;
            }
            let Some(snap) = &r.metrics else { continue };
            match &mut merged {
                None => merged = Some(snap.clone()),
                Some(m) => m.merge(snap),
            }
        }
        merged
    }

    /// Serializes only the deterministic per-run results (no timing):
    /// byte-identical across worker counts for the same master seed and
    /// specs.
    pub fn results_json(&self) -> String {
        let mut s = String::from("[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&r.result_json());
        }
        s.push(']');
        s
    }

    /// Serializes the whole report (results + timing + throughput).
    pub fn to_json(&self) -> String {
        let policy = match self.seed_policy {
            SeedPolicy::FromScenario => "from-scenario",
            SeedPolicy::Derived => "derived",
        };
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"master_seed\":{},\"jobs\":{},\"seed_policy\":\"{}\",\
             \"n_runs\":{},\"warmups\":{},\"forked_runs\":{},\
             \"wall_secs\":{},\"cpu_secs\":{},\"runs_per_sec\":{},\
             \"speedup\":{},\"run_wall_secs\":[",
            self.master_seed,
            self.jobs,
            policy,
            self.records.len(),
            self.warmups,
            self.forked_runs,
            self.wall.as_secs_f64(),
            self.cpu_time().as_secs_f64(),
            self.runs_per_sec(),
            self.cpu_time().as_secs_f64() / self.wall.as_secs_f64().max(1e-9),
        );
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}", r.wall.as_secs_f64());
        }
        let _ = write!(s, "],\"runs\":{}}}", self.results_json());
        s
    }
}

type BaselineCell = Arc<OnceLock<Result<u64, String>>>;
type WarmCell = Arc<OnceLock<Result<Mutex<WarmStart>, String>>>;

/// Memoizes warm-start checkpoints by [`ExperimentSpec::prefix_hash`],
/// bounded to an LRU of [`SweepRunner::checkpoint_capacity`] entries so a
/// sweep over many distinct prefixes cannot hold every simulator image in
/// memory at once. The `OnceLock` cell collapses concurrent warm-ups of
/// the same prefix into one; the `Mutex` serializes only the (cheap) fork
/// operation, never the measurement.
struct CheckpointCache {
    capacity: usize,
    inner: Mutex<CheckpointLru>,
}

#[derive(Default)]
struct CheckpointLru {
    cells: HashMap<u64, WarmCell>,
    /// Keys from least- to most-recently used.
    order: Vec<u64>,
}

impl CheckpointCache {
    fn new(capacity: usize) -> CheckpointCache {
        CheckpointCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CheckpointLru::default()),
        }
    }

    /// The cell for `key`, marking it most-recently used; evicts the
    /// least-recently used checkpoint when the cache is full. Workers that
    /// grabbed an evicted cell keep their `Arc` — eviction only stops new
    /// lookups from reviving it.
    fn cell(&self, key: u64) -> WarmCell {
        let mut lru = self.inner.lock().expect("checkpoint cache poisoned");
        lru.order.retain(|&k| k != key);
        lru.order.push(key);
        if let Some(cell) = lru.cells.get(&key) {
            return Arc::clone(cell);
        }
        if lru.cells.len() >= self.capacity {
            let evict = lru.order.remove(0);
            lru.cells.remove(&evict);
        }
        let cell = WarmCell::default();
        lru.cells.insert(key, Arc::clone(&cell));
        cell
    }

    /// The warmed-up cell for `key`, simulating the shared prefix on first
    /// use. A failed warm-up (un-checkpointable state) is memoized too, so
    /// every run of that prefix falls back to cold exactly once per sweep.
    /// Each actual warm-up simulation (the `OnceLock` closure firing)
    /// bumps `stats.warmups` — the sweep's cold-start count.
    fn get_or_warm(
        &self,
        key: u64,
        exp: &GainExperiment,
        trace_bin: Option<SimDuration>,
        stats: &WarmStats,
    ) -> WarmCell {
        let cell = self.cell(key);
        cell.get_or_init(|| {
            stats.warmups.fetch_add(1, Ordering::Relaxed);
            exp.warm_start(trace_bin)
                .map(Mutex::new)
                .map_err(|e| e.to_string())
        });
        cell
    }
}

/// Shared warm-start accounting for one sweep: how many cold prefix
/// warm-ups ran and how many runs resumed from a forked checkpoint.
#[derive(Default)]
struct WarmStats {
    warmups: AtomicUsize,
    forked_runs: AtomicUsize,
}

/// The usable warm start inside a warmed cell, or `None` when the warm-up
/// failed and the caller must run cold.
fn forkable(cell: &WarmCell) -> Option<&Mutex<WarmStart>> {
    match cell.get() {
        Some(Ok(m)) => Some(m),
        _ => None,
    }
}

/// Memoizes baseline goodputs by effective-scenario digest. A baseline
/// is a pure function of `(scenario, warmup, window)`, so sharing it
/// across runs cannot perturb determinism; `OnceLock` also collapses
/// concurrent computations of the same baseline into one.
#[derive(Default)]
struct BaselineCache {
    cells: Mutex<HashMap<u64, BaselineCell>>,
}

impl BaselineCache {
    fn get_or_measure(
        &self,
        key: u64,
        measure: impl FnOnce() -> Result<u64, String>,
    ) -> Result<u64, String> {
        let cell = {
            let mut map = self.cells.lock().expect("baseline cache poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        cell.get_or_init(measure).clone()
    }
}

/// Default bound on the warm-start checkpoint LRU: a figure panel keeps a
/// handful of distinct prefixes (one per scenario variant), so eight
/// simulator images comfortably cover the grids while bounding memory.
pub const DEFAULT_CHECKPOINT_CAPACITY: usize = 8;

/// The parallel sweep runner.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    master_seed: u64,
    jobs: usize,
    seed_policy: SeedPolicy,
    warm_start: bool,
    checkpoint_capacity: usize,
}

impl Default for SweepRunner {
    fn default() -> SweepRunner {
        SweepRunner::new(0)
    }
}

impl SweepRunner {
    /// A runner with `master_seed`, one worker per available CPU, the
    /// default [`SeedPolicy::Derived`], and warm-start checkpointing on.
    pub fn new(master_seed: u64) -> SweepRunner {
        SweepRunner {
            master_seed,
            jobs: 0,
            seed_policy: SeedPolicy::default(),
            warm_start: true,
            checkpoint_capacity: DEFAULT_CHECKPOINT_CAPACITY,
        }
    }

    /// Sets the worker count (`0` = one per available CPU).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> SweepRunner {
        self.jobs = jobs;
        self
    }

    /// Sets the seed policy.
    #[must_use]
    pub fn seed_policy(mut self, policy: SeedPolicy) -> SweepRunner {
        self.seed_policy = policy;
        self
    }

    /// Enables or disables warm-start checkpointing (default on). When on,
    /// each distinct [`ExperimentSpec::prefix_hash`] simulates its warm-up
    /// once, is checkpointed, and every run of that prefix forks from the
    /// checkpoint; results are bitwise-identical either way, so this is a
    /// pure wall-clock knob. Runs whose state cannot be checkpointed fall
    /// back to cold automatically.
    #[must_use]
    pub fn warm_start(mut self, enabled: bool) -> SweepRunner {
        self.warm_start = enabled;
        self
    }

    /// Bounds the warm-start checkpoint LRU (entries; clamped to ≥ 1).
    #[must_use]
    pub fn checkpoint_capacity(mut self, capacity: usize) -> SweepRunner {
        self.checkpoint_capacity = capacity.max(1);
        self
    }

    /// The effective worker count.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }

    /// Runs every spec and collects the report. Records come back in spec
    /// order; the per-run results are a pure function of
    /// `(master_seed, specs)` — worker count only changes the timing
    /// metrics.
    pub fn run(&self, specs: &[ExperimentSpec]) -> SweepReport {
        let jobs = self.effective_jobs().max(1).min(specs.len().max(1));
        let cache = BaselineCache::default();
        let warm_cache = CheckpointCache::new(self.checkpoint_capacity);
        let stats = WarmStats::default();
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<RunRecord>> = specs.iter().map(|_| OnceLock::new()).collect();

        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    let record = self.execute_caught(spec, &cache, &warm_cache, &stats);
                    slots[i].set(record).expect("slot set twice");
                });
            }
        });
        let wall = started.elapsed();

        SweepReport {
            master_seed: self.master_seed,
            jobs,
            seed_policy: self.seed_policy,
            records: slots
                .into_iter()
                .map(|s| s.into_inner().expect("worker filled every slot"))
                .collect(),
            warmups: stats.warmups.load(Ordering::Relaxed),
            forked_runs: stats.forked_runs.load(Ordering::Relaxed),
            wall,
        }
    }

    /// Executes one spec (the per-worker body). Public so callers can run
    /// single points through exactly the runner's code path.
    pub fn execute_one(&self, spec: &ExperimentSpec) -> RunRecord {
        self.execute_caught(
            spec,
            &BaselineCache::default(),
            &CheckpointCache::new(self.checkpoint_capacity),
            &WarmStats::default(),
        )
    }

    /// Runs [`SweepRunner::execute`] with a panic boundary: a spec that
    /// panics anywhere inside the simulation surfaces as
    /// [`RunOutcome::Failed`] instead of tearing down the whole sweep.
    fn execute_caught(
        &self,
        spec: &ExperimentSpec,
        cache: &BaselineCache,
        warm_cache: &CheckpointCache,
        stats: &WarmStats,
    ) -> RunRecord {
        let started = Instant::now();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.execute(spec, cache, warm_cache, stats)
        })) {
            Ok(record) => record,
            Err(payload) => {
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                let run_seed = derive_seed(self.master_seed, spec);
                RunRecord {
                    id: spec.id.clone(),
                    run_seed,
                    scenario_seed: if self.seed_policy == SeedPolicy::Derived {
                        run_seed
                    } else {
                        spec.scenario.seed
                    },
                    baseline_bytes: 0,
                    outcome: RunOutcome::Failed {
                        reason: format!("worker panicked: {what}"),
                    },
                    metrics: None,
                    wall: started.elapsed(),
                }
            }
        }
    }

    fn execute(
        &self,
        spec: &ExperimentSpec,
        cache: &BaselineCache,
        warm_cache: &CheckpointCache,
        stats: &WarmStats,
    ) -> RunRecord {
        let started = Instant::now();
        let run_seed = derive_seed(self.master_seed, spec);
        let mut scenario = spec.scenario.clone();
        if self.seed_policy == SeedPolicy::Derived {
            scenario.seed = run_seed;
        }
        let scenario_seed = scenario.seed;

        let record = |outcome, baseline_bytes, metrics, wall| RunRecord {
            id: spec.id.clone(),
            run_seed,
            scenario_seed,
            baseline_bytes,
            outcome,
            metrics,
            wall,
        };

        let risk = match RiskPreference::new(spec.kappa) {
            Ok(r) => r,
            Err(reason) => {
                return record(RunOutcome::Failed { reason }, 0, None, started.elapsed());
            }
        };
        // The baseline key digests the *effective* scenario (post seed
        // policy) plus the windows — and the fault seam, so a deliberately
        // corrupted baseline is never shared with a clean run.
        let baseline_key = fnv1a64(
            format!(
                "{:?}|{:?}|{:?}|{:?}",
                scenario, spec.warmup, spec.window, spec.fault
            )
            .as_bytes(),
        );
        // The prefix key likewise digests the effective scenario, so only
        // runs with equal physics share a warm-start checkpoint.
        let prefix_key = ExperimentSpec::prefix_hash_of(
            &scenario,
            spec.warmup,
            spec.trace_bin,
            spec.checks,
            spec.metrics,
            spec.detect,
            spec.shards,
        );
        let exp = GainExperiment::new(scenario)
            .warmup(spec.warmup)
            .window(spec.window)
            .risk(risk)
            .checks(spec.checks)
            .metrics(spec.metrics)
            .detect(spec.detect)
            .fault(spec.fault)
            .shards(spec.shards);

        // Warm start: simulate the shared prefix once per distinct digest,
        // then fork per run. Forking holds the cell lock only as long as
        // the (cheap) state clone; the measurement runs unlocked. A prefix
        // that cannot be checkpointed memoizes its failure and every run
        // of it executes the normal cold path — results are identical
        // either way, warm-starting is purely a wall-clock optimization.
        let warm_cell = self
            .warm_start
            .then(|| warm_cache.get_or_warm(prefix_key, &exp, spec.trace_bin, stats));
        let fork = || {
            let cell = warm_cell.as_ref()?;
            let warm = forkable(cell)?.lock().expect("warm start poisoned");
            let run = exp.fork_run(&warm);
            stats.forked_runs.fetch_add(1, Ordering::Relaxed);
            Some(run)
        };

        let outcome = match spec.attack {
            None => {
                let result = match fork() {
                    Some(run) => exp.baseline_observed_forked(run),
                    None => exp.baseline_observed(spec.trace_bin),
                };
                match result {
                    Ok((goodput_bytes, trace, snapshot)) => {
                        return record(
                            RunOutcome::Benign {
                                goodput_bytes,
                                trace,
                            },
                            goodput_bytes,
                            snapshot,
                            started.elapsed(),
                        );
                    }
                    Err(e) => RunOutcome::Failed {
                        reason: e.to_string(),
                    },
                }
            }
            Some(attack) => {
                let measure_baseline = || match fork() {
                    Some(run) => exp
                        .baseline_observed_forked(run)
                        .map(|(bytes, _, _)| bytes)
                        .map_err(|e| e.to_string()),
                    None => exp.baseline_bytes().map_err(|e| e.to_string()),
                };
                match cache.get_or_measure(baseline_key, measure_baseline) {
                    Err(reason) => RunOutcome::Failed { reason },
                    Ok(baseline) => {
                        let result = match fork() {
                            Some(run) => exp.run_point_observed_forked(
                                run,
                                attack.t_extent,
                                attack.r_attack,
                                attack.gamma,
                                baseline,
                            ),
                            None => exp.run_point_observed(
                                attack.t_extent,
                                attack.r_attack,
                                attack.gamma,
                                baseline,
                                spec.trace_bin,
                            ),
                        };
                        match result {
                            Ok((point, trace, snapshot)) => {
                                return record(
                                    RunOutcome::Point { point, trace },
                                    baseline,
                                    snapshot,
                                    started.elapsed(),
                                );
                            }
                            Err(ExperimentError::Pulse(e)) => RunOutcome::Infeasible {
                                reason: e.to_string(),
                            },
                            Err(e) => RunOutcome::Failed {
                                reason: e.to_string(),
                            },
                        }
                    }
                }
            }
        };
        record(outcome, 0, None, started.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdos_sim::time::SimDuration;

    fn quick_scenario(n_flows: usize) -> ScenarioSpec {
        ScenarioSpec::ns2_dumbbell(n_flows)
    }

    fn quick_spec(id: &str, gamma: f64) -> ExperimentSpec {
        ExperimentSpec::attacked(
            id,
            quick_scenario(3),
            AttackPoint {
                t_extent: 0.1,
                r_attack: 30e6,
                gamma,
            },
        )
        .warmup(SimDuration::from_secs(4))
        .window(SimDuration::from_secs(6))
    }

    #[test]
    fn distinct_specs_get_distinct_seeds() {
        let a = quick_spec("a", 0.3);
        let b = quick_spec("b", 0.3);
        let c = quick_spec("a", 0.4);
        assert_ne!(derive_seed(7, &a), derive_seed(7, &b), "id enters the hash");
        assert_ne!(
            derive_seed(7, &a),
            derive_seed(7, &c),
            "gamma enters the hash"
        );
        assert_ne!(derive_seed(7, &a), derive_seed(8, &a), "master seed enters");
        assert_eq!(
            derive_seed(7, &a),
            derive_seed(7, &a.clone()),
            "pure function"
        );
    }

    #[test]
    fn jobs_do_not_change_results() {
        let specs: Vec<ExperimentSpec> = [0.2, 0.4, 0.6]
            .iter()
            .enumerate()
            .map(|(i, &g)| quick_spec(&format!("p{i}"), g))
            .collect();
        let serial = SweepRunner::new(42).jobs(1).run(&specs);
        let parallel = SweepRunner::new(42).jobs(4).run(&specs);
        assert_eq!(serial.results_json(), parallel.results_json());
        assert_eq!(serial.points().len(), 3);
    }

    #[test]
    fn from_scenario_policy_matches_serial_experiment() {
        let specs = vec![quick_spec("s", 0.4)];
        let report = SweepRunner::new(0)
            .seed_policy(SeedPolicy::FromScenario)
            .jobs(2)
            .run(&specs);
        let exp = GainExperiment::new(quick_scenario(3))
            .warmup(SimDuration::from_secs(4))
            .window(SimDuration::from_secs(6));
        let baseline = exp.baseline_bytes().unwrap();
        let expected = exp.run_point(0.1, 30e6, 0.4, baseline).unwrap();
        match &report.records[0].outcome {
            RunOutcome::Point { point, .. } => assert_eq!(*point, expected),
            other => panic!("expected a point, got {other:?}"),
        }
        assert_eq!(report.records[0].baseline_bytes, baseline);
    }

    #[test]
    fn warm_start_matches_cold_hash_for_hash() {
        // A mixed grid sharing one prefix under FromScenario: benign +
        // attacked + traced specs. The whole report — every point, trace
        // bin, baseline and seed — must be bitwise-identical with
        // warm-starting on (forked runs) and off (cold runs).
        let mut specs: Vec<ExperimentSpec> = [0.2, 0.4, 0.6]
            .iter()
            .enumerate()
            .map(|(i, &g)| quick_spec(&format!("w{i}"), g).traced(SimDuration::from_millis(100)))
            .collect();
        specs.push(
            ExperimentSpec::benign("w-base", quick_scenario(3))
                .warmup(SimDuration::from_secs(4))
                .window(SimDuration::from_secs(6))
                .traced(SimDuration::from_millis(100)),
        );
        for policy in [SeedPolicy::FromScenario, SeedPolicy::Derived] {
            let warm = SweepRunner::new(42)
                .seed_policy(policy)
                .jobs(2)
                .warm_start(true)
                .run(&specs);
            let cold = SweepRunner::new(42)
                .seed_policy(policy)
                .jobs(2)
                .warm_start(false)
                .run(&specs);
            assert_eq!(
                warm.results_json(),
                cold.results_json(),
                "policy {policy:?}"
            );
            assert_eq!(
                fnv1a64(warm.results_json().as_bytes()),
                fnv1a64(cold.results_json().as_bytes())
            );
        }
    }

    #[test]
    fn checkpoint_lru_eviction_keeps_results_exact() {
        // Four distinct prefixes through a capacity-1 cache: every lookup
        // beyond the first of each prefix either re-warms or runs cold —
        // results must not depend on cache hits at all.
        let specs: Vec<ExperimentSpec> = (0..4)
            .map(|i| {
                let mut s = quick_spec(&format!("e{i}"), 0.4);
                s.scenario.seed = 1000 + i;
                s
            })
            .collect();
        let tiny = SweepRunner::new(9)
            .seed_policy(SeedPolicy::FromScenario)
            .checkpoint_capacity(1)
            .run(&specs);
        let cold = SweepRunner::new(9)
            .seed_policy(SeedPolicy::FromScenario)
            .warm_start(false)
            .run(&specs);
        assert_eq!(tiny.results_json(), cold.results_json());
    }

    #[test]
    fn prefix_hash_groups_points_and_splits_scenarios() {
        let a = quick_spec("a", 0.2);
        let b = quick_spec("b", 0.6); // same prefix, different attack/id
        assert_eq!(a.prefix_hash(), b.prefix_hash());
        let mut c = quick_spec("c", 0.2);
        c.scenario.seed ^= 1;
        assert_ne!(a.prefix_hash(), c.prefix_hash(), "seed is prefix-relevant");
        let d = quick_spec("d", 0.2).traced(SimDuration::from_millis(100));
        assert_ne!(
            a.prefix_hash(),
            d.prefix_hash(),
            "trace wiring is prefix-relevant"
        );
        let e = quick_spec("e", 0.2).window(SimDuration::from_secs(30));
        assert_eq!(a.prefix_hash(), e.prefix_hash(), "window is post-prefix");
    }

    #[test]
    fn infeasible_points_are_recorded_not_fatal() {
        // R_attack = 10 Mbps -> C_attack = 2/3: gamma = 0.8 infeasible.
        let mut spec = quick_spec("inf", 0.8);
        spec.attack = Some(AttackPoint {
            t_extent: 0.1,
            r_attack: 10e6,
            gamma: 0.8,
        });
        let report = SweepRunner::new(1).run(&[spec]);
        assert!(matches!(
            report.records[0].outcome,
            RunOutcome::Infeasible { .. }
        ));
    }

    #[test]
    fn benign_runs_report_goodput_and_trace() {
        let spec = ExperimentSpec::benign("base", quick_scenario(3))
            .warmup(SimDuration::from_secs(4))
            .window(SimDuration::from_secs(6))
            .traced(SimDuration::from_millis(100));
        let report = SweepRunner::new(5).run(&[spec]);
        match &report.records[0].outcome {
            RunOutcome::Benign {
                goodput_bytes,
                trace,
            } => {
                assert!(*goodput_bytes > 0);
                assert!((50..=65).contains(&trace.len()), "got {} bins", trace.len());
            }
            other => panic!("expected benign, got {other:?}"),
        }
    }

    #[test]
    fn report_json_is_wellformed_enough() {
        let report = SweepRunner::new(3).jobs(2).run(&[quick_spec("j", 0.3)]);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"master_seed\":3"));
        assert!(json.contains("\"runs\":["));
        assert!(json.contains("\"status\":\"ok\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn stable_hash_and_derived_seed_are_pinned() {
        // Golden values: any change to the spec identity format, the
        // `Debug` representations feeding it, or the seed derivation
        // silently re-seeds every derived-policy sweep. If a change here
        // is *intentional*, update the constants and say so in the commit.
        let spec = quick_spec("pin", 0.5);
        assert_eq!(spec.stable_hash(), 0x6f14_23d5_379e_2643);
        assert_eq!(derive_seed(0, &spec), 0x8e4f_476b_4557_9e9e);
        assert_eq!(derive_seed(42, &spec), 0xc0b9_e410_12e1_d370);
    }

    #[test]
    fn checks_flag_is_hash_neutral() {
        let plain = quick_spec("n", 0.4);
        let checked = quick_spec("n", 0.4).checked();
        assert_eq!(plain.stable_hash(), checked.stable_hash());
        assert_eq!(derive_seed(9, &plain), derive_seed(9, &checked));
    }

    #[test]
    fn checked_spec_runs_clean_and_matches_unchecked() {
        let plain = SweepRunner::new(11).jobs(1).run(&[quick_spec("c", 0.4)]);
        let checked = SweepRunner::new(11)
            .jobs(1)
            .run(&[quick_spec("c", 0.4).checked()]);
        assert_eq!(plain.results_json(), checked.results_json());
        assert!(matches!(
            checked.records[0].outcome,
            RunOutcome::Point { .. }
        ));
    }

    #[test]
    fn panicking_spec_fails_without_sinking_the_sweep() {
        // An AIMD decrease ratio of 2.0 passes the type system but fails
        // TcpConfig::validate, so TcpSender::new panics while the
        // scenario builds — a stand-in for any agent bug.
        let mut bad = quick_spec("bad", 0.4);
        bad.scenario.tcp.aimd.b = 2.0;
        let specs = vec![quick_spec("ok1", 0.3), bad, quick_spec("ok2", 0.5)];
        let report = SweepRunner::new(2).jobs(2).run(&specs);
        assert_eq!(report.records.len(), 3);
        assert!(matches!(
            report.records[0].outcome,
            RunOutcome::Point { .. }
        ));
        match &report.records[1].outcome {
            RunOutcome::Failed { reason } => {
                assert!(reason.contains("worker panicked"), "got: {reason}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(matches!(
            report.records[2].outcome,
            RunOutcome::Point { .. }
        ));

        // The single-spec entry point survives the same panic.
        let mut lone = quick_spec("lone", 0.4);
        lone.scenario.tcp.aimd.b = 2.0;
        let record = SweepRunner::new(2).execute_one(&lone);
        assert!(matches!(record.outcome, RunOutcome::Failed { .. }));
    }

    #[test]
    fn metrics_flag_is_hash_neutral() {
        let plain = quick_spec("m", 0.4);
        let metered = quick_spec("m", 0.4).metered();
        assert_eq!(plain.stable_hash(), metered.stable_hash());
        assert_eq!(derive_seed(9, &plain), derive_seed(9, &metered));
    }

    #[test]
    fn metered_spec_runs_identically_and_carries_a_snapshot() {
        let plain = SweepRunner::new(11).jobs(1).run(&[quick_spec("m", 0.4)]);
        let metered = SweepRunner::new(11)
            .jobs(1)
            .run(&[quick_spec("m", 0.4).metered()]);
        // Physics and serialized results are untouched by observation.
        assert_eq!(plain.results_json(), metered.results_json());
        assert!(plain.records[0].metrics.is_none());
        assert!(plain.merged_metrics().is_none());
        let snap = metered.records[0]
            .metrics
            .as_ref()
            .expect("metered run carries a snapshot");
        assert!(snap.counter("engine", "pops_packet_tier").unwrap() > 0);
        assert_eq!(metered.merged_metrics().as_ref(), Some(snap));
    }

    /// Satellite fix: merging a sweep's metrics must skip Failed
    /// (panicked) workers explicitly — their counters are partial — and
    /// must not panic doing so.
    #[test]
    fn merged_metrics_excludes_failed_workers() {
        let mut bad = quick_spec("bad", 0.4).metered();
        bad.scenario.tcp.aimd.b = 2.0; // panics in TcpSender::new
        let specs = vec![
            quick_spec("ok1", 0.3).metered(),
            bad,
            quick_spec("ok2", 0.5).metered(),
        ];
        let report = SweepRunner::new(2).jobs(2).run(&specs);
        assert!(matches!(
            report.records[1].outcome,
            RunOutcome::Failed { .. }
        ));
        let merged = report.merged_metrics().expect("two runs succeeded");
        // The aggregate is exactly the two successful snapshots merged.
        let mut expected = report.records[0].metrics.clone().unwrap();
        expected.merge(report.records[2].metrics.as_ref().unwrap());
        assert_eq!(merged, expected);
        assert!(merged.counter("engine", "pops_packet_tier").unwrap() > 0);
    }

    #[test]
    fn warm_start_counters_reflect_amortization() {
        // Three attacked points over one scenario (one shared prefix):
        // exactly one cold warm-up, then one fork per measurement plus one
        // for the memoized baseline.
        let specs: Vec<ExperimentSpec> = [0.2, 0.4, 0.6]
            .iter()
            .enumerate()
            .map(|(i, &g)| quick_spec(&format!("a{i}"), g))
            .collect();
        let warm = SweepRunner::new(3)
            .seed_policy(SeedPolicy::FromScenario)
            .jobs(2)
            .run(&specs);
        assert_eq!(warm.warmups, 1, "one prefix, one cold start");
        assert_eq!(warm.forked_runs, 4, "3 points + 1 memoized baseline");
        let cold = SweepRunner::new(3)
            .seed_policy(SeedPolicy::FromScenario)
            .jobs(2)
            .warm_start(false)
            .run(&specs);
        assert_eq!((cold.warmups, cold.forked_runs), (0, 0));
        assert_eq!(warm.results_json(), cold.results_json());
        assert!(warm.to_json().contains("\"warmups\":1"));
    }

    #[test]
    fn fault_field_is_hash_neutral() {
        let plain = quick_spec("f", 0.4);
        let faulted = quick_spec("f", 0.4).faulted(SeededFault::LinkAccounting);
        assert_eq!(plain.stable_hash(), faulted.stable_hash());
        assert_eq!(plain.prefix_hash(), faulted.prefix_hash());
        assert_eq!(derive_seed(9, &plain), derive_seed(9, &faulted));
    }

    #[test]
    fn detect_flag_is_hash_neutral_but_prefix_relevant() {
        let plain = quick_spec("d", 0.4);
        let tapped = quick_spec("d", 0.4).tapped();
        // Seed identity is untouched: tapping never re-seeds a sweep.
        assert_eq!(plain.stable_hash(), tapped.stable_hash());
        assert_eq!(derive_seed(9, &plain), derive_seed(9, &tapped));
        // But a checkpoint physically carries the tap's bins, so tapped
        // and untapped runs must not share warm-start prefixes.
        assert_ne!(plain.prefix_hash(), tapped.prefix_hash());
    }

    #[test]
    fn tapped_spec_runs_identically() {
        let plain = SweepRunner::new(11).jobs(1).run(&[quick_spec("d", 0.4)]);
        let tapped = SweepRunner::new(11)
            .jobs(1)
            .run(&[quick_spec("d", 0.4).tapped()]);
        assert_eq!(plain.results_json(), tapped.results_json());
        assert!(matches!(
            tapped.records[0].outcome,
            RunOutcome::Point { .. }
        ));
    }

    #[test]
    fn faulted_spec_fails_only_when_checked() {
        // The injected accounting bug is invisible without the checkers...
        let quiet = SweepRunner::new(4)
            .jobs(1)
            .run(&[quick_spec("q", 0.4).faulted(SeededFault::LinkAccounting)]);
        assert!(matches!(quiet.records[0].outcome, RunOutcome::Point { .. }));
        // ...and an invariant-violation failure with them.
        let caught = SweepRunner::new(4).jobs(1).run(&[quick_spec("q", 0.4)
            .faulted(SeededFault::LinkAccounting)
            .checked()]);
        match &caught.records[0].outcome {
            RunOutcome::Failed { reason } => {
                assert!(reason.contains("violation"), "got: {reason}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn shards_field_is_hash_neutral_but_prefix_relevant() {
        let plain = quick_spec("s", 0.4);
        let sharded = quick_spec("s", 0.4).sharded(4);
        // Seed identity is untouched: sharding never re-seeds a sweep.
        assert_eq!(plain.stable_hash(), sharded.stable_hash());
        assert_eq!(derive_seed(9, &plain), derive_seed(9, &sharded));
        // But a checkpoint physically carries the shard structure, so
        // sharded and unsharded runs must not share warm-start prefixes.
        assert_ne!(plain.prefix_hash(), sharded.prefix_hash());
        // Requesting one shard IS the legacy engine — including its
        // pre-sharding prefix digest.
        assert_eq!(
            plain.prefix_hash(),
            quick_spec("s", 0.4).sharded(1).prefix_hash()
        );
    }

    /// Tentpole contract at the runner layer: a sharded sweep (with the
    /// warm-start cache forking sharded checkpoints) serializes byte-for-
    /// byte identically to the legacy engine's sweep.
    #[test]
    fn sharded_sweep_matches_unsharded_byte_for_byte() {
        let specs: Vec<ExperimentSpec> = [0.2, 0.6]
            .iter()
            .enumerate()
            .map(|(i, &g)| quick_spec(&format!("s{i}"), g))
            .collect();
        let plain = SweepRunner::new(11).jobs(1).run(&specs);
        for shards in [2, 4] {
            let sharded_specs: Vec<ExperimentSpec> =
                specs.iter().map(|s| s.clone().sharded(shards)).collect();
            let sharded = SweepRunner::new(11).jobs(2).run(&sharded_specs);
            assert_eq!(
                plain.results_json(),
                sharded.results_json(),
                "--shards {shards} must reproduce --shards 1"
            );
        }
    }

    #[test]
    fn shard_skew_drill_turns_a_checked_sharded_sweep_red() {
        let spec = quick_spec("skew", 0.4)
            .sharded(2)
            .checked()
            .faulted(SeededFault::ShardSkew);
        let report = SweepRunner::new(4).jobs(1).run(&[spec]);
        match &report.records[0].outcome {
            RunOutcome::Failed { reason } => {
                assert!(reason.contains("violation"), "got: {reason}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn baseline_cache_shares_equal_scenarios() {
        // Two gammas over the same scenario under FromScenario: both
        // records must be normalized by the same baseline.
        let specs = vec![quick_spec("g1", 0.3), quick_spec("g2", 0.6)];
        let report = SweepRunner::new(0)
            .seed_policy(SeedPolicy::FromScenario)
            .jobs(2)
            .run(&specs);
        assert_eq!(
            report.records[0].baseline_bytes,
            report.records[1].baseline_bytes
        );
        assert!(report.records[0].baseline_bytes > 0);
    }
}
