//! Declarative experiment scenarios: the ns-2 dumbbell of Fig. 5 and the
//! Dummynet test-bed of Fig. 11, as data.

use crate::bench::{FlowHandle, Testbench};
use pdos_analysis::params::{spread_rtts, VictimSet};
use pdos_sim::packet::FlowId;
use pdos_sim::queue::{AccConfig, QueueSpec, RedConfig};
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::topology::{BuildError, TopologyBuilder};
use pdos_sim::units::{BitsPerSec, Bytes};
use pdos_tcp::config::TcpConfig;
use pdos_tcp::sender::TcpSender;
use pdos_tcp::sink::TcpSink;

/// Which discipline guards the bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BottleneckQueue {
    /// RED with the paper's threshold placement (20% / 80% of the buffer,
    /// `w_q = 0.002`, `max_p = 0.1`, gentle).
    Red,
    /// Plain tail-drop (the §5 ablation).
    DropTail,
    /// RED wrapped with aggregate-based congestion control (Mahajan et
    /// al., the paper's [19]) — the defense ablation.
    AccRed,
}

/// A dumbbell experiment description.
///
/// Both of the paper's topologies are dumbbells; they differ only in
/// constants, so one spec type covers both (see
/// [`ScenarioSpec::ns2_dumbbell`] and [`ScenarioSpec::testbed`]).
#[derive(Clone)]
pub struct ScenarioSpec {
    /// Number of victim TCP flows.
    pub n_flows: usize,
    /// Bottleneck capacity (the paper's `R_bottle`).
    pub bottleneck: BitsPerSec,
    /// One-way propagation delay of the bottleneck link.
    pub bottleneck_delay: SimDuration,
    /// Access-link capacity for senders and receivers.
    pub access: BitsPerSec,
    /// Access-link capacity for the attacker (fast, so pulses keep their
    /// shape; see DESIGN.md deviations).
    pub attacker_access: BitsPerSec,
    /// Smallest victim RTT (two-way propagation), seconds.
    pub rtt_lo: f64,
    /// Largest victim RTT, seconds.
    pub rtt_hi: f64,
    /// Bottleneck buffer size in packets.
    pub buffer_packets: usize,
    /// Bottleneck queue discipline.
    pub queue: BottleneckQueue,
    /// TCP endpoint configuration.
    pub tcp: TcpConfig,
    /// Attack packet wire size.
    pub attack_packet: Bytes,
    /// RNG seed for queue disciplines.
    pub seed: u64,
    /// Stagger between consecutive flow start times.
    pub start_stagger: SimDuration,
    /// Ambient random loss probability on the forward bottleneck
    /// (Dummynet's `plr`): models a lossy path under the attack.
    pub bottleneck_loss: f64,
    /// Number of victim flows (odd indices first) converted into "mice":
    /// persistent connections sending [`ScenarioSpec::mice_burst`]-segment
    /// requests with think times, instead of greedy "elephants".
    pub mice_flows: usize,
    /// Segments per mouse request burst.
    pub mice_burst: u64,
    /// Mouse think time between bursts.
    pub mice_think: SimDuration,
    /// Flash-crowd flows: request/response mice (30-segment bursts,
    /// 400 ms think time — the shapes of `tests/flash_crowd.rs`) that
    /// all arrive within a 29 ms stagger of [`ScenarioSpec::crowd_at`],
    /// each on its own access pair behind the bottleneck. Benign
    /// traffic whose onset looks as sharp as an attack; `0` (the
    /// default) wires no crowd.
    pub crowd_flows: usize,
    /// When the flash crowd arrives (ignored while
    /// [`ScenarioSpec::crowd_flows`] is zero).
    pub crowd_at: SimDuration,
}

/// Hand-rolled so hashes stay stable: `{:?}` of the scenario feeds both
/// the runner's `stable_hash` (derived physics seeds) and the
/// warm-start prefix hash, so the pre-flash-crowd fields print exactly
/// as the old `derive(Debug)` did, and the crowd fields enter the
/// output only when a crowd is actually configured. A crowd-free spec
/// therefore keeps its legacy hashes, seeds and golden digests.
impl std::fmt::Debug for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("ScenarioSpec");
        d.field("n_flows", &self.n_flows)
            .field("bottleneck", &self.bottleneck)
            .field("bottleneck_delay", &self.bottleneck_delay)
            .field("access", &self.access)
            .field("attacker_access", &self.attacker_access)
            .field("rtt_lo", &self.rtt_lo)
            .field("rtt_hi", &self.rtt_hi)
            .field("buffer_packets", &self.buffer_packets)
            .field("queue", &self.queue)
            .field("tcp", &self.tcp)
            .field("attack_packet", &self.attack_packet)
            .field("seed", &self.seed)
            .field("start_stagger", &self.start_stagger)
            .field("bottleneck_loss", &self.bottleneck_loss)
            .field("mice_flows", &self.mice_flows)
            .field("mice_burst", &self.mice_burst)
            .field("mice_think", &self.mice_think);
        if self.crowd_flows > 0 {
            d.field("crowd_flows", &self.crowd_flows)
                .field("crowd_at", &self.crowd_at);
        }
        d.finish()
    }
}

impl ScenarioSpec {
    /// The ns-2 simulation setting of §4.1 (Fig. 5): `n` NewReno flows,
    /// 15 Mbps RED bottleneck, 50 Mbps access links, RTTs 20–460 ms,
    /// ns-2's 1 s minimum RTO.
    pub fn ns2_dumbbell(n_flows: usize) -> Self {
        ScenarioSpec {
            n_flows,
            bottleneck: BitsPerSec::from_mbps(15.0),
            bottleneck_delay: SimDuration::from_millis(5),
            access: BitsPerSec::from_mbps(50.0),
            attacker_access: BitsPerSec::from_mbps(1000.0),
            rtt_lo: 0.020,
            rtt_hi: 0.460,
            buffer_packets: 60,
            queue: BottleneckQueue::Red,
            tcp: TcpConfig::ns2_newreno(),
            attack_packet: Bytes::from_u64(1000),
            seed: 1,
            start_stagger: SimDuration::from_millis(97),
            bottleneck_loss: 0.0,
            mice_flows: 0,
            mice_burst: 20,
            mice_think: SimDuration::from_millis(500),
            crowd_flows: 0,
            crowd_at: SimDuration::from_secs(12),
        }
    }

    /// The test-bed setting of §4.2 (Fig. 11): 10 flows through a 10 Mbps
    /// Dummynet bottleneck with 150 ms one-way delay, buffer sized by the
    /// rule of thumb `B = RTT × R_bottle`, RED (20%/80% thresholds,
    /// gentle), Linux's 200 ms minimum RTO.
    pub fn testbed() -> Self {
        // B = 0.3 s x 10 Mbps = 375 kB = 375 1000-byte packets.
        ScenarioSpec {
            n_flows: 10,
            bottleneck: BitsPerSec::from_mbps(10.0),
            bottleneck_delay: SimDuration::from_millis(150),
            access: BitsPerSec::from_mbps(100.0),
            attacker_access: BitsPerSec::from_mbps(1000.0),
            rtt_lo: 0.302,
            rtt_hi: 0.310,
            buffer_packets: 375,
            queue: BottleneckQueue::Red,
            tcp: TcpConfig::linux_testbed(),
            attack_packet: Bytes::from_u64(1000),
            seed: 2,
            start_stagger: SimDuration::from_millis(113),
            bottleneck_loss: 0.0,
            mice_flows: 0,
            mice_burst: 20,
            mice_think: SimDuration::from_millis(500),
            crowd_flows: 0,
            crowd_at: SimDuration::from_secs(12),
        }
    }

    /// Returns this scenario with the victims running the given
    /// congestion-control algorithm (see `pdos_tcp::cc`). The default,
    /// `aimd`, is hash-neutral: a spec that never calls this keeps its
    /// legacy stable hash and derived seeds.
    pub fn with_cc(mut self, cc: pdos_tcp::cc::CcSpec) -> Self {
        self.tcp.cc = cc;
        self
    }

    /// The victim RTT list this spec produces.
    pub fn rtts(&self) -> Vec<f64> {
        spread_rtts(self.n_flows, self.rtt_lo, self.rtt_hi)
    }

    /// The analytical victim population corresponding to this scenario.
    ///
    /// The paper's model (Eq. 5, Prop. 3/4) is parameterized by
    /// `AIMD(a, b)` only, so this always reads [`TcpConfig::aimd`] —
    /// for non-AIMD [`TcpConfig::cc`] choices the analytic curve is a
    /// *reference*, not a prediction, and the oracle reports rather than
    /// enforces its bands.
    pub fn victims(&self) -> VictimSet {
        VictimSet::new(
            self.tcp.aimd.a,
            self.tcp.aimd.b,
            f64::from(self.tcp.delayed_ack),
            self.tcp.mss.as_u64() as f64,
            self.bottleneck.as_bps(),
            self.rtts(),
        )
        .expect("scenario constants are valid model parameters")
    }

    fn bottleneck_queue_spec(&self) -> QueueSpec {
        match self.queue {
            BottleneckQueue::Red => {
                let mut cfg = RedConfig::paper_testbed(self.buffer_packets);
                cfg.mean_packet_size = self.tcp.segment_wire_size();
                // When the endpoints negotiate ECN, the bottleneck marks.
                cfg.ecn = self.tcp.ecn;
                QueueSpec::Red(cfg)
            }
            BottleneckQueue::DropTail => QueueSpec::DropTail {
                capacity: self.buffer_packets,
            },
            BottleneckQueue::AccRed => {
                let mut red = RedConfig::paper_testbed(self.buffer_packets);
                red.mean_packet_size = self.tcp.segment_wire_size();
                red.ecn = self.tcp.ecn;
                QueueSpec::Acc(AccConfig::default_for(red))
            }
        }
    }

    /// Builds the wired test bench: topology, victim flows, attacker and
    /// attack-sink hosts.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if the topology is inconsistent (cannot
    /// happen for the presets; possible with hand-rolled specs).
    ///
    /// # Panics
    ///
    /// Panics if `n_flows` is zero or the RTT range is too small to leave
    /// positive access delays.
    pub fn build(&self) -> Result<Testbench, BuildError> {
        assert!(self.n_flows > 0, "need at least one victim flow");
        let mut topo = TopologyBuilder::with_seed(self.seed);

        let router_s = topo.add_router("S");
        let router_r = topo.add_router("R");

        // Plenty of room for ACKs and unshaped access traffic.
        let ample = QueueSpec::DropTail { capacity: 10_000 };

        // Bottleneck: the discipline under test forward, ample reverse
        // (the attack and the data both flow forward; only ACKs return).
        let (bottleneck, _rev) = {
            let fwd = topo.add_link(
                router_s,
                router_r,
                self.bottleneck,
                self.bottleneck_delay,
                self.bottleneck_queue_spec(),
            );
            if self.bottleneck_loss > 0.0 {
                topo.set_impairments(
                    fwd,
                    pdos_sim::link::Impairments {
                        loss_prob: self.bottleneck_loss,
                        jitter: SimDuration::ZERO,
                    },
                );
            }
            let rev = topo.add_link(
                router_r,
                router_s,
                self.bottleneck,
                self.bottleneck_delay,
                ample.clone(),
            );
            (fwd, rev)
        };

        // Victim endpoints. RTT_i = 2·(d_src_i + d_bottle + d_dst).
        let d_dst = SimDuration::from_millis(1);
        let rtts = self.rtts();
        let mut endpoints = Vec::with_capacity(self.n_flows);
        for (i, &rtt) in rtts.iter().enumerate() {
            let d_src_s = rtt / 2.0 - self.bottleneck_delay.as_secs_f64() - d_dst.as_secs_f64();
            assert!(
                d_src_s > 0.0,
                "RTT {rtt}s too small for bottleneck delay {}",
                self.bottleneck_delay
            );
            let src = topo.add_host(format!("sender{i}"));
            let dst = topo.add_host(format!("receiver{i}"));
            topo.add_duplex_link(
                src,
                router_s,
                self.access,
                SimDuration::from_secs_f64(d_src_s),
                ample.clone(),
            );
            topo.add_duplex_link(dst, router_r, self.access, d_dst, ample.clone());
            endpoints.push((src, dst, rtt));
        }

        // Flash-crowd endpoints: each mouse gets its own access pair
        // (the `tests/flash_crowd.rs` shape), so the crowd's arrival —
        // not queueing on a shared access link — is what perturbs the
        // bottleneck.
        let mut crowd_endpoints = Vec::with_capacity(self.crowd_flows);
        for j in 0..self.crowd_flows {
            let src = topo.add_host(format!("crowd-src{j}"));
            let dst = topo.add_host(format!("crowd-dst{j}"));
            let d_src = SimDuration::from_millis(4 + (j as u64 % 7) * 3);
            topo.add_duplex_link(src, router_s, self.access, d_src, ample.clone());
            topo.add_duplex_link(dst, router_r, self.access, d_dst, ample.clone());
            crowd_endpoints.push((src, dst, d_src));
        }

        // Attacker on the sender side, attack sink behind the bottleneck.
        let attacker = topo.add_host("attacker");
        let victim = topo.add_host("attack-sink");
        topo.add_duplex_link(
            attacker,
            router_s,
            self.attacker_access,
            SimDuration::from_millis(1),
            ample.clone(),
        );
        topo.add_duplex_link(
            victim,
            router_r,
            self.attacker_access,
            SimDuration::from_millis(1),
            ample,
        );

        let mut sim = topo.build()?;

        let mut flows = Vec::with_capacity(self.n_flows);
        let mut mice_left = self.mice_flows.min(self.n_flows);
        for (i, &(src, dst, rtt)) in endpoints.iter().enumerate() {
            let flow = FlowId::from_u32(i as u32);
            let start = SimTime::ZERO + self.start_stagger.saturating_mul(i as u64);
            // Odd-indexed flows become mice first (spreading them across
            // the RTT range), then remaining even indices if needed.
            let mut cfg = self.tcp.clone();
            let make_mouse = mice_left > 0 && (i % 2 == 1 || self.n_flows - i <= mice_left);
            if make_mouse {
                cfg.burst_segments = Some(self.mice_burst);
                cfg.think_time = self.mice_think;
                mice_left -= 1;
            }
            let sender = sim.attach_agent_at(src, Box::new(TcpSender::new(cfg, flow, dst)), start);
            let sink = sim.attach_agent(dst, Box::new(TcpSink::new(self.tcp.clone(), flow, src)));
            sim.bind_flow(src, flow, sender);
            sim.bind_flow(dst, flow, sink);
            flows.push(FlowHandle {
                flow,
                sender,
                sink,
                base_rtt: rtt,
            });
        }

        // The flash crowd: persistent request/response mice (30-segment
        // bursts, 400 ms think time) all arriving within a 29 ms stagger
        // of `crowd_at`. They stay out of `flows`, so the gain protocol
        // keeps measuring the victims only; `Testbench::crowd` carries
        // their handles for detector studies.
        let mut crowd = Vec::with_capacity(crowd_endpoints.len());
        for (j, &(src, dst, d_src)) in crowd_endpoints.iter().enumerate() {
            let flow = FlowId::from_u32((self.n_flows + j) as u32);
            let mut cfg = self.tcp.clone();
            cfg.burst_segments = Some(30);
            cfg.think_time = SimDuration::from_millis(400);
            let start = SimTime::ZERO
                + self.crowd_at
                + SimDuration::from_millis(29).saturating_mul(j as u64);
            let tx = sim.attach_agent_at(src, Box::new(TcpSender::new(cfg, flow, dst)), start);
            let rx = sim.attach_agent(dst, Box::new(TcpSink::new(self.tcp.clone(), flow, src)));
            sim.bind_flow(src, flow, tx);
            sim.bind_flow(dst, flow, rx);
            crowd.push(FlowHandle {
                flow,
                sender: tx,
                sink: rx,
                base_rtt: 2.0
                    * (d_src.as_secs_f64()
                        + self.bottleneck_delay.as_secs_f64()
                        + d_dst.as_secs_f64()),
            });
        }

        Ok(Testbench {
            sim,
            flows,
            crowd,
            attacker_node: attacker,
            attack_target: victim,
            bottleneck,
            r_bottle: self.bottleneck,
            victims: self.victims(),
            tcp: self.tcp.clone(),
            attack_packet: self.attack_packet,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdos_sim::time::SimTime;

    #[test]
    fn ns2_spec_matches_paper_constants() {
        let spec = ScenarioSpec::ns2_dumbbell(15);
        assert_eq!(spec.bottleneck.as_mbps(), 15.0);
        assert_eq!(spec.rtts().len(), 15);
        assert!((spec.rtts()[0] - 0.020).abs() < 1e-12);
        assert!((spec.rtts()[14] - 0.460).abs() < 1e-12);
        assert_eq!(spec.tcp.min_rto, SimDuration::from_secs(1));
    }

    #[test]
    fn testbed_spec_matches_paper_constants() {
        let spec = ScenarioSpec::testbed();
        assert_eq!(spec.n_flows, 10);
        assert_eq!(spec.bottleneck.as_mbps(), 10.0);
        assert_eq!(spec.bottleneck_delay, SimDuration::from_millis(150));
        assert_eq!(spec.buffer_packets, 375);
        assert_eq!(spec.tcp.min_rto, SimDuration::from_millis(200));
    }

    #[test]
    fn build_produces_expected_shape() {
        let bench = ScenarioSpec::ns2_dumbbell(5).build().unwrap();
        // 2 routers + 5 senders + 5 receivers + attacker + attack sink.
        assert_eq!(bench.sim.nodes().len(), 14);
        assert_eq!(bench.flows.len(), 5);
        assert_eq!(bench.victims.n_flows(), 5);
        // Bottleneck is the first link built and runs RED.
        assert_eq!(bench.sim.link(bench.bottleneck).queue().name(), "red");
    }

    #[test]
    fn droptail_variant_builds() {
        let mut spec = ScenarioSpec::ns2_dumbbell(3);
        spec.queue = BottleneckQueue::DropTail;
        let bench = spec.build().unwrap();
        assert_eq!(bench.sim.link(bench.bottleneck).queue().name(), "droptail");
    }

    #[test]
    fn baseline_tcp_fills_the_bottleneck() {
        // A short run with no attack: aggregate goodput should approach
        // the bottleneck capacity (Lemma 1's premise).
        let mut bench = ScenarioSpec::ns2_dumbbell(8).build().unwrap();
        bench.run_until(SimTime::from_secs(20));
        let bytes = bench.goodput_bytes();
        let achieved_bps = bytes as f64 * 8.0 / 20.0;
        let util = achieved_bps / bench.r_bottle.as_bps();
        assert!(
            util > 0.75,
            "aggregate TCP should fill most of the bottleneck, got {:.0}% ({} bytes)",
            util * 100.0,
            bytes
        );
        assert!(util < 1.02, "goodput can't exceed capacity, got {util}");
    }

    #[test]
    fn mice_population_builds_and_produces_bursty_flows() {
        let mut spec = ScenarioSpec::ns2_dumbbell(6);
        spec.mice_flows = 3;
        let mut bench = spec.build().unwrap();
        bench.run_until(SimTime::from_secs(20));
        // Mice complete bursts; elephants never do.
        let bursts: Vec<u64> = bench
            .flows
            .iter()
            .map(|h| {
                bench
                    .sim
                    .agent_as::<TcpSender>(h.sender)
                    .unwrap()
                    .stats()
                    .bursts_completed
            })
            .collect();
        let mice = bursts.iter().filter(|&&b| b > 0).count();
        assert_eq!(mice, 3, "exactly three mice expected: {bursts:?}");
        // Mice deliver less than the greedy flows.
        let goodputs = bench.goodput_per_flow();
        let mouse_mean: f64 = bursts
            .iter()
            .zip(&goodputs)
            .filter(|(&b, _)| b > 0)
            .map(|(_, &g)| g as f64)
            .sum::<f64>()
            / 3.0;
        let elephant_mean: f64 = bursts
            .iter()
            .zip(&goodputs)
            .filter(|(&b, _)| b == 0)
            .map(|(_, &g)| g as f64)
            .sum::<f64>()
            / 3.0;
        assert!(mouse_mean < elephant_mean);
    }

    #[test]
    fn crowd_free_specs_keep_their_legacy_debug_output() {
        // `{:?}` feeds the runner's stable hash and the warm-start
        // prefix hash, so a spec with no crowd must print exactly as it
        // did before the flash-crowd fields existed.
        let spec = ScenarioSpec::ns2_dumbbell(3);
        let dbg = format!("{spec:?}");
        assert!(!dbg.contains("crowd"), "crowd stays implicit: {dbg}");
        assert!(dbg.starts_with("ScenarioSpec { n_flows: 3, "));
        assert!(
            dbg.ends_with("mice_think: SimDuration(500000000) }"),
            "{dbg}"
        );
        let mut crowded = spec.clone();
        crowded.crowd_flows = 4;
        let dbg = format!("{crowded:?}");
        assert!(dbg.contains("crowd_flows: 4"), "{dbg}");
        assert!(
            dbg.ends_with("crowd_at: SimDuration(12000000000) }"),
            "{dbg}"
        );
    }

    #[test]
    fn flash_crowd_arrives_at_crowd_at() {
        let mut spec = ScenarioSpec::ns2_dumbbell(2);
        spec.crowd_flows = 3;
        spec.crowd_at = SimDuration::from_secs(1);
        let mut bench = spec.build().unwrap();
        assert_eq!(bench.crowd.len(), 3);
        // 2 routers + 2·2 victim hosts + 2·3 crowd hosts + 2 attack hosts.
        assert_eq!(bench.sim.nodes().len(), 14);
        // Nothing from the crowd before its arrival...
        bench.run_until(SimTime::from_secs(1));
        for h in &bench.crowd {
            let sink = bench.sim.agent_as::<TcpSink>(h.sink).unwrap();
            assert_eq!(sink.goodput_bytes(), 0, "crowd flow started early");
        }
        // ... and every crowd mouse completes request bursts after it.
        bench.run_until(SimTime::from_secs(8));
        for h in &bench.crowd {
            let bursts = bench
                .sim
                .agent_as::<TcpSender>(h.sender)
                .unwrap()
                .stats()
                .bursts_completed;
            assert!(bursts > 0, "crowd mouse finished no burst");
        }
        // The crowd stays out of the victim goodput accounting.
        assert_eq!(bench.goodput_per_flow().len(), 2);
    }

    #[test]
    fn acc_variant_builds_and_runs() {
        let mut spec = ScenarioSpec::ns2_dumbbell(3);
        spec.queue = BottleneckQueue::AccRed;
        let mut bench = spec.build().unwrap();
        assert_eq!(bench.sim.link(bench.bottleneck).queue().name(), "acc-red");
        bench.run_until(SimTime::from_secs(5));
        assert!(bench.goodput_bytes() > 0);
    }

    #[test]
    fn ecn_endpoints_get_a_marking_bottleneck() {
        let mut spec = ScenarioSpec::ns2_dumbbell(3);
        spec.tcp.ecn = true;
        let bench = spec.build().unwrap();
        // Run briefly: TCP fills the bottleneck, RED marks instead of
        // early-dropping, so the engine observes ECN marks.
        let mut bench = bench;
        bench.run_until(SimTime::from_secs(15));
        assert!(
            bench.sim.stats().ecn_marks > 0,
            "expected ECN marks under congestion: {:?}",
            bench.sim.stats()
        );
    }

    #[test]
    fn victims_model_matches_spec() {
        let spec = ScenarioSpec::ns2_dumbbell(25);
        let v = spec.victims();
        assert_eq!(v.n_flows(), 25);
        assert_eq!(v.r_bottle(), 15e6);
        assert_eq!(v.a(), 1.0);
        assert_eq!(v.b(), 0.5);
        assert_eq!(v.d(), 2.0);
    }
}
