//! The quasi-global synchronization experiment of §2.3 / Fig. 3.
//!
//! Runs a scenario under a pulse train, records the bottleneck's incoming
//! traffic in fixed bins, normalizes it, reduces it with the piecewise
//! aggregate approximation (like the paper's plots), and measures the
//! fluctuation period two ways: peak counting (the paper's
//! `60 s / #pinnacles`) and autocorrelation.

use crate::spec::ScenarioSpec;
use pdos_analysis::period::{count_peaks, dominant_lag, period_from_peak_count};
use pdos_analysis::timeseries::{paa, standardize};
use pdos_attack::pulse::PulseTrain;
use pdos_sim::time::{SimDuration, SimTime};
use pdos_sim::trace::TraceFilter;

use crate::experiment::ExperimentError;

/// The result of a synchronization run.
#[derive(Debug, Clone)]
pub struct SyncResult {
    /// The standardized, PAA-reduced incoming-traffic series (what Fig. 3
    /// plots).
    pub paa_series: Vec<f64>,
    /// Number of pinnacles counted in the observation window.
    pub peaks: usize,
    /// Period inferred from the peak count, seconds.
    pub period_from_peaks: Option<f64>,
    /// Period inferred from the autocorrelation of the raw binned series,
    /// seconds.
    pub period_from_autocorr: Option<f64>,
    /// The attack period that was actually applied, seconds.
    pub expected_period: f64,
    /// Observation window length, seconds.
    pub window_secs: f64,
}

/// Driver for the Fig. 3 measurement.
#[derive(Debug, Clone)]
pub struct SyncExperiment {
    spec: ScenarioSpec,
    warmup: SimDuration,
    window: SimDuration,
    bin: SimDuration,
    paa_segments: usize,
}

impl SyncExperiment {
    /// Creates a driver with the paper's framing: 60 s observation window
    /// after a 10 s warm-up, 50 ms bins, 240 PAA segments.
    pub fn new(spec: ScenarioSpec) -> Self {
        SyncExperiment {
            spec,
            warmup: SimDuration::from_secs(10),
            window: SimDuration::from_secs(60),
            bin: SimDuration::from_millis(50),
            paa_segments: 240,
        }
    }

    /// Overrides the warm-up length.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Overrides the observation window.
    pub fn window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    /// Overrides the trace bin width.
    pub fn bin(mut self, bin: SimDuration) -> Self {
        self.bin = bin;
        self
    }

    /// Overrides the PAA resolution.
    pub fn paa_segments(mut self, segments: usize) -> Self {
        self.paa_segments = segments;
        self
    }

    /// Runs the experiment under `train`.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Build`] when the topology fails to
    /// build.
    pub fn run(&self, train: PulseTrain) -> Result<SyncResult, ExperimentError> {
        let expected_period = train.period().as_secs_f64();
        let mut bench = self.spec.build()?;
        let trace = bench.trace_bottleneck(TraceFilter::All, self.bin);
        bench.attach_pulse_attack(train, SimTime::ZERO + self.warmup, None);
        let end = SimTime::ZERO + self.warmup + self.window;
        bench.run_until(end);

        // Slice the observation window out of the trace.
        let all_bins = bench.sim.trace(trace).bytes_per_bin();
        let first = (self.warmup.as_nanos() / self.bin.as_nanos()) as usize;
        let n_window = (self.window.as_nanos() / self.bin.as_nanos()) as usize;
        let window: Vec<f64> = all_bins
            .iter()
            .skip(first)
            .take(n_window)
            .map(|&b| b as f64)
            .collect();

        let normalized = standardize(&window);
        let segments = self.paa_segments.min(normalized.len().max(1));
        let paa_series = if normalized.is_empty() {
            Vec::new()
        } else {
            paa(&normalized, segments)
        };

        // Peaks: threshold one sigma above mean, peaks at least half an
        // expected period apart would leak the answer — use a quarter of
        // the *smallest plausible* period (4 bins) instead.
        let peaks = count_peaks(&normalized, 1.0, 4);
        let window_secs = self.window.as_secs_f64();
        let bin_secs = self.bin.as_secs_f64();
        let lag = dominant_lag(&normalized, 4, normalized.len() / 2);

        Ok(SyncResult {
            paa_series,
            peaks,
            period_from_peaks: period_from_peak_count(window_secs, peaks),
            period_from_autocorr: lag.map(|l| l as f64 * bin_secs),
            expected_period,
            window_secs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdos_sim::units::BitsPerSec;

    /// A scaled-down Fig. 3(a): shorter window so the test stays fast, but
    /// the same 2 s attack period.
    #[test]
    fn sync_period_matches_attack_period() {
        let spec = ScenarioSpec::ns2_dumbbell(8);
        let train = PulseTrain::new(
            SimDuration::from_millis(50),
            BitsPerSec::from_mbps(100.0),
            SimDuration::from_millis(1950),
        )
        .unwrap();
        let result = SyncExperiment::new(spec)
            .warmup(SimDuration::from_secs(5))
            .window(SimDuration::from_secs(20))
            .run(train)
            .unwrap();

        assert_eq!(result.expected_period, 2.0);
        // 20 s window / 2 s period = 10 pinnacles.
        assert!(
            (8..=12).contains(&result.peaks),
            "expected ~10 pinnacles, got {}",
            result.peaks
        );
        let measured = result.period_from_peaks.unwrap();
        assert!(
            (measured - 2.0).abs() < 0.5,
            "peak-count period {measured} should be ~2 s"
        );
        let ac = result.period_from_autocorr.unwrap();
        assert!(
            (ac - 2.0).abs() < 0.3,
            "autocorrelation period {ac} should be ~2 s"
        );
        assert!(!result.paa_series.is_empty());
    }

    #[test]
    fn no_attack_has_no_clean_period() {
        // Without an attack the incoming traffic is comparatively smooth;
        // peak counting finds far fewer pinnacles.
        let spec = ScenarioSpec::ns2_dumbbell(8);
        let mut bench = spec.build().unwrap();
        let trace = bench.trace_bottleneck(TraceFilter::All, SimDuration::from_millis(50));
        bench.run_until(SimTime::from_secs(25));
        let bins: Vec<f64> = bench.sim.trace(trace).bytes_per_bin()[100..]
            .iter()
            .map(|&b| b as f64)
            .collect();
        let normalized = standardize(&bins);
        let peaks = count_peaks(&normalized, 1.0, 4);
        // 20 s of steady TCP: fluctuations exist but nothing like one
        // pinnacle per 2 s attack period with sharp amplitude.
        assert!(
            peaks < 60,
            "steady traffic produced implausibly many peaks: {peaks}"
        );
    }
}
