//! Traffic agents: the pluggable endpoints of the simulator.
//!
//! An [`Agent`] is a state machine attached to a host node. The engine calls
//! it back on packet arrival and timer expiry; the agent responds by pushing
//! [`Effect`]s (send a packet, arm a timer) into its [`AgentCtx`]. Keeping
//! side effects out of the callbacks makes agents plain, synchronously
//! testable state machines with no `Rc<RefCell>` plumbing.

use crate::node::NodeId;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};
use std::any::Any;
use std::fmt;

/// Identifies an agent registered with the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(u32);

impl AgentId {
    /// Creates an agent id from a raw index.
    pub const fn from_u32(v: u32) -> Self {
        AgentId(v)
    }

    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The raw index as `usize`, for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

/// A deferred action produced by an agent callback, applied by the engine
/// after the callback returns.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Inject `packet` into the network at the agent's node.
    Send(Packet),
    /// Fire [`Agent::on_timer`] with `token` at absolute time `at`.
    TimerAt {
        /// Absolute expiry instant.
        at: SimTime,
        /// Agent-private discriminator passed back on expiry.
        token: u64,
    },
    /// Cancel every pending timer of this agent armed with `token`.
    CancelTimer {
        /// The token the timers were armed with.
        token: u64,
    },
}

/// The callback context handed to every agent hook.
///
/// # Examples
///
/// A trivial agent that sends one packet at start-up:
///
/// ```
/// use pdos_sim::agent::{Agent, AgentCtx};
/// use pdos_sim::packet::{FlowId, Packet, PacketKind};
/// use pdos_sim::units::Bytes;
/// use pdos_sim::node::NodeId;
///
/// struct OneShot { dst: NodeId }
///
/// impl Agent for OneShot {
///     fn start(&mut self, ctx: &mut AgentCtx<'_>) {
///         let pkt = Packet::new(
///             FlowId::from_u32(0), ctx.node(), self.dst,
///             Bytes::from_u64(1500), PacketKind::Background,
///         );
///         ctx.send(pkt);
///     }
///     fn on_packet(&mut self, _: Packet, _: &mut AgentCtx<'_>) {}
///     fn on_timer(&mut self, _: u64, _: &mut AgentCtx<'_>) {}
///     fn as_any(&self) -> &dyn std::any::Any { self }
/// }
/// ```
#[derive(Debug)]
pub struct AgentCtx<'a> {
    now: SimTime,
    node: NodeId,
    effects: &'a mut Vec<Effect>,
}

impl<'a> AgentCtx<'a> {
    /// Creates a context. Used by the engine and by unit tests that drive
    /// agents directly.
    pub fn new(now: SimTime, node: NodeId, effects: &'a mut Vec<Effect>) -> Self {
        AgentCtx { now, node, effects }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this agent lives on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Injects `packet` into the network at this agent's node. The engine
    /// stamps `uid` and `sent_at` and routes it toward `packet.dst`.
    pub fn send(&mut self, packet: Packet) {
        self.effects.push(Effect::Send(packet));
    }

    /// Arms a timer that fires at absolute time `at` with `token`.
    ///
    /// Pair with [`cancel_timer`](Self::cancel_timer) to retire a timer
    /// early; the engine cancels it in the timer wheel for real, so heavy
    /// re-arm churn (TCP RTO on every ACK) never bloats the event queue.
    /// Token-versioning with stale-expiry checks still works and remains a
    /// sound belt-and-braces pattern for agents that skip cancellation.
    pub fn timer_at(&mut self, at: SimTime, token: u64) {
        self.effects.push(Effect::TimerAt { at, token });
    }

    /// Arms a timer `after` from now.
    pub fn timer_after(&mut self, after: SimDuration, token: u64) {
        let at = self.now + after;
        self.timer_at(at, token);
    }

    /// Cancels every pending timer this agent armed with `token`.
    ///
    /// Cancelling a token with no pending timer is a harmless no-op.
    pub fn cancel_timer(&mut self, token: u64) {
        self.effects.push(Effect::CancelTimer { token });
    }
}

/// A traffic endpoint state machine.
///
/// Implementations must be deterministic given their construction-time seed;
/// all randomness must come from an internally held, explicitly seeded RNG.
/// `Send` is a supertrait so a fully built [`crate::engine::Simulator`]
/// (which owns its agents) can move onto a worker thread — the parallel
/// sweep runner executes one whole simulation per worker.
pub trait Agent: Send {
    /// Called once when the engine starts the agent (at its scheduled start
    /// time, or at `t=0` by default).
    fn start(&mut self, ctx: &mut AgentCtx<'_>);

    /// Called when a packet addressed to this agent's `(node, flow)` binding
    /// arrives.
    fn on_packet(&mut self, packet: Packet, ctx: &mut AgentCtx<'_>);

    /// Called when a timer armed via [`AgentCtx::timer_at`] expires.
    fn on_timer(&mut self, token: u64, ctx: &mut AgentCtx<'_>);

    /// Upcast for post-run inspection (reading flow statistics out of the
    /// engine once the run completes).
    fn as_any(&self) -> &dyn Any;

    /// Deep-copies this agent for checkpoint/fork, or `None` when the
    /// agent cannot be captured (the default). An un-cloneable agent makes
    /// the whole simulator checkpoint fail, which the sweep layer treats
    /// as "fall back to a cold run" — so custom agents stay sound without
    /// opting in.
    fn clone_box(&self) -> Option<Box<dyn Agent>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_accumulates_effects_in_order() {
        let mut fx = Vec::new();
        let mut ctx = AgentCtx::new(SimTime::from_millis(10), NodeId::from_u32(1), &mut fx);
        assert_eq!(ctx.now(), SimTime::from_millis(10));
        assert_eq!(ctx.node(), NodeId::from_u32(1));
        ctx.timer_after(SimDuration::from_millis(5), 42);
        ctx.timer_at(SimTime::from_millis(100), 43);
        assert_eq!(
            fx,
            vec![
                Effect::TimerAt {
                    at: SimTime::from_millis(15),
                    token: 42
                },
                Effect::TimerAt {
                    at: SimTime::from_millis(100),
                    token: 43
                },
            ]
        );
    }
}
