//! Runtime invariant checkers for the conformance harness.
//!
//! The simulator can audit itself while it runs: event-time monotonicity
//! in the engine, per-link packet conservation (offered = transmitted +
//! dropped + resident), queue occupancy against capacity, and the
//! monotonicity of RED's drop probability in its average queue. TCP
//! sender invariants reuse the same [`Violation`] vocabulary (see
//! `pdos-tcp`).
//!
//! Checks are compiled in unconditionally but cost a single branch per
//! event until [`crate::engine::Simulator::enable_checks`] turns them on —
//! the "cheap flag" contract: production sweeps run with checks enabled at
//! negligible cost, and a violation is recorded (with sim-time and entity
//! id) instead of aborting the run, so harnesses can collect and report
//! every breach.

use crate::time::SimTime;
use std::fmt;

/// The invariant class a [`Violation`] breached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// An event was popped with a timestamp behind the engine clock.
    ClockRegression,
    /// A link's counters stopped satisfying
    /// `offered = transmitted + queue drops + impairment drops + resident`.
    PacketConservation,
    /// A queue's backlog exceeded its configured packet capacity.
    QueueOccupancy,
    /// RED's drop probability moved opposite to its average queue, or left
    /// `[0, 1]`.
    RedDropProbability,
    /// A TCP sender's window state left its legal range (cwnd below one
    /// segment or above the cap, ssthresh below two segments, sequence
    /// regression).
    TcpWindow,
    /// A TCP sender's retransmission timeout left `[min_rto, max_rto]`
    /// (RFC 6298 clamping).
    TcpRto,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ViolationKind::ClockRegression => "clock-regression",
            ViolationKind::PacketConservation => "packet-conservation",
            ViolationKind::QueueOccupancy => "queue-occupancy",
            ViolationKind::RedDropProbability => "red-drop-probability",
            ViolationKind::TcpWindow => "tcp-window",
            ViolationKind::TcpRto => "tcp-rto",
        };
        f.write_str(name)
    }
}

/// One recorded invariant breach: what failed, where, and when.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Simulation time at which the breach was observed.
    pub at: SimTime,
    /// The entity that breached (e.g. `engine`, `link0`, `tcp-sender/flow3`).
    pub entity: String,
    /// The invariant class.
    pub kind: ViolationKind,
    /// Human-readable specifics (observed vs expected values).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}: {}",
            self.at, self.entity, self.kind, self.detail
        )
    }
}

/// Cap on stored violations: a corrupted run can breach on every event,
/// and the report only needs the first few plus a count.
pub(crate) const MAX_RECORDED: usize = 64;

/// Mutable checker state owned by the engine while checks are enabled.
#[derive(Debug, Clone, Default)]
pub(crate) struct CheckState {
    pub(crate) violations: Vec<Violation>,
    /// Breaches beyond [`MAX_RECORDED`] are only counted.
    pub(crate) truncated: u64,
    /// Last `(avg_queue, drop_probability)` sample per link, for the RED
    /// monotonicity check.
    pub(crate) red_last: Vec<Option<(f64, f64)>>,
}

impl CheckState {
    pub(crate) fn new(n_links: usize) -> Self {
        CheckState {
            violations: Vec::new(),
            truncated: 0,
            red_last: vec![None; n_links],
        }
    }

    pub(crate) fn record(&mut self, v: Violation) {
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(v);
        } else {
            self.truncated += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_time_entity_and_kind() {
        let v = Violation {
            at: SimTime::from_millis(1500),
            entity: "link3".into(),
            kind: ViolationKind::PacketConservation,
            detail: "offered 10 != accounted 9".into(),
        };
        let s = v.to_string();
        assert!(s.contains("link3"), "{s}");
        assert!(s.contains("packet-conservation"), "{s}");
        assert!(s.contains("offered 10"), "{s}");
    }

    #[test]
    fn state_caps_recorded_violations() {
        let mut st = CheckState::new(1);
        for i in 0..(MAX_RECORDED + 10) {
            st.record(Violation {
                at: SimTime::ZERO,
                entity: "engine".into(),
                kind: ViolationKind::ClockRegression,
                detail: format!("breach {i}"),
            });
        }
        assert_eq!(st.violations.len(), MAX_RECORDED);
        assert_eq!(st.truncated, 10);
    }
}
