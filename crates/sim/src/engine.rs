//! The discrete-event engine: owns nodes, links, agents and the event
//! queue, and advances simulated time.

use crate::agent::{Agent, AgentCtx, AgentId, Effect};
use crate::check::{CheckState, Violation, ViolationKind};
use crate::event::{Event, EventQueue, TimerHandle};
use crate::fnv::FnvHashMap;
use crate::link::{Link, LinkAccept, LinkId};
use crate::metrics::EngineMetrics;
use crate::node::{Node, NodeId};
use crate::packet::{FlowId, Packet, PacketArena};
use crate::profile::{ProfileSnapshot, Profiler};
use crate::routing::RoutingTable;
use crate::shard::{merge_outboxes, CrossPacket, ShardMembership, ShardPlan};
use crate::tap::DetectorTap;
use crate::time::{SimDuration, SimTime};
use crate::trace::{RateTrace, TraceFilter, TraceId};

/// Aggregate counters kept by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events processed.
    pub events: u64,
    /// Packets delivered to a bound agent.
    pub delivered: u64,
    /// Packets that reached their destination node but had no agent bound
    /// to their `(node, flow)` — attack sinks typically land here.
    pub unclaimed: u64,
    /// Packets dropped by queue disciplines.
    pub queue_drops: u64,
    /// ECN congestion-experienced marks applied by queue disciplines.
    pub ecn_marks: u64,
    /// Packets discarded because no route existed to their destination.
    pub routeless: u64,
}

impl SimStats {
    /// Accumulates another counter set (used to merge per-shard stats).
    fn add(&mut self, other: SimStats) {
        self.events += other.events;
        self.delivered += other.delivered;
        self.unclaimed += other.unclaimed;
        self.queue_drops += other.queue_drops;
        self.ecn_marks += other.ecn_marks;
        self.routeless += other.routeless;
    }
}

struct AgentSlot {
    node: NodeId,
    agent: Option<Box<dyn Agent>>,
    /// Live timer handles by token, so `Effect::CancelTimer` can cancel in
    /// the wheel for real — O(1) per arm/cancel/fire regardless of how many
    /// timers the agent keeps live (a million-flow bank used to pay a full
    /// scan of this table per ACK when it was a `Vec`).
    timers: FnvHashMap<u64, TimerHandle>,
    /// The rare second live timer armed on the *same* token spills here;
    /// swept lazily on cancel/fire, so it stays empty for every agent that
    /// keeps at most one live timer per token.
    timer_spill: Vec<(u64, TimerHandle)>,
}

impl AgentSlot {
    /// Deep-copies the slot, or `None` when the agent does not implement
    /// [`Agent::clone_box`].
    fn try_clone(&self) -> Option<AgentSlot> {
        let agent = match &self.agent {
            Some(a) => Some(a.clone_box()?),
            None => None,
        };
        Some(AgentSlot {
            node: self.node,
            agent,
            timers: self.timers.clone(),
            timer_spill: self.timer_spill.clone(),
        })
    }
}

/// The simulator: a deterministic single-threaded event loop.
///
/// Build one with [`crate::topology::TopologyBuilder`], attach agents, then
/// call [`Simulator::run_until`].
///
/// # Examples
///
/// ```
/// use pdos_sim::topology::TopologyBuilder;
/// use pdos_sim::queue::QueueSpec;
/// use pdos_sim::units::BitsPerSec;
/// use pdos_sim::time::{SimDuration, SimTime};
///
/// let mut t = TopologyBuilder::new();
/// let a = t.add_host("a");
/// let b = t.add_host("b");
/// t.add_duplex_link(a, b, BitsPerSec::from_mbps(10.0),
///                   SimDuration::from_millis(5),
///                   QueueSpec::DropTail { capacity: 100 });
/// let mut sim = t.build()?;
/// sim.run_until(SimTime::from_secs(1));
/// assert_eq!(sim.now(), SimTime::from_secs(1));
/// # Ok::<(), pdos_sim::topology::BuildError>(())
/// ```
pub struct Simulator {
    clock: SimTime,
    events: EventQueue,
    nodes: Vec<Node>,
    links: Vec<Link>,
    routing: RoutingTable,
    agents: Vec<AgentSlot>,
    bindings: FnvHashMap<(NodeId, FlowId), AgentId>,
    /// Dense flow-range bindings, indexed by node: a bank claiming a
    /// contiguous flow-id block registers one entry here instead of one
    /// point binding per flow, so million-flow lookups touch a handful of
    /// cache-hot range records rather than a DRAM-sized hash table.
    flow_ranges: Vec<Vec<FlowRange>>,
    traces: Vec<RateTrace>,
    link_traces: Vec<Vec<TraceId>>,
    drops_by_flow: FnvHashMap<FlowId, u64>,
    /// In-flight packets, parked here while their `Deliver` event is
    /// pending so the event itself carries only a small handle.
    arena: PacketArena,
    next_uid: u64,
    stats: SimStats,
    effects_scratch: Vec<Effect>,
    /// Runtime invariant checkers; `None` (the default) costs one branch
    /// per event.
    checks: Option<Box<CheckState>>,
    /// Observability layer; `None` (the default) costs one branch per
    /// event, exactly like `checks`.
    metrics: Option<Box<EngineMetrics>>,
    profiler: Option<Box<Profiler>>,
    /// Per-link detector tap feeding streaming detectors; `None` (the
    /// default) costs one branch per forwarded packet.
    tap: Option<Box<DetectorTap>>,
    /// Shard identity when this simulator is one shard of a larger
    /// sharded run (set by `enable_sharding` on the sub-simulators);
    /// `None` for standalone simulators.
    shard_ctx: Option<Box<ShardMembership>>,
    /// The sharded runtime when this simulator coordinates a
    /// conservative-lookahead parallel run; `None` (the default) keeps
    /// the legacy single-threaded event loop.
    sharding: Option<Box<ShardRuntime>>,
}

/// The coordinator state of a sharded run: the plan, one private
/// sub-simulator per shard, and the maps translating the outer handle
/// space (agent/trace ids handed to callers) to per-shard handles.
struct ShardRuntime {
    plan: ShardPlan,
    shards: Vec<Simulator>,
    /// Outer `AgentId` index -> (shard, shard-local id).
    agent_map: Vec<(usize, AgentId)>,
    /// Outer `TraceId` index -> (shard, shard-local id).
    trace_map: Vec<(usize, TraceId)>,
    /// Owning shard per link (the shard of the link's source node).
    link_owner: Vec<usize>,
    /// Seeded-fault flag: corrupt the next cross-shard packet's
    /// timestamp to simulate a delivery past the lookahead horizon.
    skew_armed: bool,
}

impl ShardRuntime {
    fn try_clone(&self) -> Result<ShardRuntime, CheckpointError> {
        let mut shards = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            shards.push(shard.try_clone()?);
        }
        Ok(ShardRuntime {
            plan: self.plan.clone(),
            shards,
            agent_map: self.agent_map.clone(),
            trace_map: self.trace_map.clone(),
            link_owner: self.link_owner.clone(),
            skew_armed: self.skew_armed,
        })
    }
}

/// One synchronization round sent to a shard worker: inject this round's
/// cross-shard packets, advance through the window, hand back the outbox.
struct RoundCmd {
    end: SimTime,
    /// `true`: process events strictly before `end` (a half-open
    /// lookahead window). `false`: the final inclusive pass — run to and
    /// including `end`, leaving the shard clock there.
    strict: bool,
    inject: Vec<CrossPacket>,
}

/// A shard worker's answer to one [`RoundCmd`].
struct RoundReply {
    outbox: Vec<CrossPacket>,
    next: Option<SimTime>,
}

/// One dense binding: flows `start..end` arriving at their node route to
/// `agent`. See [`Simulator::bind_flow_range`].
#[derive(Debug, Clone, Copy)]
struct FlowRange {
    start: u32,
    /// Exclusive upper bound.
    end: u32,
    agent: AgentId,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.clock)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("agents", &self.agents.len())
            .field("pending_events", &self.events.len())
            .field("shards", &self.shard_count())
            .finish()
    }
}

impl Simulator {
    pub(crate) fn from_parts(nodes: Vec<Node>, links: Vec<Link>, routing: RoutingTable) -> Self {
        let n_links = links.len();
        let n_nodes = nodes.len();
        Simulator {
            clock: SimTime::ZERO,
            events: EventQueue::new(),
            nodes,
            links,
            routing,
            agents: Vec::new(),
            bindings: FnvHashMap::default(),
            flow_ranges: vec![Vec::new(); n_nodes],
            traces: Vec::new(),
            link_traces: vec![Vec::new(); n_links],
            drops_by_flow: FnvHashMap::default(),
            arena: PacketArena::new(),
            next_uid: 1,
            stats: SimStats::default(),
            effects_scratch: Vec::new(),
            checks: None,
            metrics: None,
            profiler: None,
            tap: None,
            shard_ctx: None,
            sharding: None,
        }
    }

    /// Turns on the runtime invariant checkers (see [`crate::check`]).
    ///
    /// From this point on, every processed event audits event-time
    /// monotonicity and the touched link's packet conservation, queue
    /// occupancy and RED drop-probability monotonicity. Breaches are
    /// recorded — with sim-time and entity id — instead of panicking, and
    /// read back with [`Simulator::violations`].
    pub fn enable_checks(&mut self) {
        if self.checks.is_none() {
            self.checks = Some(Box::new(CheckState::new(self.links.len())));
        }
        if let Some(rt) = self.sharding.as_deref_mut() {
            for shard in rt.shards.iter_mut() {
                shard.enable_checks();
            }
        }
    }

    /// Whether [`Simulator::enable_checks`] was called.
    pub fn checks_enabled(&self) -> bool {
        self.checks.is_some()
    }

    /// Turns on the observability layer (see [`crate::metrics`]).
    ///
    /// From this point on the engine maintains per-link enqueue/dequeue/
    /// drop counts, a time-weighted occupancy gauge, a tx-busy gauge,
    /// discipline-specific metrics (RED drop-probability histogram,
    /// DropTail overflow counter) and per-wheel-tier event-pop counters.
    /// Metrics are read-only with respect to the simulation: an enabled
    /// run is event-for-event identical to a disabled one.
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_none() {
            self.metrics = Some(Box::new(EngineMetrics::new(&self.links)));
        }
        if let Some(rt) = self.sharding.as_deref_mut() {
            for shard in rt.shards.iter_mut() {
                shard.enable_metrics();
            }
        }
    }

    /// Builder-style [`Simulator::enable_metrics`].
    #[must_use]
    pub fn with_metrics(mut self) -> Self {
        self.enable_metrics();
        self
    }

    /// Whether [`Simulator::enable_metrics`] was called.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// The metrics registry, for recording additional scopes (phase
    /// timers, post-run exports). `None` while metrics are disabled.
    pub fn metrics_registry_mut(&mut self) -> Option<&mut pdos_metrics::MetricsRegistry> {
        self.metrics.as_deref_mut().map(EngineMetrics::registry_mut)
    }

    /// Snapshots every engine metric, finalizing time-weighted gauges at
    /// the current virtual clock. `None` while metrics are disabled.
    ///
    /// On a sharded run the per-shard registries are merged metric-wise
    /// (counters add; time-weighted gauges combine their spans), so
    /// per-link counters equal the unsharded run's — each link is
    /// exercised by exactly one shard.
    pub fn metrics_snapshot(&mut self) -> Option<pdos_metrics::MetricsSnapshot> {
        let now = self.clock;
        let mut snap = self.metrics.as_deref_mut().map(|m| m.snapshot(now))?;
        if let Some(rt) = self.sharding.as_deref_mut() {
            for shard in rt.shards.iter_mut() {
                if let Some(sub) = shard.metrics_snapshot() {
                    snap.merge(&sub);
                }
            }
        }
        Some(snap)
    }

    /// Arms the deterministic self-profiler (see [`crate::profile`]): a
    /// per-event-type breakdown of dispatch counts, handler wall-clock
    /// and (when an allocation probe is registered) handler allocations.
    /// Profiling is read-only with respect to the simulation — an armed
    /// run is event-for-event identical to a disabled one — and costs
    /// nothing until armed: the disabled loop pays one `Option`
    /// discriminant test per event.
    pub fn enable_profiler(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Box::new(Profiler::new()));
        }
        if let Some(rt) = self.sharding.as_deref_mut() {
            for shard in rt.shards.iter_mut() {
                shard.enable_profiler();
            }
        }
    }

    /// Whether [`Simulator::enable_profiler`] was called.
    pub fn profiler_enabled(&self) -> bool {
        self.profiler.is_some()
    }

    /// The accumulated per-event-type breakdown, `None` while the
    /// profiler is disabled. On a sharded run the per-shard breakdowns
    /// are summed — every event is dispatched by exactly one shard, so
    /// the merged counts equal the unsharded run's.
    pub fn profile_snapshot(&self) -> Option<ProfileSnapshot> {
        let mut snap = self.profiler.as_deref().map(Profiler::snapshot)?;
        if let Some(rt) = self.sharding.as_deref() {
            for shard in &rt.shards {
                if let Some(sub) = shard.profile_snapshot() {
                    snap.merge(&sub);
                }
            }
        }
        Some(snap)
    }

    /// Turns on the per-link detector tap (see [`crate::tap`]).
    ///
    /// From this point on, every packet *offered* to any link adds its
    /// bytes to that link's fixed-width bin — the same instrument as a
    /// [`TraceFilter::All`] trace, recorded at the same hook site. The
    /// tap is read-only with respect to the simulation: an enabled run
    /// is event-for-event identical to a disabled one (golden digests
    /// unchanged). Calling again with a different bin width is a no-op.
    pub fn enable_tap(&mut self, bin: SimDuration) {
        if self.tap.is_none() {
            self.tap = Some(Box::new(DetectorTap::new(&self.links, bin)));
        }
        if let Some(rt) = self.sharding.as_deref_mut() {
            for shard in rt.shards.iter_mut() {
                shard.enable_tap(bin);
            }
        }
    }

    /// Whether [`Simulator::enable_tap`] was called.
    pub fn tap_enabled(&self) -> bool {
        self.tap.is_some()
    }

    /// The detector tap, for reading per-link bins off a finished run.
    /// `None` while the tap is disabled.
    ///
    /// On a sharded run this returns shard 0's tap — valid for bin-width
    /// inspection, but per-link bins live on the link's owning shard;
    /// use [`Simulator::tap_bins`], which routes to the owner.
    pub fn tap(&self) -> Option<&DetectorTap> {
        if let Some(rt) = self.sharding.as_deref() {
            return rt.shards.first().and_then(Simulator::tap);
        }
        self.tap.as_deref()
    }

    /// Offered bytes per bin on `link`, in time order. `None` while the
    /// tap is disabled.
    pub fn tap_bins(&self, link: LinkId) -> Option<&[u64]> {
        if let Some(rt) = self.sharding.as_deref() {
            return rt.shards[rt.link_owner[link.index()]].tap_bins(link);
        }
        self.tap.as_deref().map(|t| t.bins(link))
    }

    /// Invariant violations recorded so far (empty when checks are off).
    pub fn violations(&self) -> &[Violation] {
        self.checks
            .as_deref()
            .map_or(&[], |c| c.violations.as_slice())
    }

    /// Violations beyond the recording cap, counted but not stored.
    pub fn violations_truncated(&self) -> u64 {
        self.checks.as_deref().map_or(0, |c| c.truncated)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Engine counters. On a sharded run, the sum over every shard (each
    /// event is processed by exactly one shard, so the sum equals the
    /// unsharded run's counters).
    pub fn stats(&self) -> SimStats {
        let mut stats = self.stats;
        if let Some(rt) = self.sharding.as_deref() {
            for shard in &rt.shards {
                stats.add(shard.stats());
            }
        }
        stats
    }

    /// The nodes of the topology.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The links of the topology.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// One link by id. On a sharded run this is the live copy on the
    /// link's owning shard (the outer copies are frozen at split time).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a link of this topology.
    pub fn link(&self, id: LinkId) -> &Link {
        if let Some(rt) = self.sharding.as_deref() {
            return rt.shards[rt.link_owner[id.index()]].link(id);
        }
        &self.links[id.index()]
    }

    /// The routing table in force.
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// Packets dropped so far that belonged to `flow`.
    pub fn drops_for_flow(&self, flow: FlowId) -> u64 {
        let mut drops = self.drops_by_flow.get(&flow).copied().unwrap_or(0);
        if let Some(rt) = self.sharding.as_deref() {
            for shard in &rt.shards {
                drops += shard.drops_for_flow(flow);
            }
        }
        drops
    }

    /// Attaches `agent` to `node` and schedules its [`Agent::start`] at
    /// `start_at`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    pub fn attach_agent_at(
        &mut self,
        node: NodeId,
        agent: Box<dyn Agent>,
        start_at: SimTime,
    ) -> AgentId {
        assert!(
            node.index() < self.nodes.len(),
            "cannot attach agent to unknown {node}"
        );
        if let Some(rt) = self.sharding.as_deref_mut() {
            let s = rt.plan.shard_of(node);
            let local = rt.shards[s].attach_agent_at(node, agent, start_at);
            let id = AgentId::from_u32(rt.agent_map.len() as u32);
            rt.agent_map.push((s, local));
            return id;
        }
        let id = AgentId::from_u32(self.agents.len() as u32);
        self.agents.push(AgentSlot {
            node,
            agent: Some(agent),
            timers: FnvHashMap::default(),
            timer_spill: Vec::new(),
        });
        self.events.set_now(self.clock);
        self.events
            .schedule(start_at, Event::AgentStart { agent: id });
        id
    }

    /// Attaches `agent` to `node`, starting at time zero.
    pub fn attach_agent(&mut self, node: NodeId, agent: Box<dyn Agent>) -> AgentId {
        self.attach_agent_at(node, agent, SimTime::ZERO)
    }

    /// Routes packets of `flow` arriving at `node` to `agent`.
    ///
    /// # Panics
    ///
    /// Panics if the binding is already taken or the agent is unknown.
    pub fn bind_flow(&mut self, node: NodeId, flow: FlowId, agent: AgentId) {
        if let Some(rt) = self.sharding.as_deref_mut() {
            assert!(
                agent.index() < rt.agent_map.len(),
                "cannot bind unknown {agent}"
            );
            let (s, local) = rt.agent_map[agent.index()];
            assert_eq!(
                rt.plan.shard_of(node),
                s,
                "binding ({node}, {flow}) would cross shards: the agent \
                 lives on shard {s}; attach receivers at their own node"
            );
            rt.shards[s].bind_flow(node, flow, local);
            return;
        }
        assert!(
            agent.index() < self.agents.len(),
            "cannot bind unknown {agent}"
        );
        assert!(
            self.range_lookup(node, flow).is_none(),
            "binding ({node}, {flow}) already covered by a flow-range binding"
        );
        let prev = self.bindings.insert((node, flow), agent);
        assert!(prev.is_none(), "binding ({node}, {flow}) registered twice");
    }

    /// Routes every flow in `flows` arriving at `node` to `agent` through
    /// one dense range record — the million-flow-friendly alternative to a
    /// [`bind_flow`](Simulator::bind_flow) call (and hash-table entry) per
    /// flow. Lookup scans the node's few range records before falling back
    /// to the point-binding table, so banks claiming contiguous flow-id
    /// blocks pay O(1) cache-hot work per delivery regardless of flow
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `flows` is empty, overlaps a range already registered at
    /// `node`, or the agent is unknown. Registering a range over flows
    /// that already have point bindings is not checked (the range would
    /// shadow them); keep the two namespaces disjoint.
    pub fn bind_flow_range(&mut self, node: NodeId, flows: std::ops::Range<u32>, agent: AgentId) {
        assert!(!flows.is_empty(), "empty flow range at {node}");
        if let Some(rt) = self.sharding.as_deref_mut() {
            assert!(
                agent.index() < rt.agent_map.len(),
                "cannot bind unknown {agent}"
            );
            let (s, local) = rt.agent_map[agent.index()];
            assert_eq!(
                rt.plan.shard_of(node),
                s,
                "binding ({node}, flows {}..{}) would cross shards: the agent \
                 lives on shard {s}; attach receivers at their own node",
                flows.start,
                flows.end
            );
            rt.shards[s].bind_flow_range(node, flows, local);
            return;
        }
        assert!(
            agent.index() < self.agents.len(),
            "cannot bind unknown {agent}"
        );
        let ranges = &mut self.flow_ranges[node.index()];
        assert!(
            ranges
                .iter()
                .all(|r| flows.end <= r.start || r.end <= flows.start),
            "flow range {}..{} at {node} overlaps an existing range binding",
            flows.start,
            flows.end
        );
        ranges.push(FlowRange {
            start: flows.start,
            end: flows.end,
            agent,
        });
    }

    /// The range binding covering `flow` at `node`, if any.
    #[inline]
    fn range_lookup(&self, node: NodeId, flow: FlowId) -> Option<AgentId> {
        let ranges = &self.flow_ranges[node.index()];
        if ranges.is_empty() {
            return None;
        }
        let f = flow.as_u32();
        ranges
            .iter()
            .find(|r| r.start <= f && f < r.end)
            .map(|r| r.agent)
    }

    /// Registers a rate trace on the ingress of `link`.
    pub fn trace_link_ingress(
        &mut self,
        link: LinkId,
        filter: TraceFilter,
        bin: SimDuration,
    ) -> TraceId {
        if let Some(rt) = self.sharding.as_deref_mut() {
            let owner = rt.link_owner[link.index()];
            let local = rt.shards[owner].trace_link_ingress(link, filter, bin);
            let id = TraceId::from_u32(rt.trace_map.len() as u32);
            rt.trace_map.push((owner, local));
            return id;
        }
        let id = TraceId::from_u32(self.traces.len() as u32);
        self.traces.push(RateTrace::new(link, filter, bin));
        self.link_traces[link.index()].push(id);
        id
    }

    /// Reads a trace back.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this simulator.
    pub fn trace(&self, id: TraceId) -> &RateTrace {
        if let Some(rt) = self.sharding.as_deref() {
            let (s, local) = rt.trace_map[id.index()];
            return rt.shards[s].trace(local);
        }
        &self.traces[id.index()]
    }

    /// Downcasts an agent for post-run inspection.
    ///
    /// Returns `None` when the agent is of a different concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn agent_as<T: 'static>(&self, id: AgentId) -> Option<&T> {
        if let Some(rt) = self.sharding.as_deref() {
            let (s, local) = rt.agent_map[id.index()];
            return rt.shards[s].agent_as(local);
        }
        self.agents[id.index()]
            .agent
            .as_deref()
            .expect("agent slot temporarily empty during dispatch")
            .as_any()
            .downcast_ref::<T>()
    }

    /// Runs until the event queue is exhausted or `horizon` is reached,
    /// leaving the clock at `horizon` (or at the last event when the queue
    /// drains first — then advances to `horizon`).
    ///
    /// On a sharded run (see [`Simulator::enable_sharding`]) the shards
    /// advance in lookahead-wide rounds on worker threads; the result is
    /// bit-identical to the single-threaded engine.
    pub fn run_until(&mut self, horizon: SimTime) {
        if self.sharding.is_some() {
            self.run_until_sharded(horizon);
            return;
        }
        while let Some((at, event)) = self.events.pop_before(horizon) {
            self.process(at, event);
        }
        if self.clock < horizon {
            self.clock = horizon;
            self.events.set_now(self.clock);
        }
    }

    /// Processes exactly one event, if any is pending. Returns whether an
    /// event was processed.
    ///
    /// On a sharded run this degenerates to sequential execution: the
    /// globally earliest event is processed on its shard and any
    /// cross-shard packets it produced are forwarded immediately.
    pub fn step(&mut self) -> bool {
        if self.sharding.is_some() {
            return self.step_sharded();
        }
        let Some((at, event)) = self.events.pop() else {
            return false;
        };
        self.process(at, event);
        true
    }

    /// Dispatches one already-popped event.
    #[inline]
    fn process(&mut self, at: SimTime, event: Event) {
        if at < self.clock {
            match self.checks.as_deref_mut() {
                Some(checks) => checks.record(Violation {
                    at: self.clock,
                    entity: "engine".into(),
                    kind: ViolationKind::ClockRegression,
                    detail: format!("popped event scheduled at {at} behind clock {}", self.clock),
                }),
                None => {
                    debug_assert!(false, "event in the past: {at} < {}", self.clock);
                }
            }
        }
        // Never move the clock backwards: a corrupted event timestamp is
        // recorded above but must not propagate regressions downstream.
        self.clock = self.clock.max(at);
        // Everything scheduled while dispatching carries this instant as
        // its tie-break key (see `EventQueue::set_now`).
        self.events.set_now(self.clock);
        self.stats.events += 1;
        if let Some(m) = self.metrics.as_deref_mut() {
            m.on_pop(&event);
        }
        // Sample the profiler clocks only while armed, so the disabled
        // path pays exactly this one discriminant test.
        let prof = self.profiler.is_some().then(|| Profiler::begin(&event));
        match event {
            Event::Deliver { node, packet } => {
                let packet = self.arena.take(packet);
                self.handle_arrival(node, packet);
            }
            Event::LinkTxDone { link } => self.handle_tx_done(link),
            Event::Timer { agent, token } => self.dispatch_timer(agent, token),
            Event::AgentStart { agent } => self.dispatch_start(agent),
        }
        if let Some(start) = prof {
            if let Some(p) = self.profiler.as_deref_mut() {
                p.record(start);
            }
        }
    }

    /// Number of events still pending (summed across shards when sharded).
    pub fn pending_events(&self) -> usize {
        let mut pending = self.events.len();
        if let Some(rt) = self.sharding.as_deref() {
            for shard in &rt.shards {
                pending += shard.pending_events();
            }
        }
        pending
    }

    fn handle_arrival(&mut self, node: NodeId, packet: Packet) {
        if packet.dst == node {
            let bound = self
                .range_lookup(node, packet.flow)
                .or_else(|| self.bindings.get(&(node, packet.flow)).copied());
            match bound {
                Some(agent) => {
                    self.stats.delivered += 1;
                    self.dispatch_packet(agent, packet);
                }
                None => self.stats.unclaimed += 1,
            }
        } else {
            self.forward(node, packet);
        }
    }

    fn forward(&mut self, node: NodeId, packet: Packet) {
        let Some(link_id) = self.routing.next_link(node, packet.dst) else {
            self.stats.routeless += 1;
            return;
        };
        for &tid in &self.link_traces[link_id.index()] {
            self.traces[tid.index()].record(self.clock, &packet);
        }
        if let Some(tap) = self.tap.as_deref_mut() {
            tap.record(link_id, self.clock, &packet);
        }
        let link = &mut self.links[link_id.index()];
        let accepted = match link.accept(packet, self.clock) {
            LinkAccept::Accepted { tx_done, marked } => {
                if let Some(done_at) = tx_done {
                    self.events
                        .schedule(done_at, Event::LinkTxDone { link: link_id });
                }
                if marked {
                    self.stats.ecn_marks += 1;
                }
                true
            }
            LinkAccept::Dropped => {
                self.stats.queue_drops += 1;
                *self.drops_by_flow.entry(packet.flow).or_insert(0) += 1;
                false
            }
        };
        if let Some(m) = self.metrics.as_deref_mut() {
            m.on_accept(&self.links[link_id.index()], accepted, self.clock);
        }
        if self.checks.is_some() {
            self.audit_link(link_id);
        }
    }

    fn handle_tx_done(&mut self, link_id: LinkId) {
        let link = &mut self.links[link_id.index()];
        let delay = link.sample_delay();
        let dst = link.dst();
        let (packet, next_done) = link.tx_complete(self.clock);
        if let Some(at) = next_done {
            self.events
                .schedule(at, Event::LinkTxDone { link: link_id });
        }
        if self
            .shard_ctx
            .as_deref()
            .is_some_and(|ctx| ctx.is_remote(dst))
        {
            // The destination lives on another shard: park the packet in
            // the outbox for the coordinator's canonical-order drain
            // instead of the local arena. The sending clock rides along
            // so the destination queue orders the injection exactly where
            // the unsharded engine would have.
            let ctx = self.shard_ctx.as_deref_mut().expect("checked above");
            ctx.outbox.push(CrossPacket {
                at: self.clock + delay,
                sched: self.clock,
                node: dst,
                packet,
            });
        } else {
            let handle = self.arena.insert(packet);
            self.events.schedule(
                self.clock + delay,
                Event::Deliver {
                    node: dst,
                    packet: handle,
                },
            );
        }
        if let Some(m) = self.metrics.as_deref_mut() {
            m.on_tx_done(&self.links[link_id.index()], self.clock);
        }
        if self.checks.is_some() {
            self.audit_link(link_id);
        }
    }

    /// Audits one link's invariants after it processed a packet: packet
    /// conservation, queue occupancy, and (for RED queues) the
    /// monotonicity of the drop probability in the average queue.
    fn audit_link(&mut self, link_id: LinkId) {
        let Some(checks) = self.checks.as_deref_mut() else {
            return;
        };
        let link = &self.links[link_id.index()];
        let now = self.clock;
        for v in link.audit(now) {
            checks.record(v);
        }
        if let Some(red) = link
            .queue()
            .as_any()
            .downcast_ref::<crate::queue::RedQueue>()
        {
            let avg = red.avg_queue();
            let pb = red.drop_probability();
            if !pb.is_finite() || !(0.0..=1.0).contains(&pb) {
                checks.record(Violation {
                    at: now,
                    entity: link_id.to_string(),
                    kind: ViolationKind::RedDropProbability,
                    detail: format!("drop probability {pb} outside [0, 1] at avg {avg}"),
                });
            }
            if let Some((prev_avg, prev_pb)) = checks.red_last[link_id.index()] {
                const EPS: f64 = 1e-12;
                let opposed = (avg > prev_avg + EPS && pb < prev_pb - EPS)
                    || (avg < prev_avg - EPS && pb > prev_pb + EPS);
                if opposed {
                    checks.record(Violation {
                        at: now,
                        entity: link_id.to_string(),
                        kind: ViolationKind::RedDropProbability,
                        detail: format!(
                            "drop probability moved {prev_pb} -> {pb} while avg moved \
                             {prev_avg} -> {avg}"
                        ),
                    });
                }
            }
            checks.red_last[link_id.index()] = Some((avg, pb));
        }
    }

    /// Splits the simulation across `shards` delay-separated shards that
    /// advance in parallel under a conservative-lookahead scheduler (see
    /// [`crate::shard`] and `docs/SHARDING.md`).
    ///
    /// Returns the effective shard count. Sharding is only engaged when a
    /// useful cut exists and the simulation is at a *splittable* instant —
    /// no packets in flight, no live timers, only `AgentStart` events
    /// pending, no recorded trace bins (i.e. before the first `run_until`,
    /// the normal call site). Otherwise the call is a safe no-op returning
    /// 1 and the legacy single-threaded engine keeps running. The split is
    /// also refused when any link queue is an un-cloneable custom
    /// discipline.
    ///
    /// Determinism contract: a sharded run is bit-identical — stats,
    /// traces, taps, violations, merged metrics counters — to the same
    /// simulation run with `shards == 1`, regardless of worker scheduling.
    pub fn enable_sharding(&mut self, shards: usize) -> usize {
        if let Some(rt) = self.sharding.as_deref() {
            return rt.shards.len();
        }
        if shards <= 1 || self.shard_ctx.is_some() {
            return 1;
        }
        let link_info: Vec<(NodeId, NodeId, SimDuration)> = self
            .links
            .iter()
            .map(|l| (l.src(), l.dst(), l.delay()))
            .collect();
        let plan = ShardPlan::build(self.nodes.len(), &link_info, shards);
        if plan.is_single() {
            return 1;
        }
        // Splittable-instant preconditions. Pending events are drained to
        // inspect them; on any failed precondition they are rescheduled in
        // order (same relative order => same behavior) and we fall back.
        let mut drained = Vec::new();
        while let Some(item) = self.events.pop() {
            drained.push(item);
        }
        let splittable = drained
            .iter()
            .all(|(_, e)| matches!(e, Event::AgentStart { .. }))
            && self.arena.live() == 0
            && self
                .agents
                .iter()
                .all(|s| s.timers.is_empty() && s.timer_spill.is_empty())
            && self.traces.iter().all(|t| t.n_bins() == 0)
            && self.links.iter().all(|l| l.try_clone().is_some());
        if !splittable {
            self.events.set_now(self.clock);
            for (at, e) in drained {
                self.events.schedule(at, e);
            }
            return 1;
        }
        let n = plan.n_shards();
        let node_shard = plan.node_shard().to_vec();
        let link_owner: Vec<usize> = self
            .links
            .iter()
            .map(|l| node_shard[l.src().index()])
            .collect();
        // Every shard gets a full copy of the topology so ids stay
        // globally valid; only the links it owns (those sourced inside
        // it) ever carry traffic, the rest are frozen replicas.
        let mut sub_shards: Vec<Simulator> = Vec::with_capacity(n);
        for s in 0..n {
            let links: Vec<Link> = self
                .links
                .iter()
                .map(|l| l.try_clone().expect("checked cloneable above"))
                .collect();
            let mut sub = Simulator::from_parts(self.nodes.clone(), links, self.routing.clone());
            sub.shard_ctx = Some(Box::new(ShardMembership {
                shard: s,
                node_shard: node_shard.clone(),
                outbox: Vec::new(),
            }));
            sub.clock = self.clock;
            sub.events.set_now(self.clock);
            if self.checks.is_some() {
                sub.enable_checks();
            }
            if self.metrics.is_some() {
                sub.enable_metrics();
            }
            if self.profiler.is_some() {
                sub.enable_profiler();
            }
            if let Some(tap) = self.tap.as_deref() {
                sub.enable_tap(tap.bin_width());
            }
            sub_shards.push(sub);
        }
        // Migrate agents (with their pending starts), bindings and trace
        // registrations to the owning shards, keeping the outer ids the
        // callers already hold valid through the translation maps.
        let mut agent_map = Vec::with_capacity(self.agents.len());
        for slot in self.agents.drain(..) {
            let s = node_shard[slot.node.index()];
            let local = AgentId::from_u32(sub_shards[s].agents.len() as u32);
            sub_shards[s].agents.push(slot);
            agent_map.push((s, local));
        }
        for ((node, flow), agent) in std::mem::take(&mut self.bindings) {
            let (s, local) = agent_map[agent.index()];
            sub_shards[s].bindings.insert((node, flow), local);
        }
        let n_nodes = self.nodes.len();
        let flow_ranges = std::mem::replace(&mut self.flow_ranges, vec![Vec::new(); n_nodes]);
        for (node_idx, ranges) in flow_ranges.into_iter().enumerate() {
            for r in ranges {
                let (s, local) = agent_map[r.agent.index()];
                sub_shards[s].flow_ranges[node_idx].push(FlowRange { agent: local, ..r });
            }
        }
        for (at, e) in drained {
            let Event::AgentStart { agent } = e else {
                unreachable!("checked above");
            };
            let (s, local) = agent_map[agent.index()];
            sub_shards[s]
                .events
                .schedule(at, Event::AgentStart { agent: local });
        }
        let traces = std::mem::take(&mut self.traces);
        let mut trace_map = Vec::with_capacity(traces.len());
        for t in &traces {
            let owner = link_owner[t.link().index()];
            let local = sub_shards[owner].trace_link_ingress(t.link(), t.filter(), t.bin_width());
            trace_map.push((owner, local));
        }
        self.link_traces = vec![Vec::new(); self.links.len()];
        self.events.set_now(self.clock);
        self.sharding = Some(Box::new(ShardRuntime {
            plan,
            shards: sub_shards,
            agent_map,
            trace_map,
            link_owner,
            skew_armed: false,
        }));
        n
    }

    /// Builder-style [`Simulator::enable_sharding`].
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.enable_sharding(shards);
        self
    }

    /// Number of shards the simulation runs across (1 = the legacy
    /// single-threaded engine).
    pub fn shard_count(&self) -> usize {
        self.sharding.as_deref().map_or(1, |rt| rt.shards.len())
    }

    /// The active shard plan, when sharding is engaged.
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.sharding.as_deref().map(|rt| &rt.plan)
    }

    /// Seeded-fault hook: corrupts the timestamp of the next cross-shard
    /// packet to zero, simulating a delivery skewed past the lookahead
    /// horizon — the clock-monotonicity checker must flag the resulting
    /// regression on the destination shard. Returns whether the fault was
    /// armed (`false` when the simulation is not sharded, where the fault
    /// has no meaning).
    #[doc(hidden)]
    pub fn arm_shard_skew_for_test(&mut self) -> bool {
        match self.sharding.as_deref_mut() {
            Some(rt) => {
                rt.skew_armed = true;
                true
            }
            None => false,
        }
    }

    /// The parallel event loop: advances every shard to `horizon` in
    /// lookahead-wide rounds on scoped worker threads.
    ///
    /// Invariant making the rounds safe: within a strict window
    /// `[start, end)` with `end <= start + lookahead`, no event can
    /// produce a cross-shard effect before `start + lookahead >= end`
    /// (link jitter is additive, so the base delay lower-bounds every
    /// flight time). Outboxes are merged in canonical `(shard id, push
    /// order)` sequence after each round, so the injection order — and
    /// with it the whole run — is independent of thread scheduling.
    fn run_until_sharded(&mut self, horizon: SimTime) {
        let mut rt = self.sharding.take().expect("sharded run without runtime");
        let lookahead = rt.plan.lookahead();
        let n = rt.shards.len();
        let plan = rt.plan.clone();
        // Cross packets awaiting injection, bucketed by destination shard.
        let mut pending: Vec<Vec<CrossPacket>> = (0..n).map(|_| Vec::new()).collect();
        let mut skew_armed = std::mem::take(&mut rt.skew_armed);
        let start_clock = self.clock;

        std::thread::scope(|scope| {
            let mut workers = Vec::with_capacity(n);
            for shard in rt.shards.iter_mut() {
                let (cmd_tx, cmd_rx) = std::sync::mpsc::channel::<RoundCmd>();
                let (rep_tx, rep_rx) = std::sync::mpsc::channel::<RoundReply>();
                scope.spawn(move || {
                    while let Ok(cmd) = cmd_rx.recv() {
                        for c in cmd.inject {
                            shard.inject_cross(c);
                        }
                        if cmd.strict {
                            shard.run_strictly_before(cmd.end);
                        } else {
                            shard.run_until(cmd.end);
                        }
                        let reply = RoundReply {
                            outbox: shard.take_outbox(),
                            next: shard.events.peek_time(),
                        };
                        if rep_tx.send(reply).is_err() {
                            break;
                        }
                    }
                });
                workers.push((cmd_tx, rep_rx));
            }

            // One synchronization round: every shard advances through the
            // window concurrently, then the outboxes are merged in
            // canonical order and routed to their destination buckets.
            let mut round = |end: SimTime,
                             strict: bool,
                             pending: &mut Vec<Vec<CrossPacket>>|
             -> Vec<Option<SimTime>> {
                for (i, (cmd_tx, _)) in workers.iter().enumerate() {
                    let inject = std::mem::take(&mut pending[i]);
                    cmd_tx
                        .send(RoundCmd {
                            end,
                            strict,
                            inject,
                        })
                        .expect("shard worker alive");
                }
                let mut nexts = Vec::with_capacity(n);
                let mut replies = Vec::with_capacity(n);
                for (i, (_, rep_rx)) in workers.iter().enumerate() {
                    let reply = rep_rx.recv().expect("shard worker alive");
                    nexts.push(reply.next);
                    replies.push((i, reply.outbox));
                }
                for mut c in merge_outboxes(replies) {
                    if skew_armed {
                        // Seeded fault: one packet lands at t=0, far
                        // behind any active destination's clock.
                        c.at = SimTime::ZERO;
                        skew_armed = false;
                    }
                    pending[plan.shard_of(c.node)].push(c);
                }
                nexts
            };

            // Probe: learn each shard's next event time without
            // advancing (nothing is pending strictly before the clock).
            let mut clock = start_clock;
            let mut nexts = round(clock, true, &mut pending);
            if let Some(lookahead) = lookahead {
                loop {
                    let next_event = nexts.iter().flatten().min().copied();
                    let next_inject = pending.iter().flatten().map(|c| c.at).min();
                    let m = match (next_event, next_inject) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                    let Some(m) = m else { break };
                    if m >= horizon {
                        break;
                    }
                    // Idle-skip to the earliest pending work, then open a
                    // lookahead-wide strict window.
                    let start = clock.max(m);
                    let end = horizon.min(start + lookahead);
                    nexts = round(end, true, &mut pending);
                    clock = end;
                }
            }
            // Final inclusive pass: events at exactly `horizon` run and
            // every shard clock lands on `horizon`. Any cross packets it
            // produces fire at `>= horizon + lookahead`, handled below.
            let _ = round(horizon, false, &mut pending);
        });

        // Park leftover cross packets (due after the horizon) in their
        // destination queues for the next `run_until`.
        for (dest, packets) in pending.into_iter().enumerate() {
            for c in packets {
                rt.shards[dest].inject_cross(c);
            }
        }
        self.clock = self.clock.max(horizon);
        self.events.set_now(self.clock);
        self.collect_shard_violations(&mut rt);
        self.sharding = Some(rt);
    }

    /// Sequential single-event execution on a sharded run: pop the
    /// globally earliest event and forward its cross-shard packets
    /// immediately (channels never hold more than one event's output, so
    /// no ordering question arises).
    fn step_sharded(&mut self) -> bool {
        let rt = self.sharding.as_deref_mut().expect("sharded");
        let mut best: Option<(SimTime, usize)> = None;
        for (i, shard) in rt.shards.iter_mut().enumerate() {
            if let Some(t) = shard.events.peek_time() {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, i));
                }
            }
        }
        let Some((_, i)) = best else {
            return false;
        };
        rt.shards[i].step();
        let outbox = rt.shards[i].take_outbox();
        for c in outbox {
            rt.shards[rt.plan.shard_of(c.node)].inject_cross(c);
        }
        self.clock = self.clock.max(rt.shards[i].clock);
        self.events.set_now(self.clock);
        let mut rt = self.sharding.take().expect("sharded");
        self.collect_shard_violations(&mut rt);
        self.sharding = Some(rt);
        true
    }

    /// Runs every event strictly before `end` (the half-open lookahead
    /// window of one synchronization round). Unlike [`Simulator::run_until`]
    /// the clock is left at the last processed event, not advanced to the
    /// window edge — later rounds and the final inclusive pass move it.
    pub(crate) fn run_strictly_before(&mut self, end: SimTime) {
        while let Some((at, event)) = self.events.pop_strictly_before(end) {
            self.process(at, event);
        }
    }

    /// Materializes a cross-shard packet in this shard: parks it in the
    /// local arena and injects its `Deliver` with the sending shard's
    /// clock as the tie-break key.
    pub(crate) fn inject_cross(&mut self, c: CrossPacket) {
        let handle = self.arena.insert(c.packet);
        self.events.inject(
            c.at,
            c.sched,
            Event::Deliver {
                node: c.node,
                packet: handle,
            },
        );
    }

    /// Drains this shard's outbox (empty for standalone simulators).
    pub(crate) fn take_outbox(&mut self) -> Vec<CrossPacket> {
        match self.shard_ctx.as_deref_mut() {
            Some(ctx) => std::mem::take(&mut ctx.outbox),
            None => Vec::new(),
        }
    }

    /// Moves violations recorded inside the shards up into the outer
    /// checker, globally ordered by (time, shard id) so the merged list
    /// is deterministic.
    fn collect_shard_violations(&mut self, rt: &mut ShardRuntime) {
        let Some(outer) = self.checks.as_deref_mut() else {
            return;
        };
        let mut batch: Vec<(usize, Violation)> = Vec::new();
        for (i, shard) in rt.shards.iter_mut().enumerate() {
            if let Some(checks) = shard.checks.as_deref_mut() {
                outer.truncated += checks.truncated;
                checks.truncated = 0;
                batch.extend(checks.violations.drain(..).map(|v| (i, v)));
            }
        }
        batch.sort_by(|a, b| a.1.at.cmp(&b.1.at).then(a.0.cmp(&b.0)));
        for (_, v) in batch {
            outer.record(v);
        }
    }

    /// Test hook: forces the clock forward so the next pending event pops
    /// "in the past", seeding a clock-regression fault for the checkers.
    #[doc(hidden)]
    pub fn corrupt_clock_for_test(&mut self, to: SimTime) {
        self.clock = to;
        self.events.set_now(self.clock);
    }

    /// Test hook: mutable access to a link, for seeding accounting faults.
    #[doc(hidden)]
    pub fn link_mut_for_test(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.index()]
    }

    /// Test hook: swaps an agent's state wholesale, for seeding
    /// agent-level faults — clone the concrete agent out via
    /// [`Simulator::agent_as`], corrupt it, and swap it back in.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    #[doc(hidden)]
    pub fn replace_agent_for_test(&mut self, id: AgentId, agent: Box<dyn Agent>) {
        self.agents[id.index()].agent = Some(agent);
    }

    /// Test hook: schedules a `Deliver` event carrying a deliberately
    /// stale arena handle whose slot has been recycled for another packet
    /// — the ABA fault the arena's generation check must catch (by
    /// panicking on the pop) rather than silently aliasing the new
    /// occupant.
    #[doc(hidden)]
    pub fn schedule_stale_deliver_for_test(&mut self, node: NodeId, packet: Packet) {
        let stale = self.arena.insert(packet);
        let _ = self.arena.take(stale);
        let _recycled_slot_now_holds_live_packet = self.arena.insert(packet);
        self.events.schedule(
            self.clock,
            Event::Deliver {
                node,
                packet: stale,
            },
        );
    }

    fn with_agent<F>(&mut self, id: AgentId, f: F)
    where
        F: FnOnce(&mut dyn Agent, &mut AgentCtx<'_>),
    {
        let node = self.agents[id.index()].node;
        let mut agent = self.agents[id.index()]
            .agent
            .take()
            .expect("re-entrant agent dispatch");
        let mut effects = std::mem::take(&mut self.effects_scratch);
        {
            let mut ctx = AgentCtx::new(self.clock, node, &mut effects);
            f(agent.as_mut(), &mut ctx);
        }
        self.agents[id.index()].agent = Some(agent);
        for effect in effects.drain(..) {
            match effect {
                Effect::Send(mut packet) => {
                    packet.uid = self.next_uid;
                    self.next_uid += 1;
                    packet.sent_at = self.clock;
                    // Route from the agent's own node; scheduled through the
                    // queue (same instant) to keep dispatch non-reentrant.
                    let handle = self.arena.insert(packet);
                    self.events.schedule(
                        self.clock,
                        Event::Deliver {
                            node,
                            packet: handle,
                        },
                    );
                }
                Effect::TimerAt { at, token } => {
                    let handle = self.events.schedule_timer(at, id, token);
                    let slot = &mut self.agents[id.index()];
                    if let Some(old) = slot.timers.insert(token, handle) {
                        if self.events.timer_is_live(old) {
                            slot.timer_spill.push((token, old));
                        }
                    }
                }
                Effect::CancelTimer { token } => {
                    let events = &mut self.events;
                    let slot = &mut self.agents[id.index()];
                    if let Some(handle) = slot.timers.remove(&token) {
                        events.cancel_timer(handle);
                    }
                    if !slot.timer_spill.is_empty() {
                        slot.timer_spill.retain(|&(tok, handle)| {
                            if tok == token {
                                events.cancel_timer(handle);
                                false
                            } else {
                                events.timer_is_live(handle)
                            }
                        });
                    }
                }
            }
        }
        self.effects_scratch = effects;
    }

    fn dispatch_packet(&mut self, id: AgentId, packet: Packet) {
        self.with_agent(id, |agent, ctx| agent.on_packet(packet, ctx));
    }

    fn dispatch_timer(&mut self, id: AgentId, token: u64) {
        // The fired timer's handle just went dead; drop it from the table
        // (the fired handle may instead live in the spill, which is swept
        // whole — it is empty unless the agent doubled up on a token).
        let events = &self.events;
        let slot = &mut self.agents[id.index()];
        if let Some(&handle) = slot.timers.get(&token) {
            if !events.timer_is_live(handle) {
                slot.timers.remove(&token);
            }
        }
        if !slot.timer_spill.is_empty() {
            slot.timer_spill
                .retain(|&(_, handle)| events.timer_is_live(handle));
        }
        self.with_agent(id, |agent, ctx| agent.on_timer(token, ctx));
    }

    fn dispatch_start(&mut self, id: AgentId) {
        self.with_agent(id, |agent, ctx| agent.start(ctx));
    }

    /// Freezes the complete simulator state into a [`SimCheckpoint`].
    ///
    /// The checkpoint captures everything the event loop reads: the clock,
    /// both event-wheel tiers (including the shared tie-break sequence
    /// counter and the timer slab's generation state), the packet arena,
    /// every link's queue/transmitter/RNG/counter state, routing, traces,
    /// per-flow drop counts, agent state machines (via
    /// [`Agent::clone_box`]) with their live timer tables, and the
    /// checker/metrics layers. A simulator resumed with
    /// [`Simulator::fork`] therefore processes the byte-identical event
    /// sequence a cold run would.
    ///
    /// # Errors
    ///
    /// Fails when any attached agent or queue discipline cannot be
    /// deep-copied (a custom [`Agent`] without `clone_box`, or an
    /// [`crate::queue::AnyQueue::Custom`] discipline). Callers treat that
    /// as "this simulation cannot warm-start" and fall back to cold runs.
    pub fn checkpoint(&self) -> Result<SimCheckpoint, CheckpointError> {
        let state = self.try_clone()?;
        let approx_bytes = state.approx_heap_bytes();
        Ok(SimCheckpoint {
            state,
            approx_bytes,
        })
    }

    /// Resumes a fresh, independent simulator from `checkpoint`.
    ///
    /// Forking never consumes the checkpoint: any number of variants can
    /// be forked from one warm-up, and each fork owns its state outright
    /// (no sharing, so concurrent forks cannot observe each other).
    pub fn fork(checkpoint: &SimCheckpoint) -> Simulator {
        checkpoint
            .state
            .try_clone()
            .expect("checkpointed state is always re-cloneable")
    }

    /// Fallible deep copy backing [`Simulator::checkpoint`].
    fn try_clone(&self) -> Result<Simulator, CheckpointError> {
        // Effects only live inside a single `with_agent` call; between
        // events (the only place checkpoints are taken) the scratch is
        // empty, so dropping it from the copy loses nothing.
        debug_assert!(self.effects_scratch.is_empty());
        let mut links = Vec::with_capacity(self.links.len());
        for link in &self.links {
            links.push(
                link.try_clone()
                    .ok_or(CheckpointError::UncloneableQueue(link.id()))?,
            );
        }
        let mut agents = Vec::with_capacity(self.agents.len());
        for (i, slot) in self.agents.iter().enumerate() {
            agents.push(
                slot.try_clone().ok_or_else(|| {
                    CheckpointError::UncloneableAgent(AgentId::from_u32(i as u32))
                })?,
            );
        }
        let sharding = match self.sharding.as_deref() {
            Some(rt) => Some(Box::new(rt.try_clone()?)),
            None => None,
        };
        Ok(Simulator {
            clock: self.clock,
            events: self.events.clone(),
            nodes: self.nodes.clone(),
            links,
            routing: self.routing.clone(),
            agents,
            bindings: self.bindings.clone(),
            flow_ranges: self.flow_ranges.clone(),
            traces: self.traces.clone(),
            link_traces: self.link_traces.clone(),
            drops_by_flow: self.drops_by_flow.clone(),
            arena: self.arena.clone(),
            next_uid: self.next_uid,
            stats: self.stats,
            effects_scratch: Vec::new(),
            checks: self.checks.clone(),
            metrics: self.metrics.clone(),
            profiler: self.profiler.clone(),
            tap: self.tap.clone(),
            shard_ctx: self.shard_ctx.clone(),
            sharding,
        })
    }

    /// Rough heap footprint of the captured state, for checkpoint-size
    /// reporting. Counts the dominant dynamic structures (event wheels,
    /// arena slots, queue backlogs, trace bins) at container granularity;
    /// agent internals are estimated per slot.
    fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<Simulator>();
        // Each pending event: a wheel entry (~at + seq + event) on one of
        // the two tiers.
        bytes += self.events.len() * (size_of::<Event>() + 2 * size_of::<u64>());
        bytes += self.arena.slots_allocated() * (size_of::<Packet>() + size_of::<u32>());
        for link in &self.links {
            bytes += size_of::<Link>() + link.backlog_packets() * size_of::<Packet>();
        }
        for trace in &self.traces {
            bytes += trace.n_bins() * size_of::<u64>();
        }
        for slot in &self.agents {
            bytes += 256
                + (slot.timers.len() + slot.timer_spill.len()) * size_of::<(u64, TimerHandle)>();
        }
        bytes += self.bindings.len() * (size_of::<(NodeId, FlowId)>() + size_of::<AgentId>());
        bytes += self
            .flow_ranges
            .iter()
            .map(|v| v.len() * size_of::<FlowRange>())
            .sum::<usize>();
        bytes += self.drops_by_flow.len() * (size_of::<FlowId>() + size_of::<u64>());
        if let Some(rt) = self.sharding.as_deref() {
            for shard in &rt.shards {
                bytes += shard.approx_heap_bytes();
            }
        }
        bytes
    }
}

/// Why [`Simulator::checkpoint`] could not capture the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// An attached agent does not implement [`Agent::clone_box`].
    UncloneableAgent(AgentId),
    /// A link's queue discipline is an un-cloneable
    /// [`crate::queue::AnyQueue::Custom`].
    UncloneableQueue(LinkId),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::UncloneableAgent(id) => {
                write!(f, "{id} does not support clone_box; cannot checkpoint")
            }
            CheckpointError::UncloneableQueue(id) => {
                write!(f, "{id} has a custom queue discipline; cannot checkpoint")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A frozen deep copy of a [`Simulator`], produced by
/// [`Simulator::checkpoint`] and consumed (non-destructively) by
/// [`Simulator::fork`].
///
/// The intended use is warm-starting: run the expensive common prefix of
/// an experiment family once (e.g. TCP warm-up to steady state), take a
/// checkpoint, then fork one simulator per variant. Determinism contract:
/// `fork` + `run_until(T)` produces byte-identical traces, stats, metrics
/// and violations to running the original simulator to `T` — provided the
/// same operations (agent attachments, traces) are applied in the same
/// order after the checkpoint instant.
pub struct SimCheckpoint {
    state: Simulator,
    approx_bytes: usize,
}

impl SimCheckpoint {
    /// The simulation instant the checkpoint was taken at.
    pub fn taken_at(&self) -> SimTime {
        self.state.clock
    }

    /// Rough heap footprint of the captured state, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Test hook: simulates an incomplete state capture by resetting one
    /// link's counters, as if `checkpoint()` had failed to copy
    /// `Link::stats`. Forked runs then breach packet conservation on that
    /// link, which the invariant checkers must report.
    #[doc(hidden)]
    pub fn omit_link_stats_for_test(&mut self, link: LinkId) {
        self.state.links[link.index()].reset_stats_for_test();
    }
}

impl std::fmt::Debug for SimCheckpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCheckpoint")
            .field("taken_at", &self.state.clock)
            .field("approx_bytes", &self.approx_bytes)
            .field("pending_events", &self.state.events.len())
            .finish()
    }
}

// A whole simulation must be movable onto a worker thread: the parallel
// sweep runner builds one `Simulator` per experiment point and runs each
// on its own worker. Every agent and queue discipline is `Send` by trait
// bound; this assertion catches any future non-`Send` field (`Rc`,
// `RefCell` shared across agents, raw pointers) at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Simulator>();
    // Checkpoints travel between sweep workers (inside a mutex-guarded
    // cache), so they must be `Send` too. They are deliberately not
    // required to be `Sync`: agents are `Send`-only trait objects, and
    // forking clones under the cache's lock.
    assert_send::<SimCheckpoint>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use crate::queue::QueueSpec;
    use crate::topology::TopologyBuilder;
    use crate::units::{BitsPerSec, Bytes};
    use std::any::Any;

    /// Sends `count` packets of `size` to `dst`, one every `gap`.
    struct Blaster {
        dst: NodeId,
        flow: FlowId,
        count: u64,
        gap: SimDuration,
        sent: u64,
    }

    impl Agent for Blaster {
        fn start(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.timer_after(SimDuration::ZERO, 0);
        }
        fn on_packet(&mut self, _: Packet, _: &mut AgentCtx<'_>) {}
        fn on_timer(&mut self, _: u64, ctx: &mut AgentCtx<'_>) {
            if self.sent < self.count {
                self.sent += 1;
                ctx.send(Packet::new(
                    self.flow,
                    ctx.node(),
                    self.dst,
                    Bytes::from_u64(1000),
                    PacketKind::Background,
                ));
                ctx.timer_after(self.gap, 0);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Counts received packets.
    #[derive(Default, Clone)]
    struct Counter {
        received: u64,
        bytes: u64,
        last_at: Option<SimTime>,
    }

    impl Agent for Counter {
        fn start(&mut self, _: &mut AgentCtx<'_>) {}
        fn on_packet(&mut self, p: Packet, ctx: &mut AgentCtx<'_>) {
            self.received += 1;
            self.bytes += p.size.as_u64();
            self.last_at = Some(ctx.now());
        }
        fn on_timer(&mut self, _: u64, _: &mut AgentCtx<'_>) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn two_hosts() -> (Simulator, NodeId, NodeId) {
        let mut t = TopologyBuilder::new();
        let a = t.add_host("a");
        let b = t.add_host("b");
        t.add_duplex_link(
            a,
            b,
            BitsPerSec::from_mbps(8.0),
            SimDuration::from_millis(10),
            QueueSpec::DropTail { capacity: 100 },
        );
        (t.build().unwrap(), a, b)
    }

    #[test]
    fn end_to_end_delivery_with_latency() {
        let (mut sim, a, b) = two_hosts();
        let flow = FlowId::from_u32(1);
        let blaster = sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 1,
                gap: SimDuration::ZERO,
                sent: 0,
            }),
        );
        let counter = sim.attach_agent(b, Box::new(Counter::default()));
        sim.bind_flow(b, flow, counter);
        sim.run_until(SimTime::from_secs(1));

        let c = sim.agent_as::<Counter>(counter).unwrap();
        assert_eq!(c.received, 1);
        assert_eq!(c.bytes, 1000);
        // 1000 B at 8 Mbps = 1 ms serialization + 10 ms propagation.
        assert_eq!(c.last_at, Some(SimTime::from_millis(11)));
        assert_eq!(sim.stats().delivered, 1);
        let _ = sim.agent_as::<Blaster>(blaster).unwrap();
    }

    #[test]
    fn unbound_flow_counts_unclaimed() {
        let (mut sim, a, b) = two_hosts();
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow: FlowId::from_u32(9),
                count: 3,
                gap: SimDuration::from_millis(1),
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().unclaimed, 3);
        assert_eq!(sim.stats().delivered, 0);
    }

    #[test]
    fn bottleneck_serializes_back_to_back() {
        let (mut sim, a, b) = two_hosts();
        let flow = FlowId::from_u32(1);
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 10,
                gap: SimDuration::ZERO, // all at once: 9 of them queue
                sent: 0,
            }),
        );
        let counter = sim.attach_agent(b, Box::new(Counter::default()));
        sim.bind_flow(b, flow, counter);
        sim.run_until(SimTime::from_secs(1));
        let c = sim.agent_as::<Counter>(counter).unwrap();
        assert_eq!(c.received, 10);
        // Last packet: 10 x 1 ms serialization + 10 ms propagation.
        assert_eq!(c.last_at, Some(SimTime::from_millis(20)));
    }

    #[test]
    fn queue_overflow_drops_and_attributes_flow() {
        let mut t = TopologyBuilder::new();
        let a = t.add_host("a");
        let b = t.add_host("b");
        t.add_duplex_link(
            a,
            b,
            BitsPerSec::from_mbps(8.0),
            SimDuration::from_millis(1),
            QueueSpec::DropTail { capacity: 2 },
        );
        let mut sim = t.build().unwrap();
        let flow = FlowId::from_u32(1);
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 10,
                gap: SimDuration::ZERO,
                sent: 0,
            }),
        );
        let counter = sim.attach_agent(b, Box::new(Counter::default()));
        sim.bind_flow(b, flow, counter);
        sim.run_until(SimTime::from_secs(1));
        // 1 in flight + 2 queued survive the burst; 7 dropped.
        assert_eq!(sim.stats().queue_drops, 7);
        assert_eq!(sim.drops_for_flow(flow), 7);
        assert_eq!(sim.agent_as::<Counter>(counter).unwrap().received, 3);
    }

    #[test]
    fn trace_observes_ingress() {
        let (mut sim, a, b) = two_hosts();
        let flow = FlowId::from_u32(1);
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 5,
                gap: SimDuration::from_millis(2),
                sent: 0,
            }),
        );
        // Find the a->b link (first one built).
        let link = sim.links()[0].id();
        let trace = sim.trace_link_ingress(link, TraceFilter::All, SimDuration::from_millis(50));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.trace(trace).total_bytes(), 5000);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let (mut sim, _, _) = two_hosts();
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert!(!sim.step());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_binding_panics() {
        let (mut sim, _, b) = two_hosts();
        let c1 = sim.attach_agent(b, Box::new(Counter::default()));
        let c2 = sim.attach_agent(b, Box::new(Counter::default()));
        sim.bind_flow(b, FlowId::from_u32(1), c1);
        sim.bind_flow(b, FlowId::from_u32(1), c2);
    }

    #[test]
    fn agent_as_returns_none_for_wrong_type() {
        let (mut sim, _, b) = two_hosts();
        let counter = sim.attach_agent(b, Box::new(Counter::default()));
        assert!(sim.agent_as::<Counter>(counter).is_some());
        assert!(sim.agent_as::<Blaster>(counter).is_none());
    }

    #[test]
    fn multi_hop_chain_delivers_with_summed_latency() {
        // a - r1 - r2 - b, 1 ms per hop, 8 Mbps everywhere.
        let mut t = TopologyBuilder::new();
        let a = t.add_host("a");
        let r1 = t.add_router("r1");
        let r2 = t.add_router("r2");
        let b = t.add_host("b");
        let q = std::sync::Arc::new(QueueSpec::DropTail { capacity: 50 });
        for (x, y) in [(a, r1), (r1, r2), (r2, b)] {
            t.add_duplex_link(
                x,
                y,
                BitsPerSec::from_mbps(8.0),
                SimDuration::from_millis(1),
                std::sync::Arc::clone(&q),
            );
        }
        let mut sim = t.build().unwrap();
        let flow = FlowId::from_u32(1);
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 1,
                gap: SimDuration::ZERO,
                sent: 0,
            }),
        );
        let counter = sim.attach_agent(b, Box::new(Counter::default()));
        sim.bind_flow(b, flow, counter);
        sim.run_until(SimTime::from_secs(1));
        // 3 hops x (1 ms serialization of 1000 B at 8 Mbps + 1 ms prop).
        assert_eq!(
            sim.agent_as::<Counter>(counter).unwrap().last_at,
            Some(SimTime::from_millis(6))
        );
    }

    #[test]
    fn trace_filters_split_traffic_classes_at_engine_level() {
        let (mut sim, a, b) = two_hosts();
        let flow = FlowId::from_u32(1);
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 4,
                gap: SimDuration::from_millis(1),
                sent: 0,
            }),
        );
        let link = sim.links()[0].id();
        let all = sim.trace_link_ingress(link, TraceFilter::All, SimDuration::from_millis(10));
        let tcp_only =
            sim.trace_link_ingress(link, TraceFilter::TcpOnly, SimDuration::from_millis(10));
        let attack_only =
            sim.trace_link_ingress(link, TraceFilter::AttackOnly, SimDuration::from_millis(10));
        sim.run_until(SimTime::from_secs(1));
        // Blaster sends Background packets: counted by All only.
        assert_eq!(sim.trace(all).total_bytes(), 4000);
        assert_eq!(sim.trace(tcp_only).total_bytes(), 0);
        assert_eq!(sim.trace(attack_only).total_bytes(), 0);
    }

    #[test]
    fn pending_events_drain_to_zero() {
        let (mut sim, a, b) = two_hosts();
        let flow = FlowId::from_u32(1);
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 5,
                gap: SimDuration::from_millis(1),
                sent: 0,
            }),
        );
        assert!(sim.pending_events() > 0);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.pending_events(), 0);
        assert!(sim.stats().events > 0);
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn attach_to_unknown_node_panics() {
        let (mut sim, _, _) = two_hosts();
        sim.attach_agent(NodeId::from_u32(99), Box::new(Counter::default()));
    }

    #[test]
    fn checks_stay_clean_on_a_healthy_run() {
        let (mut sim, a, b) = two_hosts();
        sim.enable_checks();
        assert!(sim.checks_enabled());
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow: FlowId::from_u32(1),
                count: 50,
                gap: SimDuration::from_micros(100),
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert!(
            sim.violations().is_empty(),
            "healthy run flagged: {:?}",
            sim.violations()
        );
        assert_eq!(sim.violations_truncated(), 0);
    }

    #[test]
    fn violations_empty_when_checks_disabled() {
        let (mut sim, a, b) = two_hosts();
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow: FlowId::from_u32(1),
                count: 3,
                gap: SimDuration::ZERO,
                sent: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(1));
        assert!(!sim.checks_enabled());
        assert!(sim.violations().is_empty());
    }

    #[test]
    fn corrupted_clock_is_flagged_as_regression() {
        let (mut sim, a, b) = two_hosts();
        sim.enable_checks();
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow: FlowId::from_u32(1),
                count: 5,
                gap: SimDuration::from_millis(1),
                sent: 0,
            }),
        );
        // Jump the clock far past every pending event: the next pop is
        // "in the past" and must be flagged, not panic.
        sim.corrupt_clock_for_test(SimTime::from_secs(10));
        sim.run_until(SimTime::from_secs(20));
        let v = sim
            .violations()
            .iter()
            .find(|v| v.kind == crate::check::ViolationKind::ClockRegression)
            .expect("clock regression must be flagged");
        assert_eq!(v.entity, "engine");
        assert_eq!(v.at, SimTime::from_secs(10));
    }

    #[test]
    fn corrupted_link_accounting_is_flagged_as_conservation_breach() {
        let (mut sim, a, b) = two_hosts();
        sim.enable_checks();
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow: FlowId::from_u32(1),
                count: 10,
                gap: SimDuration::from_millis(1),
                sent: 0,
            }),
        );
        let link_id = {
            let link = sim.link_mut_for_test(LinkId::from_u32(0));
            link.corrupt_accounting_for_test();
            link.id()
        };
        sim.run_until(SimTime::from_secs(1));
        let v = sim
            .violations()
            .iter()
            .find(|v| v.kind == crate::check::ViolationKind::PacketConservation)
            .expect("conservation breach must be flagged");
        assert_eq!(v.entity, link_id.to_string());
        assert!(v.detail.contains("offered"), "{}", v.detail);
    }

    #[test]
    #[should_panic(expected = "stale PacketRef")]
    fn stale_packet_handle_panics_under_checks() {
        // ABA regression: a Deliver event holding a handle to a recycled
        // arena slot must die loudly when popped, never deliver the slot's
        // new occupant.
        let (mut sim, a, b) = two_hosts();
        sim.enable_checks();
        let pkt = Packet::new(
            FlowId::from_u32(1),
            a,
            b,
            Bytes::from_u64(1000),
            PacketKind::Background,
        );
        sim.schedule_stale_deliver_for_test(b, pkt);
        sim.step();
    }

    #[test]
    fn metrics_count_link_traffic_and_event_tiers() {
        let (mut sim, a, b) = two_hosts();
        sim.enable_metrics();
        assert!(sim.metrics_enabled());
        let flow = FlowId::from_u32(1);
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 10,
                gap: SimDuration::from_millis(1),
                sent: 0,
            }),
        );
        let counter = sim.attach_agent(b, Box::new(Counter::default()));
        sim.bind_flow(b, flow, counter);
        sim.run_until(SimTime::from_secs(1));
        let snap = sim.metrics_snapshot().expect("metrics are on");
        assert_eq!(snap.counter("link/0", "enqueued"), Some(10));
        assert_eq!(snap.counter("link/0", "dequeued"), Some(10));
        assert_eq!(snap.counter("link/0", "dropped"), Some(0));
        // The links are DropTail, so the overflow counter exists (and
        // stayed at zero) and the RED histogram does not.
        assert_eq!(snap.counter("link/0", "droptail_overflow"), Some(0));
        assert!(snap.get("link/0", "red_drop_prob").is_none());
        // 10 sends + 10 LinkTxDone + 10 deliveries + 1 start on the
        // packet tier; the Blaster's 11 timer fires on the timer tier.
        assert_eq!(snap.counter("engine", "pops_timer_tier"), Some(11));
        let packet_pops = snap.counter("engine", "pops_packet_tier").unwrap();
        assert_eq!(packet_pops + 11, sim.stats().events);
    }

    #[test]
    fn metrics_attribute_droptail_overflow() {
        let mut t = TopologyBuilder::new();
        let a = t.add_host("a");
        let b = t.add_host("b");
        t.add_duplex_link(
            a,
            b,
            BitsPerSec::from_mbps(8.0),
            SimDuration::from_millis(1),
            QueueSpec::DropTail { capacity: 2 },
        );
        let mut sim = t.build().unwrap().with_metrics();
        let flow = FlowId::from_u32(1);
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 10,
                gap: SimDuration::ZERO,
                sent: 0,
            }),
        );
        let counter = sim.attach_agent(b, Box::new(Counter::default()));
        sim.bind_flow(b, flow, counter);
        sim.run_until(SimTime::from_secs(1));
        let snap = sim.metrics_snapshot().unwrap();
        // Same split as `queue_overflow_drops_and_attributes_flow`.
        assert_eq!(snap.counter("link/0", "dropped"), Some(7));
        assert_eq!(snap.counter("link/0", "droptail_overflow"), Some(7));
        assert_eq!(snap.counter("link/0", "enqueued"), Some(3));
        assert_eq!(snap.counter("link/0", "dequeued"), Some(3));
    }

    #[test]
    fn metrics_do_not_perturb_the_run() {
        let run = |metered: bool| {
            let (mut sim, a, b) = two_hosts();
            if metered {
                sim.enable_metrics();
            }
            let flow = FlowId::from_u32(1);
            sim.attach_agent(
                a,
                Box::new(Blaster {
                    dst: b,
                    flow,
                    count: 25,
                    gap: SimDuration::from_micros(700),
                    sent: 0,
                }),
            );
            let counter = sim.attach_agent(b, Box::new(Counter::default()));
            sim.bind_flow(b, flow, counter);
            sim.run_until(SimTime::from_secs(1));
            (
                sim.stats(),
                sim.agent_as::<Counter>(counter).unwrap().last_at,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn tap_bins_match_an_all_filter_trace() {
        let (mut sim, a, b) = two_hosts();
        let bin = SimDuration::from_millis(10);
        sim.enable_tap(bin);
        assert!(sim.tap_enabled());
        let flow = FlowId::from_u32(1);
        let trace = sim.trace_link_ingress(LinkId::from_u32(0), TraceFilter::All, bin);
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 25,
                gap: SimDuration::from_micros(700),
                sent: 0,
            }),
        );
        let counter = sim.attach_agent(b, Box::new(Counter::default()));
        sim.bind_flow(b, flow, counter);
        sim.run_until(SimTime::from_secs(1));
        // The tap records at the same hook site with the same binning, so
        // its series is identical to a user-registered All trace.
        let tap_bins = sim.tap_bins(LinkId::from_u32(0)).expect("tap is on");
        assert_eq!(tap_bins, sim.trace(trace).bytes_per_bin());
        assert!(tap_bins.iter().sum::<u64>() > 0);
        assert_eq!(sim.tap().unwrap().bin_width(), bin);
        // The reverse (ACK-less) direction exists but saw no traffic.
        assert_eq!(
            sim.tap_bins(LinkId::from_u32(1)).unwrap().len(),
            0,
            "untouched link has no materialized bins"
        );
    }

    #[test]
    fn tap_does_not_perturb_the_run() {
        let run = |tapped: bool| {
            let (mut sim, a, b) = two_hosts();
            if tapped {
                sim.enable_tap(SimDuration::from_millis(10));
            }
            let flow = FlowId::from_u32(1);
            sim.attach_agent(
                a,
                Box::new(Blaster {
                    dst: b,
                    flow,
                    count: 25,
                    gap: SimDuration::from_micros(700),
                    sent: 0,
                }),
            );
            let counter = sim.attach_agent(b, Box::new(Counter::default()));
            sim.bind_flow(b, flow, counter);
            sim.run_until(SimTime::from_secs(1));
            (
                sim.stats(),
                sim.agent_as::<Counter>(counter).unwrap().last_at,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn delayed_agent_start() {
        let (mut sim, a, b) = two_hosts();
        let flow = FlowId::from_u32(1);
        sim.attach_agent_at(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 1,
                gap: SimDuration::ZERO,
                sent: 0,
            }),
            SimTime::from_secs(2),
        );
        let counter = sim.attach_agent(b, Box::new(Counter::default()));
        sim.bind_flow(b, flow, counter);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent_as::<Counter>(counter).unwrap().received, 0);
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.agent_as::<Counter>(counter).unwrap().received, 1);
    }

    /// A [`Blaster`] that supports checkpointing.
    #[derive(Clone)]
    struct CloneBlaster(Blaster);

    impl Clone for Blaster {
        fn clone(&self) -> Self {
            Blaster {
                dst: self.dst,
                flow: self.flow,
                count: self.count,
                gap: self.gap,
                sent: self.sent,
            }
        }
    }

    impl Agent for CloneBlaster {
        fn start(&mut self, ctx: &mut AgentCtx<'_>) {
            self.0.start(ctx);
        }
        fn on_packet(&mut self, p: Packet, ctx: &mut AgentCtx<'_>) {
            self.0.on_packet(p, ctx);
        }
        fn on_timer(&mut self, t: u64, ctx: &mut AgentCtx<'_>) {
            self.0.on_timer(t, ctx);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn clone_box(&self) -> Option<Box<dyn Agent>> {
            Some(Box::new(self.clone()))
        }
    }

    /// Builds a two-host sim with a cloneable blaster + counter, runs it
    /// to `pause`, and returns it with the counter's id.
    fn checkpointable_sim(pause: SimTime) -> (Simulator, AgentId) {
        let (mut sim, a, b) = two_hosts();
        sim.enable_checks();
        let flow = FlowId::from_u32(1);
        sim.attach_agent(
            a,
            Box::new(CloneBlaster(Blaster {
                dst: b,
                flow,
                count: 200,
                gap: SimDuration::from_micros(700),
                sent: 0,
            })),
        );
        let counter = sim.attach_agent(b, Box::new(CloneCounter(Counter::default())));
        sim.bind_flow(b, flow, counter);
        sim.run_until(pause);
        (sim, counter)
    }

    /// A cloneable [`Counter`].
    #[derive(Default, Clone)]
    struct CloneCounter(Counter);

    impl Agent for CloneCounter {
        fn start(&mut self, ctx: &mut AgentCtx<'_>) {
            self.0.start(ctx);
        }
        fn on_packet(&mut self, p: Packet, ctx: &mut AgentCtx<'_>) {
            self.0.on_packet(p, ctx);
        }
        fn on_timer(&mut self, t: u64, ctx: &mut AgentCtx<'_>) {
            self.0.on_timer(t, ctx);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn clone_box(&self) -> Option<Box<dyn Agent>> {
            Some(Box::new(self.clone()))
        }
    }

    #[test]
    fn fork_resumes_identically_to_cold_run() {
        let pause = SimTime::from_millis(40);
        let horizon = SimTime::from_millis(300);
        let (mut cold, cold_counter) = checkpointable_sim(pause);
        let (paused, _) = checkpointable_sim(pause);
        let checkpoint = paused.checkpoint().expect("all agents cloneable");
        assert_eq!(checkpoint.taken_at(), pause);
        assert!(checkpoint.approx_bytes() > 0);

        let mut forked = Simulator::fork(&checkpoint);
        cold.run_until(horizon);
        forked.run_until(horizon);
        assert_eq!(cold.stats(), forked.stats());
        assert_eq!(cold.violations(), forked.violations());
        let cold_seen = cold
            .agent_as::<CloneCounter>(cold_counter)
            .map(|c| (c.0.received, c.0.bytes, c.0.last_at))
            .unwrap();
        let fork_seen = forked
            .agent_as::<CloneCounter>(cold_counter)
            .map(|c| (c.0.received, c.0.bytes, c.0.last_at))
            .unwrap();
        assert_eq!(cold_seen, fork_seen);
    }

    #[test]
    fn forking_twice_yields_independent_identical_runs() {
        let (paused, counter) = checkpointable_sim(SimTime::from_millis(40));
        let checkpoint = paused.checkpoint().unwrap();
        let horizon = SimTime::from_millis(300);
        let mut f1 = Simulator::fork(&checkpoint);
        let mut f2 = Simulator::fork(&checkpoint);
        f1.run_until(horizon);
        // f1 finishing must not disturb f2 (no shared mutable state).
        f2.run_until(horizon);
        assert_eq!(f1.stats(), f2.stats());
        assert_eq!(
            f1.agent_as::<CloneCounter>(counter).unwrap().0.received,
            f2.agent_as::<CloneCounter>(counter).unwrap().0.received,
        );
    }

    #[test]
    fn uncloneable_agent_fails_checkpoint() {
        let (mut sim, a, b) = two_hosts();
        let flow = FlowId::from_u32(1);
        // Plain `Blaster` keeps the default `clone_box` (None).
        let id = sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 1,
                gap: SimDuration::ZERO,
                sent: 0,
            }),
        );
        assert_eq!(
            sim.checkpoint().err(),
            Some(CheckpointError::UncloneableAgent(id))
        );
        assert!(sim
            .checkpoint()
            .unwrap_err()
            .to_string()
            .contains("clone_box"));
    }

    /// Two delay-separated clusters — `a - r1 =20ms= r2 - b` — that a
    /// two-shard plan cuts at the long link.
    fn two_clusters() -> (Simulator, NodeId, NodeId) {
        let mut t = TopologyBuilder::new();
        let a = t.add_host("a");
        let r1 = t.add_router("r1");
        let r2 = t.add_router("r2");
        let b = t.add_host("b");
        for (x, y, ms) in [(a, r1, 1), (r1, r2, 20), (r2, b, 1)] {
            t.add_duplex_link(
                x,
                y,
                BitsPerSec::from_mbps(8.0),
                SimDuration::from_millis(ms),
                QueueSpec::DropTail { capacity: 100 },
            );
        }
        (t.build().unwrap(), a, b)
    }

    /// Everything [`cross_traffic_observables`] surfaces: stats, each
    /// counter's `(seen, last_at)`, the trace bins, the tap bins, and
    /// the effective shard count.
    type CrossTrafficObservables = (
        SimStats,
        (u64, Option<SimTime>),
        (u64, Option<SimTime>),
        Vec<u64>,
        Vec<u64>,
        usize,
    );

    /// Bidirectional cross-cluster traffic with checks, tap and a trace
    /// on the bottleneck; returns every observable surface for
    /// sharded-vs-unsharded comparison.
    fn cross_traffic_observables(shards: usize) -> CrossTrafficObservables {
        let (mut sim, a, b) = two_clusters();
        sim.enable_checks();
        sim.enable_tap(SimDuration::from_millis(25));
        let (f1, f2) = (FlowId::from_u32(1), FlowId::from_u32(2));
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow: f1,
                count: 30,
                gap: SimDuration::from_micros(900),
                sent: 0,
            }),
        );
        sim.attach_agent(
            b,
            Box::new(Blaster {
                dst: a,
                flow: f2,
                count: 20,
                gap: SimDuration::from_micros(1300),
                sent: 0,
            }),
        );
        let ca = sim.attach_agent(a, Box::new(Counter::default()));
        let cb = sim.attach_agent(b, Box::new(Counter::default()));
        sim.bind_flow(a, f2, ca);
        sim.bind_flow(b, f1, cb);
        let bottleneck = LinkId::from_u32(2); // r1 -> r2
        let tr = sim.trace_link_ingress(bottleneck, TraceFilter::All, SimDuration::from_millis(25));
        let effective = sim.enable_sharding(shards);
        // Two run_until calls so cross-shard packets straddling the first
        // horizon must survive between runs.
        sim.run_until(SimTime::from_millis(300));
        sim.run_until(SimTime::from_millis(600));
        assert!(
            sim.violations().is_empty(),
            "healthy run flagged: {:?}",
            sim.violations()
        );
        let seen = |id| {
            let c = sim.agent_as::<Counter>(id).unwrap();
            (c.received, c.last_at)
        };
        (
            sim.stats(),
            seen(ca),
            seen(cb),
            sim.trace(tr).bytes_per_bin().to_vec(),
            sim.tap_bins(bottleneck).unwrap().to_vec(),
            effective,
        )
    }

    #[test]
    fn sharded_run_is_bit_identical_to_unsharded() {
        let base = cross_traffic_observables(1);
        for shards in [2, 4] {
            let sharded = cross_traffic_observables(shards);
            assert_eq!(sharded.5, shards, "4-node topology supports up to 4 shards");
            assert_eq!(base.0, sharded.0, "stats diverge at {shards} shards");
            assert_eq!(base.1, sharded.1);
            assert_eq!(base.2, sharded.2);
            assert_eq!(base.3, sharded.3, "trace bins diverge");
            assert_eq!(base.4, sharded.4, "tap bins diverge");
        }
    }

    #[test]
    fn sharding_refuses_a_mid_flight_split_and_falls_back() {
        let (mut sim, a, b) = two_clusters();
        let flow = FlowId::from_u32(1);
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 10,
                gap: SimDuration::from_millis(1),
                sent: 0,
            }),
        );
        let counter = sim.attach_agent(b, Box::new(Counter::default()));
        sim.bind_flow(b, flow, counter);
        sim.run_until(SimTime::from_millis(5));
        // Packets are in flight: the split must refuse and the run must
        // continue unharmed on the legacy engine.
        assert_eq!(sim.enable_sharding(2), 1);
        assert_eq!(sim.shard_count(), 1);
        assert!(sim.shard_plan().is_none());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.agent_as::<Counter>(counter).unwrap().received, 10);
    }

    #[test]
    fn single_shard_request_keeps_the_legacy_engine() {
        let (sim, _, _) = two_clusters();
        let sim = sim.with_shards(1);
        assert_eq!(sim.shard_count(), 1);
    }

    #[test]
    fn agents_attach_and_bind_after_sharding() {
        let (mut sim, a, b) = two_clusters();
        assert_eq!(sim.enable_sharding(2), 2);
        assert!(sim.shard_plan().unwrap().lookahead() == Some(SimDuration::from_millis(20)));
        let flow = FlowId::from_u32(7);
        sim.attach_agent_at(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 5,
                gap: SimDuration::from_millis(2),
                sent: 0,
            }),
            SimTime::from_millis(50),
        );
        let counter = sim.attach_agent(b, Box::new(Counter::default()));
        sim.bind_flow(b, flow, counter);
        sim.run_until(SimTime::from_millis(500));
        assert_eq!(sim.agent_as::<Counter>(counter).unwrap().received, 5);
        assert_eq!(sim.stats().delivered, 5);
        assert_eq!(sim.now(), SimTime::from_millis(500));
        assert_eq!(sim.pending_events(), 0);
        assert_eq!(sim.drops_for_flow(flow), 0);
    }

    #[test]
    fn sharded_step_drains_the_whole_simulation() {
        let (mut sim, a, b) = two_clusters();
        let flow = FlowId::from_u32(1);
        sim.attach_agent(
            a,
            Box::new(Blaster {
                dst: b,
                flow,
                count: 8,
                gap: SimDuration::from_millis(1),
                sent: 0,
            }),
        );
        let counter = sim.attach_agent(b, Box::new(Counter::default()));
        sim.bind_flow(b, flow, counter);
        assert_eq!(sim.enable_sharding(2), 2);
        while sim.step() {}
        assert_eq!(sim.agent_as::<Counter>(counter).unwrap().received, 8);
    }

    #[test]
    fn shard_skew_fault_triggers_clock_regression() {
        let (mut sim, a, b) = two_clusters();
        sim.enable_checks();
        let (f1, f2) = (FlowId::from_u32(1), FlowId::from_u32(2));
        // Continuous traffic both ways keeps every shard's clock moving,
        // so the skewed (t=0) injection is unambiguously in the past.
        for (src, dst, flow) in [(a, b, f1), (b, a, f2)] {
            sim.attach_agent(
                src,
                Box::new(Blaster {
                    dst,
                    flow,
                    count: 100,
                    gap: SimDuration::from_millis(1),
                    sent: 0,
                }),
            );
        }
        assert_eq!(sim.enable_sharding(2), 2);
        assert!(sim.arm_shard_skew_for_test());
        sim.run_until(SimTime::from_millis(300));
        assert!(
            sim.violations()
                .iter()
                .any(|v| v.kind == ViolationKind::ClockRegression),
            "skewed cross-shard delivery must be flagged: {:?}",
            sim.violations()
        );
    }

    #[test]
    fn arming_skew_on_an_unsharded_sim_is_refused() {
        let (mut sim, _, _) = two_clusters();
        assert!(!sim.arm_shard_skew_for_test());
    }

    /// Cloneable bidirectional cross-cluster setup for checkpoint tests.
    fn cloneable_sharded_sim(pause: SimTime) -> (Simulator, AgentId, AgentId) {
        let (mut sim, a, b) = two_clusters();
        sim.enable_checks();
        let (f1, f2) = (FlowId::from_u32(1), FlowId::from_u32(2));
        sim.attach_agent(
            a,
            Box::new(CloneBlaster(Blaster {
                dst: b,
                flow: f1,
                count: 120,
                gap: SimDuration::from_micros(900),
                sent: 0,
            })),
        );
        sim.attach_agent(
            b,
            Box::new(CloneBlaster(Blaster {
                dst: a,
                flow: f2,
                count: 80,
                gap: SimDuration::from_micros(1300),
                sent: 0,
            })),
        );
        let ca = sim.attach_agent(a, Box::new(CloneCounter(Counter::default())));
        let cb = sim.attach_agent(b, Box::new(CloneCounter(Counter::default())));
        sim.bind_flow(a, f2, ca);
        sim.bind_flow(b, f1, cb);
        assert_eq!(sim.enable_sharding(2), 2);
        sim.run_until(pause);
        (sim, ca, cb)
    }

    #[test]
    fn sharded_fork_resumes_identically_to_sharded_cold_run() {
        let pause = SimTime::from_millis(100);
        let horizon = SimTime::from_millis(500);
        let (mut cold, ca, cb) = cloneable_sharded_sim(pause);
        let (paused, _, _) = cloneable_sharded_sim(pause);
        let checkpoint = paused.checkpoint().expect("sharded state is cloneable");
        assert_eq!(checkpoint.taken_at(), pause);
        let mut forked = Simulator::fork(&checkpoint);
        assert_eq!(forked.shard_count(), 2);
        cold.run_until(horizon);
        forked.run_until(horizon);
        assert_eq!(cold.stats(), forked.stats());
        assert_eq!(cold.violations(), forked.violations());
        for id in [ca, cb] {
            let seen = |s: &Simulator| {
                let c = s.agent_as::<CloneCounter>(id).unwrap();
                (c.0.received, c.0.bytes, c.0.last_at)
            };
            assert_eq!(seen(&cold), seen(&forked));
        }
    }

    #[test]
    fn omitted_state_field_is_caught_by_invariant_checkers() {
        let (paused, _) = checkpointable_sim(SimTime::from_millis(40));
        let mut checkpoint = paused.checkpoint().unwrap();
        checkpoint.omit_link_stats_for_test(LinkId::from_u32(0));
        let mut forked = Simulator::fork(&checkpoint);
        forked.run_until(SimTime::from_millis(300));
        assert!(
            forked
                .violations()
                .iter()
                .any(|v| v.kind == ViolationKind::PacketConservation),
            "conservation checker must flag the incompletely captured link"
        );
    }
}
