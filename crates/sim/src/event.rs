//! The event queue: a deterministic priority queue of future happenings.
//!
//! Determinism matters: two events at the same instant are delivered in the
//! order they were scheduled (FIFO tie-break via a monotone sequence
//! number), so a run is a pure function of topology + seeds.

use crate::agent::AgentId;
use crate::link::LinkId;
use crate::node::NodeId;
use crate::packet::Packet;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A future happening inside the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// `packet` arrives at `node` (propagation across a link finished, or a
    /// local agent handed it to its own node).
    Deliver {
        /// The node the packet arrives at.
        node: NodeId,
        /// The arriving packet.
        packet: Packet,
    },
    /// The transmitter of `link` finished serializing its current packet.
    LinkTxDone {
        /// The link whose head-of-line packet completed serialization.
        link: LinkId,
    },
    /// A timer set by `agent` fired. `token` is agent-private state used to
    /// recognize (and lazily cancel) stale timers.
    Timer {
        /// The agent that owns the timer.
        agent: AgentId,
        /// Agent-private discriminator.
        token: u64,
    },
    /// An agent's `start` hook should run.
    AgentStart {
        /// The agent to start.
        agent: AgentId,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and on ties the
        // first-scheduled) event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of scheduled events with FIFO tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(token: u64) -> Event {
        Event::Timer {
            agent: AgentId::from_u32(0),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), timer(3));
        q.schedule(SimTime::from_millis(10), timer(1));
        q.schedule(SimTime::from_millis(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for token in 0..100 {
            q.schedule(t, timer(token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(9), timer(0));
        q.schedule(SimTime::from_millis(4), timer(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(4)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    proptest::proptest! {
        /// Property: regardless of insertion order, events pop sorted by
        /// (time, insertion sequence).
        #[test]
        fn prop_pop_order_is_stable_sort(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), timer(i as u64));
            }
            let mut expected: Vec<(u64, u64)> =
                times.iter().enumerate().map(|(i, &t)| (t, i as u64)).collect();
            expected.sort();
            let got: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
                .map(|(at, e)| match e {
                    Event::Timer { token, .. } => (at.as_nanos(), token),
                    _ => unreachable!(),
                })
                .collect();
            proptest::prop_assert_eq!(got, expected);
        }
    }
}
